(* Unit and property tests for the network substrates. *)

module Multiset = Net.Multiset

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- Multiset units ---------- *)

let test_empty () =
  check Alcotest.bool "empty" true (Multiset.is_empty Multiset.empty);
  check Alcotest.int "cardinal" 0 (Multiset.cardinal Multiset.empty);
  check Alcotest.int "count" 0 (Multiset.count 1 Multiset.empty)

let test_add_count () =
  let m = Multiset.add 5 (Multiset.add 3 (Multiset.add 5 Multiset.empty)) in
  check Alcotest.int "count 5" 2 (Multiset.count 5 m);
  check Alcotest.int "count 3" 1 (Multiset.count 3 m);
  check Alcotest.int "cardinal" 3 (Multiset.cardinal m);
  check Alcotest.int "distinct" 2 (Multiset.distinct_cardinal m);
  check Alcotest.bool "mem" true (Multiset.mem 5 m);
  check Alcotest.bool "not mem" false (Multiset.mem 4 m)

let test_remove () =
  let m = Multiset.of_list [ 1; 1; 2 ] in
  (match Multiset.remove 1 m with
  | Some m' ->
      check Alcotest.int "one copy left" 1 (Multiset.count 1 m');
      check Alcotest.int "other untouched" 1 (Multiset.count 2 m')
  | None -> fail "remove failed");
  (match Multiset.remove 3 m with
  | None -> ()
  | Some _ -> fail "removed absent element");
  match Multiset.remove 2 m with
  | Some m' -> check Alcotest.bool "2 gone" false (Multiset.mem 2 m')
  | None -> fail "remove failed"

let test_canonical () =
  let a = Multiset.of_list [ 3; 1; 2; 1 ] in
  let b = Multiset.of_list [ 1; 2; 1; 3 ] in
  check Alcotest.bool "insertion order irrelevant" true (Multiset.equal a b);
  (* Canonical representations fingerprint identically — the property
     global-state dedup relies on. *)
  check Alcotest.bool "identical fingerprints" true
    (Dsm.Fingerprint.equal
       (Dsm.Fingerprint.of_value (Multiset.bindings a))
       (Dsm.Fingerprint.of_value (Multiset.bindings b)))

let test_to_list_sorted () =
  let m = Multiset.of_list [ 9; 1; 5; 1 ] in
  check Alcotest.(list int) "expanded sorted" [ 1; 1; 5; 9 ]
    (Multiset.to_list m)

let test_union () =
  let a = Multiset.of_list [ 1; 2 ] and b = Multiset.of_list [ 2; 3 ] in
  let u = Multiset.union a b in
  check Alcotest.int "count 2" 2 (Multiset.count 2 u);
  check Alcotest.int "cardinal" 4 (Multiset.cardinal u);
  check Alcotest.bool "commutative" true
    (Multiset.equal u (Multiset.union b a))

let test_iter_fold () =
  let m = Multiset.of_list [ 1; 1; 2 ] in
  let total = Multiset.fold_distinct (fun x c acc -> acc + (x * c)) m 0 in
  check Alcotest.int "weighted sum" 4 total;
  let distinct = ref 0 in
  Multiset.iter_distinct (fun _ _ -> incr distinct) m;
  check Alcotest.int "distinct iterated" 2 !distinct

let test_pp () =
  let m = Multiset.of_list [ 1; 1; 2 ] in
  let out = Format.asprintf "%a" (Multiset.pp Format.pp_print_int) m in
  check Alcotest.bool "mentions multiplicity" true
    (String.length out > 0 && String.contains out 'x')

(* ---------- Multiset properties ---------- *)

let qcheck_cases =
  let open QCheck in
  [
    Test.make ~count:500 ~name:"add then remove is identity"
      (pair (small_list small_int) small_int)
      (fun (xs, x) ->
        let m = Multiset.of_list xs in
        match Multiset.remove x (Multiset.add x m) with
        | Some m' -> Multiset.equal m m'
        | None -> false);
    Test.make ~count:500 ~name:"cardinal = list length"
      (small_list small_int) (fun xs ->
        Multiset.cardinal (Multiset.of_list xs) = List.length xs);
    Test.make ~count:500 ~name:"count sums to cardinal"
      (small_list small_int) (fun xs ->
        let m = Multiset.of_list xs in
        Multiset.fold_distinct (fun _ c acc -> acc + c) m 0
        = Multiset.cardinal m);
    Test.make ~count:500 ~name:"of_list sorted and deduped bindings"
      (small_list small_int) (fun xs ->
        let b = Multiset.bindings (Multiset.of_list xs) in
        let keys = List.map fst b in
        List.sort_uniq compare keys = keys
        && List.for_all (fun (_, c) -> c >= 1) b);
    Test.make ~count:500 ~name:"union cardinals add"
      (pair (small_list small_int) (small_list small_int))
      (fun (xs, ys) ->
        Multiset.cardinal
          (Multiset.union (Multiset.of_list xs) (Multiset.of_list ys))
        = List.length xs + List.length ys);
    Test.make ~count:500 ~name:"shuffle-insensitive equality"
      (small_list small_int) (fun xs ->
        Multiset.equal (Multiset.of_list xs) (Multiset.of_list (List.rev xs)));
  ]

(* ---------- Lossy link ---------- *)

let test_link_validation () =
  (match Net.Lossy_link.create ~drop_prob:1.5 ~latency_min:0. ~latency_max:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "bad drop_prob accepted");
  match Net.Lossy_link.create ~drop_prob:0.5 ~latency_min:2. ~latency_max:1. () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "inverted latency window accepted"

let test_link_loopback_never_dropped () =
  let link =
    Net.Lossy_link.create ~drop_prob:1.0 ~latency_min:0. ~latency_max:0. ()
  in
  let loop = Dsm.Envelope.make ~src:1 ~dst:1 () in
  check Alcotest.bool "loopback survives certain drop" false
    (Net.Lossy_link.drops link ~roll:0.0 loop);
  let remote = Dsm.Envelope.make ~src:1 ~dst:2 () in
  check Alcotest.bool "remote dropped at p=1" true
    (Net.Lossy_link.drops link ~roll:0.999 remote)

let test_link_drop_threshold () =
  let link =
    Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0. ~latency_max:0. ()
  in
  let remote = Dsm.Envelope.make ~src:0 ~dst:1 () in
  check Alcotest.bool "below threshold drops" true
    (Net.Lossy_link.drops link ~roll:0.29 remote);
  check Alcotest.bool "above threshold passes" false
    (Net.Lossy_link.drops link ~roll:0.31 remote)

let test_link_latency () =
  let link =
    Net.Lossy_link.create ~drop_prob:0. ~latency_min:0.1 ~latency_max:0.5 ()
  in
  check (Alcotest.float 1e-9) "min" 0.1 (Net.Lossy_link.latency link ~roll:0.0);
  check (Alcotest.float 1e-9) "mid" 0.3 (Net.Lossy_link.latency link ~roll:0.5);
  check Alcotest.bool "reliable has no drops" true
    (Net.Lossy_link.drop_prob Net.Lossy_link.reliable = 0.)

let () =
  Alcotest.run "net"
    [
      ( "multiset",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/count" `Quick test_add_count;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "canonical" `Quick test_canonical;
          Alcotest.test_case "to_list sorted" `Quick test_to_list_sorted;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ( "multiset-properties",
        List.map QCheck_alcotest.to_alcotest qcheck_cases );
      ( "lossy_link",
        [
          Alcotest.test_case "validation" `Quick test_link_validation;
          Alcotest.test_case "loopback" `Quick test_link_loopback_never_dropped;
          Alcotest.test_case "threshold" `Quick test_link_drop_threshold;
          Alcotest.test_case "latency" `Quick test_link_latency;
        ] );
    ]
