(* Tests for the RandTree overlay and its node-local invariant. *)

let check = Alcotest.check
let fail = Alcotest.fail

module Config4 = struct
  let num_nodes = 4
  let max_children = 2
  let max_attempts = 1
  let bug = Protocols.Randtree.No_bug
end

module RT = Protocols.Randtree.Make (Config4)

module RT_buggy = Protocols.Randtree.Make (struct
  include Config4

  let bug = Protocols.Randtree.Double_bookkeeping
end)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

(* ---------- handler units ---------- *)

let test_initial () =
  let root = RT.initial 0 and other = RT.initial 1 in
  check Alcotest.bool "root is in" true
    (root.Protocols.Randtree.status = Protocols.Randtree.In);
  check Alcotest.bool "other is out" true
    (other.Protocols.Randtree.status = Protocols.Randtree.Out)

let test_join_action () =
  let s = RT.initial 1 in
  check Alcotest.int "join enabled" 1 (List.length (RT.enabled_actions ~self:1 s));
  let s', out = RT.handle_action ~self:1 s () in
  check Alcotest.bool "joining" true
    (s'.Protocols.Randtree.status = Protocols.Randtree.Joining);
  check Alcotest.int "attempt recorded" 1 s'.Protocols.Randtree.attempts;
  (match out with
  | [ e ] -> check Alcotest.int "join goes to root" 0 e.Dsm.Envelope.dst
  | _ -> fail "expected one Join");
  check Alcotest.int "attempts exhausted" 0
    (List.length (RT.enabled_actions ~self:1 s'));
  check Alcotest.int "root never joins" 0
    (List.length (RT.enabled_actions ~self:0 (RT.initial 0)))

let test_adopt () =
  let root = RT.initial 0 in
  let root, out =
    RT.handle_message ~self:0 root
      (env ~src:1 ~dst:0 (Protocols.Randtree.Join { joiner = 1 }))
  in
  check Alcotest.(list int) "child recorded" [ 1 ]
    root.Protocols.Randtree.children;
  (match out with
  | [ e ] -> (
      match e.Dsm.Envelope.payload with
      | Protocols.Randtree.Welcome { parent = 0; siblings = [] } -> ()
      | _ -> fail "expected empty-sibling Welcome")
  | _ -> fail "first join: exactly a Welcome");
  (* second joiner: Welcome plus sibling notification *)
  let root, out =
    RT.handle_message ~self:0 root
      (env ~src:2 ~dst:0 (Protocols.Randtree.Join { joiner = 2 }))
  in
  check Alcotest.(list int) "two children" [ 1; 2 ]
    root.Protocols.Randtree.children;
  check Alcotest.int "welcome + notify" 2 (List.length out)

let test_forward_when_full () =
  let root = RT.initial 0 in
  let feed s j =
    fst
      (RT.handle_message ~self:0 s
         (env ~src:j ~dst:0 (Protocols.Randtree.Join { joiner = j })))
  in
  let root = feed (feed root 1) 2 in
  let root', out =
    RT.handle_message ~self:0 root
      (env ~src:3 ~dst:0 (Protocols.Randtree.Join { joiner = 3 }))
  in
  check Alcotest.(list int) "correct build: no double booking" [ 1; 2 ]
    root'.Protocols.Randtree.children;
  match out with
  | [ e ] -> (
      match e.Dsm.Envelope.payload with
      | Protocols.Randtree.Join { joiner = 3 } ->
          check Alcotest.bool "forwarded to a child" true
            (List.mem e.Dsm.Envelope.dst [ 1; 2 ])
      | _ -> fail "expected forwarded Join")
  | _ -> fail "correct build forwards exactly the Join"

let test_forward_when_full_buggy () =
  let root = RT_buggy.initial 0 in
  let feed s j =
    fst
      (RT_buggy.handle_message ~self:0 s
         (env ~src:j ~dst:0 (Protocols.Randtree.Join { joiner = j })))
  in
  let root = feed (feed root 1) 2 in
  let root', out =
    RT_buggy.handle_message ~self:0 root
      (env ~src:3 ~dst:0 (Protocols.Randtree.Join { joiner = 3 }))
  in
  check Alcotest.(list int) "bug double-books the joiner" [ 1; 2; 3 ]
    root'.Protocols.Randtree.children;
  (* forward + sibling announcements to both children *)
  check Alcotest.int "extra traffic" 3 (List.length out)

let test_duplicate_join_idempotent () =
  let root = RT.initial 0 in
  let root, _ =
    RT.handle_message ~self:0 root
      (env ~src:1 ~dst:0 (Protocols.Randtree.Join { joiner = 1 }))
  in
  let root', out =
    RT.handle_message ~self:0 root
      (env ~src:1 ~dst:0 (Protocols.Randtree.Join { joiner = 1 }))
  in
  check Alcotest.bool "children unchanged" true
    (root.Protocols.Randtree.children = root'.Protocols.Randtree.children);
  match out with
  | [ e ] -> (
      match e.Dsm.Envelope.payload with
      | Protocols.Randtree.Welcome _ -> ()
      | _ -> fail "expected re-Welcome")
  | _ -> fail "duplicate join should re-welcome"

let test_join_at_non_member_asserts () =
  let outsider = RT.initial 2 in
  match
    RT.handle_message ~self:2 outsider
      (env ~src:3 ~dst:2 (Protocols.Randtree.Join { joiner = 3 }))
  with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "non-member served a join"

let test_welcome_and_sibling () =
  let s = RT.initial 1 in
  let s, _ = RT.handle_action ~self:1 s () in
  let s, _ =
    RT.handle_message ~self:1 s
      (env ~src:0 ~dst:1
         (Protocols.Randtree.Welcome { parent = 0; siblings = [ 2 ] }))
  in
  check Alcotest.bool "in" true
    (s.Protocols.Randtree.status = Protocols.Randtree.In);
  check Alcotest.(option int) "parent" (Some 0) s.Protocols.Randtree.parent;
  check Alcotest.(list int) "siblings" [ 2 ] s.Protocols.Randtree.siblings;
  let s, _ =
    RT.handle_message ~self:1 s
      (env ~src:0 ~dst:1 (Protocols.Randtree.New_sibling { sibling = 3 }))
  in
  check Alcotest.(list int) "sibling added sorted" [ 2; 3 ]
    s.Protocols.Randtree.siblings;
  (* self-sibling announcements are ignored *)
  let s', _ =
    RT.handle_message ~self:1 s
      (env ~src:0 ~dst:1 (Protocols.Randtree.New_sibling { sibling = 1 }))
  in
  check Alcotest.(list int) "self ignored" [ 2; 3 ]
    s'.Protocols.Randtree.siblings

(* ---------- checking ---------- *)

module G = Mc_global.Bdfs.Make (RT)
module G_buggy = Mc_global.Bdfs.Make (RT_buggy)
module L = Lmc.Checker.Make (RT)
module L_buggy = Lmc.Checker.Make (RT_buggy)

let test_correct_disjoint_global () =
  let o =
    G.run G.default_config ~invariant:RT.disjointness
      (Dsm.Protocol.initial_system (module RT))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "disjointness holds" true (o.violation = None)

let test_buggy_found_global () =
  let o =
    G_buggy.run G_buggy.default_config ~invariant:RT_buggy.disjointness
      (Dsm.Protocol.initial_system (module RT_buggy))
  in
  check Alcotest.bool "bug found" true (o.violation <> None)

let test_correct_disjoint_lmc () =
  let r =
    L.run L.default_config ~strategy:L.General ~invariant:RT.disjointness
      (Dsm.Protocol.initial_system (module RT))
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.bool "no sound violation" true (r.sound_violation = None);
  (* LMC's conservative delivery produces invalid overlapping states
     which must all be filtered out *)
  check Alcotest.bool "invalid combos were filtered" true
    (r.preliminary_violations > 0)

let test_buggy_found_lmc () =
  let r =
    L_buggy.run L_buggy.default_config ~strategy:L_buggy.General
      ~invariant:RT_buggy.disjointness
      (Dsm.Protocol.initial_system (module RT_buggy))
  in
  match r.sound_violation with
  | None -> fail "LMC missed the double-bookkeeping bug"
  | Some v ->
      check Alcotest.bool "witness replays" true (v.schedule <> []);
      check Alcotest.bool "violating system state kept" true
        (Dsm.Invariant.check RT_buggy.disjointness v.system <> None)

let () =
  Alcotest.run "randtree"
    [
      ( "handlers",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "join action" `Quick test_join_action;
          Alcotest.test_case "adopt" `Quick test_adopt;
          Alcotest.test_case "forward (correct)" `Quick test_forward_when_full;
          Alcotest.test_case "forward (buggy)" `Quick
            test_forward_when_full_buggy;
          Alcotest.test_case "duplicate join" `Quick
            test_duplicate_join_idempotent;
          Alcotest.test_case "join assert" `Quick
            test_join_at_non_member_asserts;
          Alcotest.test_case "welcome/sibling" `Quick test_welcome_and_sibling;
        ] );
      ( "checking",
        [
          Alcotest.test_case "correct holds (global)" `Quick
            test_correct_disjoint_global;
          Alcotest.test_case "bug found (global)" `Quick test_buggy_found_global;
          Alcotest.test_case "correct holds (LMC)" `Slow
            test_correct_disjoint_lmc;
          Alcotest.test_case "bug found (LMC)" `Slow test_buggy_found_lmc;
        ] );
    ]
