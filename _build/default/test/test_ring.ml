(* Tests for Chang-Roberts ring election. *)

let check = Alcotest.check
let fail = Alcotest.fail

module Ring = Protocols.Ring_election.Make (struct
  let num_nodes = 3
  let starters = [ 0; 1 ]
  let bug = Protocols.Ring_election.No_bug
end)

module Ring_bug = Protocols.Ring_election.Make (struct
  let num_nodes = 3
  let starters = [ 0; 1 ]
  let bug = Protocols.Ring_election.Forward_smaller
end)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

(* ---------- handlers ---------- *)

let test_wake () =
  let s = Ring.initial 0 in
  check Alcotest.int "starter can wake" 1
    (List.length (Ring.enabled_actions ~self:0 s));
  check Alcotest.int "non-starter cannot" 0
    (List.length (Ring.enabled_actions ~self:2 (Ring.initial 2)));
  let s', out = Ring.handle_action ~self:0 s () in
  check Alcotest.bool "participating" true s'.Protocols.Ring_election.participating;
  (match out with
  | [ e ] ->
      check Alcotest.int "token to successor" 1 e.Dsm.Envelope.dst;
      check Alcotest.bool "own token" true
        (e.Dsm.Envelope.payload = Protocols.Ring_election.Token 0)
  | _ -> fail "expected one token");
  check Alcotest.int "wake once" 0 (List.length (Ring.enabled_actions ~self:0 s'))

let test_forward_bigger () =
  let s = { (Ring.initial 1) with Protocols.Ring_election.participating = true } in
  let _, out =
    Ring.handle_message ~self:1 s (env ~src:0 ~dst:1 (Protocols.Ring_election.Token 2))
  in
  match out with
  | [ e ] when e.Dsm.Envelope.payload = Protocols.Ring_election.Token 2 ->
      check Alcotest.int "to successor" 2 e.Dsm.Envelope.dst
  | _ -> fail "bigger token must be forwarded"

let test_join_with_own () =
  let s = Ring.initial 2 in
  let s', out =
    Ring.handle_message ~self:2 s (env ~src:1 ~dst:2 (Protocols.Ring_election.Token 0))
  in
  check Alcotest.bool "joined" true s'.Protocols.Ring_election.participating;
  match out with
  | [ e ] when e.Dsm.Envelope.payload = Protocols.Ring_election.Token 2 -> ()
  | _ -> fail "non-participant must substitute its own token"

let test_swallow_vs_bug () =
  let s = { (Ring.initial 2) with Protocols.Ring_election.participating = true } in
  let _, out =
    Ring.handle_message ~self:2 s (env ~src:1 ~dst:2 (Protocols.Ring_election.Token 0))
  in
  check Alcotest.int "correct build swallows" 0 (List.length out);
  let sb =
    { (Ring_bug.initial 2) with Protocols.Ring_election.participating = true }
  in
  let _, out =
    Ring_bug.handle_message ~self:2 sb
      (env ~src:1 ~dst:2 (Protocols.Ring_election.Token 0))
  in
  check Alcotest.int "buggy build forwards" 1 (List.length out)

let test_win_and_announce () =
  let s = { (Ring.initial 1) with Protocols.Ring_election.participating = true } in
  let s', out =
    Ring.handle_message ~self:1 s (env ~src:0 ~dst:1 (Protocols.Ring_election.Token 1))
  in
  check Alcotest.(option int) "leader set" (Some 1)
    s'.Protocols.Ring_election.leader;
  (match out with
  | [ e ] when e.Dsm.Envelope.payload = Protocols.Ring_election.Elected 1 -> ()
  | _ -> fail "winner must announce");
  (* announcement circulates and stops at the winner *)
  let s2, out2 =
    Ring.handle_message ~self:2 (Ring.initial 2)
      (env ~src:1 ~dst:2 (Protocols.Ring_election.Elected 1))
  in
  check Alcotest.(option int) "follower set" (Some 1)
    s2.Protocols.Ring_election.leader;
  check Alcotest.int "forwarded" 1 (List.length out2);
  let _, out3 =
    Ring.handle_message ~self:1 s' (env ~src:0 ~dst:1 (Protocols.Ring_election.Elected 1))
  in
  check Alcotest.int "stops at winner" 0 (List.length out3)

(* ---------- checking ---------- *)

let init (type s) (module P : Dsm.Protocol.S with type state = s) =
  Dsm.Protocol.initial_system (module P)

let test_correct_agreement_global () =
  let module G = Mc_global.Bdfs.Make (Ring) in
  let o = G.run G.default_config ~invariant:Ring.agreement (init (module Ring)) in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "agreement holds" true (o.violation = None)

let test_buggy_found_global () =
  let module G = Mc_global.Bdfs.Make (Ring_bug) in
  let o =
    G.run G.default_config ~invariant:Ring_bug.agreement (init (module Ring_bug))
  in
  match o.violation with
  | Some _ -> ()
  | None -> fail "forward-smaller bug not found by B-DFS"

let test_buggy_found_lmc () =
  let module L = Lmc.Checker.Make (Ring_bug) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = Ring_bug.abstraction; conflict = Ring_bug.conflicts })
      ~invariant:Ring_bug.agreement (init (module Ring_bug))
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.bool "two leaders in the witness state" true
        (Dsm.Invariant.check Ring_bug.agreement v.system <> None)
  | None -> fail "forward-smaller bug not confirmed by LMC"

let test_correct_quiet_lmc () =
  let module L = Lmc.Checker.Make (Ring) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = Ring.abstraction; conflict = Ring.conflicts })
      ~invariant:Ring.agreement (init (module Ring))
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.bool "no sound violation" true (r.sound_violation = None)

let prop_correct_rings_agree =
  (* any ring size / starter set: the correct protocol keeps agreement
     (global exhaustive check) *)
  QCheck.Test.make ~count:12 ~name:"correct election agrees on any ring"
    QCheck.(pair (int_range 2 4) (list_of_size (Gen.int_range 1 2) (int_range 0 3)))
    (fun (n, starters) ->
      let starters =
        List.sort_uniq compare (List.filter (fun s -> s < n) starters)
      in
      QCheck.assume (starters <> []);
      let module P = Protocols.Ring_election.Make (struct
        let num_nodes = n
        let starters = starters
        let bug = Protocols.Ring_election.No_bug
      end) in
      let module G = Mc_global.Bdfs.Make (P) in
      let o =
        G.run
          { G.default_config with time_limit = Some 30.0 }
          ~invariant:P.agreement
          (Dsm.Protocol.initial_system (module P))
      in
      o.violation = None)

let () =
  Alcotest.run "ring_election"
    [
      ( "handlers",
        [
          Alcotest.test_case "wake" `Quick test_wake;
          Alcotest.test_case "forward bigger" `Quick test_forward_bigger;
          Alcotest.test_case "join with own" `Quick test_join_with_own;
          Alcotest.test_case "swallow vs bug" `Quick test_swallow_vs_bug;
          Alcotest.test_case "win and announce" `Quick test_win_and_announce;
        ] );
      ( "checking",
        [
          Alcotest.test_case "correct agrees (global)" `Quick
            test_correct_agreement_global;
          Alcotest.test_case "bug found (global)" `Quick test_buggy_found_global;
          Alcotest.test_case "bug found (LMC)" `Quick test_buggy_found_lmc;
          Alcotest.test_case "correct quiet (LMC)" `Quick
            test_correct_quiet_lmc;
          QCheck_alcotest.to_alcotest prop_correct_rings_agree;
        ] );
    ]
