test/test_scenarios.ml: Alcotest Array List Lmc Net Protocols Sim
