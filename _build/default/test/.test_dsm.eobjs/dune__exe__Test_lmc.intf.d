test/test_lmc.mli:
