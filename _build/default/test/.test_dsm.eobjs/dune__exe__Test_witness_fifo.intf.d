test/test_witness_fifo.mli:
