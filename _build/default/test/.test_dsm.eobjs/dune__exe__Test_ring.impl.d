test/test_ring.ml: Alcotest Dsm Gen List Lmc Mc_global Protocols QCheck QCheck_alcotest
