test/test_mc_global.ml: Alcotest Array Dsm List Mc_global Net Protocols QCheck QCheck_alcotest
