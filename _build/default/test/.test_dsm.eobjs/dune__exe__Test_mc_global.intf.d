test/test_mc_global.mli:
