test/test_mutex_abp.mli:
