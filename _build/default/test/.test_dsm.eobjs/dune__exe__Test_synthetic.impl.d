test/test_synthetic.ml: Alcotest Array Dsm Hashtbl List Lmc Mc_global Net Protocols QCheck QCheck_alcotest
