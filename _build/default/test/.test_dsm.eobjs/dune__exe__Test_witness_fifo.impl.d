test/test_witness_fifo.ml: Alcotest Array Dsm Format List Lmc Mc_global Protocols String
