test/test_pb_store.mli:
