test/test_onepaxos.mli:
