test/test_twophase.ml: Alcotest Dsm Gen List Lmc Mc_global Protocols QCheck QCheck_alcotest
