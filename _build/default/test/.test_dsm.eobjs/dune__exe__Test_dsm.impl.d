test/test_dsm.ml: Alcotest Array Dsm Format List Protocols String
