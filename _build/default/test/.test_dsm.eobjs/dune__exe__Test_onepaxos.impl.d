test/test_onepaxos.ml: Alcotest Array Dsm List Lmc Printf Protocols
