test/test_sim.ml: Alcotest Array List Net Option Protocols Sim
