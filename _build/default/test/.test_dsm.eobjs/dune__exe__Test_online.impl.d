test/test_online.ml: Alcotest Format Net Online Protocols Sim String
