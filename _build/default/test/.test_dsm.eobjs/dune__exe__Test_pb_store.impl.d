test/test_pb_store.ml: Alcotest Dsm List Lmc Mc_global Protocols
