test/test_mutex_abp.ml: Alcotest Dsm List Lmc Mc_global Protocols
