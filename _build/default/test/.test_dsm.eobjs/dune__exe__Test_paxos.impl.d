test/test_paxos.ml: Alcotest Array Dsm List Lmc Mc_global Protocols
