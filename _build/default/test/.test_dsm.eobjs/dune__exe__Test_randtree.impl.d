test/test_randtree.ml: Alcotest Dsm List Lmc Mc_global Protocols
