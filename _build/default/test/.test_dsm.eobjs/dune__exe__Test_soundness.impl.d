test/test_soundness.ml: Alcotest Array Dsm List Lmc Option Printf QCheck QCheck_alcotest
