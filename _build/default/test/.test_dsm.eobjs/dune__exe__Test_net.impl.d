test/test_net.ml: Alcotest Dsm Format List Net QCheck QCheck_alcotest String Test
