test/test_lmc.ml: Alcotest Array Dsm List Lmc Mc_global Net Protocols QCheck QCheck_alcotest Sim
