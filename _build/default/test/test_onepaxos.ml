(* Tests for 1Paxos and its embedded PaxosUtility layer (§5.6). *)

let check = Alcotest.check
let fail = Alcotest.fail

module Config_buggy = struct
  let num_nodes = 3
  let max_leader_claims = 1
  let max_attempts = 1
  let max_index = 2
  let max_util_entries = 2
  let max_util_attempts = 2
  let bug = Protocols.Onepaxos.Postfix_increment
end

module Config_fixed = struct
  include Config_buggy

  let bug = Protocols.Onepaxos.No_bug
end

module Buggy = Protocols.Onepaxos.Make (Config_buggy)
module Fixed = Protocols.Onepaxos.Make (Config_fixed)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

let boot (module P : Dsm.Protocol.S
           with type state = Protocols.Onepaxos.op_state
            and type action = Protocols.Onepaxos.op_action
            and type message = Protocols.Onepaxos.op_message) n =
  fst (P.handle_action ~self:n (P.initial n) Protocols.Onepaxos.Init)

(* ---------- initialisation and the ++ bug ---------- *)

let test_init_bug () =
  let s = boot (module Buggy) 0 in
  check Alcotest.int "buggy acceptor is the first member" 0
    s.Protocols.Onepaxos.acceptor;
  check Alcotest.bool "node 0 leads" true s.Protocols.Onepaxos.is_leader;
  let f = boot (module Fixed) 0 in
  check Alcotest.int "correct acceptor is the second member" 1
    f.Protocols.Onepaxos.acceptor;
  let s1 = boot (module Buggy) 1 in
  check Alcotest.bool "node 1 does not lead" false
    s1.Protocols.Onepaxos.is_leader

let test_leader_proposes_to_cached_acceptor () =
  let s = boot (module Buggy) 0 in
  let _, out =
    Buggy.handle_action ~self:0 s (Protocols.Onepaxos.Propose { idx = 0 })
  in
  (match out with
  | [ e ] ->
      check Alcotest.int "buggy leader proposes to itself" 0 e.Dsm.Envelope.dst
  | _ -> fail "expected one Propose1");
  let f = boot (module Fixed) 0 in
  let _, out =
    Fixed.handle_action ~self:0 f (Protocols.Onepaxos.Propose { idx = 0 })
  in
  match out with
  | [ e ] ->
      check Alcotest.int "fixed leader proposes to node 1" 1 e.Dsm.Envelope.dst
  | _ -> fail "expected one Propose1"

(* ---------- the single-acceptor rule ---------- *)

let test_acceptor_locks_value () =
  let s = boot (module Fixed) 1 in
  let s, out =
    Fixed.handle_message ~self:1 s
      (env ~src:0 ~dst:1 (Protocols.Onepaxos.Propose1 { idx = 0; rnd = 1; v = 7 }))
  in
  check Alcotest.int "learns broadcast to all" 3 (List.length out);
  (* a later, higher-round proposal with another value re-learns 7 *)
  let _, out2 =
    Fixed.handle_message ~self:1 s
      (env ~src:2 ~dst:1 (Protocols.Onepaxos.Propose1 { idx = 0; rnd = 9; v = 8 }))
  in
  (match out2 with
  | (_ : _ Dsm.Envelope.t) :: _ -> (
      match (List.hd out2).Dsm.Envelope.payload with
      | Protocols.Onepaxos.Learn1 { v; _ } ->
          check Alcotest.int "locked value re-learned" 7 v
      | _ -> fail "expected Learn1")
  | [] -> fail "higher round ignored");
  (* a stale round is ignored outright *)
  let s', out3 =
    Fixed.handle_message ~self:1 s
      (env ~src:2 ~dst:1 (Protocols.Onepaxos.Propose1 { idx = 0; rnd = 0; v = 8 }))
  in
  check Alcotest.bool "stale proposal dropped" true (s = s');
  check Alcotest.int "no learns" 0 (List.length out3)

let test_learn1_chooses_once () =
  let s = boot (module Fixed) 2 in
  let s, _ =
    Fixed.handle_message ~self:2 s
      (env ~src:1 ~dst:2 (Protocols.Onepaxos.Learn1 { idx = 0; rnd = 1; v = 7 }))
  in
  check Alcotest.(option int) "chosen" (Some 7)
    (List.assoc_opt 0 s.Protocols.Onepaxos.chosen);
  let s, _ =
    Fixed.handle_message ~self:2 s
      (env ~src:0 ~dst:2 (Protocols.Onepaxos.Learn1 { idx = 0; rnd = 2; v = 9 }))
  in
  check Alcotest.(option int) "first choice sticks" (Some 7)
    (List.assoc_opt 0 s.Protocols.Onepaxos.chosen)

(* ---------- PaxosUtility layering ---------- *)

let test_claim_runs_utility_consensus () =
  (* Drive a full utility consensus for LeaderChange(2) by hand across
     three booted nodes and check everyone applies it. *)
  let states = Array.init 3 (fun n -> boot (module Buggy) n) in
  let pool = ref [] in
  let dispatch () =
    (* deliver everything until quiescence, breadth-first *)
    let rec go budget =
      if budget = 0 then fail "utility consensus diverged";
      match !pool with
      | [] -> ()
      | e :: rest ->
          pool := rest;
          let dst = e.Dsm.Envelope.dst in
          let s', out = Buggy.handle_message ~self:dst states.(dst) e in
          states.(dst) <- s';
          pool := !pool @ out;
          go (budget - 1)
    in
    go 1000
  in
  let s2, out =
    Buggy.handle_action ~self:2 states.(2) Protocols.Onepaxos.Claim_leadership
  in
  states.(2) <- s2;
  pool := out;
  dispatch ();
  Array.iteri
    (fun n (s : Buggy.state) ->
      check Alcotest.int
        (Printf.sprintf "N%d sees leader 2" n)
        2 s.Protocols.Onepaxos.leader;
      check Alcotest.int
        (Printf.sprintf "N%d applied one entry" n)
        1 s.Protocols.Onepaxos.util_applied)
    states;
  check Alcotest.bool "node 2 now leads" true
    states.(2).Protocols.Onepaxos.is_leader;
  check Alcotest.bool "node 0 deposed" false
    states.(0).Protocols.Onepaxos.is_leader;
  (* the new leader refreshed its acceptor from the utility: correct
     default, in spite of the buggy cached value *)
  check Alcotest.int "refreshed acceptor" 1
    states.(2).Protocols.Onepaxos.acceptor

(* Drive a full utility consensus for an AcceptorChange entry and check
   everyone applies it, including the leader's cached-acceptor refresh
   on a later LeaderChange. *)
let test_acceptor_change_applied () =
  let states = Array.init 3 (fun n -> boot (module Fixed) n) in
  let pool = ref [] in
  let dispatch () =
    let rec go budget =
      if budget = 0 then fail "utility consensus diverged";
      match !pool with
      | [] -> ()
      | e :: rest ->
          pool := rest;
          let dst = e.Dsm.Envelope.dst in
          let s', out = Fixed.handle_message ~self:dst states.(dst) e in
          states.(dst) <- s';
          pool := !pool @ out;
          go (budget - 1)
    in
    go 2000
  in
  (* hand-roll an AcceptorChange(2) proposal through the utility layer:
     reuse Claim_leadership's plumbing by injecting the raw utility
     paxos messages — node 1 proposes the entry at utility index 0 *)
  let util, out =
    Protocols.Paxos_core.propose ~n:3 ~self:1
      states.(1).Protocols.Onepaxos.util ~idx:0
      ~v:(Protocols.Onepaxos.encode_entry (Protocols.Onepaxos.Acceptor_change 2))
  in
  states.(1) <- { (states.(1)) with Protocols.Onepaxos.util };
  pool :=
    List.map
      (fun (dst, m) -> Dsm.Envelope.make ~src:1 ~dst (Protocols.Onepaxos.Util m))
      out;
  dispatch ();
  Array.iteri
    (fun n (s : Fixed.state) ->
      check Alcotest.int
        (Printf.sprintf "N%d applied the acceptor change" n)
        2 s.Protocols.Onepaxos.acceptor;
      check Alcotest.int
        (Printf.sprintf "N%d log advanced" n)
        1 s.Protocols.Onepaxos.util_applied)
    states;
  (* now node 2 claims leadership; the refresh must read the
     AcceptorChange from the log, not the default *)
  let s2, out =
    Fixed.handle_action ~self:2 states.(2) Protocols.Onepaxos.Claim_leadership
  in
  states.(2) <- s2;
  pool := out;
  dispatch ();
  check Alcotest.bool "node 2 leads" true states.(2).Protocols.Onepaxos.is_leader;
  check Alcotest.int "leader kept the changed acceptor" 2
    states.(2).Protocols.Onepaxos.acceptor

let test_entry_encoding_roundtrip () =
  List.iter
    (fun e ->
      let open Protocols.Onepaxos in
      if decode_entry (encode_entry e) <> e then fail "entry roundtrip")
    [
      Protocols.Onepaxos.Leader_change 0;
      Protocols.Onepaxos.Leader_change 2;
      Protocols.Onepaxos.Acceptor_change 1;
      Protocols.Onepaxos.Acceptor_change 2;
    ]

(* ---------- the §5.6 scenario, end to end ---------- *)

(* Craft the paper's snapshot: leadership moved to node 2 and it got
   index 0 chosen as v3 at nodes 1 and 2 — while node 0 missed both the
   LeaderChange and the Learn1 and still believes it leads with its
   buggy cached acceptor. *)
let crafted_snapshot () =
  let states = Array.init 3 (fun n -> boot (module Buggy) n) in
  (* run the utility consensus among nodes 1 and 2 only (node 0's
     traffic "was lost"), by replaying node 2's claim and filtering *)
  let pool = ref [] in
  let s2, out =
    Buggy.handle_action ~self:2 states.(2) Protocols.Onepaxos.Claim_leadership
  in
  states.(2) <- s2;
  pool := out;
  let rec go budget =
    if budget = 0 then fail "dispatch diverged";
    match !pool with
    | [] -> ()
    | e :: rest ->
        pool := rest;
        let dst = e.Dsm.Envelope.dst in
        if dst = 0 then go (budget - 1) (* drop everything to node 0 *)
        else begin
          let s', out = Buggy.handle_message ~self:dst states.(dst) e in
          states.(dst) <- s';
          pool := !pool @ out;
          go (budget - 1)
        end
  in
  go 1000;
  if not states.(2).Protocols.Onepaxos.is_leader then
    fail "node 2 must end up leading (majority of 1 and 2)";
  (* node 2 proposes v3 for index 0 through the real acceptor (node 1) *)
  let s2, out =
    Buggy.handle_action ~self:2 states.(2)
      (Protocols.Onepaxos.Propose { idx = 0 })
  in
  states.(2) <- s2;
  pool := out;
  go 1000;
  states

let test_crafted_snapshot_shape () =
  let s = crafted_snapshot () in
  check Alcotest.bool "N0 still believes it leads" true
    s.(0).Protocols.Onepaxos.is_leader;
  check Alcotest.int "N0 buggy cached acceptor" 0
    s.(0).Protocols.Onepaxos.acceptor;
  check Alcotest.(option int) "N1 chose v3" (Some 3)
    (List.assoc_opt 0 s.(1).Protocols.Onepaxos.chosen);
  check Alcotest.(option int) "N2 chose v3" (Some 3)
    (List.assoc_opt 0 s.(2).Protocols.Onepaxos.chosen);
  check Alcotest.(option int) "N0 chose nothing" None
    (List.assoc_opt 0 s.(0).Protocols.Onepaxos.chosen)

module L_buggy = Lmc.Checker.Make (Buggy)
module L_fixed = Lmc.Checker.Make (Fixed)

let test_bug_found_from_snapshot () =
  let snapshot = crafted_snapshot () in
  let cfg =
    { L_buggy.default_config with
      time_limit = Some 30.0;
      local_action_bound = Some 1 }
  in
  let r =
    L_buggy.run cfg
      ~strategy:
        (L_buggy.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  match r.sound_violation with
  | None -> fail "§5.6 bug not found from the crafted snapshot"
  | Some v ->
      (* the witness is the loopback scenario: propose to self, accept,
         learn from self *)
      check Alcotest.bool "short witness" true (List.length v.schedule <= 5);
      check Alcotest.bool "every event is at node 0" true
        (List.for_all
           (fun step -> Dsm.Trace.step_node step = 0)
           v.schedule)

let test_fixed_safe_from_equivalent_snapshot () =
  (* the same drive on the fixed build leaves no divergence to find *)
  let states = Array.init 3 (fun n -> boot (module Fixed) n) in
  let pool = ref [] in
  let s2, out =
    Fixed.handle_action ~self:2 states.(2) Protocols.Onepaxos.Claim_leadership
  in
  states.(2) <- s2;
  pool := out;
  let rec go budget =
    if budget = 0 then fail "dispatch diverged";
    match !pool with
    | [] -> ()
    | e :: rest ->
        pool := rest;
        let dst = e.Dsm.Envelope.dst in
        if dst = 0 then go (budget - 1)
        else begin
          let s', out = Fixed.handle_message ~self:dst states.(dst) e in
          states.(dst) <- s';
          pool := !pool @ out;
          go (budget - 1)
        end
  in
  go 1000;
  (if states.(2).Protocols.Onepaxos.is_leader then begin
     let s2, out =
       Fixed.handle_action ~self:2 states.(2)
         (Protocols.Onepaxos.Propose { idx = 0 })
     in
     states.(2) <- s2;
     pool := out;
     go 1000
   end);
  let cfg =
    { L_fixed.default_config with
      time_limit = Some 10.0;
      local_action_bound = Some 1 }
  in
  let r =
    L_fixed.run cfg
      ~strategy:
        (L_fixed.Invariant_specific
           { abstract = Fixed.abstraction; conflict = Fixed.conflicts })
      ~invariant:Fixed.safety states
  in
  check Alcotest.bool "fixed 1Paxos stays safe" true
    (r.sound_violation = None)

let () =
  Alcotest.run "onepaxos"
    [
      ( "init",
        [
          Alcotest.test_case "postfix-increment bug" `Quick test_init_bug;
          Alcotest.test_case "cached acceptor used" `Quick
            test_leader_proposes_to_cached_acceptor;
        ] );
      ( "acceptor",
        [
          Alcotest.test_case "value locking" `Quick test_acceptor_locks_value;
          Alcotest.test_case "learn chooses once" `Quick
            test_learn1_chooses_once;
        ] );
      ( "utility",
        [
          Alcotest.test_case "claim consensus" `Quick
            test_claim_runs_utility_consensus;
          Alcotest.test_case "entry encoding" `Quick
            test_entry_encoding_roundtrip;
          Alcotest.test_case "acceptor change" `Quick
            test_acceptor_change_applied;
        ] );
      ( "bug-5.6",
        [
          Alcotest.test_case "snapshot shape" `Quick test_crafted_snapshot_shape;
          Alcotest.test_case "found from snapshot" `Slow
            test_bug_found_from_snapshot;
          Alcotest.test_case "fixed build safe" `Slow
            test_fixed_safe_from_equivalent_snapshot;
        ] );
    ]
