(* Tests for the online model-checking framework (§3.3). *)

let check = Alcotest.check
let fail = Alcotest.fail

module Common = struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 8
  let bug = Protocols.Paxos_core.Last_response_wins
end

module Live = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
end)

module Check_p = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
end)

module Live_fixed = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
  let bug = Protocols.Paxos_core.No_bug
end)

module Check_fixed = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
  let bug = Protocols.Paxos_core.No_bug
end)

module Online_buggy = Online.Online_mc.Make (Live) (Check_p)
module Online_fixed = Online.Online_mc.Make (Live_fixed) (Check_fixed)
module Sim_buggy = Sim.Live_sim.Make (Live)
module Sim_fixed = Sim.Live_sim.Make (Live_fixed)

let lossy () =
  Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()

let buggy_config ~max_live_time =
  {
    Online_buggy.sim =
      { Sim_buggy.seed = 7; link = lossy (); timer_min = 2.0; timer_max = 20.0;
        action_prob = None };
    check_interval = 30.0;
    max_live_time;
    checker =
      {
        Online_buggy.Checker.default_config with
        time_limit = Some 5.0;
        max_transitions = Some 100_000;
      };
    action_bounds = [ 1; 2 ];
    steer = false;
    steer_scope = `Exact_action;
  }

let strategy_buggy =
  Online_buggy.Checker.Invariant_specific
    { abstract = Check_p.abstraction; conflict = Check_p.conflicts }

let test_finds_injected_bug () =
  let outcome =
    Online_buggy.run (buggy_config ~max_live_time:600.0)
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  match outcome.report with
  | None -> fail "online checking missed the injected bug"
  | Some report ->
      check Alcotest.bool "found within live budget" true
        (report.live_time <= 600.0);
      check Alcotest.bool "witness non-empty" true
        (report.violation.Online_buggy.Checker.schedule <> []);
      check Alcotest.bool "counted checks" true (report.checks_run >= 1);
      check Alcotest.int "totals consistent" outcome.total_checks
        report.checks_run

let test_report_printable () =
  let outcome =
    Online_buggy.run (buggy_config ~max_live_time:600.0)
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  match outcome.report with
  | None -> fail "expected a report"
  | Some report ->
      let out = Format.asprintf "%a" Online_buggy.pp_report report in
      check Alcotest.bool "mentions the invariant" true
        (String.length out > 50)

let test_correct_paxos_quiet () =
  let config =
    {
      Online_fixed.sim =
        { Sim_fixed.seed = 7; link = lossy (); timer_min = 2.0;
          timer_max = 20.0; action_prob = None };
      check_interval = 30.0;
      max_live_time = 120.0;
      checker =
        {
          Online_fixed.Checker.default_config with
          time_limit = Some 3.0;
          max_transitions = Some 50_000;
        };
      action_bounds = [ 1 ];
      steer = false;
      steer_scope = `Exact_action;
    }
  in
  let strategy =
    Online_fixed.Checker.Invariant_specific
      { abstract = Check_fixed.abstraction; conflict = Check_fixed.conflicts }
  in
  let outcome =
    Online_fixed.run config ~strategy ~invariant:Check_fixed.safety
  in
  check Alcotest.bool "no false positive" true (outcome.report = None);
  check Alcotest.bool "checks actually ran" true (outcome.total_checks >= 4)

(* Execution steering: predictions installed as action vetoes keep the
   live system from ever reaching the violation.  The checker must
   outpace the drivers (2 s restarts vs 10-30 s action timers) — with
   slow restarts the stale node fires its fatal action before the
   prediction lands, which is CrystalBall's own operating constraint. *)
let test_steering_prevents_live_violation () =
  let module OPCfg = struct
    let num_nodes = 3
    let max_leader_claims = 2
    let max_attempts = 1
    let max_index = 12
    let max_util_entries = 3
    let max_util_attempts = 2
    let bug = Protocols.Onepaxos.Postfix_increment
  end in
  let module OP = Protocols.Onepaxos.Make (OPCfg) in
  let module O = Online.Online_mc.Make (OP) (OP) in
  let module S = Sim.Live_sim.Make (OP) in
  let config steer =
    {
      O.sim =
        {
          S.seed = 9;
          link =
            Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05
              ~latency_max:0.3 ();
          timer_min = 20.0;
          timer_max = 40.0;
          action_prob =
            Some
              (fun _ a ->
                match a with
                | Protocols.Onepaxos.Claim_leadership -> 0.1
                | _ -> 1.0);
        };
      check_interval = 5.0;
      max_live_time = 120.0;
      checker =
        {
          O.Checker.default_config with
          time_limit = Some 1.0;
          max_transitions = Some 20_000;
        };
      action_bounds = [ 1; 2 ];
      steer;
      steer_scope = `Node;
    }
  in
  let strategy =
    O.Checker.Invariant_specific
      { abstract = OP.abstraction; conflict = OP.conflicts }
  in
  let steered = O.run (config true) ~strategy ~invariant:OP.safety in
  check Alcotest.bool "violation predicted" true (steered.report <> None);
  check Alcotest.bool "vetoes installed" true (steered.vetoed <> []);
  check Alcotest.bool "live system never violated" true
    (steered.live_violation_time = None)

let test_interval_validation () =
  match
    Online_buggy.run
      { (buggy_config ~max_live_time:10.0) with check_interval = 0.0 }
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero interval accepted"

let () =
  Alcotest.run "online"
    [
      ( "online",
        [
          Alcotest.test_case "finds injected bug" `Slow test_finds_injected_bug;
          Alcotest.test_case "report printable" `Slow test_report_printable;
          Alcotest.test_case "correct build quiet" `Slow
            test_correct_paxos_quiet;
          Alcotest.test_case "steering prevents violation" `Slow
            test_steering_prevents_live_violation;
          Alcotest.test_case "interval validation" `Quick
            test_interval_validation;
        ] );
    ]
