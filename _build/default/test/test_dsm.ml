(* Unit tests for the distributed-system model substrate. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- Node_id ---------- *)

let test_node_id_of_int () =
  check Alcotest.int "roundtrip" 3 (Dsm.Node_id.to_int (Dsm.Node_id.of_int 3));
  (match Dsm.Node_id.of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "negative id accepted");
  check Alcotest.(list int) "all" [ 0; 1; 2 ] (Dsm.Node_id.all 3);
  check Alcotest.(list int) "all 0" [] (Dsm.Node_id.all 0)

let test_node_id_pp () =
  check Alcotest.string "pp" "N7" (Format.asprintf "%a" Dsm.Node_id.pp 7)

(* ---------- Envelope ---------- *)

let test_envelope_basic () =
  let e = Dsm.Envelope.make ~src:1 ~dst:2 "hello" in
  check Alcotest.int "src" 1 e.Dsm.Envelope.src;
  check Alcotest.int "dst" 2 e.Dsm.Envelope.dst;
  check Alcotest.string "payload" "hello" e.Dsm.Envelope.payload;
  check Alcotest.bool "not loopback" false (Dsm.Envelope.is_loopback e);
  let l = Dsm.Envelope.make ~src:2 ~dst:2 "x" in
  check Alcotest.bool "loopback" true (Dsm.Envelope.is_loopback l)

let test_envelope_compare () =
  let e1 = Dsm.Envelope.make ~src:0 ~dst:1 "a" in
  let e2 = Dsm.Envelope.make ~src:0 ~dst:2 "a" in
  let e3 = Dsm.Envelope.make ~src:1 ~dst:1 "a" in
  let e4 = Dsm.Envelope.make ~src:0 ~dst:1 "b" in
  let cmp = Dsm.Envelope.compare String.compare in
  check Alcotest.bool "dst first" true (cmp e1 e2 < 0);
  check Alcotest.bool "src second" true (cmp e1 e3 < 0);
  check Alcotest.bool "payload third" true (cmp e1 e4 < 0);
  check Alcotest.int "equal" 0 (cmp e1 e1);
  check Alcotest.bool "equal fn" true
    (Dsm.Envelope.equal String.equal e1 e1);
  check Alcotest.bool "not equal fn" false
    (Dsm.Envelope.equal String.equal e1 e4)

let test_envelope_map () =
  let e = Dsm.Envelope.make ~src:3 ~dst:4 5 in
  let e' = Dsm.Envelope.map string_of_int e in
  check Alcotest.int "src preserved" 3 e'.Dsm.Envelope.src;
  check Alcotest.int "dst preserved" 4 e'.Dsm.Envelope.dst;
  check Alcotest.string "payload mapped" "5" e'.Dsm.Envelope.payload

(* ---------- Fingerprint ---------- *)

let test_fingerprint_stable () =
  let a = Dsm.Fingerprint.of_value (1, [ "x"; "y" ]) in
  let b = Dsm.Fingerprint.of_value (1, [ "x"; "y" ]) in
  check Alcotest.bool "equal values equal fps" true (Dsm.Fingerprint.equal a b);
  let c = Dsm.Fingerprint.of_value (1, [ "x"; "z" ]) in
  check Alcotest.bool "distinct values distinct fps" false
    (Dsm.Fingerprint.equal a c)

let test_fingerprint_size () =
  let fp = Dsm.Fingerprint.of_value 42 in
  check Alcotest.int "16 bytes" Dsm.Fingerprint.size (String.length fp);
  check Alcotest.int "hex is 32 chars" 32
    (String.length (Dsm.Fingerprint.to_hex fp))

let test_fingerprint_combine () =
  let a = Dsm.Fingerprint.of_value 1 and b = Dsm.Fingerprint.of_value 2 in
  let ab = Dsm.Fingerprint.combine [ a; b ] in
  let ba = Dsm.Fingerprint.combine [ b; a ] in
  check Alcotest.bool "order matters" false (Dsm.Fingerprint.equal ab ba);
  check Alcotest.bool "deterministic" true
    (Dsm.Fingerprint.equal ab (Dsm.Fingerprint.combine [ a; b ]))

let test_fingerprint_serialized_size () =
  check Alcotest.bool "positive" true (Dsm.Fingerprint.serialized_size 1 > 0);
  check Alcotest.bool "bigger value bigger size" true
    (Dsm.Fingerprint.serialized_size (Array.make 100 7)
    > Dsm.Fingerprint.serialized_size 1)

let test_fingerprint_set_map () =
  let a = Dsm.Fingerprint.of_value "a" and b = Dsm.Fingerprint.of_value "b" in
  let s = Dsm.Fingerprint.Set.of_list [ a; b; a ] in
  check Alcotest.int "set dedups" 2 (Dsm.Fingerprint.Set.cardinal s);
  let m = Dsm.Fingerprint.Map.singleton a 1 in
  check Alcotest.(option int) "map find" (Some 1)
    (Dsm.Fingerprint.Map.find_opt a m)

(* ---------- Vec ---------- *)

let test_vec_push_get () =
  let v = Dsm.Vec.create () in
  check Alcotest.bool "empty" true (Dsm.Vec.is_empty v);
  check Alcotest.int "idx 0" 0 (Dsm.Vec.push v "a");
  check Alcotest.int "idx 1" 1 (Dsm.Vec.push v "b");
  check Alcotest.int "length" 2 (Dsm.Vec.length v);
  check Alcotest.string "get 0" "a" (Dsm.Vec.get v 0);
  check Alcotest.string "get 1" "b" (Dsm.Vec.get v 1);
  check Alcotest.string "last" "b" (Dsm.Vec.last v);
  Dsm.Vec.set v 0 "z";
  check Alcotest.string "set" "z" (Dsm.Vec.get v 0)

let test_vec_bounds () =
  let v = Dsm.Vec.create () in
  ignore (Dsm.Vec.push v 1);
  (match Dsm.Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "out of bounds get accepted");
  (match Dsm.Vec.get v (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "negative get accepted");
  match Dsm.Vec.last (Dsm.Vec.create ()) with
  | exception Invalid_argument _ -> ()
  | _ -> fail "last of empty accepted"

let test_vec_growth () =
  let v = Dsm.Vec.create () in
  for i = 0 to 999 do
    check Alcotest.int "push idx" i (Dsm.Vec.push v i)
  done;
  check Alcotest.int "length" 1000 (Dsm.Vec.length v);
  for i = 0 to 999 do
    if Dsm.Vec.get v i <> i then fail "content lost while growing"
  done

let test_vec_iter_range () =
  let v = Dsm.Vec.create () in
  List.iter (fun x -> ignore (Dsm.Vec.push v x)) [ 10; 20; 30; 40 ];
  let seen = ref [] in
  Dsm.Vec.iter_range v ~from:1 ~until:3 (fun i x -> seen := (i, x) :: !seen);
  check
    Alcotest.(list (pair int int))
    "range" [ (1, 20); (2, 30) ] (List.rev !seen);
  (* [until] beyond the end is clipped *)
  let seen = ref 0 in
  Dsm.Vec.iter_range v ~from:2 ~until:100 (fun _ _ -> incr seen);
  check Alcotest.int "clipped" 2 !seen

let test_vec_conversions () =
  let v = Dsm.Vec.create () in
  List.iter (fun x -> ignore (Dsm.Vec.push v x)) [ 1; 2; 3 ];
  check Alcotest.(list int) "to_list" [ 1; 2; 3 ] (Dsm.Vec.to_list v);
  check Alcotest.(array int) "to_array" [| 1; 2; 3 |] (Dsm.Vec.to_array v);
  check Alcotest.int "fold" 6 (Dsm.Vec.fold_left ( + ) 0 v);
  Dsm.Vec.clear v;
  check Alcotest.int "cleared" 0 (Dsm.Vec.length v)

(* ---------- Invariant ---------- *)

let test_invariant_make () =
  let inv =
    Dsm.Invariant.make ~name:"sum-small" (fun sys ->
        if Array.fold_left ( + ) 0 sys > 10 then Some "sum too big" else None)
  in
  check Alcotest.string "name" "sum-small" (Dsm.Invariant.name inv);
  check Alcotest.bool "holds" true (Dsm.Invariant.check inv [| 1; 2 |] = None);
  match Dsm.Invariant.check inv [| 9; 9 |] with
  | Some v ->
      check Alcotest.string "violation name" "sum-small" v.Dsm.Invariant.invariant
  | None -> fail "expected violation"

let test_invariant_conj () =
  let pos =
    Dsm.Invariant.make ~name:"pos" (fun sys ->
        if Array.exists (fun x -> x < 0) sys then Some "negative" else None)
  in
  let small =
    Dsm.Invariant.make ~name:"small" (fun sys ->
        if Array.exists (fun x -> x > 5) sys then Some "big" else None)
  in
  let both = Dsm.Invariant.conj [ pos; small ] in
  check Alcotest.bool "both hold" true
    (Dsm.Invariant.check both [| 1; 2 |] = None);
  check Alcotest.bool "first fails" true
    (Dsm.Invariant.check both [| -1; 2 |] <> None);
  check Alcotest.bool "second fails" true
    (Dsm.Invariant.check both [| 1; 7 |] <> None)

let test_invariant_for_all_nodes () =
  let inv =
    Dsm.Invariant.for_all_nodes ~name:"even" (fun _ s ->
        if s mod 2 = 0 then None else Some "odd")
  in
  check Alcotest.bool "holds" true (Dsm.Invariant.check inv [| 2; 4 |] = None);
  match Dsm.Invariant.check inv [| 2; 3 |] with
  | Some v ->
      check Alcotest.bool "names node" true
        (String.length v.Dsm.Invariant.detail > 0)
  | None -> fail "expected violation"

let test_invariant_for_all_pairs () =
  let inv =
    Dsm.Invariant.for_all_pairs ~name:"agree" (fun _ a _ b ->
        if a <> b then Some "disagree" else None)
  in
  check Alcotest.bool "agreeing" true
    (Dsm.Invariant.check inv [| 5; 5; 5 |] = None);
  check Alcotest.bool "disagreeing" true
    (Dsm.Invariant.check inv [| 5; 5; 6 |] <> None);
  check Alcotest.bool "single node trivially holds" true
    (Dsm.Invariant.check inv [| 5 |] = None)

(* ---------- Trace ---------- *)

let test_trace_step_node () =
  let d = Dsm.Trace.Deliver (Dsm.Envelope.make ~src:0 ~dst:3 "m") in
  let x = Dsm.Trace.Execute (1, "a") in
  check Alcotest.int "deliver node is dst" 3 (Dsm.Trace.step_node d);
  check Alcotest.int "execute node" 1 (Dsm.Trace.step_node x)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_trace_pp () =
  let pp_message ppf m = Format.pp_print_string ppf m in
  let pp_action = pp_message in
  let steps =
    [
      Dsm.Trace.Execute (0, "start");
      Dsm.Trace.Deliver (Dsm.Envelope.make ~src:0 ~dst:1 "tok");
    ]
  in
  let out = Format.asprintf "%a" (Dsm.Trace.pp ~pp_message ~pp_action) steps in
  check Alcotest.bool "mentions the action" true (contains out "start");
  check Alcotest.bool "mentions the delivery" true (contains out "N0->N1");
  check Alcotest.bool "numbered" true (contains out "1.")

let test_invariant_introspection () =
  let local =
    Dsm.Invariant.for_all_nodes ~name:"even" (fun _ s ->
        if s mod 2 = 0 then None else Some "odd")
  in
  (match Dsm.Invariant.nodewise_witness local with
  | Some w ->
      check Alcotest.bool "witness fires" true (w 0 3);
      check Alcotest.bool "witness holds" false (w 0 2)
  | None -> fail "for_all_nodes must expose a nodewise witness");
  check Alcotest.bool "no pairwise shape" true
    (Dsm.Invariant.pairwise_witness local = None);
  let pair =
    Dsm.Invariant.for_all_pairs ~name:"lt" (fun _ a _ b ->
        if a > b then Some "decreasing" else None)
  in
  (match Dsm.Invariant.pairwise_witness pair with
  | Some w ->
      (* the witness must be order-insensitive *)
      check Alcotest.bool "fires one way" true (w 0 5 1 3);
      check Alcotest.bool "fires the other way" true (w 0 3 1 5);
      check Alcotest.bool "quiet on equals" false (w 0 3 1 3)
  | None -> fail "for_all_pairs must expose a pairwise witness");
  let opaque = Dsm.Invariant.make ~name:"opaque" (fun _ -> None) in
  check Alcotest.bool "opaque has no shape" true
    (Dsm.Invariant.nodewise_witness opaque = None
    && Dsm.Invariant.pairwise_witness opaque = None)

(* ---------- Json ---------- *)

let test_json_scalars () =
  check Alcotest.string "null" "null" (Dsm.Json.to_string Dsm.Json.Null);
  check Alcotest.string "true" "true" (Dsm.Json.to_string (Dsm.Json.Bool true));
  check Alcotest.string "int" "-42" (Dsm.Json.to_string (Dsm.Json.Int (-42)));
  check Alcotest.string "integral float" "3.0"
    (Dsm.Json.to_string (Dsm.Json.Float 3.0));
  check Alcotest.string "string" "\"hi\""
    (Dsm.Json.to_string (Dsm.Json.String "hi"))

let test_json_escaping () =
  check Alcotest.string "quotes and backslash" "\"a\\\"b\\\\c\""
    (Dsm.Json.to_string (Dsm.Json.String "a\"b\\c"));
  check Alcotest.string "newline/tab" "\"l1\\nl2\\tend\""
    (Dsm.Json.to_string (Dsm.Json.String "l1\nl2\tend"));
  check Alcotest.string "control char" "\"\\u0001\""
    (Dsm.Json.to_string (Dsm.Json.String "\001"))

let test_json_structures () =
  let v =
    Dsm.Json.Obj
      [
        ("xs", Dsm.Json.List [ Dsm.Json.Int 1; Dsm.Json.Int 2 ]);
        ("nested", Dsm.Json.Obj [ ("ok", Dsm.Json.Bool false) ]);
        ("empty", Dsm.Json.List []);
      ]
  in
  check Alcotest.string "nested"
    "{\"xs\":[1,2],\"nested\":{\"ok\":false},\"empty\":[]}"
    (Dsm.Json.to_string v)

(* ---------- Protocol helpers ---------- *)

module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config)

let test_initial_system () =
  let sys = Dsm.Protocol.initial_system (module Tree) in
  check Alcotest.int "5 nodes" 5 (Array.length sys);
  Array.iter
    (fun s -> if s <> Protocols.Tree.Waiting then fail "non-waiting initial")
    sys

let () =
  Alcotest.run "dsm"
    [
      ( "node_id",
        [
          Alcotest.test_case "of_int/all" `Quick test_node_id_of_int;
          Alcotest.test_case "pp" `Quick test_node_id_pp;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "basic" `Quick test_envelope_basic;
          Alcotest.test_case "compare" `Quick test_envelope_compare;
          Alcotest.test_case "map" `Quick test_envelope_map;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "size" `Quick test_fingerprint_size;
          Alcotest.test_case "combine" `Quick test_fingerprint_combine;
          Alcotest.test_case "serialized_size" `Quick
            test_fingerprint_serialized_size;
          Alcotest.test_case "set/map" `Quick test_fingerprint_set_map;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "iter_range" `Quick test_vec_iter_range;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "make" `Quick test_invariant_make;
          Alcotest.test_case "conj" `Quick test_invariant_conj;
          Alcotest.test_case "for_all_nodes" `Quick test_invariant_for_all_nodes;
          Alcotest.test_case "for_all_pairs" `Quick test_invariant_for_all_pairs;
          Alcotest.test_case "introspection" `Quick
            test_invariant_introspection;
        ] );
      ( "trace",
        [
          Alcotest.test_case "step_node" `Quick test_trace_step_node;
          Alcotest.test_case "pp" `Quick test_trace_pp;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
        ] );
      ( "protocol",
        [ Alcotest.test_case "initial_system" `Quick test_initial_system ] );
    ]
