(* Tests for token-ring mutual exclusion and the alternating-bit
   protocol — including the documented duplicate-content limitation of
   LMC that ABP's bug exposes. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- token mutex ---------- *)

module Mutex = Protocols.Token_mutex.Make (struct
  let num_nodes = 3
  let contenders = [ 1; 2 ]
  let max_regenerations = 1
  let bug = Protocols.Token_mutex.No_bug
end)

module Mutex_bug = Protocols.Token_mutex.Make (struct
  let num_nodes = 3
  let contenders = [ 1; 2 ]
  let max_regenerations = 1
  let bug = Protocols.Token_mutex.Regenerate_token
end)

let init (type s) (module P : Dsm.Protocol.S with type state = s) =
  Dsm.Protocol.initial_system (module P)

let test_mutex_actions () =
  let holder = Mutex.initial 0 in
  check Alcotest.bool "node 0 starts with the token" true
    holder.Protocols.Token_mutex.has_token;
  (* uninterested holder passes *)
  (match Mutex.enabled_actions ~self:0 holder with
  | [ Protocols.Token_mutex.Pass ] -> ()
  | _ -> fail "holder should pass");
  let contender = Mutex.initial 1 in
  (match Mutex.enabled_actions ~self:1 contender with
  | [ Protocols.Token_mutex.Want ] -> ()
  | _ -> fail "contender should want");
  let wanting, _ = Mutex.handle_action ~self:1 contender Protocols.Token_mutex.Want in
  check Alcotest.int "nothing enabled without token" 0
    (List.length (Mutex.enabled_actions ~self:1 wanting));
  let with_token, _ =
    Mutex.handle_message ~self:1 wanting (Dsm.Envelope.make ~src:0 ~dst:1 ())
  in
  (match Mutex.enabled_actions ~self:1 with_token with
  | [ Protocols.Token_mutex.Enter ] -> ()
  | _ -> fail "should enter");
  let in_cs, _ = Mutex.handle_action ~self:1 with_token Protocols.Token_mutex.Enter in
  check Alcotest.bool "in cs" true in_cs.Protocols.Token_mutex.in_cs;
  let left, out = Mutex.handle_action ~self:1 in_cs Protocols.Token_mutex.Leave in
  check Alcotest.bool "served" true left.Protocols.Token_mutex.served;
  check Alcotest.bool "token released" false left.Protocols.Token_mutex.has_token;
  check Alcotest.int "token passed on" 1 (List.length out)

let test_mutex_double_token_assert () =
  let holder = Mutex.initial 0 in
  match Mutex.handle_message ~self:0 holder (Dsm.Envelope.make ~src:2 ~dst:0 ()) with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "second token accepted silently"

let test_mutex_safe_global_and_lmc () =
  let module G = Mc_global.Bdfs.Make (Mutex) in
  let o =
    G.run G.default_config ~invariant:Mutex.mutual_exclusion
      (init (module Mutex))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "exclusion holds" true (o.violation = None);
  let module L = Lmc.Checker.Make (Mutex) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = Mutex.abstraction; conflict = Mutex.conflicts })
      ~invariant:Mutex.mutual_exclusion (init (module Mutex))
  in
  check Alcotest.bool "LMC quiet" true (r.sound_violation = None)

let test_mutex_bug_found () =
  let module G = Mc_global.Bdfs.Make (Mutex_bug) in
  let o =
    G.run G.default_config ~invariant:Mutex_bug.mutual_exclusion
      (init (module Mutex_bug))
  in
  check Alcotest.bool "B-DFS finds the double token" true (o.violation <> None);
  let module L = Lmc.Checker.Make (Mutex_bug) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = Mutex_bug.abstraction; conflict = Mutex_bug.conflicts })
      ~invariant:Mutex_bug.mutual_exclusion (init (module Mutex_bug))
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.bool "two nodes in CS in the witness" true
        (Dsm.Invariant.check Mutex_bug.mutual_exclusion v.system <> None)
  | None -> fail "LMC missed the regeneration bug"

(* ---------- alternating bit ---------- *)

module Abp = Protocols.Alternating_bit.Make (struct
  let data = [ 10; 20 ]
  let max_retransmits = 1
  let bug = Protocols.Alternating_bit.No_bug
end)

module Abp_bug = Protocols.Alternating_bit.Make (struct
  let data = [ 10; 20 ]
  let max_retransmits = 1
  let bug = Protocols.Alternating_bit.Ignore_bit
end)

let test_abp_happy_path () =
  let s = Abp.initial 0 and r = Abp.initial 1 in
  let s, out = Abp.handle_action ~self:0 s Protocols.Alternating_bit.Send in
  let data_frame = List.hd out in
  let r, acks = Abp.handle_message ~self:1 r data_frame in
  (match r with
  | Protocols.Alternating_bit.R rr ->
      check Alcotest.(list int) "delivered" [ 10 ]
        rr.Protocols.Alternating_bit.delivered
  | _ -> fail "receiver shape");
  let s, _ = Abp.handle_message ~self:0 s (List.hd acks) in
  match s with
  | Protocols.Alternating_bit.S ss ->
      check Alcotest.bool "bit flipped" true ss.Protocols.Alternating_bit.bit;
      check Alcotest.(list int) "one pending left" [ 20 ]
        ss.Protocols.Alternating_bit.pending
  | _ -> fail "sender shape"

let test_abp_duplicate_filtered () =
  let r = Abp.initial 1 in
  let frame =
    Dsm.Envelope.make ~src:0 ~dst:1 (Protocols.Alternating_bit.Data (false, 10))
  in
  let r, _ = Abp.handle_message ~self:1 r frame in
  let r', acks = Abp.handle_message ~self:1 r frame in
  check Alcotest.bool "duplicate ignored" true (r = r');
  check Alcotest.int "but re-acked" 1 (List.length acks)

let test_abp_bug_duplicates () =
  let r = Abp_bug.initial 1 in
  let frame =
    Dsm.Envelope.make ~src:0 ~dst:1 (Protocols.Alternating_bit.Data (false, 10))
  in
  let r, _ = Abp_bug.handle_message ~self:1 r frame in
  let r', _ = Abp_bug.handle_message ~self:1 r frame in
  match r' with
  | Protocols.Alternating_bit.R rr ->
      check Alcotest.(list int) "delivered twice" [ 10; 10 ]
        rr.Protocols.Alternating_bit.delivered
  | _ -> fail "receiver shape"

(* The checkers rediscover a classic result: the alternating-bit
   protocol is only correct over FIFO channels.  Over our unordered
   network a retransmitted frame can arrive after the bit has wrapped
   around and be delivered again — B-DFS finds that genuine design
   limitation in the UNMODIFIED protocol. *)
let test_abp_needs_fifo () =
  let module G = Mc_global.Bdfs.Make (Abp) in
  let o =
    G.run G.default_config ~invariant:Abp.prefix_delivery (init (module Abp))
  in
  (match o.violation with
  | Some v ->
      (* the witness must use a retransmission: the flaw needs two
         copies of a frame in flight *)
      check Alcotest.bool "witness retransmits" true
        (List.exists
           (function
             | Dsm.Trace.Execute (_, Protocols.Alternating_bit.Retransmit) ->
                 true
             | _ -> false)
           v.trace)
  | None -> fail "reordering flaw not found");
  (* without retransmissions there is never a second copy: safe *)
  let module Abp_nr = Protocols.Alternating_bit.Make (struct
    let data = [ 10; 20 ]
    let max_retransmits = 0
    let bug = Protocols.Alternating_bit.No_bug
  end) in
  let module Gnr = Mc_global.Bdfs.Make (Abp_nr) in
  let o =
    Gnr.run Gnr.default_config ~invariant:Abp_nr.prefix_delivery
      (init (module Abp_nr))
  in
  check Alcotest.bool "safe without retransmission" true (o.violation = None)

module Fifo_abp = Protocols.Fifo.Make (Abp)
module Fifo_abp_bug = Protocols.Fifo.Make (Abp_bug)

let test_abp_fifo_safe () =
  (* under FIFO channels the correct protocol is safe, retransmissions
     and all — both checkers agree *)
  let module G = Mc_global.Bdfs.Make (Fifo_abp) in
  let inv = Fifo_abp.lift_invariant Abp.prefix_delivery in
  let o = G.run G.default_config ~invariant:inv (init (module Fifo_abp)) in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "safe under FIFO" true (o.violation = None);
  let module L = Lmc.Checker.Make (Fifo_abp) in
  let r =
    L.run L.default_config ~strategy:L.General ~invariant:inv
      (init (module Fifo_abp))
  in
  check Alcotest.bool "LMC agrees" true (r.sound_violation = None)

let test_abp_fifo_bug_found_by_lmc () =
  (* under FIFO the retransmitted frame carries a fresh channel
     sequence number, so its content is distinct and default LMC sees
     the buggy double delivery too *)
  let module L = Lmc.Checker.Make (Fifo_abp_bug) in
  let inv = Fifo_abp_bug.lift_invariant Abp_bug.prefix_delivery in
  let r =
    L.run L.default_config ~strategy:L.General ~invariant:inv
      (init (module Fifo_abp_bug))
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.bool "duplication in the witness state" true
        (Dsm.Invariant.check inv v.system <> None)
  | None -> fail "LMC missed the ignore-bit bug under FIFO"

(* The headline of this file: the buggy duplication involves two
   deliveries of an identical frame.  The global checker (multiset
   network) finds it; default LMC cannot — its shared network holds one
   copy per content and the per-state history never re-executes it on a
   path (the paper's duplicate limit "set to zero").  Disabling the
   history recovers the bug. *)
let test_abp_bug_visibility () =
  let module G = Mc_global.Bdfs.Make (Abp_bug) in
  let o =
    G.run G.default_config ~invariant:Abp_bug.prefix_delivery
      (init (module Abp_bug))
  in
  check Alcotest.bool "global checker finds the duplication" true
    (o.violation <> None);
  let module L = Lmc.Checker.Make (Abp_bug) in
  let run cfg =
    (L.run cfg ~strategy:L.General ~invariant:Abp_bug.prefix_delivery
       (init (module Abp_bug)))
      .sound_violation
    <> None
  in
  check Alcotest.bool "default LMC misses it (documented limit)" false
    (run L.default_config);
  check Alcotest.bool "LMC without histories finds it" true
    (run { L.default_config with use_history = false })

let () =
  Alcotest.run "mutex_abp"
    [
      ( "mutex",
        [
          Alcotest.test_case "actions" `Quick test_mutex_actions;
          Alcotest.test_case "double-token assert" `Quick
            test_mutex_double_token_assert;
          Alcotest.test_case "safe" `Quick test_mutex_safe_global_and_lmc;
          Alcotest.test_case "bug found" `Quick test_mutex_bug_found;
        ] );
      ( "abp",
        [
          Alcotest.test_case "happy path" `Quick test_abp_happy_path;
          Alcotest.test_case "duplicate filtered" `Quick
            test_abp_duplicate_filtered;
          Alcotest.test_case "bug duplicates" `Quick test_abp_bug_duplicates;
          Alcotest.test_case "needs FIFO (classic)" `Quick test_abp_needs_fifo;
          Alcotest.test_case "safe under FIFO" `Quick test_abp_fifo_safe;
          Alcotest.test_case "FIFO bug found by LMC" `Quick
            test_abp_fifo_bug_found_by_lmc;
          Alcotest.test_case "bug visibility across checkers" `Quick
            test_abp_bug_visibility;
        ] );
    ]
