(* Tests for the a-posteriori soundness-verification engine. *)

let check = Alcotest.check
let fail = Alcotest.fail

let fp s = Dsm.Fingerprint.of_string s

(* Shorthand event builder. *)
let ev ?requires ?(produces = []) node label =
  {
    Lmc.Soundness.node;
    label = fp label;
    requires = Option.map fp requires;
    produces = List.map fp produces;
  }

let is_valid = function Lmc.Soundness.Valid _ -> true | _ -> false
let is_invalid = function Lmc.Soundness.Invalid -> true | _ -> false

(* ---------- sequence checker ---------- *)

let test_empty_sequences () =
  check Alcotest.bool "trivially valid" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] [| []; []; [] |]))

let test_local_only () =
  let seqs = [| [ ev 0 "a"; ev 0 "b" ]; [ ev 1 "c" ] |] in
  check Alcotest.bool "local events always schedulable" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_simple_send_receive () =
  let seqs =
    [| [ ev 0 "send" ~produces:[ "m" ] ]; [ ev 1 "recv" ~requires:"m" ] |]
  in
  check Alcotest.bool "producer before consumer" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_missing_producer () =
  let seqs = [| []; [ ev 1 "recv" ~requires:"ghost" ] |] in
  check Alcotest.bool "unproduced message rejected" true
    (is_invalid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_initial_net_supplies () =
  let seqs = [| []; [ ev 1 "recv" ~requires:"m" ] |] in
  check Alcotest.bool "initial net satisfies" true
    (is_valid (Lmc.Soundness.check ~initial_net:[ fp "m" ] seqs))

let test_multiplicity () =
  (* one production, two consumptions: invalid *)
  let seqs =
    [|
      [ ev 0 "send" ~produces:[ "m" ] ];
      [ ev 1 "r1" ~requires:"m" ];
      [ ev 2 "r2" ~requires:"m" ];
    |]
  in
  check Alcotest.bool "multiplicity respected" true
    (is_invalid (Lmc.Soundness.check ~initial_net:[] seqs));
  (* two productions satisfy both *)
  let seqs2 =
    [|
      [ ev 0 "send" ~produces:[ "m"; "m" ] ];
      [ ev 1 "r1" ~requires:"m" ];
      [ ev 2 "r2" ~requires:"m" ];
    |]
  in
  check Alcotest.bool "two copies two consumers" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] seqs2))

let test_loopback () =
  (* a node consumes a message it produced itself earlier *)
  let seqs =
    [| [ ev 0 "send" ~produces:[ "self" ]; ev 0 "recv" ~requires:"self" ] |]
  in
  check Alcotest.bool "loopback valid" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_ordering_constraint () =
  (* node 0's sequence consumes before it produces: only valid if some
     other node supplies the message — here nobody does. *)
  let seqs =
    [| [ ev 0 "recv" ~requires:"m"; ev 0 "send" ~produces:[ "m" ] ] |]
  in
  check Alcotest.bool "cannot consume before producing" true
    (is_invalid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_cross_dependency () =
  (* classic handshake: 0 sends req, 1 replies, 0 consumes reply *)
  let seqs =
    [|
      [ ev 0 "send" ~produces:[ "req" ]; ev 0 "recv" ~requires:"resp" ];
      [ ev 1 "serve" ~requires:"req" ~produces:[ "resp" ] ];
    |]
  in
  match Lmc.Soundness.check ~initial_net:[] seqs with
  | Lmc.Soundness.Valid order ->
      check Alcotest.int "all events scheduled" 3 (List.length order);
      (* the witness must be causally ordered *)
      let labels = List.map (fun (e : Lmc.Soundness.event) -> e.label) order in
      let pos l =
        let rec go i = function
          | [] -> -1
          | x :: rest -> if Dsm.Fingerprint.equal x l then i else go (i + 1) rest
        in
        go 0 labels
      in
      check Alcotest.bool "send before serve" true
        (pos (fp "send") < pos (fp "serve"));
      check Alcotest.bool "serve before recv" true
        (pos (fp "serve") < pos (fp "recv"))
  | _ -> fail "handshake should be valid"

let test_deadlock_cycle () =
  (* 0 waits for 1's message and vice versa: deadlocked, invalid *)
  let seqs =
    [|
      [ ev 0 "r0" ~requires:"m1"; ev 0 "s0" ~produces:[ "m0" ] ];
      [ ev 1 "r1" ~requires:"m0"; ev 1 "s1" ~produces:[ "m1" ] ];
    |]
  in
  check Alcotest.bool "circular wait invalid" true
    (is_invalid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_budget () =
  (* Many independent local events explode the interleaving count; with
     budget 1 the verdict must be Budget_exhausted, not a wrong answer.
     (Budget 1 cannot even finish scheduling one event chain.) *)
  let seqs =
    Array.init 4 (fun n -> List.init 5 (fun i -> ev n (Printf.sprintf "l%d_%d" n i)))
  in
  match Lmc.Soundness.check ~budget:1 ~initial_net:[] seqs with
  | Lmc.Soundness.Budget_exhausted -> ()
  | Lmc.Soundness.Valid _ -> fail "budget 1 cannot complete"
  | Lmc.Soundness.Invalid -> fail "must not prove invalidity under budget"

(* ---------- the primer example (§2) ---------- *)

let test_primer_invalid_state () =
  (* "----r": node 4 received the token, nobody sent anything. *)
  let seqs = [| []; []; []; []; [ ev 4 "recv" ~requires:"m14" ] |] in
  check Alcotest.bool "----r rejected" true
    (is_invalid (Lmc.Soundness.check ~initial_net:[] seqs))

let test_primer_valid_state () =
  (* "s---r" with the forwarding chain present in the sequences. *)
  let seqs =
    [|
      [ ev 0 "start" ~produces:[ "m01"; "m02" ] ];
      [ ev 1 "fwd" ~requires:"m01" ~produces:[ "m13"; "m14" ] ];
      [];
      [];
      [ ev 4 "recv" ~requires:"m14" ];
    |]
  in
  check Alcotest.bool "s---r valid" true
    (is_valid (Lmc.Soundness.check ~initial_net:[] seqs))

(* ---------- DAG checker ---------- *)

let graph ~root ~target edges = { Lmc.Soundness.root; target; edges }

let test_dag_trivial () =
  let graphs = [| graph ~root:0 ~target:0 [] |] in
  check Alcotest.bool "root=target valid" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_linear () =
  let graphs =
    [|
      graph ~root:0 ~target:2
        [ (0, ev 0 "a" ~produces:[ "m" ], 1); (1, ev 0 "b", 2) ];
      graph ~root:0 ~target:1 [ (0, ev 1 "c" ~requires:"m", 1) ];
    |]
  in
  check Alcotest.bool "linear chain valid" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_branch_selection () =
  (* Two paths to the target; only the one producing "m" lets node 1
     proceed.  The search must find the producing branch. *)
  let graphs =
    [|
      graph ~root:0 ~target:2
        [
          (0, ev 0 "silent", 1);
          (1, ev 0 "silent2", 2);
          (0, ev 0 "noisy" ~produces:[ "m" ], 3);
          (3, ev 0 "noisy2", 2);
        ];
      graph ~root:0 ~target:1 [ (0, ev 1 "recv" ~requires:"m", 1) ];
    |]
  in
  check Alcotest.bool "finds producing branch" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_unreachable_target () =
  (* target 5 has no incoming path from root *)
  let graphs = [| graph ~root:0 ~target:5 [ (0, ev 0 "a", 1) ] |] in
  check Alcotest.bool "unreachable target invalid" true
    (is_invalid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_must_consume_filter () =
  (* Every path to the target consumes "ghost"; nobody produces it.
     The feasibility filter must reject without search. *)
  let graphs =
    [|
      graph ~root:0 ~target:2
        [
          (0, ev 0 "a" ~requires:"ghost", 1);
          (1, ev 0 "b", 2);
          (0, ev 0 "c", 3);
          (3, ev 0 "d" ~requires:"ghost", 2);
        ];
    |]
  in
  check Alcotest.bool "must-consume filter rejects" true
    (is_invalid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_optional_consume_not_filtered () =
  (* One path avoids "ghost": must stay valid. *)
  let graphs =
    [|
      graph ~root:0 ~target:2
        [
          (0, ev 0 "a" ~requires:"ghost", 1);
          (1, ev 0 "b", 2);
          (0, ev 0 "c", 3);
          (3, ev 0 "d", 2);
        ];
    |]
  in
  check Alcotest.bool "alternative path found" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_cycle_tolerated () =
  (* A cycle 1 <-> 2 plus a proper path to the target. *)
  let graphs =
    [|
      graph ~root:0 ~target:3
        [
          (0, ev 0 "a", 1);
          (1, ev 0 "b", 2);
          (2, ev 0 "back", 1);
          (2, ev 0 "done", 3);
        ];
    |]
  in
  check Alcotest.bool "cycle does not loop forever" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let test_dag_initial_net () =
  let graphs =
    [| graph ~root:0 ~target:1 [ (0, ev 0 "r" ~requires:"m", 1) ] |]
  in
  check Alcotest.bool "without net invalid" true
    (is_invalid (Lmc.Soundness.check_dag ~initial_net:[] graphs));
  check Alcotest.bool "with net valid" true
    (is_valid (Lmc.Soundness.check_dag ~initial_net:[ fp "m" ] graphs))

(* ---------- property: projections of real runs are valid ---------- *)

(* Generate a random valid run: a sequence of events where each event
   either is local or consumes a previously produced, not yet consumed
   message addressed to its node; some events produce messages to
   random nodes.  The per-node projections must always check Valid. *)
let gen_valid_run =
  let open QCheck.Gen in
  let num_nodes = 3 in
  let* steps = int_range 1 14 in
  let rec build i pending acc seed =
    if i >= steps then return (List.rev acc)
    else
      let* node = int_range 0 (num_nodes - 1) in
      let* produce_count = int_range 0 2 in
      let label = Printf.sprintf "e%d" i in
      let* produced_dsts =
        flatten_l (List.init produce_count (fun _ -> int_range 0 (num_nodes - 1)))
      in
      let produced =
        List.mapi (fun j dst -> (dst, Printf.sprintf "m%d_%d_%d" seed i j)) produced_dsts
      in
      let deliverable = List.filter (fun (dst, _) -> dst = node) pending in
      let* consume =
        match deliverable with
        | [] -> return None
        | l ->
            let* flip = bool in
            if flip then
              let* k = int_range 0 (List.length l - 1) in
              return (Some (List.nth l k))
            else return None
      in
      let event =
        ev node label
          ?requires:(Option.map snd consume)
          ~produces:(List.map snd produced)
      in
      let pending =
        let without =
          match consume with
          | Some c -> List.filter (fun x -> x != c) pending
          | None -> pending
        in
        produced @ without
      in
      build (i + 1) pending (event :: acc) seed
  in
  let* seed = int_range 0 10_000 in
  build 0 [] [] seed

let prop_valid_run_projections =
  QCheck.Test.make ~count:300 ~name:"per-node projections of a real run verify"
    (QCheck.make gen_valid_run)
    (fun events ->
      let seqs =
        Array.init 3 (fun n ->
            List.filter (fun (e : Lmc.Soundness.event) -> e.node = n) events)
      in
      is_valid (Lmc.Soundness.check ~initial_net:[] seqs))

let prop_valid_run_projections_dag =
  QCheck.Test.make ~count:300
    ~name:"linearised DAGs of a real run verify (check_dag)"
    (QCheck.make gen_valid_run)
    (fun events ->
      let graphs =
        Array.init 3 (fun n ->
            let seq =
              List.filter (fun (e : Lmc.Soundness.event) -> e.node = n) events
            in
            let arr = Array.of_list seq in
            {
              Lmc.Soundness.root = 0;
              target = Array.length arr;
              edges = List.init (Array.length arr) (fun i -> (i, arr.(i), i + 1));
            })
      in
      is_valid (Lmc.Soundness.check_dag ~initial_net:[] graphs))

let prop_ghost_requirement_invalid =
  QCheck.Test.make ~count:300 ~name:"appending a ghost consumption invalidates"
    (QCheck.make gen_valid_run)
    (fun events ->
      let poisoned =
        events @ [ ev 0 "ghost-recv" ~requires:"never-produced-anywhere" ]
      in
      let seqs =
        Array.init 3 (fun n ->
            List.filter (fun (e : Lmc.Soundness.event) -> e.node = n) poisoned)
      in
      is_invalid (Lmc.Soundness.check ~initial_net:[] seqs))

(* ---------- Combination ---------- *)

let test_combination_product () =
  let seen = ref [] in
  let r =
    Lmc.Combination.iter
      [| [| 1; 2 |]; [| 10 |]; [| 100; 200 |] |]
      (fun tuple ->
        seen := Array.to_list tuple :: !seen;
        `Continue)
  in
  check Alcotest.bool "completed" true (r = `Done);
  check
    Alcotest.(list (list int))
    "all tuples in order"
    [ [ 1; 10; 100 ]; [ 1; 10; 200 ]; [ 2; 10; 100 ]; [ 2; 10; 200 ] ]
    (List.rev !seen)

let test_combination_stop () =
  let count = ref 0 in
  let r =
    Lmc.Combination.iter
      [| [| 1; 2; 3 |]; [| 1; 2; 3 |] |]
      (fun _ ->
        incr count;
        if !count = 4 then `Stop else `Continue)
  in
  check Alcotest.bool "stopped" true (r = `Stopped);
  check Alcotest.int "early exit" 4 !count

let test_combination_empty () =
  let count = ref 0 in
  let r =
    Lmc.Combination.iter
      [| [| 1 |]; [||]; [| 2 |] |]
      (fun _ ->
        incr count;
        `Continue)
  in
  check Alcotest.bool "empty axis yields nothing" true (r = `Done);
  check Alcotest.int "no tuples" 0 !count;
  let r0 = Lmc.Combination.iter [||] (fun _ -> `Continue) in
  check Alcotest.bool "no axes yields nothing" true (r0 = `Done)

let test_combination_cardinal () =
  check Alcotest.int "2*1*3" 6
    (Lmc.Combination.cardinal [| [| 1; 2 |]; [| 0 |]; [| 1; 2; 3 |] |]);
  check Alcotest.int "with empty axis" 0
    (Lmc.Combination.cardinal [| [| 1; 2 |]; [||] |])

let test_combination_buffer_reuse () =
  (* the callback tuple is reused: retained copies must be explicit *)
  let first = ref None in
  ignore
    (Lmc.Combination.iter
       [| [| 1; 2 |] |]
       (fun tuple ->
         (match !first with
         | None -> first := Some tuple
         | Some t ->
             check Alcotest.bool "same buffer" true (t == tuple))
         ;
         `Continue))

let () =
  Alcotest.run "soundness"
    [
      ( "sequences",
        [
          Alcotest.test_case "empty" `Quick test_empty_sequences;
          Alcotest.test_case "local only" `Quick test_local_only;
          Alcotest.test_case "send/receive" `Quick test_simple_send_receive;
          Alcotest.test_case "missing producer" `Quick test_missing_producer;
          Alcotest.test_case "initial net" `Quick test_initial_net_supplies;
          Alcotest.test_case "multiplicity" `Quick test_multiplicity;
          Alcotest.test_case "loopback" `Quick test_loopback;
          Alcotest.test_case "ordering" `Quick test_ordering_constraint;
          Alcotest.test_case "cross dependency" `Quick test_cross_dependency;
          Alcotest.test_case "deadlock" `Quick test_deadlock_cycle;
          Alcotest.test_case "budget" `Quick test_budget;
        ] );
      ( "primer",
        [
          Alcotest.test_case "----r invalid" `Quick test_primer_invalid_state;
          Alcotest.test_case "s---r valid" `Quick test_primer_valid_state;
        ] );
      ( "dag",
        [
          Alcotest.test_case "trivial" `Quick test_dag_trivial;
          Alcotest.test_case "linear" `Quick test_dag_linear;
          Alcotest.test_case "branch selection" `Quick test_dag_branch_selection;
          Alcotest.test_case "unreachable target" `Quick
            test_dag_unreachable_target;
          Alcotest.test_case "must-consume filter" `Quick
            test_dag_must_consume_filter;
          Alcotest.test_case "optional consume" `Quick
            test_dag_optional_consume_not_filtered;
          Alcotest.test_case "cycle" `Quick test_dag_cycle_tolerated;
          Alcotest.test_case "initial net" `Quick test_dag_initial_net;
        ] );
      ( "combination",
        [
          Alcotest.test_case "product" `Quick test_combination_product;
          Alcotest.test_case "stop" `Quick test_combination_stop;
          Alcotest.test_case "empty" `Quick test_combination_empty;
          Alcotest.test_case "cardinal" `Quick test_combination_cardinal;
          Alcotest.test_case "buffer reuse" `Quick
            test_combination_buffer_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_valid_run_projections;
            prop_valid_run_projections_dag;
            prop_ghost_requirement_invalid;
          ] );
    ]
