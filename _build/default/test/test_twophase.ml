(* Tests for two-phase commit. *)

let check = Alcotest.check
let fail = Alcotest.fail

module TPC = Protocols.Twophase.Make (struct
  let num_nodes = 4
  let no_voters = []
  let bug = Protocols.Twophase.No_bug
end)

module TPC_no = Protocols.Twophase.Make (struct
  let num_nodes = 4
  let no_voters = [ 2 ]
  let bug = Protocols.Twophase.No_bug
end)

module TPC_bug = Protocols.Twophase.Make (struct
  let num_nodes = 4
  let no_voters = [ 2 ]
  let bug = Protocols.Twophase.Commit_on_majority
end)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

(* ---------- handlers ---------- *)

let test_begin () =
  let s = TPC.initial 0 in
  check Alcotest.int "begin enabled" 1
    (List.length (TPC.enabled_actions ~self:0 s));
  let s', out = TPC.handle_action ~self:0 s () in
  check Alcotest.bool "preparing" true
    (s'.Protocols.Twophase.coord = Protocols.Twophase.C_preparing);
  check Alcotest.int "prepare to each participant" 3 (List.length out);
  check Alcotest.int "no second begin" 0
    (List.length (TPC.enabled_actions ~self:0 s'));
  check Alcotest.int "participants have no actions" 0
    (List.length (TPC.enabled_actions ~self:1 (TPC.initial 1)))

let test_participant_votes () =
  let s = TPC.initial 1 in
  let s', out = TPC.handle_message ~self:1 s (env ~src:0 ~dst:1 Protocols.Twophase.Prepare) in
  check Alcotest.bool "prepared" true
    (s'.Protocols.Twophase.part = Protocols.Twophase.P_prepared);
  (match out with
  | [ e ] when e.Dsm.Envelope.payload = Protocols.Twophase.Vote true -> ()
  | _ -> fail "expected a yes vote");
  (* a no-voter aborts immediately *)
  let s2 = TPC_no.initial 2 in
  let s2', out2 =
    TPC_no.handle_message ~self:2 s2 (env ~src:0 ~dst:2 Protocols.Twophase.Prepare)
  in
  check Alcotest.bool "aborted" true
    (s2'.Protocols.Twophase.part = Protocols.Twophase.P_aborted);
  match out2 with
  | [ e ] when e.Dsm.Envelope.payload = Protocols.Twophase.Vote false -> ()
  | _ -> fail "expected a no vote"

let test_coordinator_decides () =
  let s, _ = TPC.handle_action ~self:0 (TPC.initial 0) () in
  let vote src v st =
    TPC.handle_message ~self:0 st (env ~src ~dst:0 (Protocols.Twophase.Vote v))
  in
  let s, o1 = vote 1 true s in
  check Alcotest.int "no decision yet" 0 (List.length o1);
  let s, o2 = vote 2 true s in
  check Alcotest.int "still undecided" 0 (List.length o2);
  let s, o3 = vote 3 true s in
  check Alcotest.bool "committed" true
    (s.Protocols.Twophase.coord = Protocols.Twophase.C_committed);
  check Alcotest.int "commit broadcast" 3 (List.length o3)

let test_coordinator_aborts_on_no () =
  let module P = TPC_no in
  let s, _ = P.handle_action ~self:0 (P.initial 0) () in
  let s, out =
    P.handle_message ~self:0 s (env ~src:2 ~dst:0 (Protocols.Twophase.Vote false))
  in
  check Alcotest.bool "aborted" true
    (s.Protocols.Twophase.coord = Protocols.Twophase.C_aborted);
  check Alcotest.int "abort broadcast" 3 (List.length out);
  (* later yes votes are ignored *)
  let s', out' =
    P.handle_message ~self:0 s (env ~src:1 ~dst:0 (Protocols.Twophase.Vote true))
  in
  check Alcotest.bool "decision final" true (s = s');
  check Alcotest.int "silent" 0 (List.length out')

let test_majority_bug_decides_early () =
  let module P = TPC_bug in
  let s, _ = P.handle_action ~self:0 (P.initial 0) () in
  let s, _ =
    P.handle_message ~self:0 s (env ~src:1 ~dst:0 (Protocols.Twophase.Vote true))
  in
  let s, out =
    P.handle_message ~self:0 s (env ~src:3 ~dst:0 (Protocols.Twophase.Vote true))
  in
  check Alcotest.bool "committed on majority" true
    (s.Protocols.Twophase.coord = Protocols.Twophase.C_committed);
  check Alcotest.int "commit broadcast" 3 (List.length out)

let test_participant_decision_transitions () =
  let prepared =
    fst
      (TPC.handle_message ~self:1 (TPC.initial 1)
         (env ~src:0 ~dst:1 Protocols.Twophase.Prepare))
  in
  let committed, _ =
    TPC.handle_message ~self:1 prepared (env ~src:0 ~dst:1 Protocols.Twophase.Commit)
  in
  check Alcotest.bool "committed" true
    (committed.Protocols.Twophase.part = Protocols.Twophase.P_committed);
  let aborted, _ =
    TPC.handle_message ~self:1 prepared (env ~src:0 ~dst:1 Protocols.Twophase.Abort)
  in
  check Alcotest.bool "aborted" true
    (aborted.Protocols.Twophase.part = Protocols.Twophase.P_aborted);
  (* abort after commit is impossible in any run *)
  (match
     TPC.handle_message ~self:1 committed (env ~src:0 ~dst:1 Protocols.Twophase.Abort)
   with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "abort after commit accepted");
  match
    TPC.handle_message ~self:1 (TPC.initial 1) (env ~src:0 ~dst:1 Protocols.Twophase.Commit)
  with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "commit before prepare accepted"

(* ---------- checking ---------- *)

let init (type s) (module P : Dsm.Protocol.S with type state = s) =
  Dsm.Protocol.initial_system (module P)

let test_correct_atomic_global () =
  let module G = Mc_global.Bdfs.Make (TPC) in
  let o = G.run G.default_config ~invariant:TPC.atomicity (init (module TPC)) in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "atomicity holds" true (o.violation = None);
  let module Gn = Mc_global.Bdfs.Make (TPC_no) in
  let o =
    Gn.run Gn.default_config ~invariant:TPC_no.atomicity (init (module TPC_no))
  in
  check Alcotest.bool "atomicity holds with a no-voter" true
    (o.violation = None)

let test_buggy_found_global () =
  let module G = Mc_global.Bdfs.Make (TPC_bug) in
  let o =
    G.run G.default_config ~invariant:TPC_bug.atomicity (init (module TPC_bug))
  in
  match o.violation with
  | Some v ->
      check Alcotest.bool "trace non-empty" true (v.trace <> [])
  | None -> fail "majority bug not found by B-DFS"

let test_buggy_found_lmc_opt () =
  let module L = Lmc.Checker.Make (TPC_bug) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = TPC_bug.abstraction; conflict = TPC_bug.conflicts })
      ~invariant:TPC_bug.atomicity (init (module TPC_bug))
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.bool "witness non-empty" true (v.schedule <> []);
      check Alcotest.bool "violating state reported" true
        (Dsm.Invariant.check TPC_bug.atomicity v.system <> None)
  | None -> fail "majority bug not confirmed by LMC-OPT"

let test_correct_quiet_lmc_opt () =
  let module L = Lmc.Checker.Make (TPC_no) in
  let r =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = TPC_no.abstraction; conflict = TPC_no.conflicts })
      ~invariant:TPC_no.atomicity (init (module TPC_no))
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.bool "no sound violation" true (r.sound_violation = None)

let prop_no_voter_sets_agree =
  (* any set of no-voters: correct 2PC stays atomic (B-DFS exhaustive) *)
  QCheck.Test.make ~count:16 ~name:"correct 2PC atomic for any no-voter set"
    QCheck.(list_of_size (Gen.int_range 0 3) (int_range 1 3))
    (fun voters ->
      let voters = List.sort_uniq compare voters in
      let module P = Protocols.Twophase.Make (struct
        let num_nodes = 4
        let no_voters = voters
        let bug = Protocols.Twophase.No_bug
      end) in
      let module G = Mc_global.Bdfs.Make (P) in
      let o =
        G.run G.default_config ~invariant:P.atomicity
          (Dsm.Protocol.initial_system (module P))
      in
      o.completed && o.violation = None)

let () =
  Alcotest.run "twophase"
    [
      ( "handlers",
        [
          Alcotest.test_case "begin" `Quick test_begin;
          Alcotest.test_case "votes" `Quick test_participant_votes;
          Alcotest.test_case "unanimous commit" `Quick test_coordinator_decides;
          Alcotest.test_case "abort on no" `Quick test_coordinator_aborts_on_no;
          Alcotest.test_case "majority bug" `Quick
            test_majority_bug_decides_early;
          Alcotest.test_case "participant transitions" `Quick
            test_participant_decision_transitions;
        ] );
      ( "checking",
        [
          Alcotest.test_case "correct atomic (global)" `Quick
            test_correct_atomic_global;
          Alcotest.test_case "bug found (global)" `Quick test_buggy_found_global;
          Alcotest.test_case "bug found (LMC-OPT)" `Quick
            test_buggy_found_lmc_opt;
          Alcotest.test_case "correct quiet (LMC-OPT)" `Quick
            test_correct_quiet_lmc_opt;
          QCheck_alcotest.to_alcotest prop_no_voter_sets_agree;
        ] );
    ]
