(* Tests for the Paxos engine and its checkable wrapper (§5). *)

let check = Alcotest.check
let fail = Alcotest.fail

module Core = Protocols.Paxos_core

let n3 = 3

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

(* drive a core state through a message, ignoring outputs *)
let feed ?(bug = Core.No_bug) ~self state ~src msg =
  fst (Core.handle ~n:n3 ~self ~bug state ~src msg)

(* ---------- Paxos_core units ---------- *)

let test_empty_state () =
  check Alcotest.int "no attempts" 0 (Core.attempts Core.empty 0);
  check Alcotest.(option int) "nothing chosen" None (Core.chosen Core.empty 0);
  check Alcotest.bool "untouched" true (Core.is_untouched Core.empty 0);
  check Alcotest.int "nothing promised" 0 (Core.promised Core.empty 0)

let test_propose_broadcasts_prepare () =
  let state, out = Core.propose ~n:n3 ~self:0 Core.empty ~idx:0 ~v:1 in
  check Alcotest.int "three prepares" 3 (List.length out);
  check Alcotest.int "attempt recorded" 1 (Core.attempts state 0);
  check Alcotest.bool "touched now" false (Core.is_untouched state 0);
  List.iter
    (fun (_, msg) ->
      match msg with
      | Core.Prepare { idx = 0; rnd } ->
          (* k=1, n=3, self=0: rnd = 1*3+0+1 = 4 *)
          check Alcotest.int "round" 4 rnd
      | _ -> fail "expected Prepare")
    out

let test_round_uniqueness () =
  let rnd_of self =
    let _, out = Core.propose ~n:n3 ~self Core.empty ~idx:0 ~v:1 in
    match out with
    | (_, Core.Prepare { rnd; _ }) :: _ -> rnd
    | _ -> fail "no prepare"
  in
  let rounds = List.map rnd_of [ 0; 1; 2 ] in
  check Alcotest.int "distinct rounds" 3
    (List.length (List.sort_uniq compare rounds))

let test_next_attempt_escalates_over_promised () =
  (* an acceptor that promised round 7 must re-propose above it *)
  let state = feed ~self:0 Core.empty ~src:2 (Core.Prepare { idx = 0; rnd = 7 }) in
  check Alcotest.int "promised" 7 (Core.promised state 0);
  let k = Core.next_attempt ~n:n3 state ~idx:0 in
  check Alcotest.bool "round above promise" true ((k * n3) + 1 > 7)

let test_prepare_promise () =
  let state, out =
    Core.handle ~n:n3 ~self:1 ~bug:Core.No_bug Core.empty ~src:0
      (Core.Prepare { idx = 0; rnd = 4 })
  in
  check Alcotest.int "promised" 4 (Core.promised state 0);
  (match out with
  | [ (0, Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None }) ] -> ()
  | _ -> fail "expected a fresh Promise to the proposer");
  (* a stale Prepare is ignored *)
  let state', out' =
    Core.handle ~n:n3 ~self:1 ~bug:Core.No_bug state ~src:2
      (Core.Prepare { idx = 0; rnd = 3 })
  in
  check Alcotest.bool "state unchanged" true (state = state');
  check Alcotest.int "no reply" 0 (List.length out')

let test_promise_majority_triggers_accept () =
  let state, _ = Core.propose ~n:n3 ~self:0 Core.empty ~idx:0 ~v:1 in
  let state, out1 =
    Core.handle ~n:n3 ~self:0 ~bug:Core.No_bug state ~src:0
      (Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None })
  in
  check Alcotest.int "one promise: no accept yet" 0 (List.length out1);
  let _, out2 =
    Core.handle ~n:n3 ~self:0 ~bug:Core.No_bug state ~src:1
      (Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None })
  in
  check Alcotest.int "majority: accepts broadcast" 3 (List.length out2);
  match out2 with
  | (_, Core.Accept { v; rnd = 4; idx = 0 }) :: _ ->
      check Alcotest.int "own value chosen" 1 v
  | _ -> fail "expected Accept"

let test_pick_value_highest_round_wins () =
  (* correct rule: the accepted value with the highest vrnd is adopted *)
  let state, _ = Core.propose ~n:n3 ~self:0 Core.empty ~idx:0 ~v:1 in
  let state =
    feed ~self:0 state ~src:1
      (Core.Promise { idx = 0; rnd = 4; vrnd = 2; vval = Some 9 })
  in
  let _, out =
    Core.handle ~n:n3 ~self:0 ~bug:Core.No_bug state ~src:2
      (Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None })
  in
  match out with
  | (_, Core.Accept { v; _ }) :: _ ->
      check Alcotest.int "previously accepted value adopted" 9 v
  | _ -> fail "expected Accept"

let test_pick_value_bug_last_response () =
  (* the §5.5 bug: the LAST response wins, here carrying no value, so
     the proposer pushes its own value and overrides value 9 *)
  let state, _ = Core.propose ~n:n3 ~self:0 Core.empty ~idx:0 ~v:1 in
  let state =
    feed ~bug:Core.Last_response_wins ~self:0 state ~src:1
      (Core.Promise { idx = 0; rnd = 4; vrnd = 2; vval = Some 9 })
  in
  let _, out =
    Core.handle ~n:n3 ~self:0 ~bug:Core.Last_response_wins state ~src:2
      (Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None })
  in
  match out with
  | (_, Core.Accept { v; _ }) :: _ ->
      check Alcotest.int "own value wrongly used" 1 v
  | _ -> fail "expected Accept"

let test_bug_order_dependence () =
  (* same promises, other order: last response carries 9, bug is benign *)
  let state, _ = Core.propose ~n:n3 ~self:0 Core.empty ~idx:0 ~v:1 in
  let state =
    feed ~bug:Core.Last_response_wins ~self:0 state ~src:2
      (Core.Promise { idx = 0; rnd = 4; vrnd = 0; vval = None })
  in
  let _, out =
    Core.handle ~n:n3 ~self:0 ~bug:Core.Last_response_wins state ~src:1
      (Core.Promise { idx = 0; rnd = 4; vrnd = 2; vval = Some 9 })
  in
  match out with
  | (_, Core.Accept { v; _ }) :: _ ->
      check Alcotest.int "benign order" 9 v
  | _ -> fail "expected Accept"

let test_accept_learn_chosen () =
  let state = feed ~self:1 Core.empty ~src:0 (Core.Accept { idx = 0; rnd = 4; v = 7 }) in
  (match Core.has_accepted state 0 with
  | Some (4, 7) -> ()
  | _ -> fail "acceptor did not record");
  let state = feed ~self:1 state ~src:0 (Core.Learn { idx = 0; rnd = 4; v = 7 }) in
  check Alcotest.(option int) "one learn: not chosen" None (Core.chosen state 0);
  let state = feed ~self:1 state ~src:2 (Core.Learn { idx = 0; rnd = 4; v = 7 }) in
  check Alcotest.(option int) "majority learns: chosen" (Some 7)
    (Core.chosen state 0);
  check
    Alcotest.(list (pair int int))
    "chosen_all" [ (0, 7) ] (Core.chosen_all state)

let test_duplicate_learn_not_double_counted () =
  let state = feed ~self:1 Core.empty ~src:0 (Core.Learn { idx = 0; rnd = 4; v = 7 }) in
  let state = feed ~self:1 state ~src:0 (Core.Learn { idx = 0; rnd = 4; v = 7 }) in
  check Alcotest.(option int) "same acceptor twice is one vote" None
    (Core.chosen state 0)

let test_stale_accept_ignored () =
  let state = feed ~self:1 Core.empty ~src:0 (Core.Prepare { idx = 0; rnd = 9 }) in
  let state', out =
    Core.handle ~n:n3 ~self:1 ~bug:Core.No_bug state ~src:0
      (Core.Accept { idx = 0; rnd = 4; v = 7 })
  in
  check Alcotest.bool "stale accept dropped" true (state = state');
  check Alcotest.int "no learns" 0 (List.length out)

let test_local_assert_conflicting_learn () =
  let state = feed ~self:1 Core.empty ~src:0 (Core.Learn { idx = 0; rnd = 4; v = 7 }) in
  match feed ~self:1 state ~src:2 (Core.Learn { idx = 0; rnd = 4; v = 8 }) with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "conflicting learn accepted"

let test_local_assert_conflicting_accept () =
  let state = feed ~self:1 Core.empty ~src:0 (Core.Accept { idx = 0; rnd = 4; v = 7 }) in
  match feed ~self:1 state ~src:0 (Core.Accept { idx = 0; rnd = 4; v = 8 }) with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "conflicting accept accepted"

let test_disagreement () =
  let a = feed ~self:0 Core.empty ~src:1 (Core.Learn { idx = 0; rnd = 4; v = 1 }) in
  let a = feed ~self:0 a ~src:2 (Core.Learn { idx = 0; rnd = 4; v = 1 }) in
  let b = feed ~self:1 Core.empty ~src:1 (Core.Learn { idx = 0; rnd = 7; v = 2 }) in
  let b = feed ~self:1 b ~src:2 (Core.Learn { idx = 0; rnd = 7; v = 2 }) in
  check Alcotest.bool "disagree" true (Core.disagreement a b <> None);
  check Alcotest.bool "self-agreement" true (Core.disagreement a a = None);
  check Alcotest.bool "empty agrees" true
    (Core.disagreement Core.empty a = None)

let test_multi_index_independence () =
  let state, _ = Core.propose ~n:n3 ~self:0 Core.empty ~idx:5 ~v:1 in
  check Alcotest.int "idx 5 attempted" 1 (Core.attempts state 5);
  check Alcotest.int "idx 0 untouched" 0 (Core.attempts state 0);
  check Alcotest.bool "idx 0 still untouched" true (Core.is_untouched state 0)

(* ---------- the checkable protocol ---------- *)

module Paxos = Protocols.Paxos.Make (Protocols.Paxos.Bench_config)
module G_paxos = Mc_global.Bdfs.Make (Paxos)
module L_paxos = Lmc.Checker.Make (Paxos)

let paxos_init () = Dsm.Protocol.initial_system (module Paxos)

let opt_strategy =
  L_paxos.Invariant_specific
    { abstract = Paxos.abstraction; conflict = Paxos.conflicts }

let test_bench_space_depth_22 () =
  let o = G_paxos.run G_paxos.default_config ~invariant:Paxos.safety (paxos_init ()) in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "safety holds" true (o.violation = None);
  (* 3 inits + 1 propose + 3 prepares + 3 promises + 3 accepts + 9
     learns = 22 events (§5.1) *)
  check Alcotest.int "depth 22" 22 o.stats.max_depth_reached

let test_lmc_gen_explores_bench_space () =
  let r =
    L_paxos.run L_paxos.default_config ~strategy:L_paxos.General
      ~invariant:Paxos.safety (paxos_init ())
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.int "no preliminary violations" 0 r.preliminary_violations;
  check Alcotest.bool "no bug" true (r.sound_violation = None);
  check Alcotest.bool "creates system states" true (r.system_states_created > 0)

let test_lmc_opt_zero_system_states () =
  (* Fig. 11: "The number of system states explored by LMC-OPT is zero" *)
  let r =
    L_paxos.run L_paxos.default_config ~strategy:opt_strategy
      ~invariant:Paxos.safety (paxos_init ())
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.int "zero system states" 0 r.system_states_created;
  check Alcotest.bool "no bug" true (r.sound_violation = None)

let test_lmc_vs_global_transition_reduction () =
  let g = G_paxos.run G_paxos.default_config ~invariant:Paxos.safety (paxos_init ()) in
  let r =
    L_paxos.run L_paxos.default_config ~strategy:opt_strategy
      ~invariant:Paxos.safety (paxos_init ())
  in
  (* §5.1 reports ~132x; our leaner substrate gives tens of x *)
  check Alcotest.bool "at least 10x fewer transitions" true
    (g.stats.transitions > 10 * r.transitions)

let test_driver_proposes_once () =
  let s = Paxos.initial 0 in
  check Alcotest.(list (of_pp Paxos.pp_action)) "init first"
    [ Protocols.Paxos.Init ]
    (Paxos.enabled_actions ~self:0 s);
  let s, _ = Paxos.handle_action ~self:0 s Protocols.Paxos.Init in
  (match Paxos.enabled_actions ~self:0 s with
  | [ Protocols.Paxos.Propose { idx = 0 } ] -> ()
  | _ -> fail "proposer should propose idx 0");
  let s, _ =
    Paxos.handle_action ~self:0 s (Protocols.Paxos.Propose { idx = 0 })
  in
  check Alcotest.int "no second proposal" 0
    (List.length (Paxos.enabled_actions ~self:0 s));
  (* non-proposers never propose *)
  let s1 = Paxos.initial 1 in
  let s1, _ = Paxos.handle_action ~self:1 s1 Protocols.Paxos.Init in
  check Alcotest.int "non-proposer idle" 0
    (List.length (Paxos.enabled_actions ~self:1 s1))

let test_message_before_boot_asserts () =
  let s = Paxos.initial 1 in
  match
    Paxos.handle_message ~self:1 s
      (env ~src:0 ~dst:1 (Core.Prepare { idx = 0; rnd = 4 }))
  with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "unbooted node accepted a message"

(* ---------- the §5.5 bug, offline from a crafted snapshot ---------- *)

module Buggy = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 4
  let fresh_proposals = false
  let bug = Core.Last_response_wins
end)

module L_buggy = Lmc.Checker.Make (Buggy)

(* Build the paper's snapshot: N1 proposed and chose v2 for index 0;
   N2 accepted it but never learned; N0 saw nothing. *)
let crafted_snapshot () =
  let states = Array.init 3 (fun n -> Buggy.initial n) in
  let pool = ref [] in
  let act n a =
    let s', out = Buggy.handle_action ~self:n states.(n) a in
    states.(n) <- s';
    pool := !pool @ out
  in
  let deliver ~src ~dst =
    match
      List.partition
        (fun (e : _ Dsm.Envelope.t) -> e.src = src && e.dst = dst)
        !pool
    with
    | e :: more, rest ->
        let s', out = Buggy.handle_message ~self:dst states.(dst) e in
        states.(dst) <- s';
        pool := more @ rest @ out
    | [], _ -> fail "scenario delivery missing"
  in
  act 0 Protocols.Paxos.Init;
  act 1 Protocols.Paxos.Init;
  act 2 Protocols.Paxos.Init;
  act 1 (Protocols.Paxos.Propose { idx = 0 });
  deliver ~src:1 ~dst:1;
  deliver ~src:1 ~dst:2;
  deliver ~src:1 ~dst:1;
  deliver ~src:2 ~dst:1;
  deliver ~src:1 ~dst:1;
  deliver ~src:1 ~dst:2;
  deliver ~src:1 ~dst:1;
  deliver ~src:2 ~dst:1;
  states

let test_bug_found_from_snapshot () =
  let snapshot = crafted_snapshot () in
  check Alcotest.(option int) "N1 chose v2" (Some 2)
    (Core.chosen snapshot.(1).Protocols.Paxos.core 0);
  check Alcotest.(option int) "N2 not chosen" None
    (Core.chosen snapshot.(2).Protocols.Paxos.core 0);
  let cfg =
    { L_buggy.default_config with
      time_limit = Some 60.0;
      local_action_bound = Some 1 }
  in
  let r =
    L_buggy.run cfg
      ~strategy:
        (L_buggy.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  match r.sound_violation with
  | None -> fail "§5.5 bug not found"
  | Some v ->
      check Alcotest.bool "witness non-empty" true (v.schedule <> []);
      check Alcotest.bool "many unsound combos were filtered" true
        (r.soundness_rejections > 0)

let test_correct_paxos_from_snapshot_safe () =
  (* same scenario without the bug: re-proposal must adopt v2 *)
  let module Fixed = Protocols.Paxos.Make (struct
    let num_nodes = 3
    let proposers = [ 0; 1; 2 ]
    let max_attempts = 2
    let max_index = 4
    let fresh_proposals = false
    let bug = Core.No_bug
  end) in
  let module L = Lmc.Checker.Make (Fixed) in
  (* Buggy.state and Fixed.state are both [Protocols.Paxos.paxos_state] *)
  let snapshot : Fixed.state array = crafted_snapshot () in
  let cfg =
    { L.default_config with time_limit = Some 60.0; local_action_bound = Some 1 }
  in
  let r =
    L.run cfg
      ~strategy:
        (L.Invariant_specific
           { abstract = Fixed.abstraction; conflict = Fixed.conflicts })
      ~invariant:Fixed.safety snapshot
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.bool "no sound violation in fixed Paxos" true
    (r.sound_violation = None)

(* The global checker agrees with LMC when started from the same
   snapshot (the two-proposal space from the initial state takes B-DFS
   minutes — the §5.2 scalability point, measured in the bench). *)
let test_global_finds_bug_from_snapshot () =
  let module G = Mc_global.Bdfs.Make (Buggy) in
  let cfg = { G.default_config with time_limit = Some 60.0 } in
  let o = G.run cfg ~invariant:Buggy.safety (crafted_snapshot ()) in
  check Alcotest.bool "B-DFS finds the bug" true (o.violation <> None)

let () =
  Alcotest.run "paxos"
    [
      ( "core",
        [
          Alcotest.test_case "empty" `Quick test_empty_state;
          Alcotest.test_case "propose" `Quick test_propose_broadcasts_prepare;
          Alcotest.test_case "round uniqueness" `Quick test_round_uniqueness;
          Alcotest.test_case "round escalation" `Quick
            test_next_attempt_escalates_over_promised;
          Alcotest.test_case "prepare/promise" `Quick test_prepare_promise;
          Alcotest.test_case "majority accept" `Quick
            test_promise_majority_triggers_accept;
          Alcotest.test_case "pick highest vrnd" `Quick
            test_pick_value_highest_round_wins;
          Alcotest.test_case "bug: last response" `Quick
            test_pick_value_bug_last_response;
          Alcotest.test_case "bug order dependence" `Quick
            test_bug_order_dependence;
          Alcotest.test_case "accept/learn/chosen" `Quick
            test_accept_learn_chosen;
          Alcotest.test_case "duplicate learns" `Quick
            test_duplicate_learn_not_double_counted;
          Alcotest.test_case "stale accept" `Quick test_stale_accept_ignored;
          Alcotest.test_case "assert: learn conflict" `Quick
            test_local_assert_conflicting_learn;
          Alcotest.test_case "assert: accept conflict" `Quick
            test_local_assert_conflicting_accept;
          Alcotest.test_case "disagreement" `Quick test_disagreement;
          Alcotest.test_case "multi-index" `Quick test_multi_index_independence;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "depth-22 space" `Quick test_bench_space_depth_22;
          Alcotest.test_case "LMC-GEN" `Quick test_lmc_gen_explores_bench_space;
          Alcotest.test_case "LMC-OPT zero system states" `Quick
            test_lmc_opt_zero_system_states;
          Alcotest.test_case "transition reduction" `Quick
            test_lmc_vs_global_transition_reduction;
          Alcotest.test_case "driver" `Quick test_driver_proposes_once;
          Alcotest.test_case "boot assert" `Quick
            test_message_before_boot_asserts;
        ] );
      ( "bug-5.5",
        [
          Alcotest.test_case "found from snapshot" `Slow
            test_bug_found_from_snapshot;
          Alcotest.test_case "fixed Paxos safe" `Slow
            test_correct_paxos_from_snapshot_safe;
          Alcotest.test_case "global from snapshot" `Slow
            test_global_finds_bug_from_snapshot;
        ] );
    ]
