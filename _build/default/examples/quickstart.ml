(* Quickstart: the paper's primer (§2) end to end.

   We model-check the five-node distributed tree of Fig. 2 twice:
   first with the classic global approach (B-DFS over global states,
   Fig. 3), then with the local approach (LMC, Fig. 4).  The run shows
   the numbers the primer walks through: the global state space versus
   the handful of system states LMC materialises, and the invalid
   system state "----r" being caught — and rejected — by soundness
   verification. *)

module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config)
module Global = Mc_global.Bdfs.Make (Tree)
module Local = Lmc.Checker.Make (Tree)

let pp_system ppf system =
  Array.iter (fun s -> Tree.pp_state ppf s) system

let () =
  let init = Dsm.Protocol.initial_system (module Tree) in
  let invariant = Tree.received_implies_sent in

  Format.printf "== Global model checking (B-DFS, Fig. 3) ==@.";
  let g = Global.run Global.default_config ~invariant init in
  Format.printf "  transitions executed : %d@." g.stats.transitions;
  Format.printf "  global states        : %d@." g.stats.global_states;
  Format.printf "  system states        : %d@." g.stats.system_states;
  Format.printf "  violations reported  : %s@."
    (match g.violation with None -> "none" | Some _ -> "yes");

  Format.printf "@.== Local model checking (LMC, Fig. 4) ==@.";
  let l =
    Local.run Local.default_config ~strategy:Local.General ~invariant init
  in
  Format.printf "  transitions executed : %d@." l.transitions;
  Format.printf "  node states stored   : %d (per node: %s)@."
    l.total_node_states
    (String.concat ","
       (Array.to_list (Array.map string_of_int l.node_states)));
  Format.printf "  shared network |I+|  : %d messages@." l.net_messages;
  Format.printf "  system states created: %d@." l.system_states_created;
  Format.printf "  preliminary violations: %d@." l.preliminary_violations;
  Format.printf "  rejected as unsound  : %d@." l.soundness_rejections;
  Format.printf "  sound violations     : %s@."
    (match l.sound_violation with None -> "none" | Some _ -> "yes");
  Format.printf
    "@.The invalid system state \"----r\" (target received before the origin \
     sent)@.is produced by combining node states, flagged as a preliminary \
     violation,@.and discarded by soundness verification — no false positive \
     reaches the user.@.";

  (* Show the four system states of Fig. 4 by replaying the valid runs. *)
  Format.printf "@.Valid system states of the primer:@.";
  List.iter
    (fun system -> Format.printf "  %a@." pp_system system)
    [
      Dsm.Protocol.initial_system (module Tree);
      (let s = Dsm.Protocol.initial_system (module Tree) in
       s.(0) <- Protocols.Tree.Sent;
       s);
      (let s = Dsm.Protocol.initial_system (module Tree) in
       s.(0) <- Protocols.Tree.Sent;
       s.(4) <- Protocols.Tree.Received;
       s);
    ]
