(* RandTree and its node-local invariant (§4.1).

   The paper cites RandTree's "children and siblings must be disjoint
   sets" as an invariant that decomposes into locally verifiable
   properties.  We model-check a 4-node overlay with a double-booking
   bug in the forwarding path of full nodes, first with the global
   checker and then with LMC, and show both find the same class of
   violation — LMC confirming it through soundness verification. *)

module Buggy = Protocols.Randtree.Make (struct
  let num_nodes = 4
  let max_children = 2
  let max_attempts = 1
  let bug = Protocols.Randtree.Double_bookkeeping
end)

module Correct = Protocols.Randtree.Make (struct
  let num_nodes = 4
  let max_children = 2
  let max_attempts = 1
  let bug = Protocols.Randtree.No_bug
end)

module Global_buggy = Mc_global.Bdfs.Make (Buggy)
module Global_correct = Mc_global.Bdfs.Make (Correct)
module Local_buggy = Lmc.Checker.Make (Buggy)
module Local_correct = Lmc.Checker.Make (Correct)

let () =
  Format.printf "== RandTree, 4 nodes, max 2 children per node ==@.@.";

  Format.printf "-- correct implementation --@.";
  let g =
    Global_correct.run Global_correct.default_config
      ~invariant:Correct.disjointness
      (Dsm.Protocol.initial_system (module Correct))
  in
  Format.printf "  B-DFS: %d states, violation: %s@." g.stats.global_states
    (match g.violation with None -> "none" | Some _ -> "YES");
  let l =
    Local_correct.run Local_correct.default_config
      ~strategy:Local_correct.General ~invariant:Correct.disjointness
      (Dsm.Protocol.initial_system (module Correct))
  in
  Format.printf "  LMC:   %d node states, %d preliminary, sound: %s@."
    l.total_node_states l.preliminary_violations
    (match l.sound_violation with None -> "none" | Some _ -> "YES");

  Format.printf "@.-- with the double-bookkeeping bug --@.";
  let g =
    Global_buggy.run Global_buggy.default_config ~invariant:Buggy.disjointness
      (Dsm.Protocol.initial_system (module Buggy))
  in
  (match g.violation with
  | Some v ->
      Format.printf "  B-DFS finds it at depth %d: %a@." v.depth
        Dsm.Invariant.pp_violation v.violation
  | None -> Format.printf "  B-DFS: no violation (unexpected)@.");
  let l =
    Local_buggy.run Local_buggy.default_config ~strategy:Local_buggy.General
      ~invariant:Buggy.disjointness
      (Dsm.Protocol.initial_system (module Buggy))
  in
  match l.sound_violation with
  | Some v ->
      Format.printf
        "  LMC confirms it (%d preliminary violations, %d rejected as \
         unsound):@.  %a@.  witness:@.%a"
        l.preliminary_violations l.soundness_rejections
        Dsm.Invariant.pp_violation v.violation
        (Dsm.Trace.pp ~pp_message:Buggy.pp_message ~pp_action:Buggy.pp_action)
        v.schedule
  | None -> Format.printf "  LMC: no sound violation (unexpected)@."
