(* Explore the §5.1 Paxos state space (three nodes, one proposal) with
   the three algorithms of the paper — B-DFS, LMC-GEN, LMC-OPT — and
   print the headline comparison: total transitions, states, and time.
   This is the state space behind Figs. 10-12. *)

module Paxos = Protocols.Paxos.Make (Protocols.Paxos.Bench_config)
module Global = Mc_global.Bdfs.Make (Paxos)
module Local = Lmc.Checker.Make (Paxos)

let () =
  let init = Dsm.Protocol.initial_system (module Paxos) in
  let invariant = Paxos.safety in

  Format.printf
    "State space: 3 nodes, node 0 proposes once (max depth 22 events)@.@.";

  Format.printf "-- B-DFS (global) --@.";
  let g = Global.run Global.default_config ~invariant init in
  Format.printf
    "  transitions=%d global-states=%d system-states=%d depth=%d time=%.3fs@."
    g.stats.transitions g.stats.global_states g.stats.system_states
    g.stats.max_depth_reached g.stats.elapsed;

  Format.printf "@.-- LMC-GEN (local, general system-state creation) --@.";
  let gen =
    Local.run Local.default_config ~strategy:Local.General ~invariant init
  in
  Format.printf
    "  transitions=%d node-states=%d system-states=%d prelim-violations=%d \
     time=%.3fs@."
    gen.transitions gen.total_node_states gen.system_states_created
    gen.preliminary_violations gen.elapsed;

  Format.printf "@.-- LMC-OPT (invariant-specific creation) --@.";
  let opt =
    Local.run Local.default_config
      ~strategy:
        (Local.Invariant_specific
           { abstract = Paxos.abstraction; conflict = Paxos.conflicts })
      ~invariant init
  in
  Format.printf
    "  transitions=%d node-states=%d system-states=%d prelim-violations=%d \
     time=%.3fs@."
    opt.transitions opt.total_node_states opt.system_states_created
    opt.preliminary_violations opt.elapsed;

  Format.printf "@.-- Summary --@.";
  Format.printf "  transition reduction  : %.0fx (paper: ~132x)@."
    (float_of_int g.stats.transitions /. float_of_int (max 1 gen.transitions));
  Format.printf "  LMC-GEN speedup       : %.0fx (paper: ~300x)@."
    (g.stats.elapsed /. max 1e-9 gen.elapsed);
  Format.printf "  LMC-OPT speedup       : %.0fx (paper: ~8000x)@."
    (g.stats.elapsed /. max 1e-9 opt.elapsed);
  Format.printf "  LMC-OPT system states : %d (paper: 0)@."
    opt.system_states_created
