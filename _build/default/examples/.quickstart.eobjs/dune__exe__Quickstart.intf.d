examples/quickstart.mli:
