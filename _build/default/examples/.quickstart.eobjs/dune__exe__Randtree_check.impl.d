examples/randtree_check.ml: Dsm Format Lmc Mc_global Protocols
