examples/onepaxos_hunt.ml: Format Net Online Protocols Sim
