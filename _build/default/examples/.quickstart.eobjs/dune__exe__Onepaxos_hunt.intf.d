examples/onepaxos_hunt.mli:
