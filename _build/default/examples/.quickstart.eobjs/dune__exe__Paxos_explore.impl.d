examples/paxos_explore.ml: Dsm Format Lmc Mc_global Protocols
