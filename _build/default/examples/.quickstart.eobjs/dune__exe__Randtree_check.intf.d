examples/randtree_check.mli:
