examples/quickstart.ml: Array Dsm Format List Lmc Mc_global Protocols String
