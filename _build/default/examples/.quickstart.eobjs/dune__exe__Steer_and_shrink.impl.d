examples/steer_and_shrink.ml: Dsm Filename Format List Lmc Net Online Protocols Sim
