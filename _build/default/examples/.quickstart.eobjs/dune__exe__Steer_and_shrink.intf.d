examples/steer_and_shrink.mli:
