examples/paxos_explore.mli:
