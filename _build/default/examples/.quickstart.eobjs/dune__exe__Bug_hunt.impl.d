examples/bug_hunt.ml: Format Net Online Protocols Sim
