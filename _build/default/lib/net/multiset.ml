(* Sorted association list under [Stdlib.compare]; counts are >= 1.
   Sortedness is the canonicity invariant every operation preserves. *)
type 'a t = ('a * int) list

let empty = []

let is_empty t = t = []

let rec add x = function
  | [] -> [ (x, 1) ]
  | (y, c) :: rest as t -> (
      match Stdlib.compare x y with
      | 0 -> (y, c + 1) :: rest
      | n when n < 0 -> (x, 1) :: t
      | _ -> (y, c) :: add x rest)

let add_list xs t = List.fold_left (fun t x -> add x t) t xs

let rec remove x = function
  | [] -> None
  | (y, c) :: rest -> (
      match Stdlib.compare x y with
      | 0 -> Some (if c = 1 then rest else (y, c - 1) :: rest)
      | n when n < 0 -> None
      | _ -> (
          match remove x rest with
          | None -> None
          | Some rest' -> Some ((y, c) :: rest')))

let rec count x = function
  | [] -> 0
  | (y, c) :: rest -> (
      match Stdlib.compare x y with
      | 0 -> c
      | n when n < 0 -> 0
      | _ -> count x rest)

let mem x t = count x t > 0

let cardinal t = List.fold_left (fun acc (_, c) -> acc + c) 0 t

let distinct_cardinal = List.length

let bindings t = t

let to_list t =
  List.concat_map (fun (x, c) -> List.init c (fun _ -> x)) t

let of_list xs = add_list xs empty

let rec add_n x n t = if n <= 0 then t else add_n x (n - 1) (add x t)

let union a b = List.fold_left (fun acc (x, c) -> add_n x c acc) a b

let iter_distinct f t = List.iter (fun (x, c) -> f x c) t

let fold_distinct f t acc = List.fold_left (fun acc (x, c) -> f x c acc) acc t

let equal a b = Stdlib.compare a b = 0

let pp pp_elt ppf t =
  Format.fprintf ppf "{@[";
  List.iteri
    (fun i (x, c) ->
      if i > 0 then Format.fprintf ppf ";@ ";
      if c = 1 then pp_elt ppf x else Format.fprintf ppf "%a x%d" pp_elt x c)
    t;
  Format.fprintf ppf "@]}"
