type t = { drop_prob : float; latency_min : float; latency_max : float }

let create ~drop_prob ~latency_min ~latency_max () =
  if not (drop_prob >= 0. && drop_prob <= 1.) then
    invalid_arg "Lossy_link.create: drop_prob must be in [0,1]";
  if not (latency_min >= 0. && latency_min <= latency_max) then
    invalid_arg "Lossy_link.create: need 0 <= latency_min <= latency_max";
  { drop_prob; latency_min; latency_max }

let drop_prob t = t.drop_prob

let drops t ~roll env =
  (not (Dsm.Envelope.is_loopback env)) && roll < t.drop_prob

let latency t ~roll = t.latency_min +. (roll *. (t.latency_max -. t.latency_min))

let reliable = { drop_prob = 0.; latency_min = 0.01; latency_max = 0.01 }
