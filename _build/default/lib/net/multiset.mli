(** Canonical multisets of in-flight messages.

    The network component [I] of a global state is a multiset of
    messages (Fig. 5 uses disjoint union, so duplicates matter).  The
    representation is a sorted association list [(element, count)]
    under the polymorphic order, which makes it {e canonical}: two
    equal multisets are structurally identical, so global-state
    fingerprints (section 4.2) collide exactly when states are equal.

    Elements must be pure data (no closures, no NaN-bearing floats). *)

type 'a t

val empty : 'a t

val is_empty : 'a t -> bool

(** [add x t] increments the multiplicity of [x]. *)
val add : 'a -> 'a t -> 'a t

val add_list : 'a list -> 'a t -> 'a t

(** [remove x t] decrements the multiplicity of [x]; [None] when [x] is
    absent.  Delivering a message removes exactly one copy. *)
val remove : 'a -> 'a t -> 'a t option

val mem : 'a -> 'a t -> bool

(** Multiplicity of an element (0 when absent). *)
val count : 'a -> 'a t -> int

(** Total number of elements, with multiplicity. *)
val cardinal : 'a t -> int

(** Number of distinct elements. *)
val distinct_cardinal : 'a t -> int

(** Distinct elements with their multiplicities, in canonical order. *)
val bindings : 'a t -> ('a * int) list

(** All elements expanded by multiplicity, in canonical order. *)
val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val union : 'a t -> 'a t -> 'a t

(** [iter_distinct f t] applies [f elt count] once per distinct
    element. *)
val iter_distinct : ('a -> int -> unit) -> 'a t -> unit

val fold_distinct : ('a -> int -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc

val equal : 'a t -> 'a t -> bool

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
