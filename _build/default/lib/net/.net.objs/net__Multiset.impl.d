lib/net/multiset.ml: Format List Stdlib
