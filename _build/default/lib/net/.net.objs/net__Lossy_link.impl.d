lib/net/lossy_link.ml: Dsm
