lib/net/lossy_link.mli: Dsm
