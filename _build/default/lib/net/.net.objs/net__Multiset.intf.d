lib/net/multiset.mli: Format
