(** Best-effort lossy network model.

    LMC "assumes a best-effort, lossy network, i.e., IP" (section 4.3);
    the live experiments drop 30% of non-loopback messages "to allow
    rare states to be also created" (section 5.5).  This module holds
    that policy: drop probability, loopback exemption, and a latency
    window for the discrete-event simulator. *)

type t

(** [create ~drop_prob ~latency_min ~latency_max ()] validates its
    arguments ([0 <= drop_prob <= 1], [0 <= latency_min <= latency_max])
    and builds a link policy. *)
val create :
  drop_prob:float -> latency_min:float -> latency_max:float -> unit -> t

val drop_prob : t -> float

(** [drops t ~roll env] decides whether [env] is lost, given a uniform
    [roll] in [0,1).  Loopback messages are never dropped. *)
val drops : t -> roll:float -> 'm Dsm.Envelope.t -> bool

(** [latency t ~roll] maps a uniform [roll] in [0,1) onto the latency
    window. *)
val latency : t -> roll:float -> float

(** A perfect link: no drops, zero latency spread. *)
val reliable : t
