lib/online/online_mc.ml: Dsm Format Hashtbl List Lmc Sim
