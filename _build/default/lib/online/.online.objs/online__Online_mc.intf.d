lib/online/online_mc.mli: Dsm Format Lmc Sim
