(** FIFO (TCP-like) channel wrapper.

    §4.3: LMC "assumes a best-effort, lossy network, i.e., IP", so
    UDP-based protocols are checked directly, while "TCP is usually
    simulated in the model checker.  To do so, LMC implementation
    should be also augmented to benefit from the fact that reordered
    messages in a connection will eventually be rejected by TCP and
    could, hence, be ignored, saving some unnecessary handler
    executions in the model checker."

    [Make (P)] wraps any protocol with per-(sender, receiver) sequence
    numbers.  A receiver accepts exactly the next expected sequence
    number on each channel and raises {!Dsm.Protocol.Local_assert} on
    anything else — which makes both checkers discard the reordered
    delivery, pruning precisely the interleavings TCP would never
    produce.  Note this models ordering, not reliability: there are no
    retransmissions, so the live simulator should use a reliable link
    with this wrapper. *)

type 'm seq_message = { seq : int; payload : 'm }

type 's seq_state = {
  inner : 's;
  next_out : (int * int) list;  (** per destination, sorted *)
  next_in : (int * int) list;  (** per source, sorted *)
}

module Make (P : Dsm.Protocol.S) : sig
  include
    Dsm.Protocol.S
      with type state = P.state seq_state
       and type message = P.message seq_message
       and type action = P.action

  (** Lift an invariant over the wrapped protocol's system states. *)
  val lift_invariant : P.state Dsm.Invariant.t -> state Dsm.Invariant.t
end
