(** Paxos as a checkable protocol (§5's testbed).

    Wraps {!Paxos_core} into a {!Dsm.Protocol.S}: an [Init] internal
    action boots each node (the three initialisation events of the
    Fig. 10 state space), and a [Propose] internal action is enabled at
    configured proposer nodes following the paper's test driver
    (§4.2): a node proposes its own identity as the value for the
    first index its learner has not yet chosen, up to a bounded number
    of attempts. *)

module type CONFIG = sig
  val num_nodes : int

  (** Nodes allowed to propose.  [[0]] gives the one-proposal state
      space of Fig. 10 (depth 22); [[0; 1]] the two-proposal space of
      §5.2 (depth 41). *)
  val proposers : int list

  (** Propositions per node per index. *)
  val max_attempts : int

  (** Consensus indices in play ([0 .. max_index - 1]). *)
  val max_index : int

  (** Whether the driver also proposes for untouched ("new") indices.
      The live deployment wants this on to generate traffic; the §4.2
      test driver used inside the checker wants it off so exploration
      focuses on the contended index ("a careful design of the test
      driver could greatly impact the efficiency of model checking"). *)
  val fresh_proposals : bool

  val bug : Paxos_core.bug
end

(** Three nodes, node 0 proposes once for one index, no bug — the
    benchmark state space of §5.1. *)
module Bench_config : CONFIG

type paxos_state = { booted : bool; core : Paxos_core.state }

type paxos_action = Init | Propose of { idx : int }

module Make (C : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = paxos_state
       and type message = Paxos_core.message
       and type action = paxos_action

  (** The Paxos safety property: "no two nodes will choose different
      values for the same index". *)
  val safety : paxos_state Dsm.Invariant.t

  (** LMC-OPT abstraction (§4.2): map each node state to the values it
      has chosen; most states map to [None] and are never combined. *)
  val abstraction : paxos_state -> (int * Paxos_core.value) list option

  (** Two abstractions conflict iff some index is chosen with different
      values. *)
  val conflicts :
    (int * Paxos_core.value) list -> (int * Paxos_core.value) list -> bool
end
