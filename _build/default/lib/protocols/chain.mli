(** A forwarding chain: node 0 starts a token that hops node by node to
    the end.

    Section 4.3 predicts LMC offers little over global checking here:
    "we could not expect much from LMC in a chain system in which each
    node simply forwards the input message to the next" — there is no
    parallel network activity to collapse.  Used by the ablation
    benchmark. *)

type chain_state = { received : bool; forwarded : bool }

module Make (_ : sig
  val length : int
end) : sig
  include
    Dsm.Protocol.S
      with type state = chain_state
       and type message = unit
       and type action = unit

  (** Monotone delivery: a node received the token only if all its
      predecessors forwarded it. *)
  val prefix_closed : chain_state Dsm.Invariant.t
end
