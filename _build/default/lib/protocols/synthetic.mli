(** Pseudo-random finite protocols for cross-checker property testing.

    The paper's two meta-level claims — completeness ("any violation of
    a system state invariant that could be detected by the global
    approach could be detected by our local approach") and soundness
    ("an invariant violation is reported to the user only if it passes
    [the validity] test") — are hard to exercise convincingly on a
    handful of hand-written protocols.  This module derives arbitrary
    terminating protocols from a seed, so properties can quantify over
    protocol behaviours:

    - node states are integers, strictly increasing along every
      transition and capped, so all executions terminate;
    - handlers are pure functions of a hash of
      [(seed, node, state, message)], so instances are deterministic
      and replayable;
    - each handler sends at most two messages, keeping spaces small
      enough to exhaust with the global checker. *)

module type CONFIG = sig
  val seed : int

  val num_nodes : int

  (** States range over [0 .. max_state]. *)
  val max_state : int

  (** Message payload kinds range over [0 .. kinds - 1]. *)
  val kinds : int
end

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = int
       and type message = int
       and type action = unit

  (** Trivially true invariant that records every system state it is
      asked about — the hook the reachability cross-checks use. *)
  val observer :
    (int array -> unit) -> int Dsm.Invariant.t
end
