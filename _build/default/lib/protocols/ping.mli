(** Request/response micro-protocol for cross-checker property tests.

    Node 0 pings every server once; servers answer; the client counts
    the pongs.  Small enough that the global state space can be
    exhausted instantly, which makes it the workhorse for the
    completeness/soundness cross-checks between B-DFS and LMC. *)

type ping_state = { pinged : bool; pongs : int list; served : bool }

type msg = Ping | Pong

module Make (_ : sig
  val num_servers : int
end) : sig
  include
    Dsm.Protocol.S
      with type state = ping_state
       and type message = msg
       and type action = unit

  (** The client never counts more pongs than servers it pinged. *)
  val no_excess_pongs : ping_state Dsm.Invariant.t
end
