(** The distributed tree of the paper's primer (§2, Figs. 2-4).

    The origin node initiates a message destined for the target and
    moves to [Sent]; every node forwards incoming tokens to its
    children without changing its own state; the target moves to
    [Received].  With the paper's five-node instance this generates 12
    global transitions under global model checking but only 4 system
    states under LMC — including the invalid ["----r"], which soundness
    verification rejects. *)

type node_state = Waiting | Sent | Received

module type CONFIG = sig
  (** [children.(n)] lists the children of node [n]. *)
  val children : int list array

  val origin : int
  val target : int
end

(** The instance of Fig. 2: nodes 0-4, node 0 sends, node 4 receives,
    children [0 -> 1,2] and [1 -> 3,4]. *)
module Paper_config : CONFIG

module Make (C : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = node_state
       and type message = unit
       and type action = unit

  (** "The target received the token only if the origin sent it" — the
      invariant whose preliminary violation on ["----r"] exercises
      soundness verification exactly as in the primer. *)
  val received_implies_sent : node_state Dsm.Invariant.t
end
