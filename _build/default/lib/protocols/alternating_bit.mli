(** Alternating-bit protocol (stop-and-wait ARQ).

    A sender transfers a fixed sequence of items to a receiver over an
    unreliable network: each data frame carries a one-bit sequence
    number, the receiver acknowledges the bit it saw, duplicates are
    filtered by the bit, and the sender may retransmit the outstanding
    frame (a timeout action).

    The safety invariant: the receiver's delivered sequence is always a
    prefix of the sender's input — no duplication, no reordering.

    The injectable bug drops the receiver's bit check, so a
    retransmitted duplicate frame is delivered twice.

    This protocol doubles as the showcase of a documented LMC
    limitation: the duplicate frame has {e identical content} to the
    original, and the paper's duplicate-message limit ("set to zero for
    the results reported in this paper") plus the per-state message
    history mean default LMC never executes the same content twice on
    one path.  The buggy duplication is therefore invisible to default
    LMC (and to the paper's tool), found by the global checker, and
    found by LMC with histories disabled — see the tests and
    EXPERIMENTS.md. *)

type bug = No_bug | Ignore_bit

module type CONFIG = sig
  (** The items to transfer, in order. *)
  val data : int list

  (** Retransmissions available per frame. *)
  val max_retransmits : int

  val bug : bug
end

type abp_sender = {
  pending : int list;  (** not yet acknowledged, head outstanding *)
  bit : bool;
  awaiting : bool;  (** a frame is outstanding *)
  retransmits : int;  (** used for the current frame *)
}

type abp_receiver = { delivered : int list; expected : bool }
(** [delivered] is newest-first. *)

type abp_state = S of abp_sender | R of abp_receiver

type abp_message = Data of bool * int | Ack of bool

type abp_action = Send | Retransmit

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = abp_state
       and type message = abp_message
       and type action = abp_action

  (** The receiver's deliveries form a prefix of the input data. *)
  val prefix_delivery : abp_state Dsm.Invariant.t
end
