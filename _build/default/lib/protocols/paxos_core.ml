type value = int
type round = int

type bug = No_bug | Last_response_wins

type message =
  | Prepare of { idx : int; rnd : round }
  | Promise of { idx : int; rnd : round; vrnd : round; vval : value option }
  | Accept of { idx : int; rnd : round; v : value }
  | Learn of { idx : int; rnd : round; v : value }

type acceptor_slot = { promised : round; vrnd : round; vval : value option }

type proposer_slot = {
  crnd : round;
  pval : value;  (* the value this node wants chosen *)
  responses : (int * (round * value option)) list;  (* by responder *)
  last_resp : (round * value option) option;  (* for the §5.5 bug *)
  accept_sent : bool;
}

type learner_slot = {
  learns : ((int * round) * value) list;  (* (acceptor, round) -> value *)
  chosen : value option;
}

type slot = {
  acc : acceptor_slot;
  prop : proposer_slot option;
  lrn : learner_slot;
}

type state = {
  slots : (int * slot) list;  (* by index, sorted *)
  att : (int * int) list;  (* attempts per index, sorted *)
}

let empty = { slots = []; att = [] }

let empty_slot =
  {
    acc = { promised = 0; vrnd = 0; vval = None };
    prop = None;
    lrn = { learns = []; chosen = None };
  }

(* Canonical sorted-assoc update; keeps fingerprints stable. *)
let rec assoc_update key f = function
  | [] -> [ (key, f None) ]
  | (k, v) :: rest when k = key -> (k, f (Some v)) :: rest
  | (k, v) :: rest when k > key -> (key, f None) :: (k, v) :: rest
  | kv :: rest -> kv :: assoc_update key f rest

let slot state idx =
  match List.assoc_opt idx state.slots with Some s -> s | None -> empty_slot

let set_slot state idx s =
  { state with slots = assoc_update idx (fun _ -> s) state.slots }

let attempts state idx =
  match List.assoc_opt idx state.att with Some a -> a | None -> 0

let chosen state idx = (slot state idx).lrn.chosen

let chosen_all state =
  List.filter_map
    (fun (idx, s) ->
      match s.lrn.chosen with Some v -> Some (idx, v) | None -> None)
    state.slots

let has_accepted state idx =
  let a = (slot state idx).acc in
  match a.vval with Some v -> Some (a.vrnd, v) | None -> None

let promised state idx = (slot state idx).acc.promised

let is_untouched state idx =
  attempts state idx = 0 && List.assoc_opt idx state.slots = None

let majority n = (n / 2) + 1

let broadcast n msg = List.init n (fun dst -> (dst, msg))

(* A round above both the own attempt counter and any round the local
   acceptor has promised, so a re-proposal is not rejected by the
   proposer's own acceptor.  Rounds of distinct proposers never
   collide: k*n + self. *)
let next_attempt ~n state ~idx =
  max (attempts state idx + 1) ((promised state idx / n) + 1)

let propose ~n ~self state ~idx ~v =
  let k = next_attempt ~n state ~idx in
  let rnd = (k * n) + self + 1 in
  let s = slot state idx in
  let s =
    {
      s with
      prop =
        Some
          {
            crnd = rnd;
            pval = v;
            responses = [];
            last_resp = None;
            accept_sent = false;
          };
    }
  in
  let state = set_slot state idx s in
  let state = { state with att = assoc_update idx (fun _ -> k) state.att } in
  (state, broadcast n (Prepare { idx; rnd }))

let handle_prepare state ~src ~idx ~rnd =
  let s = slot state idx in
  if rnd > s.acc.promised then
    let s = { s with acc = { s.acc with promised = rnd } } in
    ( set_slot state idx s,
      [ (src, Promise { idx; rnd; vrnd = s.acc.vrnd; vval = s.acc.vval }) ] )
  else (state, [])

(* "The value in the Accept message is the value returned by the
   PrepareResponse message with the highest proposal number, which
   reflects the accepted values from previous proposals, if there is
   any" (§5).  The buggy variant takes the last response received
   instead — the WiDS-reported bug of §5.5. *)
let pick_value ~bug (p : proposer_slot) =
  match bug with
  | No_bug ->
      let best =
        List.fold_left
          (fun best (_, (vrnd, vval)) ->
            match (vval, best) with
            | Some _, Some (best_rnd, _) when vrnd > best_rnd ->
                Some (vrnd, vval)
            | Some _, None -> Some (vrnd, vval)
            | _ -> best)
          None p.responses
      in
      (match best with Some (_, Some v) -> v | _ -> p.pval)
  | Last_response_wins -> (
      match p.last_resp with Some (_, Some v) -> v | _ -> p.pval)

let handle_promise ~n ~bug state ~src ~idx ~rnd ~vrnd ~vval =
  let s = slot state idx in
  match s.prop with
  | Some p when rnd = p.crnd && not p.accept_sent ->
      let responses = assoc_update src (fun _ -> (vrnd, vval)) p.responses in
      let p = { p with responses; last_resp = Some (vrnd, vval) } in
      if List.length responses >= majority n then begin
        let v = pick_value ~bug p in
        let p = { p with accept_sent = true } in
        let state = set_slot state idx { s with prop = Some p } in
        (state, broadcast n (Accept { idx; rnd; v }))
      end
      else (set_slot state idx { s with prop = Some p }, [])
  | _ -> (state, [])

(* Local assertions (§4.2): a proposer broadcasts exactly one Accept
   per round, so within one real run a round determines its value.
   Receiving a message that contradicts that is only possible under
   LMC's conservative delivery (states from incompatible branches fed
   from the shared network); the checker discards such node states. *)
let handle_accept ~n state ~idx ~rnd ~v =
  let s = slot state idx in
  if s.acc.vrnd = rnd && s.acc.vval <> None && s.acc.vval <> Some v then
    raise
      (Dsm.Protocol.Local_assert "two Accept values for the same round");
  if rnd >= s.acc.promised then
    let s = { s with acc = { promised = rnd; vrnd = rnd; vval = Some v } } in
    (set_slot state idx s, broadcast n (Learn { idx; rnd; v }))
  else (state, [])

let handle_learn ~n state ~src ~idx ~rnd ~v =
  let s = slot state idx in
  if
    List.exists (fun ((_, r), v') -> r = rnd && v' <> v) s.lrn.learns
  then
    raise (Dsm.Protocol.Local_assert "conflicting Learn values for a round");
  let learns = assoc_update (src, rnd) (fun _ -> v) s.lrn.learns in
  let votes_for_rnd =
    List.length (List.filter (fun ((_, r), _) -> r = rnd) learns)
  in
  let chosen =
    match s.lrn.chosen with
    | Some _ as already -> already
    | None -> if votes_for_rnd >= majority n then Some v else None
  in
  (set_slot state idx { s with lrn = { learns; chosen } }, [])

let handle ~n ~self:_ ~bug state ~src msg =
  match msg with
  | Prepare { idx; rnd } -> handle_prepare state ~src ~idx ~rnd
  | Promise { idx; rnd; vrnd; vval } ->
      handle_promise ~n ~bug state ~src ~idx ~rnd ~vrnd ~vval
  | Accept { idx; rnd; v } -> handle_accept ~n state ~idx ~rnd ~v
  | Learn { idx; rnd; v } -> handle_learn ~n state ~src ~idx ~rnd ~v

let pp_value_option ppf = function
  | None -> Format.pp_print_string ppf "_"
  | Some v -> Format.pp_print_int ppf v

let pp_state ppf state =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (idx, s) ->
      Format.fprintf ppf "[%d] acc{prom=%d vrnd=%d vval=%a} chosen=%a@ " idx
        s.acc.promised s.acc.vrnd pp_value_option s.acc.vval pp_value_option
        s.lrn.chosen)
    state.slots;
  Format.fprintf ppf "@]"

let pp_message ppf = function
  | Prepare { idx; rnd } -> Format.fprintf ppf "Prepare(i=%d,r=%d)" idx rnd
  | Promise { idx; rnd; vrnd; vval } ->
      Format.fprintf ppf "Promise(i=%d,r=%d,vr=%d,vv=%a)" idx rnd vrnd
        pp_value_option vval
  | Accept { idx; rnd; v } -> Format.fprintf ppf "Accept(i=%d,r=%d,v=%d)" idx rnd v
  | Learn { idx; rnd; v } -> Format.fprintf ppf "Learn(i=%d,r=%d,v=%d)" idx rnd v

let disagreement a b =
  let rec scan = function
    | [] -> None
    | (idx, va) :: rest -> (
        match chosen b idx with
        | Some vb when vb <> va ->
            Some
              (Printf.sprintf "index %d chosen as %d by one node, %d by another"
                 idx va vb)
        | _ -> scan rest)
  in
  scan (chosen_all a)

let learns state idx = (slot state idx).lrn.learns
