(** 1Paxos: Multi-Paxos with a single active acceptor (§5.6, [15]).

    "An efficient variation of Multi-Paxos that uses only one acceptor.
    Upon failure, the active acceptor is replaced with a backup
    acceptor by the global leader. ... To uniquely identify the global
    leader and the active acceptor, 1Paxos uses a separate consensus
    protocol referred to as PaxosUtility.  The global leader and the
    active acceptor are identified by the last LeaderChange and
    AcceptorChange entries in the PaxosUtility."  As in the paper, we
    implement PaxosUtility with Paxos itself ({!Paxos_core}), making
    1Paxos a layered, multi-module service.

    Steady state: the node believing itself leader sends its proposal
    straight to its cached active acceptor; the (single) acceptor
    accepts and broadcasts a [Learn1]; receivers choose on that single
    message.  A fault-detector internal action makes a node claim
    leadership by proposing a [LeaderChange] entry into PaxosUtility;
    when the entry is chosen the new leader refreshes its cached
    acceptor from the utility log.

    The injectable bug is the paper's literal one: the initialisation
    code meant to pick the {e second} member as the default acceptor
    used [*(members.begin()++)] — postfix increment — and therefore
    picked the {e first} member, making the initial leader its own
    acceptor.  A deposed-but-unaware leader then proposes to itself,
    accepts its own proposal, learns from its own loopback [Learn1],
    and chooses a value nobody else agrees on. *)

type bug = No_bug | Postfix_increment

module type CONFIG = sig
  val num_nodes : int

  (** Fault-detector claims allowed per node. *)
  val max_leader_claims : int

  (** Proposals per (believed) leader per index. *)
  val max_attempts : int

  (** 1Paxos consensus indices in play. *)
  val max_index : int

  (** Bound on the PaxosUtility configuration-log depth explored. *)
  val max_util_entries : int

  (** Bound on the utility-layer round tier (see
      {!Paxos_core.next_attempt}); keeps the proposal ladder finite. *)
  val max_util_attempts : int

  val bug : bug
end

(** Entries of the PaxosUtility configuration log. *)
type entry = Leader_change of int | Acceptor_change of int

(** Entries travel through the utility layer as plain Paxos values. *)
val encode_entry : entry -> int

val decode_entry : int -> entry

type op_message =
  | Util of Paxos_core.message  (** PaxosUtility traffic, layered *)
  | Propose1 of { idx : int; rnd : int; v : int }
      (** leader -> active acceptor *)
  | Learn1 of { idx : int; rnd : int; v : int }
      (** single acceptor -> everyone *)

type op_action = Init | Claim_leadership | Propose of { idx : int }

type op_state = {
  booted : bool;
  util : Paxos_core.state;  (** the embedded PaxosUtility instance *)
  util_applied : int;  (** utility log prefix already applied *)
  leader : int;  (** cached global leader *)
  acceptor : int;  (** cached active acceptor *)
  is_leader : bool;  (** self-belief, possibly stale under loss *)
  claims : int;
  attempts : (int * int) list;  (** 1Paxos proposal attempts per index *)
  accepted : (int * (int * int)) list;
      (** acceptor storage: index -> (round, value) *)
  chosen : (int * int) list;  (** learned values: index -> value *)
}

module Make (C : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = op_state
       and type message = op_message
       and type action = op_action

  (** Paxos safety over the 1Paxos log: no index chosen with different
      values at two nodes. *)
  val safety : op_state Dsm.Invariant.t

  (** LMC-OPT abstraction: the chosen (index, value) pairs. *)
  val abstraction : op_state -> (int * int) list option

  val conflicts : (int * int) list -> (int * int) list -> bool
end
