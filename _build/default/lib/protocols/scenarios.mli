(** Canned live-state scenarios from the paper's evaluation.

    The online experiments (§5.5, §5.6) detect their bugs from specific
    live snapshots; these builders reconstruct those snapshots
    deterministically so benchmarks and tests can start exactly where
    the paper's checker did. *)

(** Any Paxos instance built by {!Paxos.Make}. *)
module type PAXOS = Dsm.Protocol.S
  with type state = Paxos.paxos_state
   and type message = Paxos_core.message
   and type action = Paxos.paxos_action

(** The §5.5 snapshot: "for index ki, node N1 has proposed value v1,
    nodes N1 and N2 have accepted this proposal, but due to message
    losses only N1 has learned it."  With our identifiers: node 1
    proposed and chose its value for index 0, node 2 accepted it but
    never learned, node 0 saw nothing.  The instance must have at least
    3 nodes and allow node 1 to propose. *)
val wids_snapshot : (module PAXOS) -> Paxos.paxos_state array

(** Any 1Paxos instance built by {!Onepaxos.Make}. *)
module type ONEPAXOS = Dsm.Protocol.S
  with type state = Onepaxos.op_state
   and type message = Onepaxos.op_message
   and type action = Onepaxos.op_action

(** The §5.6 snapshot: node 2 claimed and won leadership through
    PaxosUtility and got index 0 chosen (via the real acceptor) at
    nodes 1 and 2 — while all traffic to node 0 was lost, leaving it
    an unaware stale leader with its (possibly buggy) cached
    acceptor. *)
val onepaxos_snapshot : (module ONEPAXOS) -> Onepaxos.op_state array
