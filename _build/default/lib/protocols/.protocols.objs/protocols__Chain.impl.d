lib/protocols/chain.ml: Array Dsm Format Printf
