lib/protocols/twophase.ml: Dsm Format List
