lib/protocols/paxos.ml: Dsm Format List Paxos_core
