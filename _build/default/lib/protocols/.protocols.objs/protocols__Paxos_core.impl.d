lib/protocols/paxos_core.ml: Dsm Format List Printf
