lib/protocols/synthetic.ml: Array Dsm Format Hashtbl List Printf
