lib/protocols/token_mutex.mli: Dsm
