lib/protocols/pb_store.ml: Dsm Format List
