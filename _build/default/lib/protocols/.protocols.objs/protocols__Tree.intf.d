lib/protocols/tree.mli: Dsm
