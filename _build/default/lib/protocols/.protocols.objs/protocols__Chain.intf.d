lib/protocols/chain.mli: Dsm
