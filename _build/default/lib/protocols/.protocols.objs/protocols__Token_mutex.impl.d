lib/protocols/token_mutex.ml: Dsm Format List
