lib/protocols/fifo.ml: Array Dsm Format List
