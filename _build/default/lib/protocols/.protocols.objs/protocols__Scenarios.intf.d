lib/protocols/scenarios.mli: Dsm Onepaxos Paxos Paxos_core
