lib/protocols/alternating_bit.mli: Dsm
