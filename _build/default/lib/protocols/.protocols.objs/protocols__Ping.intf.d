lib/protocols/ping.mli: Dsm
