lib/protocols/alternating_bit.ml: Array Dsm Format List String
