lib/protocols/ring_election.ml: Dsm Format List Printf
