lib/protocols/ring_election.mli: Dsm
