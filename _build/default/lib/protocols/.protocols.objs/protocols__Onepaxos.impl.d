lib/protocols/onepaxos.ml: Dsm Format List Option Paxos_core Printf String
