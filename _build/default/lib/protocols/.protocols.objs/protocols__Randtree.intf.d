lib/protocols/randtree.mli: Dsm
