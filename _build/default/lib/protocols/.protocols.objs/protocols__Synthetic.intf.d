lib/protocols/synthetic.mli: Dsm
