lib/protocols/tree.ml: Array Dsm Format List
