lib/protocols/paxos.mli: Dsm Paxos_core
