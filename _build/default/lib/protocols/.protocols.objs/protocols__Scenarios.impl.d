lib/protocols/scenarios.ml: Array Dsm List Onepaxos Paxos Paxos_core
