lib/protocols/onepaxos.mli: Dsm Paxos_core
