lib/protocols/twophase.mli: Dsm
