lib/protocols/pb_store.mli: Dsm
