lib/protocols/fifo.mli: Dsm
