lib/protocols/randtree.ml: Dsm Format List Printf String
