lib/protocols/paxos_core.mli: Format
