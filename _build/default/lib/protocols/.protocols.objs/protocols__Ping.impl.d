lib/protocols/ping.ml: Array Dsm Format List
