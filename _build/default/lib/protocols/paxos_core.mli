(** Multi-index Paxos engine (proposer + acceptor + learner roles).

    The paper's testbed: "each node implements three roles: proposer,
    acceptor, and learner.  Multiple proposers can concurrently propose
    values for the same index" (§5).  A proposition broadcasts
    [Prepare]; acceptors answer [Promise] (the paper's
    PrepareResponse); on a majority the proposer broadcasts [Accept]
    carrying "the value returned by the PrepareResponse message with
    the highest proposal number"; each acceptor then broadcasts [Learn]
    and learners choose on a majority of [Learn]s for one round.

    The engine is pure and self-contained so that 1Paxos can embed it
    as its PaxosUtility layer (§5.6: "we have implemented PaxosUtility
    using Paxos itself").  All collections are canonical sorted
    association lists, as required for fingerprinting.

    The injectable bug reproduces §5.5 (first reported by WiDS
    Checker): with [Last_response_wins], the proposer takes the value
    "from the last PrepareResponse message instead of the
    PrepareResponse message with highest round number". *)

type value = int
type round = int

type bug = No_bug | Last_response_wins

type message =
  | Prepare of { idx : int; rnd : round }
  | Promise of { idx : int; rnd : round; vrnd : round; vval : value option }
  | Accept of { idx : int; rnd : round; v : value }
  | Learn of { idx : int; rnd : round; v : value }

type state

val empty : state

(** [attempts state idx] is how many propositions this node started for
    [idx]. *)
val attempts : state -> int -> int

(** [chosen state idx] is the value this node's learner chose for
    [idx], if any. *)
val chosen : state -> int -> value option

(** All (index, value) pairs chosen by this node's learner, sorted by
    index.  The abstraction LMC-OPT maps node states through. *)
val chosen_all : state -> (int * value) list

(** [has_accepted state idx] tells whether this node's acceptor has
    accepted any value for [idx]. *)
val has_accepted : state -> int -> (round * value) option

(** Highest round this node's acceptor promised for [idx] (0 if none). *)
val promised : state -> int -> round

(** [is_untouched state idx] is true when this node has seen no
    activity whatsoever for [idx] — the test driver's notion of a "new
    index". *)
val is_untouched : state -> int -> bool

(** The attempt number (round tier) the next [propose] for [idx] would
    use: above both the own attempt counter and any locally promised
    round.  Drivers bound this to keep the proposal ladder — and with
    it the state space — finite. *)
val next_attempt : n:int -> state -> idx:int -> int

(** [propose ~n ~self state ~idx ~v] starts a new proposition: picks a
    fresh round unique to [self], records the attempt, and broadcasts
    [Prepare] to all [n] acceptors (including [self]).  Returns
    destination/message pairs for the caller to wrap in envelopes. *)
val propose :
  n:int -> self:int -> state -> idx:int -> v:value -> state * (int * message) list

(** [handle ~n ~self ~bug state ~src msg] runs the role handlers. *)
val handle :
  n:int ->
  self:int ->
  bug:bug ->
  state ->
  src:int ->
  message ->
  state * (int * message) list

val pp_state : Format.formatter -> state -> unit
val pp_message : Format.formatter -> message -> unit

(** Agreement across two nodes: no index chosen with different values.
    Returns a human-readable description of the first disagreement. *)
val disagreement : state -> state -> string option

(** Learner records for [idx]: [((acceptor, round), value)] votes seen
    so far.  Introspection for tests and debugging. *)
val learns : state -> int -> ((int * round) * value) list
