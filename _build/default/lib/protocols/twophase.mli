(** Two-phase commit.

    Node 0 coordinates; the rest are participants.  The coordinator
    broadcasts [Prepare]; each participant votes [Yes] (moving to
    prepared) or [No] (moving straight to aborted — the configured
    no-voters model participants that cannot commit); the coordinator
    decides [Commit] only on a unanimous yes and [Abort] otherwise,
    and broadcasts the decision.

    The atomicity invariant: no node commits while another aborts.

    The injectable bug is a classic implementation slip: the
    coordinator decides commit on a {e majority} of yes votes instead
    of unanimity, so a no-voter has already aborted when the commit
    decision reaches the others. *)

type bug = No_bug | Commit_on_majority

module type CONFIG = sig
  val num_nodes : int

  (** Participants that vote No (must not contain 0). *)
  val no_voters : int list

  val bug : bug
end

type coordinator_phase = C_init | C_preparing | C_committed | C_aborted

type participant_phase = P_idle | P_prepared | P_committed | P_aborted

type tpc_state = {
  coord : coordinator_phase;  (** meaningful at node 0 only *)
  part : participant_phase;  (** meaningful at participants only *)
  votes : (int * bool) list;  (** coordinator's tally, sorted by node *)
}

type tpc_message = Prepare | Vote of bool | Commit | Abort

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = tpc_state
       and type message = tpc_message
       and type action = unit

  (** Atomicity: never one node committed and another aborted. *)
  val atomicity : tpc_state Dsm.Invariant.t

  (** LMC-OPT abstraction: the node's decision, if it made one. *)
  val abstraction : tpc_state -> [ `Committed | `Aborted ] option

  val conflicts :
    [ `Committed | `Aborted ] -> [ `Committed | `Aborted ] -> bool
end
