(** Token-ring mutual exclusion.

    A single token circulates a unidirectional ring; only its holder
    may enter the critical section.  Interested nodes keep the token
    while inside and pass it on when done (or immediately, if not
    interested).

    The safety invariant: at most one node is in the critical section.

    The injectable bug is the textbook one: a node that waited "too
    long" regenerates a lost token (a timeout action), but the token
    was never lost — now two tokens circulate and two nodes can be in
    the critical section together. *)

type bug = No_bug | Regenerate_token

module type CONFIG = sig
  val num_nodes : int

  (** Nodes that want the critical section (each enters once). *)
  val contenders : int list

  (** Regeneration timeouts available per node (buggy builds only). *)
  val max_regenerations : int

  val bug : bug
end

type mutex_state = {
  has_token : bool;
  wants : bool;
  in_cs : bool;
  served : bool;  (** already had its critical section *)
  regenerations : int;
}

type mutex_action = Want | Enter | Leave | Pass | Regenerate

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = mutex_state
       and type message = unit
       and type action = mutex_action

  (** At most one node in the critical section. *)
  val mutual_exclusion : mutex_state Dsm.Invariant.t

  (** LMC-OPT abstraction: in the critical section or not. *)
  val abstraction : mutex_state -> unit option

  val conflicts : unit -> unit -> bool
end
