(** Chang-Roberts leader election on a unidirectional ring.

    Any node may wake up and start an election by sending a token with
    its identifier to its successor.  A node receiving a token forwards
    it if the identifier beats its own, replaces it with its own token
    if it has not yet joined an election, swallows it otherwise, and
    declares itself leader when its own token comes home; the winner
    circulates an announcement.

    The agreement invariant: no two nodes believe in different
    leaders.

    The injectable bug drops the swallow rule: a participating node
    forwards a {e smaller} token instead of discarding it, so a losing
    candidate can see its token return and also declare itself
    leader. *)

type bug = No_bug | Forward_smaller

module type CONFIG = sig
  val num_nodes : int

  (** Nodes allowed to wake up and start an election. *)
  val starters : int list

  val bug : bug
end

type re_state = {
  participating : bool;
  leader : int option;
  woke : bool;  (** this node used its wake-up *)
}

type re_message = Token of int | Elected of int

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = re_state
       and type message = re_message
       and type action = unit

  (** No two nodes ever believe in different leaders. *)
  val agreement : re_state Dsm.Invariant.t

  (** LMC-OPT abstraction: the believed leader, if any. *)
  val abstraction : re_state -> int option

  val conflicts : int -> int -> bool
end
