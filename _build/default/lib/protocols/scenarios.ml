module type PAXOS = Dsm.Protocol.S
  with type state = Paxos.paxos_state
   and type message = Paxos_core.message
   and type action = Paxos.paxos_action

(* A tiny deterministic dispatcher: deliver the oldest pending message
   matching (src, dst), accumulating any output back into the pool. *)
module Driver (P : Dsm.Protocol.S) = struct
  type t = {
    states : P.state array;
    mutable pool : P.message Dsm.Envelope.t list;
  }

  let create () =
    { states = Dsm.Protocol.initial_system (module P); pool = [] }

  let act t n a =
    let s', out = P.handle_action ~self:n t.states.(n) a in
    t.states.(n) <- s';
    t.pool <- t.pool @ out

  let deliver t ~src ~dst =
    match
      List.partition
        (fun (e : _ Dsm.Envelope.t) -> e.src = src && e.dst = dst)
        t.pool
    with
    | e :: more, rest ->
        let s', out = P.handle_message ~self:dst t.states.(dst) e in
        t.states.(dst) <- s';
        t.pool <- more @ rest @ out
    | [], _ -> invalid_arg "Scenarios: scripted delivery missing"

  (* Deliver everything except messages to the given node, until the
     pool (filtered) drains. *)
  let drain_excluding t ~lost =
    let budget = ref 10_000 in
    let rec go () =
      decr budget;
      if !budget <= 0 then invalid_arg "Scenarios: dispatch diverged";
      match t.pool with
      | [] -> ()
      | e :: rest ->
          t.pool <- rest;
          if e.Dsm.Envelope.dst <> lost then begin
            let dst = e.Dsm.Envelope.dst in
            let s', out = P.handle_message ~self:dst t.states.(dst) e in
            t.states.(dst) <- s';
            t.pool <- t.pool @ out
          end;
          go ()
    in
    go ()
end

let wids_snapshot (module P : PAXOS) =
  let module D = Driver (P) in
  let d = D.create () in
  D.act d 0 Paxos.Init;
  D.act d 1 Paxos.Init;
  D.act d 2 Paxos.Init;
  D.act d 1 (Paxos.Propose { idx = 0 });
  (* node 1 completes consensus with node 2's help; node 0's copies of
     every message are lost *)
  D.deliver d ~src:1 ~dst:1;
  (* Prepare 1->1 *)
  D.deliver d ~src:1 ~dst:2;
  (* Prepare 1->2 *)
  D.deliver d ~src:1 ~dst:1;
  (* Promise 1->1 *)
  D.deliver d ~src:2 ~dst:1;
  (* Promise 2->1: majority, Accept broadcast *)
  D.deliver d ~src:1 ~dst:1;
  (* Accept 1->1 *)
  D.deliver d ~src:1 ~dst:2;
  (* Accept 1->2 *)
  D.deliver d ~src:1 ~dst:1;
  (* Learn 1->1 *)
  D.deliver d ~src:2 ~dst:1;
  (* Learn 2->1: node 1 chooses *)
  d.D.states

module type ONEPAXOS = Dsm.Protocol.S
  with type state = Onepaxos.op_state
   and type message = Onepaxos.op_message
   and type action = Onepaxos.op_action

let onepaxos_snapshot (module P : ONEPAXOS) =
  let module D = Driver (P) in
  let d = D.create () in
  D.act d 0 Onepaxos.Init;
  D.act d 1 Onepaxos.Init;
  D.act d 2 Onepaxos.Init;
  (* node 2 claims leadership; the utility consensus completes between
     nodes 1 and 2 (everything to node 0 is lost) *)
  D.act d 2 Onepaxos.Claim_leadership;
  D.drain_excluding d ~lost:0;
  if not d.D.states.(2).Onepaxos.is_leader then
    invalid_arg "Scenarios: node 2 failed to take leadership";
  (* the new leader proposes through the real acceptor; node 0 again
     sees nothing *)
  D.act d 2 (Onepaxos.Propose { idx = 0 });
  D.drain_excluding d ~lost:0;
  d.D.states
