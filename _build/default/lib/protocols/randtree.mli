(** RandTree-style random overlay tree (§4.1's example of a node-local
    invariant).

    Nodes join through the root; a full node forwards the join request
    to one of its children (picked deterministically from the joiner
    identity, standing in for Mace's recorded randomness — §4.1
    footnote 3 requires nondeterministic values to be replayable).
    Parents notify their existing children of new siblings.

    The invariant is the one the paper quotes for RandTree: "in all
    node states the children and siblings must be disjoint sets".

    The injectable bug makes a full node double-book a forwarded
    joiner: it forwards the join but also optimistically records the
    joiner as its own child and announces it as a sibling — so the
    subtree node that really adopts the joiner ends up with the joiner
    in both its children and its siblings. *)

type bug = No_bug | Double_bookkeeping

module type CONFIG = sig
  val num_nodes : int

  val max_children : int

  (** Join retries per node (lossy networks lose Welcomes). *)
  val max_attempts : int

  val bug : bug
end

type join_status = Out | Joining | In

type rt_state = {
  status : join_status;
  parent : int option;
  children : int list;  (** sorted *)
  siblings : int list;  (** sorted *)
  attempts : int;
}

type rt_message =
  | Join of { joiner : int }
  | Welcome of { parent : int; siblings : int list }
  | New_sibling of { sibling : int }

module Make (C : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = rt_state
       and type message = rt_message
       and type action = unit

  (** Per-node disjointness of children and siblings. *)
  val disjointness : rt_state Dsm.Invariant.t
end
