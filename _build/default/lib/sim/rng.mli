(** Deterministic pseudo-random numbers (SplitMix64).

    The live deployment the paper's online checker observes is
    inherently nondeterministic; our substitute simulator must instead
    be {e replayable}, so that the section 5.5/5.6 bug hunts are
    reproducible test cases.  SplitMix64 is small, fast, and passes
    BigCrush; it is also splittable, which lets each node own an
    independent stream derived from one seed. *)

type t

val create : seed:int -> t

(** Independent stream; deterministic function of the current state. *)
val split : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)
val int : t -> int -> int

(** [bool t ~prob] is true with probability [prob]. *)
val bool : t -> prob:float -> bool

(** [range t lo hi] is uniform in [lo, hi). *)
val range : t -> float -> float -> float

(** [pick t xs] picks a uniform element; raises [Invalid_argument] on
    an empty list. *)
val pick : t -> 'a list -> 'a
