type t = { mutable s : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { s = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.s <- Int64.add t.s golden_gamma;
  mix t.s

let split t =
  let s' = next_int64 t in
  { s = mix s' }

let float t =
  (* 53 high bits -> [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the conversion to a 63-bit OCaml int stays
     non-negative *)
  let x = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  x mod bound

let bool t ~prob = float t < prob

let range t lo hi = lo +. (float t *. (hi -. lo))

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
