lib/sim/live_sim.mli: Dsm Net Snapshot
