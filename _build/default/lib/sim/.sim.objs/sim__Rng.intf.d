lib/sim/rng.mli:
