lib/sim/snapshot.ml: Array Dsm
