lib/sim/snapshot.mli: Dsm
