lib/sim/live_sim.ml: Array Dsm Event_queue List Net Rng Snapshot
