(** Time-ordered event queue (binary min-heap).

    The discrete-event simulator schedules deliveries and timer ticks
    by timestamp.  Ties break by insertion sequence number, so runs are
    fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [push q ~time x] schedules [x] at [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** Earliest event with its timestamp, removing it. *)
val pop : 'a t -> (float * 'a) option

(** Earliest timestamp without removing. *)
val peek_time : 'a t -> float option
