(** Live-state snapshots.

    The online checker is "restarted periodically from the current live
    state of a running system" (section 3.3).  A snapshot captures the
    node-local states only: like the paper's [findBugs] (Fig. 9, line
    2), the shared network [I+] restarts empty, so in-flight messages
    at snapshot time are treated as lost — sound under the lossy
    network assumption of section 4.3. *)

type 'state t = { time : float; states : 'state array }

val make : time:float -> 'state array -> 'state t

(** Initial-system snapshot at time 0, for offline checking. *)
val initial : (module Dsm.Protocol.S with type state = 's) -> 's t
