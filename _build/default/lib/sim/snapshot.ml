type 'state t = { time : float; states : 'state array }

let make ~time states =
  if Array.length states = 0 then invalid_arg "Snapshot.make: no nodes";
  { time; states = Array.copy states }

let initial (type s) (module P : Dsm.Protocol.S with type state = s) =
  { time = 0.; states = Dsm.Protocol.initial_system (module P) }
