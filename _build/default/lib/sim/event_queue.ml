type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let is_empty q = q.len = 0

let length q = q.len

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && earlier q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && earlier q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  let cap = Array.length q.heap in
  if q.len = cap then begin
    let heap = Array.make (max 16 (2 * cap)) entry in
    Array.blit q.heap 0 heap 0 q.len;
    q.heap <- heap
  end;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    Some (top.time, top.value)
  end

let peek_time q = if q.len = 0 then None else Some q.heap.(0).time
