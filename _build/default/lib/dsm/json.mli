(** Minimal JSON emission (no parsing).

    The toolchain ships no JSON library and the sealed build must not
    add dependencies, so this is the small, correct subset needed to
    emit machine-readable checker results: full string escaping, the
    standard scalar types, arrays and objects. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with RFC 8259 string escaping. *)
val to_string : t -> string
