type t = int

let equal = Int.equal

let compare = Int.compare

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative identifier" else i

let to_int i = i

let all n =
  if n < 0 then invalid_arg "Node_id.all: negative count"
  else List.init n (fun i -> i)

let pp ppf n = Format.fprintf ppf "N%d" n
