type violation = { invariant : string; detail : string }

type 'state t = {
  name : string;
  check : 'state array -> string option;
  (* Shape introspection for automatic system-state pruning (the
     paper's future-work idea): populated by the combinators below. *)
  nodewise : (Node_id.t -> 'state -> bool) option;
  pairwise : (Node_id.t -> 'state -> Node_id.t -> 'state -> bool) option;
}

let name t = t.name

let check t system =
  match t.check system with
  | None -> None
  | Some detail -> Some { invariant = t.name; detail }

let make ~name check = { name; check; nodewise = None; pairwise = None }

let conj ts =
  let name = String.concat " & " (List.map (fun t -> t.name) ts) in
  let check system =
    let rec first = function
      | [] -> None
      | t :: rest -> (
          match t.check system with
          | Some detail -> Some (Printf.sprintf "[%s] %s" t.name detail)
          | None -> first rest)
    in
    first ts
  in
  { name; check; nodewise = None; pairwise = None }

let for_all_nodes ~name f =
  let check system =
    let n = Array.length system in
    let rec loop i =
      if i >= n then None
      else
        match f i system.(i) with
        | Some detail -> Some (Printf.sprintf "at N%d: %s" i detail)
        | None -> loop (i + 1)
    in
    loop 0
  in
  {
    name;
    check;
    nodewise = Some (fun n s -> f n s <> None);
    pairwise = None;
  }

let for_all_pairs ~name f =
  let check system =
    let n = Array.length system in
    let result = ref None in
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           match f i system.(i) j system.(j) with
           | Some detail ->
               result :=
                 Some (Printf.sprintf "between N%d and N%d: %s" i j detail);
               raise Exit
           | None -> ()
         done
       done
     with Exit -> ());
    !result
  in
  {
    name;
    check;
    nodewise = None;
    pairwise = Some (fun i a j b -> f i a j b <> None || f j b i a <> None);
  }

let nodewise_witness t = t.nodewise

let pairwise_witness t = t.pairwise

let pp_violation ppf v =
  Format.fprintf ppf "invariant %S violated: %s" v.invariant v.detail
