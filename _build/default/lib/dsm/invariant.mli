(** User-specified invariants over system states.

    A system state is the vector of node-local states, indexed by node
    identifier — the paper's [L] — with the network deliberately
    absent: "the invariants are typically specified only on the system
    states, i.e., the invariants do not involve the network states"
    (section 1). *)

type violation = { invariant : string; detail : string }

type 'state t

val name : 'state t -> string

(** [check inv system] is [Some violation] when [inv] does not hold on
    [system]. *)
val check : 'state t -> 'state array -> violation option

(** [make ~name f] builds an invariant from a checker returning
    [Some detail] on violation. *)
val make : name:string -> ('state array -> string option) -> 'state t

(** Conjunction: first violation wins. *)
val conj : 'state t list -> 'state t

(** [for_all_nodes ~name f] holds when [f node state] is [None] for
    every node — the shape of node-local invariants such as RandTree's
    children/siblings disjointness (section 4.1). *)
val for_all_nodes :
  name:string -> (Node_id.t -> 'state -> string option) -> 'state t

(** [for_all_pairs ~name f] checks [f] on every unordered pair of
    distinct nodes — the shape of agreement invariants such as Paxos
    safety. *)
val for_all_pairs :
  name:string ->
  (Node_id.t -> 'state -> Node_id.t -> 'state -> string option) ->
  'state t

val pp_violation : Format.formatter -> violation -> unit

(** {2 Shape introspection}

    The paper's concluding remarks propose "methods to automatically
    prune the system states according to a given invariant" as future
    work.  The combinators above record enough structure to do it: a
    {!for_all_nodes} invariant can only be violated by a combination
    whose new component violates it locally, and a {!for_all_pairs}
    invariant only by one containing a violating pair.  The local
    checker's [Automatic] strategy uses these witnesses to skip every
    other combination. *)

(** For invariants built with {!for_all_nodes}: does this single node
    state violate it? *)
val nodewise_witness : 'state t -> (Node_id.t -> 'state -> bool) option

(** For invariants built with {!for_all_pairs}: can these two node
    states (in either role order) violate it? *)
val pairwise_witness :
  'state t -> (Node_id.t -> 'state -> Node_id.t -> 'state -> bool) option
