lib/dsm/trace.ml: Envelope Format List Node_id
