lib/dsm/trace.mli: Envelope Format Node_id
