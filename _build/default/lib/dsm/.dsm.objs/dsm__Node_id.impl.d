lib/dsm/node_id.ml: Format Int List
