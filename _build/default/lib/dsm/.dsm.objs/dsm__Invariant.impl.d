lib/dsm/invariant.ml: Array Format List Node_id Printf String
