lib/dsm/vec.ml: Array List Printf
