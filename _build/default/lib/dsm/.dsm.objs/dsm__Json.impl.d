lib/dsm/json.ml: Buffer Char Float List Printf String
