lib/dsm/json.mli:
