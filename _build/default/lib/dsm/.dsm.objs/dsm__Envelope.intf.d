lib/dsm/envelope.mli: Format Node_id
