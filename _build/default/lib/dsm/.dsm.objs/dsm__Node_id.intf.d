lib/dsm/node_id.mli: Format
