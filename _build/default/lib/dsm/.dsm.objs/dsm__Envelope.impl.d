lib/dsm/envelope.ml: Format Node_id
