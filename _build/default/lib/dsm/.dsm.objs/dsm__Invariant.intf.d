lib/dsm/invariant.mli: Format Node_id
