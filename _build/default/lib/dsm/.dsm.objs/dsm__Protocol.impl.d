lib/dsm/protocol.ml: Array Envelope Format Node_id
