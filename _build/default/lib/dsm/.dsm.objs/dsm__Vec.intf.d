lib/dsm/vec.mli:
