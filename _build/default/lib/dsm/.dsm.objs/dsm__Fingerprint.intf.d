lib/dsm/fingerprint.mli: Format Map Set
