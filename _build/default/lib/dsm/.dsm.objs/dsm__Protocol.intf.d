lib/dsm/protocol.mli: Envelope Format Node_id
