lib/dsm/fingerprint.ml: Digest Format Map Marshal Set String
