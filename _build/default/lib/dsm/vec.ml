type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let new_cap = max 8 (max n (2 * cap)) in
    (* The dummy slots beyond [len] hold copies of element 0; they are
       never observed because every accessor bounds-checks on [len]. *)
    let data = Array.make new_cap v.data.(0) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if Array.length v.data = 0 then begin
    v.data <- Array.make 8 x;
    v.len <- 1;
    0
  end
  else begin
    ensure_capacity v (v.len + 1);
    v.data.(v.len) <- x;
    v.len <- v.len + 1;
    v.len - 1
  end

let check v i name =
  if i < 0 || i >= v.len then invalid_arg (Printf.sprintf "Vec.%s: index %d out of bounds (length %d)" name i v.len)

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let iter_range v ~from ~until f =
  let until = min until v.len in
  for i = max 0 from to until - 1 do
    f i v.data.(i)
  done

let iteri f v = iter_range v ~from:0 ~until:v.len f

let fold_left f acc v =
  let acc = ref acc in
  iteri (fun _ x -> acc := f !acc x) v;
  !acc

let to_list v = List.rev (fold_left (fun acc x -> x :: acc) [] v)

let to_array v = Array.init v.len (fun i -> v.data.(i))

let is_empty v = v.len = 0

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty" else v.data.(v.len - 1)

let clear v =
  v.data <- [||];
  v.len <- 0
