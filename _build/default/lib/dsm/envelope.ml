type 'm t = { src : Node_id.t; dst : Node_id.t; payload : 'm }

let make ~src ~dst payload = { src; dst; payload }

let is_loopback e = Node_id.equal e.src e.dst

let compare cmp a b =
  match Node_id.compare a.dst b.dst with
  | 0 -> (
      match Node_id.compare a.src b.src with
      | 0 -> cmp a.payload b.payload
      | c -> c)
  | c -> c

let equal eq a b =
  Node_id.equal a.src b.src && Node_id.equal a.dst b.dst
  && eq a.payload b.payload

let map f e = { src = e.src; dst = e.dst; payload = f e.payload }

let pp pp_payload ppf e =
  Format.fprintf ppf "@[%a->%a:%a@]" Node_id.pp e.src Node_id.pp e.dst
    pp_payload e.payload
