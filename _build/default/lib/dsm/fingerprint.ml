type t = string

let of_value v = Digest.string (Marshal.to_string v [])

let of_string s = Digest.string s

let combine fps = Digest.string (String.concat "" fps)

let equal = String.equal

let compare = String.compare

let size = 16

let serialized_size v = String.length (Marshal.to_string v [])

let to_hex t = Digest.to_hex t

let pp ppf t = Format.pp_print_string ppf (String.sub (to_hex t) 0 8)

module Set = Set.Make (String)
module Map = Map.Make (String)
