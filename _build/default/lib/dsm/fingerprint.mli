(** State and message fingerprints.

    Section 4.2: "To efficiently check for duplicate states, we use the
    hashes of the serialized states."  We serialise with [Marshal] and
    hash with MD5 ([Digest]), yielding a 16-byte binary string.

    Contract: fingerprinted values must be {e canonical pure data} — no
    closures, and logically-equal values must be structurally identical
    (e.g. use sorted association lists rather than balanced-tree maps,
    whose internal shape depends on insertion order). *)

type t = string

(** [of_value v] is the MD5 digest of the marshalled representation of
    [v].  Raises [Invalid_argument] if [v] contains functional values. *)
val of_value : 'a -> t

(** Digest of a raw string, for composing fingerprints of fingerprints. *)
val of_string : string -> t

(** [combine fps] fingerprints a list of fingerprints. *)
val combine : t list -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Number of bytes in a fingerprint (16). *)
val size : int

(** [serialized_size v] is the number of bytes [Marshal] uses for [v];
    the unit of our retained-memory accounting (Fig. 12). *)
val serialized_size : 'a -> int

(** Short hex form (first 8 hex digits), for traces and logs. *)
val pp : Format.formatter -> t -> unit

(** Full hex form. *)
val to_hex : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
