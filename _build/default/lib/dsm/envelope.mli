(** Network message envelopes.

    The paper represents an in-flight message as a pair [(N, M)] where
    [N] is the destination and [M] the remaining message content,
    including the sender (Fig. 5).  We keep the sender explicit, since
    every protocol we check needs it. *)

type 'm t = { src : Node_id.t; dst : Node_id.t; payload : 'm }

val make : src:Node_id.t -> dst:Node_id.t -> 'm -> 'm t

(** [is_loopback e] is true when [e.src = e.dst].  Lossy-network models
    never drop loopback messages (cf. the setup of section 5.5). *)
val is_loopback : 'm t -> bool

(** Lexicographic comparison given a payload comparison. *)
val compare : ('m -> 'm -> int) -> 'm t -> 'm t -> int

val equal : ('m -> 'm -> bool) -> 'm t -> 'm t -> bool

(** [map f e] transforms the payload, preserving the addressing.  Used
    by layered services (e.g. 1Paxos wrapping PaxosUtility traffic). *)
val map : ('m -> 'n) -> 'm t -> 'n t

val pp :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
