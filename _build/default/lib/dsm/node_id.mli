(** Node identifiers.

    The paper assumes a finite set of node identifiers [N] (e.g. IP
    addresses, Fig. 5).  We use dense integers [0 .. n-1] so that node
    state stores can be indexed by arrays. *)

type t = int

val equal : t -> t -> bool

val compare : t -> t -> int

(** [of_int i] checks that [i] is a valid (non-negative) identifier. *)
val of_int : int -> t

val to_int : t -> int

(** [all n] is the list of the [n] identifiers [0 .. n-1]. *)
val all : int -> t list

(** Prints as ["N0"], ["N1"], ... matching the paper's naming. *)
val pp : Format.formatter -> t -> unit
