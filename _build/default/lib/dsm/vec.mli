(** Growable arrays.

    OCaml 5.1 predates [Stdlib.Dynarray]; this is the small subset the
    model checkers need.  Node state stores and the shared network
    [I+] are append-only, which keeps cursor-based iteration sound:
    indices below a recorded length never move. *)

type 'a t

val create : unit -> 'a t

(** [length v] is the number of elements currently stored. *)
val length : 'a t -> int

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

(** [iter_range v ~from ~until f] applies [f] to indices
    [from .. until-1]. *)
val iter_range : 'a t -> from:int -> until:int -> (int -> 'a -> unit) -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

(** Fresh array with the current contents. *)
val to_array : 'a t -> 'a array

val is_empty : 'a t -> bool

(** Last element; raises [Invalid_argument] if empty. *)
val last : 'a t -> 'a

val clear : 'a t -> unit
