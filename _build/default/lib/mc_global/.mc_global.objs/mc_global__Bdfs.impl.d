lib/mc_global/bdfs.ml: Array Dsm Hashtbl List Net Unix
