lib/mc_global/bdfs.mli: Dsm Net
