(** Cartesian-product enumeration of candidate node states.

    System states are "created by combining the node states of
    different nodes in LS" (section 4.1).  This enumerator visits the
    product lazily so callers can stop at the first sound violation,
    prune by total depth, or exhaust a creation budget without
    materialising the whole product. *)

(** [iter candidates f] calls [f] with each tuple from the product of
    the candidate arrays (one array per node, every array non-empty).
    The tuple array is reused between calls; callers must copy it if
    they retain it.  Returns [`Stopped] as soon as [f] answers [`Stop],
    [`Done] otherwise.  An empty candidate array yields no tuples. *)
val iter :
  'a array array -> ('a array -> [ `Continue | `Stop ]) -> [ `Done | `Stopped ]

(** Number of tuples [iter] would visit. *)
val cardinal : 'a array array -> int
