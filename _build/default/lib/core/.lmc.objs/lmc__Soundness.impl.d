lib/core/soundness.ml: Array Buffer Digest Dsm Hashtbl List Option Printf
