lib/core/soundness.mli: Dsm
