lib/core/witness.ml: Array Buffer Dsm Format Hashtbl List Net Option Printf String
