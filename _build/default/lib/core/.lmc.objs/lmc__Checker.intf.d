lib/core/checker.mli: Dsm
