lib/core/checker.ml: Array Atomic Combination Domain Dsm Hashtbl List Soundness Unix
