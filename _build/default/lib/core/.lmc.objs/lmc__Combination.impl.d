lib/core/combination.ml: Array
