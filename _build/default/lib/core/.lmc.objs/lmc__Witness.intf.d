lib/core/witness.mli: Dsm
