lib/core/combination.mli:
