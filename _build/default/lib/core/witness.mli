(** Witness replay and minimisation.

    A confirmed violation comes with a schedule — a total order of
    events from the snapshot to the violating system state.  Soundness
    verification guarantees the schedule is executable, but not that it
    is small: the predecessor-DAG search returns the first valid
    interleaving, which can include events irrelevant to the violation.
    This module replays schedules under the real (global) semantics and
    shrinks them with delta debugging to a 1-minimal subsequence that
    still triggers the predicate — the form a developer wants to read.

    Used by the CLI's [--minimize] and by tests that validate reported
    schedules end to end. *)

module Make (P : Dsm.Protocol.S) : sig
  (** [replay ~init schedule] executes the schedule from the given node
      states under global semantics: deliveries consume in-flight
      messages, handlers send, and internal actions must be enabled at
      the node when they fire.  [None] when some step is infeasible
      (message not in flight, action not enabled, or a handler
      asserts). *)
  val replay :
    init:P.state array ->
    (P.message, P.action) Dsm.Trace.t ->
    P.state array option

  (** [minimize ~init ~predicate schedule] returns the smallest
      subsequence (by delta debugging, hence 1-minimal: removing any
      single remaining event breaks it) that still replays successfully
      to a state satisfying [predicate].  The input schedule must
      itself replay and satisfy the predicate; otherwise it is returned
      unchanged. *)
  val minimize :
    init:P.state array ->
    predicate:(P.state array -> bool) ->
    (P.message, P.action) Dsm.Trace.t ->
    (P.message, P.action) Dsm.Trace.t

  (** [to_dot ?init ?title schedule] renders the schedule as a
      Graphviz digraph shaped like a message sequence chart: one lane
      per node, one box per event in schedule order, and an arrow from
      each send to its delivery.  [init] is the system state the
      schedule starts from (default: the initial system); it is used
      only to pair sends with deliveries, so a wrong [init] degrades to
      missing arrows, never to an error.  Pipe through [dot -Tsvg] to
      view. *)
  val to_dot :
    ?init:P.state array ->
    ?title:string ->
    (P.message, P.action) Dsm.Trace.t ->
    string
end
