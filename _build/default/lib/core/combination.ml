let iter candidates f =
  let n = Array.length candidates in
  if n = 0 || Array.exists (fun c -> Array.length c = 0) candidates then `Done
  else begin
    let tuple = Array.map (fun c -> c.(0)) candidates in
    let stopped = ref false in
    let rec fill i =
      if !stopped then ()
      else if i = n then begin
        match f tuple with `Stop -> stopped := true | `Continue -> ()
      end
      else
        let c = candidates.(i) in
        let j = ref 0 in
        while (not !stopped) && !j < Array.length c do
          tuple.(i) <- c.(!j);
          fill (i + 1);
          incr j
        done
    in
    fill 0;
    if !stopped then `Stopped else `Done
  end

let cardinal candidates =
  Array.fold_left (fun acc c -> acc * Array.length c) 1 candidates
