(* §5.6 end to end: online model checking finds a new bug in 1Paxos.

   1Paxos keeps a single active acceptor; the global leader and the
   active acceptor are published through the PaxosUtility consensus
   (implemented here, as in the paper, with Paxos itself).  The
   injected bug is the paper's literal one: the initialisation used
   [acceptor = *(members.begin()++)] — the postfix increment returns
   the first member — so every node's cached acceptor is node 0, the
   initial leader, instead of node 1.

   The manifestation: a node that lost leadership without noticing
   (its utility traffic was dropped) proposes straight to its cached
   acceptor — itself — accepts its own proposal, receives its own
   loopback Learn1, and chooses a value the rest of the system never
   saw.  The fault detector (a Claim_leadership internal action fired
   by the live driver) provides the leadership churn. *)

module Config = struct
  let num_nodes = 3
  let max_leader_claims = 2
  let max_attempts = 1
  let max_index = 12
  let max_util_entries = 3
  let max_util_attempts = 2
  let bug = Protocols.Onepaxos.Postfix_increment
end

module Onepaxos = Protocols.Onepaxos.Make (Config)
module Online = Online.Online_mc.Make (Onepaxos) (Onepaxos)
module Sim_p = Sim.Live_sim.Make (Onepaxos)

let () =
  let link =
    Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()
  in
  let config =
    {
      Online.sim =
        {
          Sim_p.seed = 9;
          link;
          timer_min = 2.0;
          timer_max = 20.0;
          (* "the application instead of proposing a value triggers the
             fault detector with the probability of 0.1" (§5.6) *)
          action_prob =
            Some
              (fun _ action ->
                match action with
                | Protocols.Onepaxos.Claim_leadership -> 0.1
                | _ -> 1.0);
          faults = Fault.Plan.empty;
        };
      check_interval = 10.0;
      max_live_time = 3600.0;
      checker =
        {
          Online.Checker.default_config with
          time_limit = Some 5.0;
          max_transitions = Some 100_000;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = Online.default_supervisor;
      store = None;
    }
  in
  let strategy =
    Online.Checker.Invariant_specific
      { abstract = Onepaxos.abstraction; conflict = Onepaxos.conflicts }
  in
  Format.printf
    "Hunting the §5.6 1Paxos bug online (3 nodes, fault detector, \
     LMC-OPT)...@.@.";
  let outcome = Online.run config ~strategy ~invariant:Onepaxos.safety in
  match outcome.report with
  | None ->
      Format.printf "no violation found within %.0f simulated seconds@."
        config.max_live_time;
      exit 1
  | Some report ->
      Format.printf "%a@." Online.pp_report report;
      Format.printf
        "@.LMC runs: %d, total checking time: %.2fs, revealing run: %.3fs \
         (%d transitions, %d node states, %d soundness checks)@."
        outcome.total_checks outcome.total_check_time
        report.result.Online.Checker.elapsed
        report.result.Online.Checker.transitions
        report.result.Online.Checker.total_node_states
        report.result.Online.Checker.soundness_calls
