(* §5.5 end to end: online model checking finds the WiDS-reported bug
   in a Paxos implementation.

   The injected bug: "once the leader receives the PrepareResponse
   message from a majority of nodes, it creates the Accept request by
   using the submitted value from the last PrepareResponse message
   instead of the PrepareResponse message with highest round number."

   Setup mirrors the paper: three nodes, each proposing its own
   identity then sleeping, over a lossy link that drops 30% of
   non-loopback messages; the online framework snapshots the live
   system periodically and restarts LMC (with the Paxos-specific
   LMC-OPT strategy) from each snapshot.  The live deployment keeps
   proposing for fresh indices; the checker-side test driver focuses on
   contended indices only, per §4.2.  The installed invariant is the
   original Paxos invariant: no two nodes choose different values. *)

module Common = struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 16
  let bug = Protocols.Paxos_core.Last_response_wins
end

module Live = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
end)

module Check = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
end)

module Online = Online.Online_mc.Make (Live) (Check)
module Sim_p = Sim.Live_sim.Make (Live)

let () =
  let link =
    Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()
  in
  let config =
    {
      Online.sim = { Sim_p.seed = 7; link; timer_min = 2.0; timer_max = 20.0; action_prob = None; faults = Fault.Plan.empty };
      check_interval = 30.0;
      max_live_time = 3600.0;
      checker =
        {
          Online.Checker.default_config with
          time_limit = Some 5.0;
          max_transitions = Some 100_000;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = Online.default_supervisor;
      store = None;
    }
  in
  let strategy =
    Online.Checker.Invariant_specific
      { abstract = Check.abstraction; conflict = Check.conflicts }
  in
  Format.printf
    "Hunting the §5.5 Paxos bug online (3 nodes, 30%% drop, LMC-OPT)...@.@.";
  let outcome = Online.run config ~strategy ~invariant:Check.safety in
  match outcome.report with
  | None ->
      Format.printf "no violation found within %.0f simulated seconds@."
        config.max_live_time;
      exit 1
  | Some report ->
      Format.printf "%a@." Online.pp_report report;
      Format.printf
        "@.LMC runs: %d, total checking time: %.2fs, revealing run: %.3fs \
         (%d transitions, %d node states, %d soundness checks)@."
        outcome.total_checks outcome.total_check_time
        report.result.Online.Checker.elapsed
        report.result.Online.Checker.transitions
        report.result.Online.Checker.total_node_states
        report.result.Online.Checker.soundness_calls
