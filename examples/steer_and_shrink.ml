(* Prevention, not just detection.

   The paper builds LMC to power CrystalBall-style online checking;
   CrystalBall's headline is *preventing* inconsistencies, not only
   reporting them.  This example closes that loop on the §5.6 1Paxos
   bug:

   1. run the buggy system with plain online checking — the violation
      is predicted and reported;
   2. shrink the witness with delta debugging and render it as a
      Graphviz sequence chart;
   3. run the same system with execution steering on — every predicted
      trigger is vetoed in the live deployment, and the live system
      never reaches a violating state. *)

module Config = struct
  let num_nodes = 3
  let max_leader_claims = 2
  let max_attempts = 1
  let max_index = 12
  let max_util_entries = 3
  let max_util_attempts = 2
  let bug = Protocols.Onepaxos.Postfix_increment
end

module OP = Protocols.Onepaxos.Make (Config)
module Online_op = Online.Online_mc.Make (OP) (OP)
module Sim_op = Sim.Live_sim.Make (OP)
module W = Lmc.Witness.Make (OP)

let config ~steer =
  {
    Online_op.sim =
      {
        Sim_op.seed = 9;
        link =
          Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05
            ~latency_max:0.3 ();
        (* the checker must outpace the drivers for steering to win the
           prediction race *)
        timer_min = 20.0;
        timer_max = 40.0;
        action_prob =
          Some
            (fun _ a ->
              match a with
              | Protocols.Onepaxos.Claim_leadership -> 0.1
              | _ -> 1.0);
        faults = Fault.Plan.empty;
      };
    check_interval = 5.0;
    max_live_time = 300.0;
    checker =
      {
        Online_op.Checker.default_config with
        time_limit = Some 2.0;
        max_transitions = Some 50_000;
      };
    action_bounds = [ 1; 2 ];
    steer;
    steer_scope = `Node;
    supervisor = Online_op.default_supervisor;
    store = None;
  }

let strategy =
  Online_op.Checker.Invariant_specific
    { abstract = OP.abstraction; conflict = OP.conflicts }

let () =
  Format.printf "== 1. detection (plain online checking) ==@.";
  let plain = Online_op.run (config ~steer:false) ~strategy ~invariant:OP.safety in
  (match plain.report with
  | None ->
      Format.printf "no violation predicted — try another seed@.";
      exit 1
  | Some report ->
      Format.printf "predicted after %.0f simulated seconds:@.  %a@."
        report.live_time Dsm.Invariant.pp_violation
        report.violation.Online_op.Checker.violation;

      Format.printf "@.== 2. shrink and render the witness ==@.";
      let snapshot = report.snapshot in
      let predicate sys = Dsm.Invariant.check OP.safety sys <> None in
      let minimal =
        W.minimize ~init:snapshot ~predicate
          report.violation.Online_op.Checker.schedule
      in
      Format.printf "witness: %d events, minimal: %d events@."
        (List.length report.violation.Online_op.Checker.schedule)
        (List.length minimal);
      Format.printf "%a"
        (Dsm.Trace.pp ~pp_message:OP.pp_message ~pp_action:OP.pp_action)
        minimal;
      let dot = W.to_dot ~init:snapshot ~title:"1paxos bug" minimal in
      let path = Filename.temp_file "onepaxos_witness" ".dot" in
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Format.printf "sequence chart written to %s@." path);

  Format.printf "@.== 3. prevention (execution steering) ==@.";
  let steered = Online_op.run (config ~steer:true) ~strategy ~invariant:OP.safety in
  List.iter
    (fun (n, a) ->
      Format.printf "vetoed %a at %a@." OP.pp_action a Dsm.Node_id.pp n)
    steered.vetoed;
  match steered.live_violation_time with
  | None ->
      Format.printf
        "the live system ran %.0f simulated seconds and NEVER violated the \
         invariant.@."
        300.0
  | Some t ->
      Format.printf
        "steering lost the prediction race: live violation at %.0f s@." t
