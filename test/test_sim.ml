(* Tests for the deterministic discrete-event simulator. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:123 and b = Sim.Rng.create ~seed:123 in
  for _ = 1 to 100 do
    if Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b then
      fail "same seed diverged"
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  check Alcotest.bool "different seeds differ" true
    (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b)

let test_rng_float_range () =
  let r = Sim.Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.float r in
    if not (x >= 0. && x < 1.) then fail "float out of [0,1)"
  done

let test_rng_int_bounds () =
  let r = Sim.Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let x = Sim.Rng.int r 10 in
    if x < 0 || x >= 10 then fail "int out of bounds"
  done;
  match Sim.Rng.int r 0 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero bound accepted"

let test_rng_split_independent () =
  let root = Sim.Rng.create ~seed:5 in
  let a = Sim.Rng.split root and b = Sim.Rng.split root in
  check Alcotest.bool "split streams differ" true
    (Sim.Rng.next_int64 a <> Sim.Rng.next_int64 b)

let test_rng_pick () =
  let r = Sim.Rng.create ~seed:3 in
  for _ = 1 to 100 do
    let x = Sim.Rng.pick r [ "a"; "b"; "c" ] in
    if not (List.mem x [ "a"; "b"; "c" ]) then fail "pick outside list"
  done;
  match Sim.Rng.pick r [] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty pick accepted"

let test_rng_bool_extremes () =
  let r = Sim.Rng.create ~seed:4 in
  for _ = 1 to 50 do
    if Sim.Rng.bool r ~prob:0.0 then fail "p=0 fired";
    if not (Sim.Rng.bool r ~prob:1.0) then fail "p=1 missed"
  done

let test_rng_range () =
  let r = Sim.Rng.create ~seed:8 in
  for _ = 1 to 100 do
    let x = Sim.Rng.range r 2.0 5.0 in
    if not (x >= 2.0 && x < 5.0) then fail "range out of bounds"
  done

(* ---------- Event_queue ---------- *)

let test_queue_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:3.0 "c";
  Sim.Event_queue.push q ~time:1.0 "a";
  Sim.Event_queue.push q ~time:2.0 "b";
  check Alcotest.int "length" 3 (Sim.Event_queue.length q);
  check Alcotest.(option (float 0.)) "peek" (Some 1.0)
    (Sim.Event_queue.peek_time q);
  let pops = List.init 3 (fun _ -> Sim.Event_queue.pop q) in
  check
    Alcotest.(list (option (pair (float 0.) string)))
    "sorted" [ Some (1.0, "a"); Some (2.0, "b"); Some (3.0, "c") ] pops;
  check Alcotest.bool "drained" true (Sim.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:1.0 "first";
  Sim.Event_queue.push q ~time:1.0 "second";
  Sim.Event_queue.push q ~time:1.0 "third";
  let order =
    List.filter_map (fun x -> Option.map snd x)
      (List.init 3 (fun _ -> Sim.Event_queue.pop q))
  in
  check Alcotest.(list string) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_queue_random () =
  let q = Sim.Event_queue.create () in
  let r = Sim.Rng.create ~seed:99 in
  let times = List.init 500 (fun _ -> Sim.Rng.float r) in
  List.iter (fun t -> Sim.Event_queue.push q ~time:t ()) times;
  let rec drain last acc =
    match Sim.Event_queue.pop q with
    | None -> acc
    | Some (t, ()) ->
        if t < last then fail "heap order violated";
        drain t (acc + 1)
  in
  check Alcotest.int "all popped" 500 (drain neg_infinity 0)

(* ---------- Live_sim on ping ---------- *)

module Ping = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module Sim_ping = Sim.Live_sim.Make (Ping)

let reliable_config seed =
  {
    Sim_ping.seed;
    link = Net.Lossy_link.reliable;
    timer_min = 0.5;
    timer_max = 1.5;
    action_prob = None;
    faults = Fault.Plan.empty;
  }

let test_sim_runs_ping () =
  let sim = Sim_ping.create (reliable_config 42) in
  Sim_ping.run_until sim 20.0;
  let states = Sim_ping.states sim in
  check Alcotest.bool "client pinged" true states.(0).Protocols.Ping.pinged;
  check Alcotest.int "both pongs" 2
    (List.length states.(0).Protocols.Ping.pongs);
  check Alcotest.bool "servers served" true
    (states.(1).Protocols.Ping.served && states.(2).Protocols.Ping.served);
  check Alcotest.int "4 messages" 4 (Sim_ping.messages_sent sim);
  check Alcotest.int "no drops" 0 (Sim_ping.messages_dropped sim)

let test_sim_deterministic_replay () =
  let run seed =
    let sim = Sim_ping.create (reliable_config seed) in
    Sim_ping.run_until sim 10.0;
    (Sim_ping.states sim, Sim_ping.events_executed sim)
  in
  let a = run 7 and b = run 7 in
  check Alcotest.bool "same states" true (fst a = fst b);
  check Alcotest.int "same event count" (snd a) (snd b)

let test_sim_lossy_drops () =
  let link =
    Net.Lossy_link.create ~drop_prob:0.5 ~latency_min:0.01 ~latency_max:0.05 ()
  in
  let sim =
    Sim_ping.create
      { Sim_ping.seed = 1; link; timer_min = 0.5; timer_max = 1.5;
        action_prob = None; faults = Fault.Plan.empty }
  in
  Sim_ping.run_until sim 50.0;
  check Alcotest.bool "some drops" true (Sim_ping.messages_dropped sim > 0)

let test_sim_clock_advances () =
  let sim = Sim_ping.create (reliable_config 3) in
  Sim_ping.run_until sim 5.0;
  check (Alcotest.float 1e-9) "clock at deadline" 5.0 (Sim_ping.now sim);
  Sim_ping.run_until sim 9.0;
  check (Alcotest.float 1e-9) "clock advanced" 9.0 (Sim_ping.now sim)

let test_sim_snapshot () =
  let sim = Sim_ping.create (reliable_config 4) in
  Sim_ping.run_until sim 3.0;
  let snap = Sim_ping.snapshot sim in
  check (Alcotest.float 1e-9) "snapshot time" 3.0 snap.Sim.Snapshot.time;
  check Alcotest.int "snapshot width" 3 (Array.length snap.Sim.Snapshot.states);
  (* snapshot is a copy: later simulation must not mutate it *)
  let before = snap.Sim.Snapshot.states.(0) in
  Sim_ping.run_until sim 20.0;
  check Alcotest.bool "copy isolated" true
    (before = snap.Sim.Snapshot.states.(0))

let test_sim_action_prob_zero () =
  let sim =
    Sim_ping.create
      {
        Sim_ping.seed = 5;
        link = Net.Lossy_link.reliable;
        timer_min = 0.5;
        timer_max = 1.5;
        action_prob = Some (fun _ _ -> 0.0);
        faults = Fault.Plan.empty;
      }
  in
  Sim_ping.run_until sim 20.0;
  let states = Sim_ping.states sim in
  check Alcotest.bool "suppressed driver never pings" false
    states.(0).Protocols.Ping.pinged

let test_sim_config_validation () =
  match
    Sim_ping.create
      { Sim_ping.seed = 1; link = Net.Lossy_link.reliable; timer_min = 0.;
        timer_max = 1.; action_prob = None; faults = Fault.Plan.empty }
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero timer_min accepted"

let test_snapshot_initial () =
  let snap = Sim.Snapshot.initial (module Ping) in
  check (Alcotest.float 0.) "time zero" 0.0 snap.Sim.Snapshot.time;
  check Alcotest.int "width" 3 (Array.length snap.Sim.Snapshot.states)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "bool extremes" `Quick test_rng_bool_extremes;
          Alcotest.test_case "range" `Quick test_rng_range;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "random heap" `Quick test_queue_random;
        ] );
      ( "live_sim",
        [
          Alcotest.test_case "ping completes" `Quick test_sim_runs_ping;
          Alcotest.test_case "deterministic replay" `Quick
            test_sim_deterministic_replay;
          Alcotest.test_case "lossy drops" `Quick test_sim_lossy_drops;
          Alcotest.test_case "clock" `Quick test_sim_clock_advances;
          Alcotest.test_case "snapshot" `Quick test_sim_snapshot;
          Alcotest.test_case "action_prob 0" `Quick test_sim_action_prob_zero;
          Alcotest.test_case "config validation" `Quick
            test_sim_config_validation;
          Alcotest.test_case "initial snapshot" `Quick test_snapshot_initial;
        ] );
    ]
