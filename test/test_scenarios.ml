(* Tests for the canned live-state scenarios and a FIFO + simulator
   integration pass. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- §5.5 snapshot builder ---------- *)

module Paxos = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 4
  let fresh_proposals = false
  let bug = Protocols.Paxos_core.Last_response_wins
end)

let test_wids_snapshot_shape () =
  let s = Protocols.Scenarios.wids_snapshot (module Paxos) in
  check Alcotest.int "three nodes" 3 (Array.length s);
  (* "node N1 has proposed value v1, nodes N1 and N2 have accepted this
     proposal, but due to message losses only N1 has learned it" *)
  check Alcotest.(option int) "node 1 chose its value" (Some 2)
    (Protocols.Paxos_core.chosen s.(1).Protocols.Paxos.core 0);
  (match Protocols.Paxos_core.has_accepted s.(2).Protocols.Paxos.core 0 with
  | Some (_, 2) -> ()
  | _ -> fail "node 2 must have accepted node 1's value");
  check Alcotest.(option int) "node 2 has not learned" None
    (Protocols.Paxos_core.chosen s.(2).Protocols.Paxos.core 0);
  check Alcotest.(option int) "node 0 saw nothing" None
    (Protocols.Paxos_core.chosen s.(0).Protocols.Paxos.core 0);
  check Alcotest.int "node 0 untouched acceptor" 0
    (Protocols.Paxos_core.promised s.(0).Protocols.Paxos.core 0)

let test_wids_snapshot_deterministic () =
  let a = Protocols.Scenarios.wids_snapshot (module Paxos) in
  let b = Protocols.Scenarios.wids_snapshot (module Paxos) in
  check Alcotest.bool "replayable" true (a = b)

(* ---------- §5.6 snapshot builder ---------- *)

module OP = Protocols.Onepaxos.Make (struct
  let num_nodes = 3
  let max_leader_claims = 1
  let max_attempts = 1
  let max_index = 2
  let max_util_entries = 2
  let max_util_attempts = 2
  let bug = Protocols.Onepaxos.Postfix_increment
end)

let test_onepaxos_snapshot_shape () =
  let s = Protocols.Scenarios.onepaxos_snapshot (module OP) in
  check Alcotest.bool "node 0 still believes it leads" true
    s.(0).Protocols.Onepaxos.is_leader;
  check Alcotest.int "node 0 keeps the buggy cached acceptor" 0
    s.(0).Protocols.Onepaxos.acceptor;
  check Alcotest.bool "node 2 actually leads" true
    s.(2).Protocols.Onepaxos.is_leader;
  check Alcotest.(option int) "nodes 1,2 chose" (Some 3)
    (List.assoc_opt 0 s.(1).Protocols.Onepaxos.chosen);
  check Alcotest.(option int) "node 0 did not" None
    (List.assoc_opt 0 s.(0).Protocols.Onepaxos.chosen)

(* the snapshots drive the headline detections: quick end-to-end *)
let test_snapshots_drive_detection () =
  let module L = Lmc.Checker.Make (Paxos) in
  let r =
    L.run
      { L.default_config with
        time_limit = Some 30.0;
        local_action_bound = Some 1 }
      ~strategy:
        (L.Invariant_specific
           { abstract = Paxos.abstraction; conflict = Paxos.conflicts })
      ~invariant:Paxos.safety
      (Protocols.Scenarios.wids_snapshot (module Paxos))
  in
  check Alcotest.bool "wids snapshot reveals the bug" true
    (r.sound_violation <> None);
  let module LO = Lmc.Checker.Make (OP) in
  let r =
    LO.run
      { LO.default_config with
        time_limit = Some 10.0;
        local_action_bound = Some 1 }
      ~strategy:
        (LO.Invariant_specific
           { abstract = OP.abstraction; conflict = OP.conflicts })
      ~invariant:OP.safety
      (Protocols.Scenarios.onepaxos_snapshot (module OP))
  in
  check Alcotest.bool "1paxos snapshot reveals the bug" true
    (r.sound_violation <> None)

(* ---------- FIFO wrapper under the live simulator ---------- *)

module Ping = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module Fifo_ping = Protocols.Fifo.Make (Ping)
module Sim_fp = Sim.Live_sim.Make (Fifo_ping)

let test_fifo_live_integration () =
  (* over a RELIABLE link the FIFO wrapper is transparent: the wrapped
     ping run completes exactly like the plain one *)
  let sim =
    Sim_fp.create
      {
        Sim_fp.seed = 42;
        link = Net.Lossy_link.reliable;
        timer_min = 0.5;
        timer_max = 1.5;
        action_prob = None;
        faults = Fault.Plan.empty;
      }
  in
  Sim_fp.run_until sim 20.0;
  let states = Sim_fp.states sim in
  (match states.(0).Protocols.Fifo.inner with
  | { Protocols.Ping.pongs; _ } ->
      check Alcotest.int "both pongs through FIFO channels" 2
        (List.length pongs));
  check Alcotest.int "no drops" 0 (Sim_fp.messages_dropped sim);
  (* channel counters advanced *)
  check Alcotest.bool "client stamped its pings" true
    (states.(0).Protocols.Fifo.next_out <> [])

let () =
  Alcotest.run "scenarios"
    [
      ( "wids",
        [
          Alcotest.test_case "shape" `Quick test_wids_snapshot_shape;
          Alcotest.test_case "deterministic" `Quick
            test_wids_snapshot_deterministic;
        ] );
      ( "onepaxos",
        [ Alcotest.test_case "shape" `Quick test_onepaxos_snapshot_shape ] );
      ( "end-to-end",
        [
          Alcotest.test_case "snapshots reveal the bugs" `Slow
            test_snapshots_drive_detection;
        ] );
      ( "fifo-live",
        [
          Alcotest.test_case "integration" `Quick test_fifo_live_integration;
        ] );
    ]
