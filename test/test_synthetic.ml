(* Cross-checker property tests over randomly generated protocols.

   These exercise the paper's two meta-level claims on arbitrary
   (terminating) protocol behaviours:

   - Completeness: every system state the global checker reaches is
     confirmed reachable by LMC (a trigger invariant on that exact
     state yields a sound violation).
   - Soundness: every violation LMC confirms names a system state the
     global checker also reaches, and its witness schedule replays to
     that state under the real (global) semantics. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* Instantiate a synthetic protocol for a seed and exhaust its global
   state space, collecting all reachable system states. *)
module type INSTANCE = sig
  module P :
    Dsm.Protocol.S
      with type state = int
       and type message = int
       and type action = unit

  val reachable : unit -> int array list
end

let instance seed : (module INSTANCE) =
  (module struct
    module P = Protocols.Synthetic.Make (struct
      let seed = seed
      let num_nodes = 3
      let max_state = 4
      let kinds = 2
    end)

    module G = Mc_global.Bdfs.Make (P)

    let reachable () =
      let seen = Hashtbl.create 256 in
      let record sys =
        let key = Dsm.Fingerprint.of_value sys in
        if not (Hashtbl.mem seen key) then Hashtbl.replace seen key sys
      in
      let module Obs = struct
        let inv = P.observer record
      end in
      let o =
        G.run G.default_config ~invariant:Obs.inv
          (Dsm.Protocol.initial_system (module P))
      in
      if not o.completed then fail "synthetic global space not exhausted";
      Hashtbl.fold (fun _ sys acc -> sys :: acc) seen []
  end)

(* Generic replay of a witness schedule under the global semantics. *)
let replays (type s m a)
    (module P : Dsm.Protocol.S
      with type state = s and type message = m and type action = a)
    (schedule : (m, a) Dsm.Trace.t) : s array option =
  let states = Dsm.Protocol.initial_system (module P) in
  let net = ref Net.Multiset.empty in
  try
    List.iter
      (fun step ->
        match step with
        | Dsm.Trace.Execute (n, act) ->
            let s', out = P.handle_action ~self:n states.(n) act in
            states.(n) <- s';
            net := Net.Multiset.add_list out !net
        | Dsm.Trace.Deliver env ->
            (match Net.Multiset.remove env !net with
            | Some net' -> net := net'
            | None -> raise Exit);
            let node = env.Dsm.Envelope.dst in
            let s', out = P.handle_message ~self:node states.(node) env in
            states.(node) <- s';
            net := Net.Multiset.add_list out !net
        | Dsm.Trace.Crash n ->
            states.(n) <- P.on_recover ~self:n states.(n))
      schedule;
    Some states
  with Exit -> None

(* The completeness theorem holds for the exact algorithm; the paper's
   implementation (and ours, by default) trades a sliver of it away for
   the keep-first history simplification of 4.2 ("we decided to favor
   simplicity over completeness here").  The property therefore runs
   with [use_history = false] — the exact regime; the regression test
   below pins the documented gap. *)
let completeness_for_seed seed =
  let module I = (val instance seed) in
  let module L = Lmc.Checker.Make (I.P) in
  let reachable = I.reachable () in
  List.for_all
    (fun target ->
      let trigger =
        Dsm.Invariant.make ~name:"is-target" (fun sys ->
            if sys = target then Some "reached" else None)
      in
      let r =
        (* the exact regime: no history simplification, no caps *)
        L.run
          {
            L.default_config with
            use_history = false;
            max_preds_per_entry = max_int;
            soundness_budget = 50_000_000;
          }
          ~strategy:L.General ~invariant:trigger
          (Dsm.Protocol.initial_system (module I.P))
      in
      match r.sound_violation with
      | Some v -> v.system = target
      | None -> false)
    reachable

let soundness_for_seed seed =
  let module I = (val instance seed) in
  let module L = Lmc.Checker.Make (I.P) in
  let reachable = I.reachable () in
  let is_reachable sys = List.exists (fun s -> s = sys) reachable in
  (* a family of triggers that fire on many combinations, most of them
     invalid: sum and max thresholds over the node states *)
  let triggers =
    [
      Dsm.Invariant.make ~name:"sum>=6" (fun sys ->
          if Array.fold_left ( + ) 0 sys >= 6 then Some "hit" else None);
      Dsm.Invariant.make ~name:"two-maxed" (fun sys ->
          let maxed = Array.fold_left (fun acc s -> if s >= 4 then acc + 1 else acc) 0 sys in
          if maxed >= 2 then Some "hit" else None);
      Dsm.Invariant.make ~name:"all-moved" (fun sys ->
          if Array.for_all (fun s -> s > 0) sys then Some "hit" else None);
    ]
  in
  List.for_all
    (fun trigger ->
      let r =
        L.run
          { L.default_config with stop_on_violation = true }
          ~strategy:L.General ~invariant:trigger
          (Dsm.Protocol.initial_system (module I.P))
      in
      match r.sound_violation with
      | None ->
          (* nothing reported: nothing to verify here.  (Whether a
             satisfying state exists is the completeness question,
             which holds only in the exact regime — see
             prop_completeness; under the default history
             simplification rare seeds legitimately miss states.) *)
          true
      | Some v ->
          (* the confirmed state must be globally reachable AND the
             witness must replay to it *)
          is_reachable v.system
          &&
          (match replays (module I.P) v.schedule with
          | Some final -> final = v.system
          | None -> false))
    triggers

let prop_completeness =
  QCheck.Test.make ~count:25 ~name:"LMC confirms every B-DFS-reachable state"
    QCheck.(int_range 0 10_000)
    completeness_for_seed

let prop_soundness =
  QCheck.Test.make ~count:25
    ~name:"LMC verdicts are globally reachable and replayable"
    QCheck.(int_range 0 10_000)
    soundness_for_seed

(* Regression: seed 8614 demonstrates the 4.2 history-simplification
   incompleteness — a reachable state is missed with histories on and
   found with histories off.  If this test starts failing because the
   default run FINDS all states, the history handling has been upgraded
   and both this test and the documentation should be revisited. *)
let test_history_incompleteness_pinned () =
  let module I = (val instance 8614) in
  let module L = Lmc.Checker.Make (I.P) in
  let reachable = I.reachable () in
  let confirm cfg target =
    let trigger =
      Dsm.Invariant.make ~name:"is-target" (fun sys ->
          if sys = target then Some "reached" else None)
    in
    let r =
      L.run cfg ~strategy:L.General ~invariant:trigger
        (Dsm.Protocol.initial_system (module I.P))
    in
    match r.sound_violation with Some v -> v.system = target | None -> false
  in
  let missed_with_history =
    List.filter (fun t -> not (confirm L.default_config t)) reachable
  in
  check Alcotest.bool "history simplification misses some states" true
    (missed_with_history <> []);
  check Alcotest.bool "all recovered without histories" true
    (List.for_all
       (confirm { L.default_config with use_history = false })
       missed_with_history)

(* determinism: the same seed gives the same protocol *)
let test_deterministic () =
  let module A = Protocols.Synthetic.Make (struct
    let seed = 99
    let num_nodes = 3
    let max_state = 4
    let kinds = 2
  end) in
  let module B = Protocols.Synthetic.Make (struct
    let seed = 99
    let num_nodes = 3
    let max_state = 4
    let kinds = 2
  end) in
  let env = Dsm.Envelope.make ~src:1 ~dst:2 0 in
  for s = 0 to 4 do
    if A.handle_message ~self:2 s env <> B.handle_message ~self:2 s env then
      fail "same seed diverged"
  done;
  let module C = Protocols.Synthetic.Make (struct
    let seed = 100
    let num_nodes = 3
    let max_state = 4
    let kinds = 2
  end) in
  let differs = ref false in
  for s = 0 to 4 do
    for k = 0 to 1 do
      let e = Dsm.Envelope.make ~src:0 ~dst:1 k in
      if A.handle_message ~self:1 s e <> C.handle_message ~self:1 s e then
        differs := true
    done
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_terminating () =
  (* every instance's global space is finite and exhaustible *)
  List.iter
    (fun seed ->
      let module I = (val instance seed) in
      ignore (I.reachable ()))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "synthetic"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "terminating" `Quick test_terminating;
        ] );
      ( "meta-theorems",
        Alcotest.test_case "history gap pinned" `Quick
          test_history_incompleteness_pinned
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_completeness; prop_soundness ] );
    ]
