(* Tests for lib/par: work-stealing deque, striped table, domain pool,
   and the end-to-end determinism contract (parallel == sequential,
   bit for bit) of the checkers wired through it. *)

let check = Alcotest.check

(* ---------- Chase–Lev deque ---------- *)

let test_deque_lifo () =
  let q = Par.Deque.create ~capacity:2 () in
  for i = 0 to 99 do
    Par.Deque.push q i
  done;
  check Alcotest.int "length" 100 (Par.Deque.length q);
  for i = 99 downto 0 do
    check Alcotest.(option int) "pop order" (Some i) (Par.Deque.pop q)
  done;
  check Alcotest.(option int) "empty" None (Par.Deque.pop q);
  check Alcotest.int "length empty" 0 (Par.Deque.length q)

let test_deque_steal_fifo () =
  let q = Par.Deque.create () in
  for i = 0 to 9 do
    Par.Deque.push q i
  done;
  (* Thieves take the oldest end. *)
  check Alcotest.(option int) "steal 0" (Some 0) (Par.Deque.steal q);
  check Alcotest.(option int) "steal 1" (Some 1) (Par.Deque.steal q);
  check Alcotest.(option int) "pop 9" (Some 9) (Par.Deque.pop q)

(* Owner pushes and pops; three thieves steal concurrently; every
   pushed value must be consumed exactly once. *)
let test_deque_concurrent () =
  let q = Par.Deque.create ~capacity:4 () in
  let n = 20_000 in
  let stop = Atomic.make false in
  let stolen = Array.init 3 (fun _ -> ref []) in
  let thieves =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            let acc = stolen.(i) in
            while not (Atomic.get stop) do
              match Par.Deque.steal q with
              | Some v -> acc := v :: !acc
              | None -> Domain.cpu_relax ()
            done;
            (* final drain *)
            let rec drain () =
              match Par.Deque.steal q with
              | Some v ->
                  acc := v :: !acc;
                  drain ()
              | None -> ()
            in
            drain ()))
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Par.Deque.push q i;
    (* Pop roughly every third push to exercise the owner/thief race
       on the last element. *)
    if i mod 3 = 0 then
      match Par.Deque.pop q with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Par.Deque.pop q with
    | Some v ->
        popped := v :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let all =
    !popped @ List.concat_map (fun r -> !r) (Array.to_list stolen)
  in
  check Alcotest.int "every element consumed exactly once" n
    (List.length all);
  let sorted = List.sort compare all in
  check Alcotest.bool "no duplicates, no losses" true
    (List.mapi (fun i v -> i = v) sorted |> List.for_all Fun.id)

(* ---------- striped table ---------- *)

let test_shard_tbl_basic () =
  let t = Par.Shard_tbl.create ~shards:4 16 in
  check Alcotest.int "shards rounded to power of two" 4
    (Par.Shard_tbl.shard_count t);
  check Alcotest.bool "fresh insert" true (Par.Shard_tbl.add_if_absent t "a" 1);
  check Alcotest.bool "duplicate insert" false
    (Par.Shard_tbl.add_if_absent t "a" 2);
  check Alcotest.(option int) "first value wins" (Some 1)
    (Par.Shard_tbl.find_opt t "a");
  Par.Shard_tbl.replace t "a" 3;
  check Alcotest.(option int) "replace" (Some 3) (Par.Shard_tbl.find_opt t "a");
  check Alcotest.int "length" 1 (Par.Shard_tbl.length t);
  Par.Shard_tbl.clear t;
  check Alcotest.int "cleared" 0 (Par.Shard_tbl.length t)

(* Four domains hammer a deliberately under-sized table (forcing many
   internal Hashtbl resizes) with overlapping key ranges; add_if_absent
   must admit each key exactly once. *)
let test_shard_tbl_concurrent () =
  let t = Par.Shard_tbl.create ~shards:8 8 in
  let keys_per_domain = 5_000 in
  let overlap = 2_500 in
  let wins = Array.init 4 (fun _ -> Atomic.make 0) in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            let base = d * (keys_per_domain - overlap) in
            for k = base to base + keys_per_domain - 1 do
              if Par.Shard_tbl.add_if_absent t k d then
                Atomic.incr wins.(d)
            done))
  in
  Array.iter Domain.join domains;
  let distinct = 4 * (keys_per_domain - overlap) + overlap in
  let total_wins =
    Array.fold_left (fun acc w -> acc + Atomic.get w) 0 wins
  in
  check Alcotest.int "each key admitted exactly once" distinct total_wins;
  check Alcotest.int "table length matches" distinct (Par.Shard_tbl.length t);
  (* Every key present and owned by exactly one writer. *)
  for k = 0 to distinct - 1 do
    if Par.Shard_tbl.find_opt t k = None then
      Alcotest.failf "key %d missing" k
  done

(* ---------- pool ---------- *)

let test_pool_tabulate () =
  Par.Pool.with_pool 4 (fun pool ->
      check Alcotest.int "domains" 4 (Par.Pool.domains pool);
      let n = 10_000 in
      let out = Par.Pool.tabulate pool ~chunk:8 n (fun i -> i * i) in
      check Alcotest.int "size" n (Array.length out);
      for i = 0 to n - 1 do
        if out.(i) <> i * i then Alcotest.failf "slot %d wrong" i
      done;
      check Alcotest.(array int) "empty tabulate" [||]
        (Par.Pool.tabulate pool 0 (fun i -> i)))

let test_pool_run_all_indices () =
  Par.Pool.with_pool 3 (fun pool ->
      let n = 4_097 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Par.Pool.run pool ~chunk:4 ~total:n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h ->
          if Atomic.get h <> 1 then
            Alcotest.failf "index %d computed %d times" i (Atomic.get h))
        hits;
      (* Batches are reusable: a second run on the same pool. *)
      Par.Pool.run pool ~total:n (fun i -> Atomic.incr hits.(i));
      check Alcotest.int "second batch" 2 (Atomic.get hits.(0)))

let test_pool_exception () =
  Par.Pool.with_pool 4 (fun pool ->
      let raised =
        try
          Par.Pool.run pool ~chunk:1 ~total:1_000 (fun i ->
              if i = 637 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      check Alcotest.bool "exception propagates to submitter" true raised;
      (* The pool survives a failed batch. *)
      let out = Par.Pool.tabulate pool 10 (fun i -> i + 1) in
      check Alcotest.int "pool usable after failure" 10 out.(9))

let test_pool_sequential_degenerate () =
  Par.Pool.with_pool 1 (fun pool ->
      let trace = ref [] in
      Par.Pool.run pool ~total:100 (fun i -> trace := i :: !trace);
      (* domains = 1 executes inline, in index order. *)
      check Alcotest.(list int) "inline, ordered" (List.init 100 Fun.id)
        (List.rev !trace))

let unit_tests =
  [
    ("deque lifo owner end", `Quick, test_deque_lifo);
    ("deque fifo thief end", `Quick, test_deque_steal_fifo);
    ("deque concurrent exactly-once", `Quick, test_deque_concurrent);
    ("shard_tbl basic", `Quick, test_shard_tbl_basic);
    ("shard_tbl concurrent resize", `Quick, test_shard_tbl_concurrent);
    ("pool tabulate", `Quick, test_pool_tabulate);
    ("pool run covers all indices", `Quick, test_pool_run_all_indices);
    ("pool exception propagation", `Quick, test_pool_exception);
    ("pool domains=1 inline", `Quick, test_pool_sequential_degenerate);
  ]

(* ---------- determinism: parallel LMC == sequential LMC ----------

   The contract the whole subsystem is built around: for any protocol
   (here: pseudo-random synthetic ones) and any domain count, the
   checker produces bit-identical results — verdict, every counter,
   the violation fingerprint, the witness schedule, and the schedule
   after delta-debugging minimisation. *)

type summary = {
  found : bool;
  transitions : int;
  node_states : int;
  system_states : int;
  prelims : int;
  soundness_calls : int;
  rejections : int;
  viol_fp : string option;
      (* fingerprint of (system, violation, schedule) *)
  sched_len : int;
  min_fp : string option;  (* fingerprint of the minimised schedule *)
}

let pp_summary s =
  Printf.sprintf
    "{found=%b tr=%d ns=%d ss=%d prelim=%d calls=%d rej=%d viol=%s len=%d \
     min=%s}"
    s.found s.transitions s.node_states s.system_states s.prelims
    s.soundness_calls s.rejections
    (Option.value ~default:"-" s.viol_fp)
    s.sched_len
    (Option.value ~default:"-" s.min_fp)

let run_synthetic ~seed ~domains ~auto ~defer =
  let module P = Protocols.Synthetic.Make (struct
    let seed = seed
    let num_nodes = 3
    let max_state = 4
    let kinds = 2
  end) in
  let module C = Lmc.Checker.Make (P) in
  let module W = Lmc.Witness.Make (P) in
  (* Saturation threshold varies with the seed so both buggy and
     bug-free instances occur. *)
  let cap = 3 + (seed mod 2) in
  let invariant =
    Dsm.Invariant.for_all_pairs ~name:"no-two-saturated" (fun _ s1 _ s2 ->
        if s1 >= cap && s2 >= cap then Some "both nodes saturated" else None)
  in
  let config =
    {
      C.default_config with
      C.domains;
      defer_soundness = defer;
      verify_domains = (if defer then 2 else 1);
    }
  in
  let strategy = if auto then C.Automatic else C.General in
  let init = Dsm.Protocol.initial_system (module P) in
  let r = C.run config ~strategy ~invariant init in
  let viol_fp, sched_len, min_fp =
    match r.C.sound_violation with
    | None -> (None, 0, None)
    | Some v ->
        let fp =
          Dsm.Fingerprint.to_hex
            (Dsm.Fingerprint.of_value
               (v.C.system, v.C.violation, v.C.schedule))
        in
        let minimized =
          W.minimize ~init
            ~predicate:(fun sys -> Dsm.Invariant.check invariant sys <> None)
            v.C.schedule
        in
        ( Some fp,
          List.length v.C.schedule,
          Some (Dsm.Fingerprint.to_hex (Dsm.Fingerprint.of_value minimized))
        )
  in
  {
    found = r.C.sound_violation <> None;
    transitions = r.C.transitions;
    node_states = r.C.total_node_states;
    system_states = r.C.system_states_created;
    prelims = r.C.preliminary_violations;
    soundness_calls = r.C.soundness_calls;
    rejections = r.C.soundness_rejections;
    viol_fp;
    sched_len;
    min_fp;
  }

let determinism_prop ~auto ~defer seed =
  let reference = run_synthetic ~seed ~domains:1 ~auto ~defer in
  List.for_all
    (fun domains ->
      let parallel = run_synthetic ~seed ~domains ~auto ~defer in
      if parallel = reference then true
      else
        QCheck.Test.fail_reportf
          "seed %d: domains=%d diverged from sequential\nseq: %s\npar: %s"
          seed domains (pp_summary reference) (pp_summary parallel))
    [ 2; 4 ]

(* Frontier-mode B-DFS: the parallel traversal must agree with itself
   at every domain count, and — on an exhausted space — with the
   sequential DFS on the explored set, transitions and verdict. *)
let bdfs_summary ~seed ~domains =
  let module P = Protocols.Synthetic.Make (struct
    let seed = seed
    let num_nodes = 3
    let max_state = 4
    let kinds = 2
  end) in
  let module G = Mc_global.Bdfs.Make (P) in
  let cap = 3 + (seed mod 2) in
  let invariant =
    Dsm.Invariant.for_all_pairs ~name:"no-two-saturated" (fun _ s1 _ s2 ->
        if s1 >= cap && s2 >= cap then Some "both nodes saturated" else None)
  in
  (* Exhaust the space so DFS and BFS explore the same set. *)
  let config = { G.default_config with G.stop_on_violation = false; domains } in
  let o =
    G.run config ~invariant (Dsm.Protocol.initial_system (module P))
  in
  ( o.G.violation <> None,
    o.G.stats.G.transitions,
    o.G.stats.G.global_states,
    o.G.stats.G.system_states,
    o.G.stats.G.max_depth_reached,
    o.G.completed )

let bdfs_determinism_prop seed =
  let dfs = bdfs_summary ~seed ~domains:1 in
  let f2 = bdfs_summary ~seed ~domains:2 in
  let f4 = bdfs_summary ~seed ~domains:4 in
  if f2 <> f4 then
    QCheck.Test.fail_reportf "seed %d: frontier 2 vs 4 domains diverged" seed
  else
    (* Cross-algorithm, only set-level facts must agree: the DFS
       re-expands states rediscovered at shallower depths, so its
       transition count and depth profile legitimately differ. *)
    let set_facts (found, _tr, gs, ss, _md, completed) =
      (found, gs, ss, completed)
    in
    if set_facts dfs <> set_facts f2 then
      QCheck.Test.fail_reportf
        "seed %d: DFS vs frontier diverged on an exhausted space" seed
    else true

let qcheck_seed = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 9999)

let determinism_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:120 ~name:"LMC-GEN deterministic across domains"
        qcheck_seed
        (determinism_prop ~auto:false ~defer:false);
      QCheck.Test.make ~count:60
        ~name:"LMC-auto (pair-pruned) deterministic across domains"
        qcheck_seed
        (determinism_prop ~auto:true ~defer:false);
      QCheck.Test.make ~count:40
        ~name:"deferred soundness deterministic across domains" qcheck_seed
        (determinism_prop ~auto:false ~defer:true);
      QCheck.Test.make ~count:60
        ~name:"B-DFS frontier deterministic and DFS-consistent" qcheck_seed
        bdfs_determinism_prop;
    ]

let () =
  Alcotest.run "par"
    [ ("par unit", unit_tests); ("par determinism", determinism_tests) ]
