(* Tests for the fault-injection subsystem: plan DSL round-trips and
   diagnostics, the pure injection queries, Live_sim fault events, and
   the determinism contract — same seed + same plan is bit-identical,
   and a hunt under faults records identical streams at any --domains
   count. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- plan DSL ---------- *)

let parse s =
  match Fault.Plan.of_string s with
  | Ok p -> p
  | Error e -> fail (Printf.sprintf "parse %S: %s" s e)

let test_roundtrip () =
  List.iter
    (fun s ->
      let p = parse s in
      let printed = Fault.Plan.to_string p in
      let p' = parse printed in
      check Alcotest.string
        (Printf.sprintf "round-trip %s" s)
        printed (Fault.Plan.to_string p'))
    [
      "crash:node=0,at=40";
      "crash:node=0,at=40,recover=60,persist=volatile";
      "crash:node=2,at=1.5,recover=2.5,persist=full";
      "part:from=10,until=30,cut=0+1/2";
      "dup:p=0.1";
      "reorder:p=0.3,window=2";
      "corrupt:p=0.05,from=5,until=50";
      "crash:node=1,at=5;dup:p=0.5;corrupt:p=1";
    ]

let test_diagnostics () =
  List.iter
    (fun s ->
      match Fault.Plan.of_string s with
      | Ok _ -> fail (Printf.sprintf "accepted %S" s)
      | Error e ->
          check Alcotest.bool
            (Printf.sprintf "diagnostic for %S non-empty" s)
            true
            (String.length e > 0))
    [
      "boom:p=1" (* unknown clause kind *);
      "dup:p=2" (* probability out of range *);
      "dup:p=0.1,zap=3" (* unknown key *);
      "part:from=1,cut=0/1" (* partition without until *);
      "part:from=1,until=2,cut=0+1" (* fewer than two groups *);
      "crash:node=0,at=1,persist=wat" (* bad persistence mode *);
    ]

let test_validate () =
  let p = parse "crash:node=9,at=1" in
  (match Fault.Plan.validate ~num_nodes:3 p with
  | Ok () -> fail "node 9 accepted for a 3-node instance"
  | Error _ -> ());
  match Fault.Plan.validate ~num_nodes:3 (parse "crash:node=2,at=1") with
  | Ok () -> ()
  | Error e -> fail e

let test_node_events_sorted () =
  let p = parse "crash:node=1,at=50,recover=60;crash:node=0,at=10" in
  match Fault.Plan.node_events p with
  | [ (10., `Crash 0); (50., `Crash 1); (60., `Recover (1, Fault.Plan.Hook)) ]
    ->
      ()
  | evs -> fail (Printf.sprintf "unexpected schedule (%d events)" (List.length evs))

let test_partitioned_window () =
  let p = parse "part:from=10,until=30,cut=0+1/2" in
  let cut ~time ~src ~dst = Fault.Plan.partitioned p ~time ~src ~dst in
  check Alcotest.bool "cut inside window" true (cut ~time:20. ~src:0 ~dst:2);
  check Alcotest.bool "cut is symmetric" true (cut ~time:20. ~src:2 ~dst:1);
  check Alcotest.bool "same group stays connected" false
    (cut ~time:20. ~src:0 ~dst:1);
  check Alcotest.bool "before the window" false (cut ~time:5. ~src:0 ~dst:2);
  check Alcotest.bool "window end exclusive" false
    (cut ~time:30. ~src:0 ~dst:2)

let test_message_fate_rolls () =
  (* one roll per active probabilistic clause, in plan order *)
  let p = parse "dup:p=0;corrupt:p=0" in
  let rolls = ref 0 in
  let roll () =
    incr rolls;
    0.9
  in
  let fate = Fault.Plan.message_fate p ~time:1.0 ~roll in
  check Alcotest.int "two clauses, two rolls" 2 !rolls;
  check Alcotest.bool "nothing fired" true
    ((not fate.Fault.Plan.corrupt)
    && (not fate.Fault.Plan.duplicate)
    && fate.Fault.Plan.extra_latency = 0.);
  let certain = parse "corrupt:p=1" in
  let fate = Fault.Plan.message_fate certain ~time:1.0 ~roll:(fun () -> 0.5) in
  check Alcotest.bool "corruption fires at p=1" true fate.Fault.Plan.corrupt;
  let dup = parse "dup:p=1" in
  let fate = Fault.Plan.message_fate dup ~time:1.0 ~roll:(fun () -> 0.5) in
  check Alcotest.bool "duplication fires at p=1" true fate.Fault.Plan.duplicate;
  let reorder = parse "reorder:p=1,window=2" in
  let fate =
    Fault.Plan.message_fate reorder ~time:1.0 ~roll:(fun () -> 0.25)
  in
  check Alcotest.bool "reorder adds latency" true
    (fate.Fault.Plan.extra_latency > 0.);
  (* an inactive window consumes no rolls *)
  let windowed = parse "corrupt:p=1,from=10,until=20" in
  let rolls = ref 0 in
  let fate =
    Fault.Plan.message_fate windowed ~time:5.0
      ~roll:(fun () ->
        incr rolls;
        0.0)
  in
  check Alcotest.int "inactive clause rolls nothing" 0 !rolls;
  check Alcotest.bool "inactive clause is a no-op" false fate.Fault.Plan.corrupt

(* ---------- live-sim injection ---------- *)

module Ping = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module S = Sim.Live_sim.Make (Ping)

let sim_config ?(seed = 11) ?(drop = 0.0) faults =
  {
    S.seed;
    link =
      Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05 ~latency_max:0.3
        ();
    timer_min = 0.5;
    timer_max = 1.5;
    action_prob = None;
    faults;
  }

let test_empty_plan_no_fault_work () =
  let sim = S.create (sim_config Fault.Plan.empty) in
  S.run_until sim 50.0;
  check Alcotest.bool "traffic flowed" true (S.messages_sent sim > 0);
  check Alcotest.int "no fault events" 0 (S.fault_events sim);
  check Alcotest.int "no fault drops" 0 (S.fault_drops sim);
  check Alcotest.int "no duplicates" 0 (S.messages_duplicated sim)

let test_crash_recover_events () =
  let sim = S.create (sim_config (parse "crash:node=0,at=5,recover=9")) in
  S.run_until sim 20.0;
  check Alcotest.int "crash + recover executed" 2 (S.fault_events sim);
  let stopped = S.create (sim_config (parse "crash:node=0,at=5")) in
  S.run_until stopped 20.0;
  check Alcotest.int "crash-stop executes once" 1 (S.fault_events stopped)

let test_duplication_and_corruption () =
  let dup = S.create (sim_config (parse "dup:p=1")) in
  S.run_until dup 30.0;
  check Alcotest.bool "duplicates counted" true
    (S.messages_duplicated dup > 0);
  let corrupt = S.create (sim_config (parse "corrupt:p=1")) in
  S.run_until corrupt 30.0;
  check Alcotest.bool "corrupted sends dropped" true (S.fault_drops corrupt > 0)

let test_partition_drops () =
  let sim = S.create (sim_config (parse "part:from=0,until=1000,cut=0/1+2")) in
  S.run_until sim 30.0;
  check Alcotest.bool "cut traffic dropped at delivery" true
    (S.fault_drops sim > 0)

(* ---------- determinism ---------- *)

(* Same seed + same plan: bit-identical states, counters, and live
   trace records.  The plan is drawn from a small generator covering
   every clause kind. *)
let plan_gen =
  QCheck.Gen.(
    let* crash_at = int_range 1 20 in
    let* crash_len = int_range 1 10 in
    let* node = int_range 0 2 in
    let* persist = oneofl [ "hook"; "full"; "volatile" ] in
    let* dup_p = int_range 0 10 in
    let* corrupt_p = int_range 0 10 in
    let* reorder_p = int_range 0 10 in
    return
      (Printf.sprintf
         "crash:node=%d,at=%d,recover=%d,persist=%s;dup:p=0.%d;corrupt:p=0.%d;reorder:p=0.%d,window=2"
         node crash_at (crash_at + crash_len) persist dup_p corrupt_p
         reorder_p))

let run_fingerprint ~seed plan_str =
  let sink, events = Obs.Sink.memory () in
  let trace = Obs.Trace.of_sink sink in
  let sim = S.create ~trace (sim_config ~seed ~drop:0.2 (parse plan_str)) in
  S.run_until sim 40.0;
  Obs.Trace.close trace;
  let records =
    List.map
      (fun (e : Obs.Sink.event) -> Dsm.Json.to_string (Dsm.Json.Obj e.Obs.Sink.fields))
      (events ())
  in
  ( Dsm.Fingerprint.of_value (S.states sim),
    ( S.events_executed sim,
      S.messages_sent sim,
      S.fault_events sim,
      S.fault_drops sim,
      S.messages_duplicated sim ),
    records )

let prop_same_seed_same_plan_identical =
  QCheck.Test.make ~count:20 ~name:"same seed + same plan = identical run"
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 1000) plan_gen)
       ~print:(fun (seed, plan) -> Printf.sprintf "seed=%d plan=%s" seed plan))
    (fun (seed, plan) ->
      let fp1, counters1, records1 = run_fingerprint ~seed plan in
      let fp2, counters2, records2 = run_fingerprint ~seed plan in
      Dsm.Fingerprint.equal fp1 fp2 && counters1 = counters2
      && records1 = records2)

(* ---------- hunt under faults: domain-count determinism ---------- *)

module PB_cr = Protocols.Pb_store.Make (struct
  let key = 7
  let value = 42
  let bug = Protocols.Pb_store.Lose_acked_writes_on_recovery
end)

module O = Online.Online_mc.Make (PB_cr) (PB_cr)
module Sim_pb = Sim.Live_sim.Make (PB_cr)

let hunt_trace ~domains =
  let sink, events = Obs.Sink.memory () in
  let trace = Obs.Trace.of_sink sink in
  let config =
    {
      O.sim =
        {
          Sim_pb.seed = 7;
          link =
            Net.Lossy_link.create ~drop_prob:0.1 ~latency_min:0.05
              ~latency_max:0.3 ();
          timer_min = 1.0;
          timer_max = 4.0;
          action_prob = None;
          faults = parse "crash:node=0,at=5,recover=7;dup:p=0.1";
        };
      check_interval = 1.0;
      max_live_time = 60.0;
      (* deterministic budgets only: a wall-clock limit would truncate
         restarts at machine-speed-dependent points *)
      checker =
        {
          O.Checker.default_config with
          max_transitions = Some 100_000;
          crash_budget = 1;
          domains;
          trace;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = O.default_supervisor;
      store = None;
    }
  in
  let outcome = O.run config ~strategy:O.Checker.General ~invariant:PB_cr.read_your_writes in
  Obs.Trace.close trace;
  ( outcome,
    List.filter_map
      (fun (e : Obs.Sink.event) ->
        match List.assoc_opt "ev" e.Obs.Sink.fields with
        | Some (Dsm.Json.String "step") ->
            Some (Dsm.Json.to_string (Dsm.Json.Obj e.Obs.Sink.fields))
        | _ -> None)
      (events ()) )

let test_fault_hunt_deterministic_across_domains () =
  let outcome1, steps1 = hunt_trace ~domains:1 in
  let outcome2, steps2 = hunt_trace ~domains:2 in
  check Alcotest.bool "bug found at 1 domain" true (outcome1.O.report <> None);
  check Alcotest.bool "bug found at 2 domains" true (outcome2.O.report <> None);
  check Alcotest.bool "steps recorded" true (List.length steps1 > 0);
  check
    Alcotest.(list string)
    "identical step records at 1 vs 2 domains" steps1 steps2

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "DSL round-trip" `Quick test_roundtrip;
          Alcotest.test_case "diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "node events sorted" `Quick
            test_node_events_sorted;
          Alcotest.test_case "partition window" `Quick test_partitioned_window;
          Alcotest.test_case "message fate rolls" `Quick
            test_message_fate_rolls;
        ] );
      ( "live-sim",
        [
          Alcotest.test_case "empty plan, no fault work" `Quick
            test_empty_plan_no_fault_work;
          Alcotest.test_case "crash/recover events" `Quick
            test_crash_recover_events;
          Alcotest.test_case "duplication and corruption" `Quick
            test_duplication_and_corruption;
          Alcotest.test_case "partition drops" `Quick test_partition_drops;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_same_seed_same_plan_identical;
          Alcotest.test_case "fault hunt identical at 1/2 domains" `Slow
            test_fault_hunt_deterministic_across_domains;
        ] );
    ]
