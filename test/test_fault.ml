(* Tests for the fault-injection subsystem: plan DSL round-trips and
   diagnostics, the pure injection queries, Live_sim fault events, and
   the determinism contract — same seed + same plan is bit-identical,
   and a hunt under faults records identical streams at any --domains
   count. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- plan DSL ---------- *)

let parse s =
  match Fault.Plan.of_string s with
  | Ok p -> p
  | Error e -> fail (Printf.sprintf "parse %S: %s" s e)

let test_roundtrip () =
  List.iter
    (fun s ->
      let p = parse s in
      let printed = Fault.Plan.to_string p in
      let p' = parse printed in
      check Alcotest.string
        (Printf.sprintf "round-trip %s" s)
        printed (Fault.Plan.to_string p'))
    [
      "crash:node=0,at=40";
      "crash:node=0,at=40,recover=60,persist=volatile";
      "crash:node=2,at=1.5,recover=2.5,persist=full";
      "part:from=10,until=30,cut=0+1/2";
      "dup:p=0.1";
      "reorder:p=0.3,window=2";
      "corrupt:p=0.05,from=5,until=50";
      "crash:node=1,at=5;dup:p=0.5;corrupt:p=1";
      "join:node=3,at=25";
      "leave:node=1,at=70";
      "load:rate=2,from=10,until=90";
      "load:rate=0.5";
      "join:node=2,at=5;leave:node=2,at=30;load:rate=1.5,from=2,until=8";
    ]

let test_diagnostics () =
  List.iter
    (fun s ->
      match Fault.Plan.of_string s with
      | Ok _ -> fail (Printf.sprintf "accepted %S" s)
      | Error e ->
          check Alcotest.bool
            (Printf.sprintf "diagnostic for %S non-empty" s)
            true
            (String.length e > 0))
    [
      "boom:p=1" (* unknown clause kind *);
      "dup:p=2" (* probability out of range *);
      "dup:p=0.1,zap=3" (* unknown key *);
      "part:from=1,cut=0/1" (* partition without until *);
      "part:from=1,until=2,cut=0+1" (* fewer than two groups *);
      "crash:node=0,at=1,persist=wat" (* bad persistence mode *);
      "crash:node=0,at=-3" (* negative crash time *);
      "join:node=0,at=-5" (* negative join time *);
      "leave:node=1,at=-0.5" (* negative leave time *);
      "join:node=0" (* join without a time *);
      "leave:at=3" (* leave without a node *);
      "load:rate=0" (* rate must be positive *);
      "load:rate=-2,from=1,until=9" (* negative rate *);
      "load:from=1,until=9" (* load without a rate *);
      "join:node=0,at=5,p=1" (* unknown key on a membership clause *);
    ]

let test_validate () =
  let p = parse "crash:node=9,at=1" in
  (match Fault.Plan.validate ~num_nodes:3 p with
  | Ok () -> fail "node 9 accepted for a 3-node instance"
  | Error _ -> ());
  (match Fault.Plan.validate ~num_nodes:3 (parse "join:node=3,at=1") with
  | Ok () -> fail "join of node 3 accepted for a 3-node instance"
  | Error _ -> ());
  (match Fault.Plan.validate ~num_nodes:3 (parse "leave:node=7,at=1") with
  | Ok () -> fail "leave of node 7 accepted for a 3-node instance"
  | Error _ -> ());
  match
    Fault.Plan.validate ~num_nodes:3
      (parse "crash:node=2,at=1;join:node=1,at=2;leave:node=0,at=3")
  with
  | Ok () -> ()
  | Error e -> fail e

let test_node_events_sorted () =
  let p = parse "crash:node=1,at=50,recover=60;crash:node=0,at=10" in
  (match Fault.Plan.node_events p with
  | [ (10., `Crash 0); (50., `Crash 1); (60., `Recover (1, Fault.Plan.Hook)) ]
    ->
      ()
  | evs ->
      fail (Printf.sprintf "unexpected schedule (%d events)" (List.length evs)));
  let churny = parse "leave:node=2,at=30;join:node=1,at=5;crash:node=0,at=10" in
  match Fault.Plan.node_events churny with
  | [ (5., `Join 1); (10., `Crash 0); (30., `Leave 2) ] -> ()
  | evs ->
      fail
        (Printf.sprintf "unexpected churn schedule (%d events)"
           (List.length evs))

let test_membership_queries () =
  let p = parse "join:node=2,at=10;leave:node=0,at=20;join:node=0,at=40" in
  check Alcotest.bool "join-first node starts absent" true
    (Fault.Plan.starts_absent p ~node:2);
  check Alcotest.bool "leave-first node starts present" false
    (Fault.Plan.starts_absent p ~node:0);
  check Alcotest.bool "unmentioned node starts present" false
    (Fault.Plan.starts_absent p ~node:1);
  let m time = Fault.Plan.membership_at p ~num_nodes:3 ~time in
  check
    Alcotest.(list bool)
    "t=0: joiner absent"
    [ true; true; false ]
    (Array.to_list (m 0.));
  check
    Alcotest.(list bool)
    "t=15: joined"
    [ true; true; true ]
    (Array.to_list (m 15.));
  check
    Alcotest.(list bool)
    "t=25: node 0 departed"
    [ false; true; true ]
    (Array.to_list (m 25.));
  check
    Alcotest.(list bool)
    "t=50: node 0 rejoined"
    [ true; true; true ]
    (Array.to_list (m 50.))

let test_load_queries () =
  let p = parse "load:rate=2,from=10,until=20;load:rate=0.5,from=15,until=30" in
  check Alcotest.bool "has_load" true (Fault.Plan.has_load p);
  check Alcotest.bool "no load clause" false (Fault.Plan.has_load []);
  check (Alcotest.float 1e-9) "outside every window" 0.
    (Fault.Plan.load_rate p ~time:5.);
  check (Alcotest.float 1e-9) "single window" 2.
    (Fault.Plan.load_rate p ~time:12.);
  check (Alcotest.float 1e-9) "overlapping windows sum" 2.5
    (Fault.Plan.load_rate p ~time:17.);
  check (Alcotest.float 1e-9) "until is exclusive" 0.5
    (Fault.Plan.load_rate p ~time:20.);
  (match Fault.Plan.next_load_start p ~time:0. with
  | Some t -> check (Alcotest.float 1e-9) "next window opening" 10. t
  | None -> fail "expected a next load window");
  (match Fault.Plan.next_load_start p ~time:12. with
  | Some t -> check (Alcotest.float 1e-9) "second opening" 15. t
  | None -> fail "expected the second window");
  match Fault.Plan.next_load_start p ~time:16. with
  | Some t -> fail (Printf.sprintf "no opening expected, got %g" t)
  | None -> ()

let test_partitioned_window () =
  let p = parse "part:from=10,until=30,cut=0+1/2" in
  let cut ~time ~src ~dst = Fault.Plan.partitioned p ~time ~src ~dst in
  check Alcotest.bool "cut inside window" true (cut ~time:20. ~src:0 ~dst:2);
  check Alcotest.bool "cut is symmetric" true (cut ~time:20. ~src:2 ~dst:1);
  check Alcotest.bool "same group stays connected" false
    (cut ~time:20. ~src:0 ~dst:1);
  check Alcotest.bool "before the window" false (cut ~time:5. ~src:0 ~dst:2);
  check Alcotest.bool "window end exclusive" false
    (cut ~time:30. ~src:0 ~dst:2)

let test_message_fate_rolls () =
  (* one roll per active probabilistic clause, in plan order *)
  let p = parse "dup:p=0;corrupt:p=0" in
  let rolls = ref 0 in
  let roll () =
    incr rolls;
    0.9
  in
  let fate = Fault.Plan.message_fate p ~time:1.0 ~roll in
  check Alcotest.int "two clauses, two rolls" 2 !rolls;
  check Alcotest.bool "nothing fired" true
    ((not fate.Fault.Plan.corrupt)
    && (not fate.Fault.Plan.duplicate)
    && fate.Fault.Plan.extra_latency = 0.);
  let certain = parse "corrupt:p=1" in
  let fate = Fault.Plan.message_fate certain ~time:1.0 ~roll:(fun () -> 0.5) in
  check Alcotest.bool "corruption fires at p=1" true fate.Fault.Plan.corrupt;
  let dup = parse "dup:p=1" in
  let fate = Fault.Plan.message_fate dup ~time:1.0 ~roll:(fun () -> 0.5) in
  check Alcotest.bool "duplication fires at p=1" true fate.Fault.Plan.duplicate;
  let reorder = parse "reorder:p=1,window=2" in
  let fate =
    Fault.Plan.message_fate reorder ~time:1.0 ~roll:(fun () -> 0.25)
  in
  check Alcotest.bool "reorder adds latency" true
    (fate.Fault.Plan.extra_latency > 0.);
  (* an inactive window consumes no rolls *)
  let windowed = parse "corrupt:p=1,from=10,until=20" in
  let rolls = ref 0 in
  let fate =
    Fault.Plan.message_fate windowed ~time:5.0
      ~roll:(fun () ->
        incr rolls;
        0.0)
  in
  check Alcotest.int "inactive clause rolls nothing" 0 !rolls;
  check Alcotest.bool "inactive clause is a no-op" false fate.Fault.Plan.corrupt

(* qcheck round-trips for the three membership/load clause kinds:
   print-parse is the identity on the parsed value, not just on the
   printed form. *)
let churn_clause_gen =
  QCheck.Gen.(
    let join_leave =
      let* kind = oneofl [ "join"; "leave" ] in
      let* node = int_range 0 9 in
      let* at10 = int_range 0 500 in
      return (Printf.sprintf "%s:node=%d,at=%.1f" kind node (float_of_int at10 /. 10.))
    in
    let load =
      let* rate10 = int_range 1 100 in
      let* windowed = bool in
      let* from_ = int_range 0 50 in
      let* len = int_range 1 50 in
      return
        (if windowed then
           Printf.sprintf "load:rate=%.1f,from=%d,until=%d"
             (float_of_int rate10 /. 10.)
             from_ (from_ + len)
         else Printf.sprintf "load:rate=%.1f" (float_of_int rate10 /. 10.))
    in
    oneof [ join_leave; load ])

let churn_plan_gen =
  QCheck.Gen.(
    let* clauses = list_size (int_range 1 6) churn_clause_gen in
    return (String.concat ";" clauses))

let prop_churn_clause_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"join/leave/load round-trip through of_string/to_string"
    (QCheck.make churn_plan_gen ~print:(fun s -> s))
    (fun s ->
      let p = parse s in
      let printed = Fault.Plan.to_string p in
      let p' = parse printed in
      p = p' && printed = Fault.Plan.to_string p')

(* ---------- live-sim injection ---------- *)

module Ping = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module S = Sim.Live_sim.Make (Ping)

let sim_config ?(seed = 11) ?(drop = 0.0) faults =
  {
    S.seed;
    link =
      Net.Lossy_link.create ~drop_prob:drop ~latency_min:0.05 ~latency_max:0.3
        ();
    timer_min = 0.5;
    timer_max = 1.5;
    action_prob = None;
    faults;
  }

let test_empty_plan_no_fault_work () =
  let sim = S.create (sim_config Fault.Plan.empty) in
  S.run_until sim 50.0;
  check Alcotest.bool "traffic flowed" true (S.messages_sent sim > 0);
  check Alcotest.int "no fault events" 0 (S.fault_events sim);
  check Alcotest.int "no fault drops" 0 (S.fault_drops sim);
  check Alcotest.int "no duplicates" 0 (S.messages_duplicated sim)

let test_crash_recover_events () =
  let sim = S.create (sim_config (parse "crash:node=0,at=5,recover=9")) in
  S.run_until sim 20.0;
  check Alcotest.int "crash + recover executed" 2 (S.fault_events sim);
  let stopped = S.create (sim_config (parse "crash:node=0,at=5")) in
  S.run_until stopped 20.0;
  check Alcotest.int "crash-stop executes once" 1 (S.fault_events stopped)

let test_duplication_and_corruption () =
  let dup = S.create (sim_config (parse "dup:p=1")) in
  S.run_until dup 30.0;
  check Alcotest.bool "duplicates counted" true
    (S.messages_duplicated dup > 0);
  let corrupt = S.create (sim_config (parse "corrupt:p=1")) in
  S.run_until corrupt 30.0;
  check Alcotest.bool "corrupted sends dropped" true (S.fault_drops corrupt > 0)

let test_partition_drops () =
  let sim = S.create (sim_config (parse "part:from=0,until=1000,cut=0/1+2")) in
  S.run_until sim 30.0;
  check Alcotest.bool "cut traffic dropped at delivery" true
    (S.fault_drops sim > 0)

let test_churn_membership () =
  let sim =
    S.create (sim_config (parse "leave:node=2,at=10;join:node=2,at=30"))
  in
  S.run_until sim 5.0;
  check Alcotest.(list int) "full fleet before the leave" [ 0; 1; 2 ]
    (S.live_nodes sim);
  S.run_until sim 20.0;
  check Alcotest.(list int) "node 2 departed" [ 0; 1 ] (S.live_nodes sim);
  check Alcotest.(list bool) "membership map matches" [ true; true; false ]
    (Array.to_list (S.membership sim));
  S.run_until sim 40.0;
  check Alcotest.(list int) "node 2 rejoined" [ 0; 1; 2 ] (S.live_nodes sim);
  check Alcotest.int "one leave + one join" 2 (S.churn_events sim);
  (* the snapshot carries the membership map of its capture time *)
  let snap = S.snapshot sim in
  check Alcotest.(list int) "snapshot live set" [ 0; 1; 2 ]
    (Sim.Snapshot.live_nodes snap)

let test_departed_traffic_dropped () =
  (* ping's client (node 0) keeps probing both servers; server 2 being
     out of the fleet turns that traffic into fault drops *)
  let sim = S.create (sim_config (parse "leave:node=2,at=1")) in
  S.run_until sim 30.0;
  check Alcotest.bool "envelopes to the departed node dropped" true
    (S.fault_drops sim > 0);
  check Alcotest.(list int) "fleet stays shrunk" [ 0; 1 ] (S.live_nodes sim)

let test_join_starts_absent () =
  (* a node whose first membership event is a join begins outside the
     fleet *)
  let sim = S.create (sim_config (parse "join:node=2,at=15")) in
  S.run_until sim 5.0;
  check Alcotest.(list int) "starts without the joiner" [ 0; 1 ]
    (S.live_nodes sim);
  S.run_until sim 20.0;
  check Alcotest.(list int) "joiner arrived" [ 0; 1; 2 ] (S.live_nodes sim)

let test_load_arrivals () =
  let sim = S.create (sim_config (parse "load:rate=5,from=2,until=20")) in
  S.run_until sim 25.0;
  check Alcotest.bool "arrivals fired inside the window" true
    (S.load_arrivals sim > 0);
  let before = S.load_arrivals sim in
  S.run_until sim 60.0;
  check Alcotest.int "no arrivals after the window closes" before
    (S.load_arrivals sim);
  let quiet = S.create (sim_config Fault.Plan.empty) in
  S.run_until quiet 25.0;
  check Alcotest.int "no load clause, no arrivals" 0 (S.load_arrivals quiet)

let test_churn_deterministic () =
  (* join/leave/load clauses keep the bit-identical-replay contract *)
  let run () =
    let sim =
      S.create
        (sim_config ~drop:0.2
           (parse
              "leave:node=2,at=5;join:node=2,at=12;load:rate=3,from=1,until=30"))
    in
    S.run_until sim 40.0;
    ( Dsm.Fingerprint.of_value (S.states sim),
      S.events_executed sim,
      S.churn_events sim,
      S.load_arrivals sim )
  in
  let fp1, ev1, ch1, ld1 = run () in
  let fp2, ev2, ch2, ld2 = run () in
  check Alcotest.bool "identical states" true (Dsm.Fingerprint.equal fp1 fp2);
  check Alcotest.int "identical event counts" ev1 ev2;
  check Alcotest.int "identical churn counts" ch1 ch2;
  check Alcotest.int "identical arrival counts" ld1 ld2

(* ---------- determinism ---------- *)

(* Same seed + same plan: bit-identical states, counters, and live
   trace records.  The plan is drawn from a small generator covering
   every clause kind. *)
let plan_gen =
  QCheck.Gen.(
    let* crash_at = int_range 1 20 in
    let* crash_len = int_range 1 10 in
    let* node = int_range 0 2 in
    let* persist = oneofl [ "hook"; "full"; "volatile" ] in
    let* dup_p = int_range 0 10 in
    let* corrupt_p = int_range 0 10 in
    let* reorder_p = int_range 0 10 in
    return
      (Printf.sprintf
         "crash:node=%d,at=%d,recover=%d,persist=%s;dup:p=0.%d;corrupt:p=0.%d;reorder:p=0.%d,window=2"
         node crash_at (crash_at + crash_len) persist dup_p corrupt_p
         reorder_p))

let run_fingerprint ~seed plan_str =
  let sink, events = Obs.Sink.memory () in
  let trace = Obs.Trace.of_sink sink in
  let sim = S.create ~trace (sim_config ~seed ~drop:0.2 (parse plan_str)) in
  S.run_until sim 40.0;
  Obs.Trace.close trace;
  let records =
    List.map
      (fun (e : Obs.Sink.event) -> Dsm.Json.to_string (Dsm.Json.Obj e.Obs.Sink.fields))
      (events ())
  in
  ( Dsm.Fingerprint.of_value (S.states sim),
    ( S.events_executed sim,
      S.messages_sent sim,
      S.fault_events sim,
      S.fault_drops sim,
      S.messages_duplicated sim ),
    records )

let prop_same_seed_same_plan_identical =
  QCheck.Test.make ~count:20 ~name:"same seed + same plan = identical run"
    (QCheck.make
       QCheck.Gen.(pair (int_range 0 1000) plan_gen)
       ~print:(fun (seed, plan) -> Printf.sprintf "seed=%d plan=%s" seed plan))
    (fun (seed, plan) ->
      let fp1, counters1, records1 = run_fingerprint ~seed plan in
      let fp2, counters2, records2 = run_fingerprint ~seed plan in
      Dsm.Fingerprint.equal fp1 fp2 && counters1 = counters2
      && records1 = records2)

(* ---------- hunt under faults: domain-count determinism ---------- *)

module PB_cr = Protocols.Pb_store.Make (struct
  let key = 7
  let value = 42
  let bug = Protocols.Pb_store.Lose_acked_writes_on_recovery
end)

module O = Online.Online_mc.Make (PB_cr) (PB_cr)
module Sim_pb = Sim.Live_sim.Make (PB_cr)

let hunt_trace ~domains =
  let sink, events = Obs.Sink.memory () in
  let trace = Obs.Trace.of_sink sink in
  let config =
    {
      O.sim =
        {
          Sim_pb.seed = 7;
          link =
            Net.Lossy_link.create ~drop_prob:0.1 ~latency_min:0.05
              ~latency_max:0.3 ();
          timer_min = 1.0;
          timer_max = 4.0;
          action_prob = None;
          faults = parse "crash:node=0,at=5,recover=7;dup:p=0.1";
        };
      check_interval = 1.0;
      max_live_time = 60.0;
      (* deterministic budgets only: a wall-clock limit would truncate
         restarts at machine-speed-dependent points *)
      checker =
        {
          O.Checker.default_config with
          max_transitions = Some 100_000;
          crash_budget = 1;
          domains;
          trace;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = O.default_supervisor;
      store = None;
    }
  in
  let outcome = O.run config ~strategy:O.Checker.General ~invariant:PB_cr.read_your_writes in
  Obs.Trace.close trace;
  ( outcome,
    List.filter_map
      (fun (e : Obs.Sink.event) ->
        match List.assoc_opt "ev" e.Obs.Sink.fields with
        | Some (Dsm.Json.String "step") ->
            Some (Dsm.Json.to_string (Dsm.Json.Obj e.Obs.Sink.fields))
        | _ -> None)
      (events ()) )

let test_fault_hunt_deterministic_across_domains () =
  let outcome1, steps1 = hunt_trace ~domains:1 in
  let outcome2, steps2 = hunt_trace ~domains:2 in
  check Alcotest.bool "bug found at 1 domain" true (outcome1.O.report <> None);
  check Alcotest.bool "bug found at 2 domains" true (outcome2.O.report <> None);
  check Alcotest.bool "steps recorded" true (List.length steps1 > 0);
  check
    Alcotest.(list string)
    "identical step records at 1 vs 2 domains" steps1 steps2

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "DSL round-trip" `Quick test_roundtrip;
          Alcotest.test_case "diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "node events sorted" `Quick
            test_node_events_sorted;
          Alcotest.test_case "membership queries" `Quick
            test_membership_queries;
          Alcotest.test_case "load queries" `Quick test_load_queries;
          Alcotest.test_case "partition window" `Quick test_partitioned_window;
          Alcotest.test_case "message fate rolls" `Quick
            test_message_fate_rolls;
          QCheck_alcotest.to_alcotest prop_churn_clause_roundtrip;
        ] );
      ( "live-sim",
        [
          Alcotest.test_case "empty plan, no fault work" `Quick
            test_empty_plan_no_fault_work;
          Alcotest.test_case "crash/recover events" `Quick
            test_crash_recover_events;
          Alcotest.test_case "duplication and corruption" `Quick
            test_duplication_and_corruption;
          Alcotest.test_case "partition drops" `Quick test_partition_drops;
        ] );
      ( "churn",
        [
          Alcotest.test_case "membership follows join/leave" `Quick
            test_churn_membership;
          Alcotest.test_case "departed traffic dropped" `Quick
            test_departed_traffic_dropped;
          Alcotest.test_case "join starts absent" `Quick
            test_join_starts_absent;
          Alcotest.test_case "load arrivals windowed" `Quick
            test_load_arrivals;
          Alcotest.test_case "churn runs deterministic" `Quick
            test_churn_deterministic;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_same_seed_same_plan_identical;
          Alcotest.test_case "fault hunt identical at 1/2 domains" `Slow
            test_fault_hunt_deterministic_across_domains;
        ] );
    ]
