(* Tests for the flight recorder (Obs.Trace) and deterministic witness
   replay (Obs.Replay): step-record encode/decode round-trips, ring
   buffering, and the end-to-end contract that a buggy-Paxos hunt
   records bit-identical fingerprint streams at any --domains count
   and that its recorded witnesses re-execute without divergence. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- step record round-trip ---------- *)

let fp_gen =
  QCheck.Gen.(
    map (fun n -> Printf.sprintf "%032x" (abs n land 0xffffff)) int)

let step_gen : Obs.Trace.step QCheck.Gen.t =
  QCheck.Gen.(
    let* node = int_range 0 9 in
    let* kind = oneofl [ Obs.Trace.Deliver; Obs.Trace.Action ] in
    let* src = int_range (-1) 9 in
    let* label = string_size ~gen:printable (int_range 0 20) in
    let* fp_before = fp_gen in
    let* fp_after = fp_gen in
    let* consumed =
      option (pair fp_gen (int_range (-1) 1000))
    in
    let* produced = list_size (int_range 0 4) fp_gen in
    let* depth = int_range 0 100 in
    return
      {
        Obs.Trace.node;
        kind;
        src;
        label;
        fp_before;
        fp_after;
        consumed;
        produced;
        depth;
        dom = 0;
      })

let step_eq (a : Obs.Trace.step) (b : Obs.Trace.step) =
  a.node = b.node && a.kind = b.kind && a.src = b.src && a.label = b.label
  && a.fp_before = b.fp_before && a.fp_after = b.fp_after
  && a.consumed = b.consumed && a.produced = b.produced && a.depth = b.depth
  && a.dom = b.dom

let prop_step_roundtrip =
  QCheck.Test.make ~count:200 ~name:"step record encode/decode round-trip"
    (QCheck.make step_gen)
    (fun step ->
      (* through the typed encoder and through the JSON printer/parser,
         as the record travels in a real trace file *)
      let json = Obs.Trace.step_to_json step in
      match Dsm.Json.of_string (Dsm.Json.to_string json) with
      | Error msg -> QCheck.Test.fail_reportf "reparse failed: %s" msg
      | Ok json' -> (
          match Obs.Trace.step_of_json json' with
          | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg
          | Ok step' -> step_eq step step'))

let prop_hex_roundtrip =
  QCheck.Test.make ~count:200 ~name:"hex transport encoding round-trip"
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      match Obs.Trace.string_of_hex (Obs.Trace.hex_of_string s) with
      | Ok s' -> s = s'
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* ---------- recorder mechanics ---------- *)

let test_null_recorder () =
  check Alcotest.bool "null disabled" false (Obs.Trace.enabled Obs.Trace.null);
  check Alcotest.int "emit on null returns -1" (-1)
    (Obs.Trace.emit Obs.Trace.null ~ev:"step" [])

let test_seq_monotonic () =
  let sink, events = Obs.Sink.memory () in
  let t = Obs.Trace.of_sink sink in
  let seqs = List.init 5 (fun i -> Obs.Trace.emit t ~ev:"live" [ ("i", Dsm.Json.Int i) ]) in
  Obs.Trace.close t;
  check Alcotest.(list int) "returned seqs count up" [ 0; 1; 2; 3; 4 ] seqs;
  check Alcotest.int "all records reach the sink" 5 (List.length (events ()))

let test_ring_keeps_tail () =
  let path = Filename.temp_file "trace_ring" ".jsonl" in
  let t = Obs.Trace.ring ~capacity:4 path in
  for i = 0 to 9 do
    ignore (Obs.Trace.emit t ~ev:"live" [ ("i", Dsm.Json.Int i) ])
  done;
  Obs.Trace.close t;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let records =
    List.rev_map
      (fun line ->
        match Dsm.Json.of_string line with
        | Ok (Dsm.Json.Obj fields) -> fields
        | _ -> fail "unparseable ring line")
      !lines
  in
  check Alcotest.int "capacity + meta records" 5 (List.length records);
  let ev f =
    match List.assoc_opt "ev" f with
    | Some (Dsm.Json.String e) -> e
    | _ -> "?"
  in
  let meta = List.nth records 4 in
  check Alcotest.string "trailing meta record" "ring_meta" (ev meta);
  check Alcotest.bool "dropped count = overwritten head" true
    (List.assoc_opt "dropped" meta = Some (Dsm.Json.Int 6));
  (* the survivors are the newest [capacity] records, oldest first *)
  let kept =
    List.filter_map
      (fun f ->
        if ev f = "live" then
          match List.assoc_opt "i" f with
          | Some (Dsm.Json.Int i) -> Some i
          | _ -> None
        else None)
      records
  in
  check Alcotest.(list int) "tail survives in order" [ 6; 7; 8; 9 ] kept

(* ---------- end-to-end: buggy-Paxos hunt determinism ---------- *)

module Common = struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 8
  let bug = Protocols.Paxos_core.Last_response_wins
end

module Live = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
end)

module Check_p = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
end)

module O = Online.Online_mc.Make (Live) (Check_p)
module Sim_p = Sim.Live_sim.Make (Live)
module RW = Obs.Replay.Make (Check_p)

let strategy =
  O.Checker.Invariant_specific
    { abstract = Check_p.abstraction; conflict = Check_p.conflicts }

(* One hunt at the given exploration width, recording into memory; the
   returned list keeps each record's fields in emission order. *)
let hunt_trace ~domains =
  let sink, events = Obs.Sink.memory () in
  let trace = Obs.Trace.of_sink sink in
  let config =
    {
      O.sim =
        {
          Sim_p.seed = 7;
          link =
            Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05
              ~latency_max:0.3 ();
          timer_min = 2.0;
          timer_max = 20.0;
          action_prob = None;
          faults = Fault.Plan.empty;
        };
      check_interval = 30.0;
      max_live_time = 600.0;
      (* Deterministic budgets only: a wall-clock limit would truncate
         restarts at machine-speed-dependent points and void the
         stream-equality contract (the CLI's replay refuses truncated
         recordings for the same reason). *)
      checker =
        {
          O.Checker.default_config with
          max_transitions = Some 100_000;
          domains;
          trace;
        };
      action_bounds = [ 1; 2 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = O.default_supervisor;
      store = None;
    }
  in
  let outcome = O.run config ~strategy ~invariant:Check_p.safety in
  Obs.Trace.close trace;
  ( outcome,
    List.map (fun (e : Obs.Sink.event) -> e.Obs.Sink.fields) (events ()) )

let ev_of fields =
  match List.assoc_opt "ev" fields with
  | Some (Dsm.Json.String e) -> e
  | _ -> "?"

(* The determinism contract compares full records minus the wall-clock
   timestamp (which lives in the sink envelope, not the fields). *)
let step_stream records =
  List.filter_map
    (fun f ->
      if ev_of f = "step" then Some (Dsm.Json.to_string (Dsm.Json.Obj f))
      else None)
    records

let test_hunt_stream_deterministic_across_domains () =
  let outcome1, records1 = hunt_trace ~domains:1 in
  let outcome2, records2 = hunt_trace ~domains:2 in
  let outcome4, records4 = hunt_trace ~domains:4 in
  check Alcotest.bool "hunt found the injected bug" true
    (outcome1.O.report <> None);
  check Alcotest.bool "same verdict at 2 domains" true
    (outcome2.O.report <> None);
  check Alcotest.bool "same verdict at 4 domains" true
    (outcome4.O.report <> None);
  let s1 = step_stream records1
  and s2 = step_stream records2
  and s4 = step_stream records4 in
  check Alcotest.bool "steps recorded" true (List.length s1 > 0);
  check Alcotest.(list string) "1 vs 2 domains: identical step records" s1 s2;
  check Alcotest.(list string) "1 vs 4 domains: identical step records" s1 s4

let test_hunt_witness_replays () =
  let _, records = hunt_trace ~domains:2 in
  let witnesses = List.filter (fun f -> ev_of f = "witness") records in
  check Alcotest.bool "witness recorded" true (witnesses <> []);
  List.iter
    (fun fields ->
      match RW.replay_witness fields with
      | Error msg -> fail ("witness does not decode: " ^ msg)
      | Ok o ->
          (match o.RW.divergence with
          | None -> ()
          | Some (i, expect, got) ->
              fail
                (Printf.sprintf "diverged at step %d: %s vs %s" i expect got));
          check Alcotest.bool "final fingerprint matches" true
            o.RW.final_matches;
          check Alcotest.bool "non-empty schedule" true (o.RW.steps_checked > 0))
    witnesses

(* A tampered witness must be caught, not silently accepted. *)
let test_tampered_witness_diverges () =
  let _, records = hunt_trace ~domains:1 in
  match List.find_opt (fun f -> ev_of f = "witness") records with
  | None -> fail "no witness recorded"
  | Some fields ->
      let tampered =
        List.map
          (fun (k, v) ->
            if k <> "wsteps" then (k, v)
            else
              match v with
              | Dsm.Json.List (Dsm.Json.Obj step :: rest) ->
                  let step' =
                    List.map
                      (fun (sk, sv) ->
                        if sk = "fp_after" then
                          (sk, Dsm.Json.String (String.make 32 '0'))
                        else (sk, sv))
                      step
                  in
                  (k, Dsm.Json.List (Dsm.Json.Obj step' :: rest))
              | _ -> (k, v))
          fields
      in
      (match RW.replay_witness tampered with
      | Error msg -> fail ("tampered witness does not decode: " ^ msg)
      | Ok o -> (
          match o.RW.divergence with
          | Some (0, _, _) -> ()
          | Some (i, _, _) ->
              fail (Printf.sprintf "divergence reported at step %d, not 0" i)
          | None -> fail "tampered fingerprint not detected"))

(* ---------- registry lookups the recorder leans on ---------- *)

let test_find_gauge_and_histogram () =
  let scope = Obs.create () in
  let m = Obs.metrics scope in
  check Alcotest.bool "absent gauge" true
    (Obs.Metrics.find_gauge m "par.qdepth.d0" = None);
  check Alcotest.bool "absent histogram" true
    (Obs.Metrics.find_histogram m "lmc.system_depth" = None);
  (* a parallel checker run populates both families *)
  let module C = Lmc.Checker.Make (Check_p) in
  let init = Dsm.Protocol.initial_system (module Check_p) in
  ignore
    (C.run
       { C.default_config with domains = 2; obs = scope; max_depth = Some 6 }
       ~strategy:C.General ~invariant:Check_p.safety init);
  (match Obs.Metrics.find_gauge m "par.qdepth.d0" with
  | None -> fail "pool gauge not registered"
  | Some _ -> ());
  (match Obs.Metrics.find_histogram m "lmc.system_depth" with
  | None -> fail "depth histogram not registered"
  | Some h ->
      check Alcotest.bool "histogram observed states" true
        ((Obs.Metrics.histogram_snapshot h).Obs.Metrics.count > 0));
  (* same name resolves to the same cell, mirroring find_counter *)
  (match Obs.Metrics.find_counter m "lmc.transitions" with
  | None -> fail "transitions counter not registered"
  | Some c -> check Alcotest.bool "counted" true (Obs.Metrics.value c > 0));
  Obs.close scope

let () =
  Alcotest.run "trace"
    [
      ( "records",
        [
          QCheck_alcotest.to_alcotest prop_step_roundtrip;
          QCheck_alcotest.to_alcotest prop_hex_roundtrip;
          Alcotest.test_case "null recorder" `Quick test_null_recorder;
          Alcotest.test_case "seq monotonic" `Quick test_seq_monotonic;
          Alcotest.test_case "ring keeps the tail" `Quick test_ring_keeps_tail;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "hunt streams identical at 1/2/4 domains" `Slow
            test_hunt_stream_deterministic_across_domains;
          Alcotest.test_case "hunt witnesses replay bit-identically" `Slow
            test_hunt_witness_replays;
          Alcotest.test_case "tampered witness detected" `Slow
            test_tampered_witness_diverges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "find_gauge / find_histogram" `Quick
            test_find_gauge_and_histogram;
        ] );
    ]
