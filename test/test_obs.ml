(* Tests for the observability subsystem (lib/obs): histogram
   bucketing, sinks, the JSON parser, domain-safety of the registry,
   and the contract that the checker's [result] counters and the
   metrics registry tell the same story. *)

let check = Alcotest.check

(* ---------- histogram bucketing ---------- *)

let test_bucket_index () =
  let idx = Obs.Metrics.bucket_index in
  check Alcotest.int "0 -> bucket 0" 0 (idx 0);
  check Alcotest.int "negative -> bucket 0" 0 (idx (-5));
  check Alcotest.int "min_int -> bucket 0" 0 (idx min_int);
  check Alcotest.int "1 -> bucket 1" 1 (idx 1);
  check Alcotest.int "2 -> bucket 2" 2 (idx 2);
  check Alcotest.int "3 -> bucket 2" 2 (idx 3);
  check Alcotest.int "4 -> bucket 3" 3 (idx 4);
  check Alcotest.int "7 -> bucket 3" 3 (idx 7);
  check Alcotest.int "8 -> bucket 4" 4 (idx 8);
  (* the top bucket absorbs everything, including max_int *)
  check Alcotest.int "max_int -> last bucket" (Obs.Metrics.num_buckets - 1)
    (idx max_int);
  (* bounds are inclusive and consistent with the index *)
  check Alcotest.(pair int int) "bounds of bucket 1" (1, 1)
    (Obs.Metrics.bucket_bounds 1);
  check Alcotest.(pair int int) "bounds of bucket 3" (4, 7)
    (Obs.Metrics.bucket_bounds 3);
  for i = 1 to Obs.Metrics.num_buckets - 2 do
    let lo, hi = Obs.Metrics.bucket_bounds i in
    check Alcotest.int (Printf.sprintf "lo of bucket %d self-indexes" i) i
      (idx lo);
    check Alcotest.int (Printf.sprintf "hi of bucket %d self-indexes" i) i
      (idx hi)
  done

let test_histogram_snapshot () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 3; 8; -2; 100 ];
  let s = Obs.Metrics.histogram_snapshot h in
  check Alcotest.int "count" 6 s.Obs.Metrics.count;
  (* negative observations contribute 0 to the sum *)
  check Alcotest.int "sum" 112 s.Obs.Metrics.sum;
  check Alcotest.int "max" 100 s.Obs.Metrics.max;
  check
    Alcotest.(list (triple int int int))
    "non-empty buckets, ascending"
    [ (0, 0, 2); (1, 1, 1); (2, 3, 1); (8, 15, 1); (64, 127, 1) ]
    s.Obs.Metrics.buckets

let test_name_type_clash () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  (* same name, same type: the same cell *)
  let c1 = Obs.Metrics.counter m "x" in
  Obs.Metrics.incr c1;
  check Alcotest.int "get-or-create" 1
    (Obs.Metrics.value (Obs.Metrics.counter m "x"));
  match Obs.Metrics.histogram m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "registering x as a histogram should fail"

(* ---------- the JSON parser (Dsm.Json.of_string) ---------- *)

let test_json_parse_values () =
  let parse s =
    match Dsm.Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e)
  in
  check Alcotest.bool "null" true (parse "null" = Dsm.Json.Null);
  check Alcotest.bool "int" true (parse "-42" = Dsm.Json.Int (-42));
  check Alcotest.bool "float" true (parse "2.5" = Dsm.Json.Float 2.5);
  check Alcotest.bool "exponent" true (parse "1e3" = Dsm.Json.Float 1000.);
  check Alcotest.bool "escapes" true
    (parse {|"a\"b\\c\n"|} = Dsm.Json.String "a\"b\\c\n");
  check Alcotest.bool "unicode escape" true
    (parse {|"café"|} = Dsm.Json.String "caf\xc3\xa9");
  check Alcotest.bool "nested" true
    (parse {|{"a":[1,true,null],"b":{"c":"d"}}|}
    = Dsm.Json.Obj
        [
          ("a", Dsm.Json.List [ Dsm.Json.Int 1; Dsm.Json.Bool true; Dsm.Json.Null ]);
          ("b", Dsm.Json.Obj [ ("c", Dsm.Json.String "d") ]);
        ]);
  let rejected s =
    match Dsm.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "trailing garbage rejected" true (rejected "1 2");
  check Alcotest.bool "unterminated object rejected" true (rejected "{\"a\":");
  check Alcotest.bool "bare word rejected" true (rejected "nul")

let test_json_roundtrip () =
  let values =
    [
      Dsm.Json.Null;
      Dsm.Json.Bool false;
      Dsm.Json.Int max_int;
      Dsm.Json.Int min_int;
      Dsm.Json.Float 1.5e-9;
      Dsm.Json.String "line\nbreak \t \"quoted\" caf\xc3\xa9";
      Dsm.Json.List [ Dsm.Json.Int 1; Dsm.Json.List []; Dsm.Json.Obj [] ];
      Dsm.Json.Obj
        [
          ("empty", Dsm.Json.String "");
          ("nested", Dsm.Json.Obj [ ("k", Dsm.Json.List [ Dsm.Json.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Dsm.Json.to_string v in
      match Dsm.Json.of_string s with
      | Ok v' -> check Alcotest.bool s true (v = v')
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e))
    values

(* ---------- sinks ---------- *)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  let scope = Obs.create ~sinks:[ Obs.Sink.jsonl_file path ] () in
  Obs.event scope "first" ~fields:[ ("n", Dsm.Json.Int 7) ];
  Obs.event scope "second"
    ~fields:[ ("s", Dsm.Json.String "with \"quotes\" and \n newline") ];
  Obs.close scope;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "two lines" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Dsm.Json.of_string line with
        | Ok (Dsm.Json.Obj fields) -> fields
        | Ok _ -> Alcotest.fail "event line is not an object"
        | Error e -> Alcotest.fail e)
      lines
  in
  let field name fields =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> Alcotest.fail ("missing field " ^ name)
  in
  (match parsed with
  | [ e1; e2 ] ->
      check Alcotest.bool "event name" true
        (field "event" e1 = Dsm.Json.String "first");
      check Alcotest.bool "int field" true (field "n" e1 = Dsm.Json.Int 7);
      check Alcotest.bool "string field round-trips" true
        (field "s" e2 = Dsm.Json.String "with \"quotes\" and \n newline");
      (match field "ts" e1 with
      | Dsm.Json.Float ts -> check Alcotest.bool "ts >= 0" true (ts >= 0.)
      | _ -> Alcotest.fail "ts is not a float")
  | _ -> assert false)

let test_sink_only_filter () =
  let sink, events = Obs.Sink.memory ~only:[ "keep" ] () in
  let scope = Obs.create ~sinks:[ sink ] () in
  Obs.event scope "drop";
  Obs.event scope "keep";
  Obs.event scope "drop";
  check Alcotest.(list string) "filtered" [ "keep" ]
    (List.map (fun e -> e.Obs.Sink.name) (events ()))

let test_memory_sink_two_domains () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let n = 500 in
  let emitter tag () =
    for i = 0 to n - 1 do
      Obs.event scope tag ~fields:[ ("i", Dsm.Json.Int i) ]
    done
  in
  let d = Domain.spawn (emitter "d1") in
  emitter "d0" ();
  Domain.join d;
  let all = events () in
  check Alcotest.int "nothing lost" (2 * n) (List.length all);
  let seq tag =
    List.filter_map
      (fun e ->
        if e.Obs.Sink.name = tag then
          match e.Obs.Sink.fields with
          | [ ("i", Dsm.Json.Int i) ] -> Some i
          | _ -> None
        else None)
      all
  in
  let expect = List.init n (fun i -> i) in
  check Alcotest.(list int) "domain 0 in order" expect (seq "d0");
  check Alcotest.(list int) "domain 1 in order" expect (seq "d1")

(* ---------- scopes ---------- *)

let test_null_scope () =
  check Alcotest.bool "null is null" true (Obs.is_null Obs.null);
  check Alcotest.bool "created scope is not" false (Obs.is_null (Obs.create ()));
  check Alcotest.bool "null is inactive" false (Obs.active Obs.null);
  (* events, spans and heartbeats on the disabled scope are no-ops *)
  Obs.event Obs.null "nobody" ~fields:[ ("x", Dsm.Json.Int 1) ];
  Obs.heartbeat Obs.null (fun () -> Alcotest.fail "fields forced");
  check Alcotest.int "span passes the value through" 41
    (Obs.span Obs.null "s" (fun () -> 41))

let test_span_emits_duration () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let v =
    Obs.span scope "work" ~fields:[ ("k", Dsm.Json.Int 3) ] (fun () -> 7)
  in
  check Alcotest.int "result" 7 v;
  match events () with
  | [ e ] ->
      check Alcotest.string "name" "work" e.Obs.Sink.name;
      check Alcotest.bool "keeps fields" true
        (List.assoc_opt "k" e.Obs.Sink.fields = Some (Dsm.Json.Int 3));
      (match List.assoc_opt "elapsed_s" e.Obs.Sink.fields with
      | Some (Dsm.Json.Float t) ->
          check Alcotest.bool "duration >= 0" true (t >= 0.)
      | _ -> Alcotest.fail "no elapsed_s field")
  | es -> Alcotest.fail (Printf.sprintf "%d events, wanted 1" (List.length es))

let test_heartbeat () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] ~progress:0.0 () in
  for i = 1 to 1024 do
    Obs.heartbeat scope (fun () -> [ ("i", Dsm.Json.Int i) ])
  done;
  let beats = events () in
  (* the clock is consulted every 256th call; with a zero interval each
     consultation emits *)
  check Alcotest.int "4 beats in 1024 calls" 4 (List.length beats);
  check Alcotest.bool "named progress" true
    (List.for_all (fun e -> e.Obs.Sink.name = "progress") beats)

let test_metrics_jsonl_dump () =
  let scope = Obs.create () in
  Obs.Metrics.add (Obs.counter scope "a.count") 5;
  Obs.Metrics.observe (Obs.histogram scope "b.hist") 3;
  let path = Filename.temp_file "test_obs_metrics" ".jsonl" in
  Obs.write_metrics_jsonl scope path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed =
    List.map
      (fun l ->
        match Dsm.Json.of_string l with
        | Ok (Dsm.Json.Obj f) -> f
        | _ -> Alcotest.fail "metric line is not an object")
      (List.rev !lines)
  in
  check Alcotest.int "two metrics" 2 (List.length parsed);
  (* sorted by name: a.count first *)
  match parsed with
  | [ a; b ] ->
      check Alcotest.bool "counter name" true
        (List.assoc "metric" a = Dsm.Json.String "a.count");
      check Alcotest.bool "counter value" true
        (List.assoc "value" a = Dsm.Json.Int 5);
      check Alcotest.bool "histogram name" true
        (List.assoc "metric" b = Dsm.Json.String "b.hist")
  | _ -> assert false

(* ---------- lookup miss paths and quantile estimates ---------- *)

let test_find_miss_paths () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "c");
  ignore (Obs.Metrics.gauge m "g");
  ignore (Obs.Metrics.histogram m "h");
  check Alcotest.bool "find_gauge: absent name" true
    (Obs.Metrics.find_gauge m "nope" = None);
  check Alcotest.bool "find_histogram: absent name" true
    (Obs.Metrics.find_histogram m "nope" = None);
  (* a name registered as a different type is a miss, not a crash *)
  check Alcotest.bool "find_gauge: counter name" true
    (Obs.Metrics.find_gauge m "c" = None);
  check Alcotest.bool "find_histogram: gauge name" true
    (Obs.Metrics.find_histogram m "g" = None);
  check Alcotest.bool "find_counter: histogram name" true
    (Obs.Metrics.find_counter m "h" = None);
  check Alcotest.bool "find_gauge: hit" true
    (Obs.Metrics.find_gauge m "g" <> None)

let test_quantile () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  let q v = Obs.Metrics.quantile (Obs.Metrics.histogram_snapshot h) v in
  check Alcotest.bool "empty histogram" true (q 0.5 = None);
  Obs.Metrics.observe h 0;
  (* the zero bucket: every quantile collapses to 0 *)
  check Alcotest.(option int) "all-zero q=0" (Some 0) (q 0.);
  check Alcotest.(option int) "all-zero q=1" (Some 0) (q 1.);
  List.iter (Obs.Metrics.observe h) [ 1; 3; 100 ];
  (* 4 observations: 0 | 1 | 3 (bucket [2,3]) | 100 (bucket [64,127]) *)
  check Alcotest.(option int) "q=0 clamps to first" (Some 0) (q 0.);
  check Alcotest.(option int) "q<=0.25 -> first bucket" (Some 0) (q 0.25);
  check Alcotest.(option int) "median -> bucket hi" (Some 1) (q 0.5);
  check Alcotest.(option int) "q=0.75 -> [2,3]" (Some 3) (q 0.75);
  (* the top bucket's upper bound is capped by the observed max *)
  check Alcotest.(option int) "q=1 capped by max" (Some 100) (q 1.);
  check Alcotest.(option int) "q>1 clamps" (Some 100) (q 2.);
  check Alcotest.(option int) "q<0 clamps" (Some 0) (q (-1.))

(* ---------- the sampling profiler ---------- *)

let test_prof () =
  let p = Obs.Prof.create ~sample_every:1 () in
  Obs.Prof.enter p "outer";
  Obs.Prof.push p "inner";
  for _ = 1 to 100 do
    Obs.Prof.tick p
  done;
  Obs.Prof.pop p;
  Obs.Prof.leave p;
  let entries = Obs.Prof.snapshot p in
  check Alcotest.bool "some stacks" true (entries <> []);
  check Alcotest.bool "outer;inner sampled" true
    (List.exists
       (fun e -> e.Obs.Prof.stack = [ "outer"; "inner" ])
       entries);
  check Alcotest.bool "total covers the run" true (Obs.Prof.total_us p >= 0);
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Obs.Prof.total_us >= b.Obs.Prof.total_us && ordered rest
    | _ -> true
  in
  check Alcotest.bool "snapshot hottest first" true (ordered entries);
  (* the JSONL export is schema-tagged with its own seq space *)
  let records = Obs.Prof.jsonl_records p in
  (match records with
  | Dsm.Json.Obj header :: rest ->
      check Alcotest.bool "prof_run header" true
        (List.assoc_opt "ev" header = Some (Dsm.Json.String "prof_run"));
      check Alcotest.bool "header counts the stack records" true
        (List.assoc_opt "stacks" header
        = Some (Dsm.Json.Int (List.length rest)));
      List.iteri
        (fun i r ->
          match r with
          | Dsm.Json.Obj f ->
              check Alcotest.bool "schema tag" true
                (List.assoc_opt "schema" f
                = Some (Dsm.Json.String Obs.Prof.schema));
              check Alcotest.bool "seq increases" true
                (List.assoc_opt "seq" f = Some (Dsm.Json.Int (i + 1)))
          | _ -> Alcotest.fail "stack record is not an object")
        rest
  | _ -> Alcotest.fail "missing prof_run header");
  (* collapsed text: "frame;frame us" per line *)
  let collapsed = Filename.temp_file "test_prof" ".txt" in
  Obs.Prof.write_collapsed p collapsed;
  let ic = open_in collapsed in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove collapsed;
  check Alcotest.int "one line per stack" (List.length (Obs.Prof.snapshot p))
    (List.length !lines);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.fail ("no weight on line: " ^ line)
      | Some i ->
          let us =
            int_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          in
          check Alcotest.bool "weight is an int" true (us <> None))
    !lines;
  (* speedscope export parses as JSON *)
  let ss = Filename.temp_file "test_prof" ".json" in
  Obs.Prof.write_speedscope p ~name:"t" ss;
  let ic = open_in ss in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove ss;
  match Dsm.Json.of_string (String.trim contents) with
  | Ok (Dsm.Json.Obj fields) ->
      check Alcotest.bool "has profiles" true
        (List.mem_assoc "profiles" fields)
  | Ok _ -> Alcotest.fail "speedscope export is not an object"
  | Error e -> Alcotest.fail e

(* unbalanced pops must not underflow past the root *)
let test_prof_pop_underflow () =
  let p = Obs.Prof.create ~sample_every:1 () in
  Obs.Prof.pop p;
  Obs.Prof.pop p;
  Obs.Prof.push p "a";
  Obs.Prof.tick p;
  Obs.Prof.pop p;
  let entries = Obs.Prof.snapshot p in
  check Alcotest.bool "survives underflow" true
    (List.for_all
       (fun e ->
         e.Obs.Prof.stack = [ "a" ] || e.Obs.Prof.stack = [ "(idle)" ])
       entries)

(* ---------- the HTTP exporter ---------- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let b = Bytes.create 4096 in
      let rec loop () =
        let n = Unix.read fd b 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes buf b 0 n;
          loop ()
        end
      in
      (try loop () with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let body_of response =
  let sep = "\r\n\r\n" in
  let rl = String.length response in
  let rec find i =
    if i + 4 > rl then None
    else if String.sub response i 4 = sep then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> response
  | Some i -> String.sub response (i + 4) (rl - i - 4)

let test_exporter () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "lmc.system_states_created" in
  Obs.Metrics.add c 42;
  Obs.Metrics.set (Obs.Metrics.gauge m "online.tier") 1.;
  Obs.Metrics.observe (Obs.Metrics.histogram m "lmc.depth") 5;
  let e = Obs.Exporter.start ~metrics:m ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Obs.Exporter.stop e)
    (fun () ->
      let port = Obs.Exporter.port e in
      check Alcotest.bool "bound a real port" true (port > 0);
      let metrics = http_get port "/metrics" in
      check Alcotest.bool "200" true
        (String.length metrics >= 12
        && String.sub metrics 0 12 = "HTTP/1.0 200");
      let mbody = body_of metrics in
      let has needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "counter exposed with _total" true
        (has "lmc_system_states_created_total 42" mbody);
      check Alcotest.bool "gauge exposed" true (has "online_tier 1" mbody);
      check Alcotest.bool "histogram buckets" true
        (has "lmc_depth_bucket" mbody && has "le=\"+Inf\"" mbody);
      let health = http_get port "/healthz" in
      (match Dsm.Json.of_string (String.trim (body_of health)) with
      | Ok (Dsm.Json.Obj fields) ->
          check Alcotest.bool "status ok" true
            (List.assoc_opt "status" fields = Some (Dsm.Json.String "ok"));
          check Alcotest.bool "tier surfaced" true
            (List.assoc_opt "tier" fields = Some (Dsm.Json.Int 1));
          check Alcotest.bool "rss surfaced" true
            (List.mem_assoc "rss_mb" fields)
      | Ok _ -> Alcotest.fail "/healthz is not a JSON object"
      | Error err -> Alcotest.fail ("/healthz: " ^ err));
      let missing = http_get port "/nope" in
      check Alcotest.bool "404 elsewhere" true
        (String.length missing >= 12
        && String.sub missing 0 12 = "HTTP/1.0 404");
      check Alcotest.bool "requests counted" true (Obs.Exporter.requests e >= 3));
  (* stop is idempotent *)
  Obs.Exporter.stop e

(* ---------- the soak timeseries ring ---------- *)

let test_timeseries () =
  let path = Filename.temp_file "test_ts" ".jsonl" in
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "work.items" in
  let ts = Obs.Timeseries.create ~interval:0.0 ~capacity:2 ~metrics:m path in
  Obs.Metrics.add c 5;
  Obs.Timeseries.sample ts ~now:1.0;
  Obs.Metrics.add c 5;
  Obs.Timeseries.sample ts ~now:2.0;
  Obs.Timeseries.sample ts ~now:3.0;
  (* capacity 2 + the final sample taken by close: oldest dropped *)
  check Alcotest.bool "ring dropped" true (Obs.Timeseries.dropped ts > 0);
  Obs.Timeseries.close ts;
  Obs.Timeseries.close ts (* idempotent *);
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let records =
    List.rev_map
      (fun l ->
        match Dsm.Json.of_string l with
        | Ok (Dsm.Json.Obj f) -> f
        | _ -> Alcotest.fail ("bad line: " ^ l))
      !lines
  in
  let ev f =
    match List.assoc_opt "ev" f with
    | Some (Dsm.Json.String e) -> e
    | _ -> Alcotest.fail "record without ev"
  in
  (match records with
  | header :: _ -> check Alcotest.string "ts_run first" "ts_run" (ev header)
  | [] -> Alcotest.fail "empty timeseries file");
  let samples = List.filter (fun f -> ev f = "sample") records in
  check Alcotest.int "retention kept the ring bound" 2 (List.length samples);
  List.iter
    (fun f ->
      (match List.assoc_opt "counters" f with
      | Some (Dsm.Json.Obj counters) ->
          check Alcotest.bool "counter sampled" true
            (List.mem_assoc "work.items" counters)
      | _ -> Alcotest.fail "sample without counters object");
      match List.assoc_opt "gauges" f with
      | Some (Dsm.Json.Obj gauges) ->
          check Alcotest.bool "proc gauges sampled" true
            (List.mem_assoc "proc.rss_bytes" gauges)
      | _ -> Alcotest.fail "sample without gauges object")
    samples;
  (* every schema-tagged record numbers one strictly increasing seq *)
  let seqs =
    List.filter_map
      (fun f ->
        match List.assoc_opt "seq" f with
        | Some (Dsm.Json.Int s) -> Some s
        | _ -> None)
      records
  in
  check Alcotest.int "all records numbered" (List.length records)
    (List.length seqs);
  ignore
    (List.fold_left
       (fun last s ->
         check Alcotest.bool "seq strictly increasing" true (s > last);
         s)
       (-1) seqs);
  match List.rev records with
  | trailer :: _ ->
      check Alcotest.string "ts_meta last" "ts_meta" (ev trailer)
  | [] -> assert false

(* ---------- the checker's counters vs its result ---------- *)

module Buggy = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 4
  let fresh_proposals = false
  let bug = Protocols.Paxos_core.Last_response_wins
end)

module L = Lmc.Checker.Make (Buggy)

let test_checker_counters_match_result () =
  let scope = Obs.create () in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let cfg =
    {
      L.default_config with
      max_depth = Some 12;
      local_action_bound = Some 1;
      obs = scope;
    }
  in
  let r =
    L.run cfg
      ~strategy:
        (L.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  (* the run must exercise the interesting paths, or this test checks
     nothing *)
  check Alcotest.bool "some preliminary violations" true
    (r.preliminary_violations > 0);
  check Alcotest.bool "some soundness calls" true (r.soundness_calls > 0);
  let counter name =
    match Obs.Metrics.find_counter (Obs.metrics scope) name with
    | Some c -> Obs.Metrics.value c
    | None -> Alcotest.fail ("metric not registered: " ^ name)
  in
  check Alcotest.int "transitions" r.transitions (counter "lmc.transitions");
  check Alcotest.int "node states" r.total_node_states
    (counter "lmc.node_states");
  check Alcotest.int "net messages" r.net_messages
    (counter "lmc.net_messages");
  check Alcotest.int "system states" r.system_states_created
    (counter "lmc.system_states_created");
  check Alcotest.int "preliminary violations" r.preliminary_violations
    (counter "lmc.preliminary_violations");
  check Alcotest.int "soundness calls" r.soundness_calls
    (counter "lmc.soundness_calls");
  check Alcotest.int "sequences checked" r.sequences_checked
    (counter "lmc.sequences_checked");
  check Alcotest.int "soundness rejections" r.soundness_rejections
    (counter "lmc.soundness_rejections");
  check Alcotest.int "budget exhausted" r.soundness_budget_exhausted
    (counter "lmc.soundness_budget_exhausted");
  check Alcotest.int "local assert drops" r.local_assert_drops
    (counter "lmc.local_assert_drops")

(* The deferred/parallel configuration records soundness effort from
   worker domains; totals must still match. *)
let test_checker_counters_match_result_parallel () =
  let scope = Obs.create () in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let cfg =
    {
      L.default_config with
      max_depth = Some 12;
      local_action_bound = Some 1;
      defer_soundness = true;
      verify_domains = 2;
      obs = scope;
    }
  in
  let r =
    L.run cfg
      ~strategy:
        (L.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  let counter name =
    match Obs.Metrics.find_counter (Obs.metrics scope) name with
    | Some c -> Obs.Metrics.value c
    | None -> Alcotest.fail ("metric not registered: " ^ name)
  in
  check Alcotest.bool "some soundness calls" true (r.soundness_calls > 0);
  check Alcotest.int "soundness calls" r.soundness_calls
    (counter "lmc.soundness_calls");
  check Alcotest.int "transitions" r.transitions (counter "lmc.transitions");
  check Alcotest.int "preliminary violations" r.preliminary_violations
    (counter "lmc.preliminary_violations")

(* Telemetry is a pure observer: a run with the profiler, timeseries
   and a live exporter attached must produce bit-identical tallies and
   the same violation verdict as a bare run. *)
let test_telemetry_is_pure_observer () =
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let run scope =
    L.run
      {
        L.default_config with
        max_depth = Some 12;
        local_action_bound = Some 1;
        obs = scope;
      }
      ~strategy:
        (L.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  let bare = run Obs.null in
  let ts_path = Filename.temp_file "test_tel" ".jsonl" in
  let metrics = Obs.Metrics.create () in
  let profiler = Obs.Prof.create ~sample_every:1 () in
  let timeseries =
    Obs.Timeseries.create ~interval:0.0 ~metrics ts_path
  in
  let exporter = Obs.Exporter.start ~metrics ~port:0 () in
  let scope = Obs.create ~metrics ~profiler ~timeseries () in
  let telemetered = run scope in
  ignore (http_get (Obs.Exporter.port exporter) "/metrics");
  Obs.Exporter.stop exporter;
  Obs.close scope;
  Sys.remove ts_path;
  check Alcotest.int "transitions" bare.L.transitions
    telemetered.L.transitions;
  check Alcotest.int "node states" bare.L.total_node_states
    telemetered.L.total_node_states;
  check Alcotest.int "system states" bare.L.system_states_created
    telemetered.L.system_states_created;
  check Alcotest.int "preliminary violations" bare.L.preliminary_violations
    telemetered.L.preliminary_violations;
  check Alcotest.int "soundness rejections" bare.L.soundness_rejections
    telemetered.L.soundness_rejections;
  check Alcotest.bool "same verdict" true
    ((bare.L.sound_violation = None)
    = (telemetered.L.sound_violation = None));
  (* the profiler actually saw the run *)
  check Alcotest.bool "profiler sampled frames" true
    (List.exists
       (fun e -> List.mem "combination" e.Obs.Prof.stack)
       (Obs.Prof.snapshot profiler))

(* the deprecated callback keeps firing, now as an event subscriber *)
let test_on_new_node_state_still_works () =
  let sink, events = Obs.Sink.memory ~only:[ "lmc.node_state" ] () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let calls = ref 0 in
  let cfg =
    {
      L.default_config with
      max_depth = Some 6;
      local_action_bound = Some 1;
      obs = scope;
      on_new_node_state = Some (fun _ _ -> incr calls);
    }
  in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let r =
    L.run cfg ~strategy:L.General ~invariant:Buggy.safety snapshot
  in
  check Alcotest.bool "callback fired" true (!calls > 0);
  (* one callback invocation and one event per new node state, minus
     the snapshot roots which predate exploration *)
  check Alcotest.int "callback counts new node states"
    (r.total_node_states - Array.length snapshot)
    !calls;
  check Alcotest.int "events mirror the callback" !calls
    (List.length (events ()))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket index edges" `Quick test_bucket_index;
          Alcotest.test_case "histogram snapshot" `Quick
            test_histogram_snapshot;
          Alcotest.test_case "name/type clash" `Quick test_name_type_clash;
          Alcotest.test_case "jsonl dump" `Quick test_metrics_jsonl_dump;
          Alcotest.test_case "find miss paths" `Quick test_find_miss_paths;
          Alcotest.test_case "quantile estimates" `Quick test_quantile;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "profiler" `Quick test_prof;
          Alcotest.test_case "profiler pop underflow" `Quick
            test_prof_pop_underflow;
          Alcotest.test_case "http exporter" `Quick test_exporter;
          Alcotest.test_case "timeseries ring" `Quick test_timeseries;
          Alcotest.test_case "pure observer" `Quick
            test_telemetry_is_pure_observer;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse values" `Quick test_json_parse_values;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl round-trip" `Quick
            test_jsonl_sink_roundtrip;
          Alcotest.test_case "only filter" `Quick test_sink_only_filter;
          Alcotest.test_case "memory sink, two domains" `Quick
            test_memory_sink_two_domains;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "null scope" `Quick test_null_scope;
          Alcotest.test_case "span duration" `Quick test_span_emits_duration;
          Alcotest.test_case "heartbeat gating" `Quick test_heartbeat;
        ] );
      ( "checker",
        [
          Alcotest.test_case "counters match result" `Quick
            test_checker_counters_match_result;
          Alcotest.test_case "counters match result (parallel)" `Quick
            test_checker_counters_match_result_parallel;
          Alcotest.test_case "on_new_node_state still works" `Quick
            test_on_new_node_state_still_works;
        ] );
    ]
