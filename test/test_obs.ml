(* Tests for the observability subsystem (lib/obs): histogram
   bucketing, sinks, the JSON parser, domain-safety of the registry,
   and the contract that the checker's [result] counters and the
   metrics registry tell the same story. *)

let check = Alcotest.check

(* ---------- histogram bucketing ---------- *)

let test_bucket_index () =
  let idx = Obs.Metrics.bucket_index in
  check Alcotest.int "0 -> bucket 0" 0 (idx 0);
  check Alcotest.int "negative -> bucket 0" 0 (idx (-5));
  check Alcotest.int "min_int -> bucket 0" 0 (idx min_int);
  check Alcotest.int "1 -> bucket 1" 1 (idx 1);
  check Alcotest.int "2 -> bucket 2" 2 (idx 2);
  check Alcotest.int "3 -> bucket 2" 2 (idx 3);
  check Alcotest.int "4 -> bucket 3" 3 (idx 4);
  check Alcotest.int "7 -> bucket 3" 3 (idx 7);
  check Alcotest.int "8 -> bucket 4" 4 (idx 8);
  (* the top bucket absorbs everything, including max_int *)
  check Alcotest.int "max_int -> last bucket" (Obs.Metrics.num_buckets - 1)
    (idx max_int);
  (* bounds are inclusive and consistent with the index *)
  check Alcotest.(pair int int) "bounds of bucket 1" (1, 1)
    (Obs.Metrics.bucket_bounds 1);
  check Alcotest.(pair int int) "bounds of bucket 3" (4, 7)
    (Obs.Metrics.bucket_bounds 3);
  for i = 1 to Obs.Metrics.num_buckets - 2 do
    let lo, hi = Obs.Metrics.bucket_bounds i in
    check Alcotest.int (Printf.sprintf "lo of bucket %d self-indexes" i) i
      (idx lo);
    check Alcotest.int (Printf.sprintf "hi of bucket %d self-indexes" i) i
      (idx hi)
  done

let test_histogram_snapshot () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) [ 0; 1; 3; 8; -2; 100 ];
  let s = Obs.Metrics.histogram_snapshot h in
  check Alcotest.int "count" 6 s.Obs.Metrics.count;
  (* negative observations contribute 0 to the sum *)
  check Alcotest.int "sum" 112 s.Obs.Metrics.sum;
  check Alcotest.int "max" 100 s.Obs.Metrics.max;
  check
    Alcotest.(list (triple int int int))
    "non-empty buckets, ascending"
    [ (0, 0, 2); (1, 1, 1); (2, 3, 1); (8, 15, 1); (64, 127, 1) ]
    s.Obs.Metrics.buckets

let test_name_type_clash () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  (* same name, same type: the same cell *)
  let c1 = Obs.Metrics.counter m "x" in
  Obs.Metrics.incr c1;
  check Alcotest.int "get-or-create" 1
    (Obs.Metrics.value (Obs.Metrics.counter m "x"));
  match Obs.Metrics.histogram m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "registering x as a histogram should fail"

(* ---------- the JSON parser (Dsm.Json.of_string) ---------- *)

let test_json_parse_values () =
  let parse s =
    match Dsm.Json.of_string s with
    | Ok v -> v
    | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e)
  in
  check Alcotest.bool "null" true (parse "null" = Dsm.Json.Null);
  check Alcotest.bool "int" true (parse "-42" = Dsm.Json.Int (-42));
  check Alcotest.bool "float" true (parse "2.5" = Dsm.Json.Float 2.5);
  check Alcotest.bool "exponent" true (parse "1e3" = Dsm.Json.Float 1000.);
  check Alcotest.bool "escapes" true
    (parse {|"a\"b\\c\n"|} = Dsm.Json.String "a\"b\\c\n");
  check Alcotest.bool "unicode escape" true
    (parse {|"café"|} = Dsm.Json.String "caf\xc3\xa9");
  check Alcotest.bool "nested" true
    (parse {|{"a":[1,true,null],"b":{"c":"d"}}|}
    = Dsm.Json.Obj
        [
          ("a", Dsm.Json.List [ Dsm.Json.Int 1; Dsm.Json.Bool true; Dsm.Json.Null ]);
          ("b", Dsm.Json.Obj [ ("c", Dsm.Json.String "d") ]);
        ]);
  let rejected s =
    match Dsm.Json.of_string s with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "trailing garbage rejected" true (rejected "1 2");
  check Alcotest.bool "unterminated object rejected" true (rejected "{\"a\":");
  check Alcotest.bool "bare word rejected" true (rejected "nul")

let test_json_roundtrip () =
  let values =
    [
      Dsm.Json.Null;
      Dsm.Json.Bool false;
      Dsm.Json.Int max_int;
      Dsm.Json.Int min_int;
      Dsm.Json.Float 1.5e-9;
      Dsm.Json.String "line\nbreak \t \"quoted\" caf\xc3\xa9";
      Dsm.Json.List [ Dsm.Json.Int 1; Dsm.Json.List []; Dsm.Json.Obj [] ];
      Dsm.Json.Obj
        [
          ("empty", Dsm.Json.String "");
          ("nested", Dsm.Json.Obj [ ("k", Dsm.Json.List [ Dsm.Json.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Dsm.Json.to_string v in
      match Dsm.Json.of_string s with
      | Ok v' -> check Alcotest.bool s true (v = v')
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e))
    values

(* ---------- sinks ---------- *)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "test_obs" ".jsonl" in
  let scope = Obs.create ~sinks:[ Obs.Sink.jsonl_file path ] () in
  Obs.event scope "first" ~fields:[ ("n", Dsm.Json.Int 7) ];
  Obs.event scope "second"
    ~fields:[ ("s", Dsm.Json.String "with \"quotes\" and \n newline") ];
  Obs.close scope;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "two lines" 2 (List.length lines);
  let parsed =
    List.map
      (fun line ->
        match Dsm.Json.of_string line with
        | Ok (Dsm.Json.Obj fields) -> fields
        | Ok _ -> Alcotest.fail "event line is not an object"
        | Error e -> Alcotest.fail e)
      lines
  in
  let field name fields =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> Alcotest.fail ("missing field " ^ name)
  in
  (match parsed with
  | [ e1; e2 ] ->
      check Alcotest.bool "event name" true
        (field "event" e1 = Dsm.Json.String "first");
      check Alcotest.bool "int field" true (field "n" e1 = Dsm.Json.Int 7);
      check Alcotest.bool "string field round-trips" true
        (field "s" e2 = Dsm.Json.String "with \"quotes\" and \n newline");
      (match field "ts" e1 with
      | Dsm.Json.Float ts -> check Alcotest.bool "ts >= 0" true (ts >= 0.)
      | _ -> Alcotest.fail "ts is not a float")
  | _ -> assert false)

let test_sink_only_filter () =
  let sink, events = Obs.Sink.memory ~only:[ "keep" ] () in
  let scope = Obs.create ~sinks:[ sink ] () in
  Obs.event scope "drop";
  Obs.event scope "keep";
  Obs.event scope "drop";
  check Alcotest.(list string) "filtered" [ "keep" ]
    (List.map (fun e -> e.Obs.Sink.name) (events ()))

let test_memory_sink_two_domains () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let n = 500 in
  let emitter tag () =
    for i = 0 to n - 1 do
      Obs.event scope tag ~fields:[ ("i", Dsm.Json.Int i) ]
    done
  in
  let d = Domain.spawn (emitter "d1") in
  emitter "d0" ();
  Domain.join d;
  let all = events () in
  check Alcotest.int "nothing lost" (2 * n) (List.length all);
  let seq tag =
    List.filter_map
      (fun e ->
        if e.Obs.Sink.name = tag then
          match e.Obs.Sink.fields with
          | [ ("i", Dsm.Json.Int i) ] -> Some i
          | _ -> None
        else None)
      all
  in
  let expect = List.init n (fun i -> i) in
  check Alcotest.(list int) "domain 0 in order" expect (seq "d0");
  check Alcotest.(list int) "domain 1 in order" expect (seq "d1")

(* ---------- scopes ---------- *)

let test_null_scope () =
  check Alcotest.bool "null is null" true (Obs.is_null Obs.null);
  check Alcotest.bool "created scope is not" false (Obs.is_null (Obs.create ()));
  check Alcotest.bool "null is inactive" false (Obs.active Obs.null);
  (* events, spans and heartbeats on the disabled scope are no-ops *)
  Obs.event Obs.null "nobody" ~fields:[ ("x", Dsm.Json.Int 1) ];
  Obs.heartbeat Obs.null (fun () -> Alcotest.fail "fields forced");
  check Alcotest.int "span passes the value through" 41
    (Obs.span Obs.null "s" (fun () -> 41))

let test_span_emits_duration () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let v =
    Obs.span scope "work" ~fields:[ ("k", Dsm.Json.Int 3) ] (fun () -> 7)
  in
  check Alcotest.int "result" 7 v;
  match events () with
  | [ e ] ->
      check Alcotest.string "name" "work" e.Obs.Sink.name;
      check Alcotest.bool "keeps fields" true
        (List.assoc_opt "k" e.Obs.Sink.fields = Some (Dsm.Json.Int 3));
      (match List.assoc_opt "elapsed_s" e.Obs.Sink.fields with
      | Some (Dsm.Json.Float t) ->
          check Alcotest.bool "duration >= 0" true (t >= 0.)
      | _ -> Alcotest.fail "no elapsed_s field")
  | es -> Alcotest.fail (Printf.sprintf "%d events, wanted 1" (List.length es))

let test_heartbeat () =
  let sink, events = Obs.Sink.memory () in
  let scope = Obs.create ~sinks:[ sink ] ~progress:0.0 () in
  for i = 1 to 1024 do
    Obs.heartbeat scope (fun () -> [ ("i", Dsm.Json.Int i) ])
  done;
  let beats = events () in
  (* the clock is consulted every 256th call; with a zero interval each
     consultation emits *)
  check Alcotest.int "4 beats in 1024 calls" 4 (List.length beats);
  check Alcotest.bool "named progress" true
    (List.for_all (fun e -> e.Obs.Sink.name = "progress") beats)

let test_metrics_jsonl_dump () =
  let scope = Obs.create () in
  Obs.Metrics.add (Obs.counter scope "a.count") 5;
  Obs.Metrics.observe (Obs.histogram scope "b.hist") 3;
  let path = Filename.temp_file "test_obs_metrics" ".jsonl" in
  Obs.write_metrics_jsonl scope path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let parsed =
    List.map
      (fun l ->
        match Dsm.Json.of_string l with
        | Ok (Dsm.Json.Obj f) -> f
        | _ -> Alcotest.fail "metric line is not an object")
      (List.rev !lines)
  in
  check Alcotest.int "two metrics" 2 (List.length parsed);
  (* sorted by name: a.count first *)
  match parsed with
  | [ a; b ] ->
      check Alcotest.bool "counter name" true
        (List.assoc "metric" a = Dsm.Json.String "a.count");
      check Alcotest.bool "counter value" true
        (List.assoc "value" a = Dsm.Json.Int 5);
      check Alcotest.bool "histogram name" true
        (List.assoc "metric" b = Dsm.Json.String "b.hist")
  | _ -> assert false

(* ---------- the checker's counters vs its result ---------- *)

module Buggy = Protocols.Paxos.Make (struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 4
  let fresh_proposals = false
  let bug = Protocols.Paxos_core.Last_response_wins
end)

module L = Lmc.Checker.Make (Buggy)

let test_checker_counters_match_result () =
  let scope = Obs.create () in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let cfg =
    {
      L.default_config with
      max_depth = Some 12;
      local_action_bound = Some 1;
      obs = scope;
    }
  in
  let r =
    L.run cfg
      ~strategy:
        (L.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  (* the run must exercise the interesting paths, or this test checks
     nothing *)
  check Alcotest.bool "some preliminary violations" true
    (r.preliminary_violations > 0);
  check Alcotest.bool "some soundness calls" true (r.soundness_calls > 0);
  let counter name =
    match Obs.Metrics.find_counter (Obs.metrics scope) name with
    | Some c -> Obs.Metrics.value c
    | None -> Alcotest.fail ("metric not registered: " ^ name)
  in
  check Alcotest.int "transitions" r.transitions (counter "lmc.transitions");
  check Alcotest.int "node states" r.total_node_states
    (counter "lmc.node_states");
  check Alcotest.int "net messages" r.net_messages
    (counter "lmc.net_messages");
  check Alcotest.int "system states" r.system_states_created
    (counter "lmc.system_states_created");
  check Alcotest.int "preliminary violations" r.preliminary_violations
    (counter "lmc.preliminary_violations");
  check Alcotest.int "soundness calls" r.soundness_calls
    (counter "lmc.soundness_calls");
  check Alcotest.int "sequences checked" r.sequences_checked
    (counter "lmc.sequences_checked");
  check Alcotest.int "soundness rejections" r.soundness_rejections
    (counter "lmc.soundness_rejections");
  check Alcotest.int "budget exhausted" r.soundness_budget_exhausted
    (counter "lmc.soundness_budget_exhausted");
  check Alcotest.int "local assert drops" r.local_assert_drops
    (counter "lmc.local_assert_drops")

(* The deferred/parallel configuration records soundness effort from
   worker domains; totals must still match. *)
let test_checker_counters_match_result_parallel () =
  let scope = Obs.create () in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let cfg =
    {
      L.default_config with
      max_depth = Some 12;
      local_action_bound = Some 1;
      defer_soundness = true;
      verify_domains = 2;
      obs = scope;
    }
  in
  let r =
    L.run cfg
      ~strategy:
        (L.Invariant_specific
           { abstract = Buggy.abstraction; conflict = Buggy.conflicts })
      ~invariant:Buggy.safety snapshot
  in
  let counter name =
    match Obs.Metrics.find_counter (Obs.metrics scope) name with
    | Some c -> Obs.Metrics.value c
    | None -> Alcotest.fail ("metric not registered: " ^ name)
  in
  check Alcotest.bool "some soundness calls" true (r.soundness_calls > 0);
  check Alcotest.int "soundness calls" r.soundness_calls
    (counter "lmc.soundness_calls");
  check Alcotest.int "transitions" r.transitions (counter "lmc.transitions");
  check Alcotest.int "preliminary violations" r.preliminary_violations
    (counter "lmc.preliminary_violations")

(* the deprecated callback keeps firing, now as an event subscriber *)
let test_on_new_node_state_still_works () =
  let sink, events = Obs.Sink.memory ~only:[ "lmc.node_state" ] () in
  let scope = Obs.create ~sinks:[ sink ] () in
  let calls = ref 0 in
  let cfg =
    {
      L.default_config with
      max_depth = Some 6;
      local_action_bound = Some 1;
      obs = scope;
      on_new_node_state = Some (fun _ _ -> incr calls);
    }
  in
  let snapshot = Protocols.Scenarios.wids_snapshot (module Buggy) in
  let r =
    L.run cfg ~strategy:L.General ~invariant:Buggy.safety snapshot
  in
  check Alcotest.bool "callback fired" true (!calls > 0);
  (* one callback invocation and one event per new node state, minus
     the snapshot roots which predate exploration *)
  check Alcotest.int "callback counts new node states"
    (r.total_node_states - Array.length snapshot)
    !calls;
  check Alcotest.int "events mirror the callback" !calls
    (List.length (events ()))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "bucket index edges" `Quick test_bucket_index;
          Alcotest.test_case "histogram snapshot" `Quick
            test_histogram_snapshot;
          Alcotest.test_case "name/type clash" `Quick test_name_type_clash;
          Alcotest.test_case "jsonl dump" `Quick test_metrics_jsonl_dump;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse values" `Quick test_json_parse_values;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "jsonl round-trip" `Quick
            test_jsonl_sink_roundtrip;
          Alcotest.test_case "only filter" `Quick test_sink_only_filter;
          Alcotest.test_case "memory sink, two domains" `Quick
            test_memory_sink_two_domains;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "null scope" `Quick test_null_scope;
          Alcotest.test_case "span duration" `Quick test_span_emits_duration;
          Alcotest.test_case "heartbeat gating" `Quick test_heartbeat;
        ] );
      ( "checker",
        [
          Alcotest.test_case "counters match result" `Quick
            test_checker_counters_match_result;
          Alcotest.test_case "counters match result (parallel)" `Quick
            test_checker_counters_match_result_parallel;
          Alcotest.test_case "on_new_node_state still works" `Quick
            test_on_new_node_state_still_works;
        ] );
    ]
