(* Tests for the global model checker (B-DFS). *)

let check = Alcotest.check
let fail = Alcotest.fail

module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config)
module G_tree = Mc_global.Bdfs.Make (Tree)

module Chain4 = Protocols.Chain.Make (struct
  let length = 4
end)

module G_chain = Mc_global.Bdfs.Make (Chain4)

module Ping2 = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module G_ping = Mc_global.Bdfs.Make (Ping2)

let tree_init () = Dsm.Protocol.initial_system (module Tree)

(* ---------- the primer space (Figs. 2-3) ---------- *)

let test_tree_explores_fully () =
  let o =
    G_tree.run G_tree.default_config ~invariant:Tree.received_implies_sent
      (tree_init ())
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "no violation" true (o.violation = None);
  (* the paper's Fig. 3 space: 11 distinct global states (the figure
     draws 12 boxes, two of which are marked duplicates) *)
  check Alcotest.int "global states" 11 o.stats.global_states;
  check Alcotest.int "transitions" 16 o.stats.transitions;
  (* only three valid system states: -----, s----, s---r *)
  check Alcotest.int "system states" 3 o.stats.system_states;
  (* the longest run: start + 4 deliveries *)
  check Alcotest.int "max depth (5 events)" 5 o.stats.max_depth_reached

let test_tree_depth_bound () =
  let cfg = { G_tree.default_config with max_depth = Some 1 } in
  let o = G_tree.run cfg ~invariant:Tree.received_implies_sent (tree_init ()) in
  check Alcotest.bool "completed within bound" true o.completed;
  (* depth 1: initial state + the send *)
  check Alcotest.int "two states" 2 o.stats.global_states;
  check Alcotest.int "depth reached" 1 o.stats.max_depth_reached

let test_tree_depth_zero () =
  let cfg = { G_tree.default_config with max_depth = Some 0 } in
  let o = G_tree.run cfg ~invariant:Tree.received_implies_sent (tree_init ()) in
  check Alcotest.int "only the root" 1 o.stats.global_states;
  check Alcotest.int "no transitions" 0 o.stats.transitions

let test_transition_budget_truncates () =
  let cfg = { G_tree.default_config with max_transitions = Some 3 } in
  let o = G_tree.run cfg ~invariant:Tree.received_implies_sent (tree_init ()) in
  check Alcotest.bool "not completed" false o.completed

let test_violation_reported_with_trace () =
  (* Trigger invariant: "node 4 never receives" — violated on a real
     reachable state, so B-DFS reports it with a replayable trace. *)
  let trigger =
    Dsm.Invariant.make ~name:"never-received" (fun sys ->
        if sys.(4) = Protocols.Tree.Received then Some "received" else None)
  in
  let o = G_tree.run G_tree.default_config ~invariant:trigger (tree_init ()) in
  match o.violation with
  | None -> fail "expected violation"
  | Some v ->
      check Alcotest.bool "trace non-empty" true (v.trace <> []);
      check Alcotest.int "violating state depth" v.depth (List.length v.trace);
      (* replay the trace through the raw semantics *)
      let states = tree_init () in
      let net = ref Net.Multiset.empty in
      List.iter
        (fun step ->
          match step with
          | Dsm.Trace.Execute (n, a) ->
              let s', out = Tree.handle_action ~self:n states.(n) a in
              states.(n) <- s';
              net := Net.Multiset.add_list out !net
          | Dsm.Trace.Deliver env ->
              (match Net.Multiset.remove env !net with
              | Some net' -> net := net'
              | None -> fail "trace delivers a message not in flight");
              let node = env.Dsm.Envelope.dst in
              let s', out = Tree.handle_message ~self:node states.(node) env in
              states.(node) <- s';
              net := Net.Multiset.add_list out !net
          | Dsm.Trace.Crash n ->
              states.(n) <- Tree.on_recover ~self:n states.(n))
        v.trace;
      check Alcotest.bool "replayed state matches report" true
        (states = v.system);
      check Alcotest.bool "replayed state violates" true
        (Dsm.Invariant.check trigger states <> None)

let test_stop_on_violation_off () =
  let trigger =
    Dsm.Invariant.make ~name:"sent" (fun sys ->
        if sys.(0) = Protocols.Tree.Sent then Some "sent" else None)
  in
  let cfg = { G_tree.default_config with stop_on_violation = false } in
  let o = G_tree.run cfg ~invariant:trigger (tree_init ()) in
  check Alcotest.bool "violation still recorded" true (o.violation <> None);
  check Alcotest.bool "exploration continued to completion" true o.completed;
  check Alcotest.int "full space still explored" 11 o.stats.global_states

let test_initial_state_checked () =
  let trigger =
    Dsm.Invariant.make ~name:"never" (fun _ -> Some "always fails")
  in
  let o = G_tree.run G_tree.default_config ~invariant:trigger (tree_init ()) in
  match o.violation with
  | Some v -> check Alcotest.int "violation at depth 0" 0 v.depth
  | None -> fail "initial state not checked"

(* ---------- chain ---------- *)

let test_chain_space () =
  let o =
    G_chain.run G_chain.default_config ~invariant:Chain4.prefix_closed
      (Dsm.Protocol.initial_system (module Chain4))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "invariant holds" true (o.violation = None);
  (* strictly sequential: start + 3 hops = 4 events, 5 states *)
  check Alcotest.int "five states" 5 o.stats.global_states;
  check Alcotest.int "four transitions" 4 o.stats.transitions;
  check Alcotest.int "depth 4" 4 o.stats.max_depth_reached

(* ---------- ping ---------- *)

let test_ping_space () =
  let o =
    G_ping.run G_ping.default_config ~invariant:Ping2.no_excess_pongs
      (Dsm.Protocol.initial_system (module Ping2))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "invariant holds" true (o.violation = None);
  check Alcotest.bool "interleavings explored" true (o.stats.global_states > 5)

let test_ping_reachable_trigger_found () =
  let trigger =
    Dsm.Invariant.make ~name:"both-pongs" (fun sys ->
        if List.length sys.(0).Protocols.Ping.pongs >= 2 then Some "done"
        else None)
  in
  let o =
    G_ping.run G_ping.default_config ~invariant:trigger
      (Dsm.Protocol.initial_system (module Ping2))
  in
  check Alcotest.bool "reachable state found" true (o.violation <> None)

(* ---------- initial in-flight messages ---------- *)

let test_initial_net () =
  (* Seed the network with the token already addressed to the target:
     its delivery is then the only needed event. *)
  let trigger =
    Dsm.Invariant.make ~name:"received" (fun sys ->
        if sys.(4) = Protocols.Tree.Received then Some "received" else None)
  in
  let env = Dsm.Envelope.make ~src:1 ~dst:4 () in
  let o =
    G_tree.run G_tree.default_config ~invariant:trigger ~initial_net:[ env ]
      (tree_init ())
  in
  match o.violation with
  | Some v -> check Alcotest.int "one event suffices" 1 v.depth
  | None -> fail "seeded message not delivered"

(* ---------- memory accounting ---------- *)

let test_retained_bytes_grow () =
  let shallow =
    G_tree.run
      { G_tree.default_config with max_depth = Some 1 }
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  let deep =
    G_tree.run G_tree.default_config ~invariant:Tree.received_implies_sent
      (tree_init ())
  in
  check Alcotest.bool "more states, more bytes" true
    (deep.stats.retained_bytes > shallow.stats.retained_bytes)

(* ---------- qcheck: chain length scaling ---------- *)

let prop_chain_linear =
  QCheck.Test.make ~count:20 ~name:"chain space is linear in length"
    QCheck.(int_range 2 10)
    (fun n ->
      let module C = Protocols.Chain.Make (struct
        let length = n
      end) in
      let module G = Mc_global.Bdfs.Make (C) in
      let o =
        G.run G.default_config ~invariant:C.prefix_closed
          (Dsm.Protocol.initial_system (module C))
      in
      o.completed
      && o.stats.global_states = n + 1
      && o.stats.transitions = n
      && o.violation = None)

(* ---------- symmetry reduction ----------

   On the genuinely S3-symmetric flood fixture, canonical-fingerprint
   dedup must cut the explored global states (toward the |S_3| = 6
   bound) without changing the verdict, and the layered frontier mode
   must agree exactly with the DFS on the reduced space.  The audit
   is run first — the checker only ever sees a licensed group. *)

let test_bdfs_symmetry_reduction () =
  let module F = Protocols.Lint_fixtures.Sym_flood in
  let module G = Mc_global.Bdfs.Make (F) in
  let module Y = Lint.Symmetry.Make (F) in
  let gap =
    Dsm.Invariant.for_all_pairs ~name:"bounded-progress-gap" (fun _ a _ b ->
        if abs (a - b) > 100 then Some "progress gap" else None)
  in
  let y = Y.run ~config:{ Y.default_config with invariant = Some gap } () in
  check Alcotest.string "audit licenses the full group" "full"
    (Dsm.Symmetry.name y.Y.verdict.Y.commutation.Dsm.Symmetry.group);
  let go ?(domains = 1) symmetry =
    G.run
      { G.default_config with max_depth = Some 6; domains; symmetry }
      ~invariant:gap
      (Dsm.Protocol.initial_system (module F))
  in
  let off = go (Dsm.Symmetry.id_spec ~degree:3) in
  let on = go y.Y.verdict.Y.commutation in
  check Alcotest.bool "off completed" true off.completed;
  check Alcotest.bool "on completed" true on.completed;
  check Alcotest.bool "off clean" true (off.violation = None);
  check Alcotest.bool "on clean" true (on.violation = None);
  check Alcotest.int "no orbit hits when off" 0 off.stats.orbit_hits;
  check Alcotest.bool "orbit hits counted" true (on.stats.orbit_hits > 0);
  check Alcotest.bool "global states cut >= 2x" true
    (off.stats.global_states >= 2 * on.stats.global_states);
  check Alcotest.bool "transitions cut" true
    (off.stats.transitions > on.stats.transitions);
  (* layered frontier expansion agrees with the DFS on the reduced
     space — orbit bookkeeping lives on the sequential merge path *)
  let on2 = go ~domains:2 y.Y.verdict.Y.commutation in
  check Alcotest.int "frontier: same states" on.stats.global_states
    on2.stats.global_states;
  check Alcotest.int "frontier: same transitions" on.stats.transitions
    on2.stats.transitions;
  check Alcotest.bool "frontier: clean" true (on2.violation = None)

let () =
  Alcotest.run "mc_global"
    [
      ( "tree",
        [
          Alcotest.test_case "full exploration" `Quick test_tree_explores_fully;
          Alcotest.test_case "depth bound" `Quick test_tree_depth_bound;
          Alcotest.test_case "depth zero" `Quick test_tree_depth_zero;
          Alcotest.test_case "transition budget" `Quick
            test_transition_budget_truncates;
          Alcotest.test_case "violation trace replays" `Quick
            test_violation_reported_with_trace;
          Alcotest.test_case "stop_on_violation off" `Quick
            test_stop_on_violation_off;
          Alcotest.test_case "initial state checked" `Quick
            test_initial_state_checked;
        ] );
      ( "chain",
        [
          Alcotest.test_case "sequential space" `Quick test_chain_space;
          QCheck_alcotest.to_alcotest prop_chain_linear;
        ] );
      ( "ping",
        [
          Alcotest.test_case "space" `Quick test_ping_space;
          Alcotest.test_case "reachable trigger" `Quick
            test_ping_reachable_trigger_found;
        ] );
      ( "features",
        [
          Alcotest.test_case "initial net" `Quick test_initial_net;
          Alcotest.test_case "memory accounting" `Quick
            test_retained_bytes_grow;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "sym-flood reduction" `Quick
            test_bdfs_symmetry_reduction;
        ] );
    ]
