(* Tests for the online model-checking framework (§3.3). *)

let check = Alcotest.check
let fail = Alcotest.fail

module Common = struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 8
  let bug = Protocols.Paxos_core.Last_response_wins
end

module Live = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
end)

module Check_p = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
end)

module Live_fixed = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
  let bug = Protocols.Paxos_core.No_bug
end)

module Check_fixed = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
  let bug = Protocols.Paxos_core.No_bug
end)

module Online_buggy = Online.Online_mc.Make (Live) (Check_p)
module Online_fixed = Online.Online_mc.Make (Live_fixed) (Check_fixed)
module Sim_buggy = Sim.Live_sim.Make (Live)
module Sim_fixed = Sim.Live_sim.Make (Live_fixed)

let lossy () =
  Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()

let buggy_config ~max_live_time =
  {
    Online_buggy.sim =
      { Sim_buggy.seed = 7; link = lossy (); timer_min = 2.0; timer_max = 20.0;
        action_prob = None; faults = Fault.Plan.empty };
    check_interval = 30.0;
    max_live_time;
    checker =
      {
        Online_buggy.Checker.default_config with
        time_limit = Some 5.0;
        max_transitions = Some 100_000;
      };
    action_bounds = [ 1; 2 ];
    steer = false;
    steer_scope = `Exact_action;
    supervisor = Online_buggy.default_supervisor;
    store = None;
  }

let strategy_buggy =
  Online_buggy.Checker.Invariant_specific
    { abstract = Check_p.abstraction; conflict = Check_p.conflicts }

let test_finds_injected_bug () =
  let outcome =
    Online_buggy.run (buggy_config ~max_live_time:600.0)
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  match outcome.report with
  | None -> fail "online checking missed the injected bug"
  | Some report ->
      check Alcotest.bool "found within live budget" true
        (report.live_time <= 600.0);
      check Alcotest.bool "witness non-empty" true
        (report.violation.Online_buggy.Checker.schedule <> []);
      check Alcotest.bool "counted checks" true (report.checks_run >= 1);
      check Alcotest.int "totals consistent" outcome.total_checks
        report.checks_run

let test_report_printable () =
  let outcome =
    Online_buggy.run (buggy_config ~max_live_time:600.0)
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  match outcome.report with
  | None -> fail "expected a report"
  | Some report ->
      let out = Format.asprintf "%a" Online_buggy.pp_report report in
      check Alcotest.bool "mentions the invariant" true
        (String.length out > 50)

let test_correct_paxos_quiet () =
  let config =
    {
      Online_fixed.sim =
        { Sim_fixed.seed = 7; link = lossy (); timer_min = 2.0;
          timer_max = 20.0; action_prob = None; faults = Fault.Plan.empty };
      check_interval = 30.0;
      max_live_time = 120.0;
      checker =
        {
          Online_fixed.Checker.default_config with
          time_limit = Some 3.0;
          max_transitions = Some 50_000;
        };
      action_bounds = [ 1 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor = Online_fixed.default_supervisor;
      store = None;
    }
  in
  let strategy =
    Online_fixed.Checker.Invariant_specific
      { abstract = Check_fixed.abstraction; conflict = Check_fixed.conflicts }
  in
  let outcome =
    Online_fixed.run config ~strategy ~invariant:Check_fixed.safety
  in
  check Alcotest.bool "no false positive" true (outcome.report = None);
  check Alcotest.bool "checks actually ran" true (outcome.total_checks >= 4)

(* Execution steering: predictions installed as action vetoes keep the
   live system from ever reaching the violation.  The checker must
   outpace the drivers (2 s restarts vs 10-30 s action timers) — with
   slow restarts the stale node fires its fatal action before the
   prediction lands, which is CrystalBall's own operating constraint. *)
let test_steering_prevents_live_violation () =
  let module OPCfg = struct
    let num_nodes = 3
    let max_leader_claims = 2
    let max_attempts = 1
    let max_index = 12
    let max_util_entries = 3
    let max_util_attempts = 2
    let bug = Protocols.Onepaxos.Postfix_increment
  end in
  let module OP = Protocols.Onepaxos.Make (OPCfg) in
  let module O = Online.Online_mc.Make (OP) (OP) in
  let module S = Sim.Live_sim.Make (OP) in
  let config steer =
    {
      O.sim =
        {
          S.seed = 9;
          link =
            Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05
              ~latency_max:0.3 ();
          timer_min = 20.0;
          timer_max = 40.0;
          action_prob =
            Some
              (fun _ a ->
                match a with
                | Protocols.Onepaxos.Claim_leadership -> 0.1
                | _ -> 1.0);
          faults = Fault.Plan.empty;
        };
      check_interval = 5.0;
      max_live_time = 120.0;
      checker =
        {
          O.Checker.default_config with
          time_limit = Some 1.0;
          max_transitions = Some 20_000;
        };
      action_bounds = [ 1; 2 ];
      steer;
      steer_scope = `Node;
      supervisor = O.default_supervisor;
      store = None;
    }
  in
  let strategy =
    O.Checker.Invariant_specific
      { abstract = OP.abstraction; conflict = OP.conflicts }
  in
  let steered = O.run (config true) ~strategy ~invariant:OP.safety in
  check Alcotest.bool "violation predicted" true (steered.report <> None);
  check Alcotest.bool "vetoes installed" true (steered.vetoed <> []);
  check Alcotest.bool "live system never violated" true
    (steered.live_violation_time = None)

(* ---------- supervised loop (hardening) ---------- *)

(* A throwing abstraction function fails every Checker.run attempt
   while leaving the live loop's own invariant evaluation untouched
   (the abstraction is only ever called inside the checker). *)
let test_survives_checker_failure () =
  let calls = ref 0 in
  let strategy =
    Online_fixed.Checker.Invariant_specific
      {
        abstract =
          (fun s ->
            incr calls;
            if !calls <= 1 then failwith "injected checker failure";
            Check_fixed.abstraction s);
        conflict = Check_fixed.conflicts;
      }
  in
  let config =
    {
      Online_fixed.sim =
        { Sim_fixed.seed = 7; link = lossy (); timer_min = 2.0;
          timer_max = 20.0; action_prob = None; faults = Fault.Plan.empty };
      check_interval = 30.0;
      max_live_time = 60.0;
      checker =
        {
          Online_fixed.Checker.default_config with
          time_limit = Some 3.0;
          max_transitions = Some 50_000;
        };
      action_bounds = [ 1 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor =
        {
          Online_fixed.default_supervisor with
          Online_fixed.max_retries = 2;
          backoff_base_ms = 1;
          backoff_cap_ms = 2;
        };
      store = None;
    }
  in
  let outcome =
    Online_fixed.run config ~strategy ~invariant:Check_fixed.safety
  in
  check Alcotest.bool "loop survived the injected failure" true
    (outcome.total_checks >= 2);
  check Alcotest.bool "failure recorded as degradation" true
    (List.mem "checker_failure" outcome.degradations);
  check Alcotest.bool "retry recovered, no permanent failure" false
    (List.mem "checker_failed_permanently" outcome.degradations);
  check Alcotest.bool "no false positive" true (outcome.report = None)

let test_survives_permanent_checker_failure () =
  let strategy =
    Online_fixed.Checker.Invariant_specific
      {
        abstract = (fun _ -> failwith "checker always dies");
        conflict = Check_fixed.conflicts;
      }
  in
  let config =
    {
      Online_fixed.sim =
        { Sim_fixed.seed = 7; link = lossy (); timer_min = 2.0;
          timer_max = 20.0; action_prob = None; faults = Fault.Plan.empty };
      check_interval = 30.0;
      max_live_time = 120.0;
      checker =
        {
          Online_fixed.Checker.default_config with
          time_limit = Some 3.0;
          max_transitions = Some 50_000;
        };
      action_bounds = [ 1 ];
      steer = false;
      steer_scope = `Exact_action;
      supervisor =
        {
          Online_fixed.default_supervisor with
          Online_fixed.max_retries = 0;
          backoff_base_ms = 1;
          backoff_cap_ms = 2;
        };
      store = None;
    }
  in
  let outcome =
    Online_fixed.run config ~strategy ~invariant:Check_fixed.safety
  in
  check Alcotest.bool "every restart degraded" true
    (List.mem "checker_failed_permanently" outcome.degradations);
  check Alcotest.bool "degradation escalates to the last tier" true
    (outcome.final_tier = 3);
  check Alcotest.bool "loop still ran to its live budget" true
    (outcome.total_checks >= 3)

let test_survives_corrupt_snapshot () =
  let tampered = ref 0 in
  let config =
    {
      (buggy_config ~max_live_time:600.0) with
      Online_buggy.supervisor =
        {
          Online_buggy.default_supervisor with
          Online_buggy.checksum_snapshots = true;
          snapshot_tamper =
            Some
              (fun wire ->
                if !tampered > 0 then wire
                else begin
                  incr tampered;
                  (* flip one payload byte: the digest must catch it *)
                  let b = Bytes.of_string wire in
                  let i = String.length wire - 1 in
                  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
                  Bytes.to_string b
                end);
        };
    }
  in
  let outcome =
    Online_buggy.run config ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  check Alcotest.int "exactly one snapshot tampered" 1 !tampered;
  check Alcotest.bool "rejected with a typed diagnostic" true
    (List.mem "corrupt_snapshot" outcome.degradations);
  (* the checksummed hand-off is otherwise transparent: the hunt still
     finds the injected Paxos bug from a later, intact snapshot *)
  check Alcotest.bool "bug still found after the corrupt capture" true
    (outcome.report <> None)

let test_restart_budget_degrades () =
  let config =
    {
      (buggy_config ~max_live_time:120.0) with
      Online_buggy.check_interval = 30.0;
      supervisor =
        {
          Online_buggy.default_supervisor with
          Online_buggy.restart_budget_ms = Some 0;
        };
    }
  in
  let outcome =
    Online_buggy.run config ~strategy:strategy_buggy ~invariant:Check_p.safety
  in
  check Alcotest.bool "budget trips recorded" true
    (List.mem "restart_budget_exceeded" outcome.degradations);
  check Alcotest.bool "tiers escalate" true (outcome.final_tier >= 1);
  check Alcotest.bool "loop survived every truncated restart" true
    (outcome.total_checks >= 3)

let test_interval_validation () =
  match
    Online_buggy.run
      { (buggy_config ~max_live_time:10.0) with check_interval = 0.0 }
      ~strategy:strategy_buggy ~invariant:Check_p.safety
  with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero interval accepted"

let () =
  Alcotest.run "online"
    [
      ( "online",
        [
          Alcotest.test_case "finds injected bug" `Slow test_finds_injected_bug;
          Alcotest.test_case "report printable" `Slow test_report_printable;
          Alcotest.test_case "correct build quiet" `Slow
            test_correct_paxos_quiet;
          Alcotest.test_case "steering prevents violation" `Slow
            test_steering_prevents_live_violation;
          Alcotest.test_case "interval validation" `Quick
            test_interval_validation;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "survives a checker failure" `Slow
            test_survives_checker_failure;
          Alcotest.test_case "survives permanent checker failure" `Slow
            test_survives_permanent_checker_failure;
          Alcotest.test_case "survives a corrupt snapshot" `Slow
            test_survives_corrupt_snapshot;
          Alcotest.test_case "restart budget degrades gracefully" `Slow
            test_restart_budget_degrades;
        ] );
    ]
