(* Tests for witness replay/minimisation and the FIFO channel wrapper. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ---------- witness replay & minimisation ---------- *)

module Ping = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module W = Lmc.Witness.Make (Ping)
module L_ping = Lmc.Checker.Make (Ping)

let ping_init () = Dsm.Protocol.initial_system (module Ping)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

let full_schedule =
  [
    Dsm.Trace.Execute (0, ());
    Dsm.Trace.Deliver (env ~src:0 ~dst:1 Protocols.Ping.Ping);
    Dsm.Trace.Deliver (env ~src:0 ~dst:2 Protocols.Ping.Ping);
    Dsm.Trace.Deliver (env ~src:1 ~dst:0 Protocols.Ping.Pong);
    Dsm.Trace.Deliver (env ~src:2 ~dst:0 Protocols.Ping.Pong);
  ]

let test_replay_ok () =
  match W.replay ~init:(ping_init ()) full_schedule with
  | Some final ->
      check Alcotest.int "both pongs" 2
        (List.length final.(0).Protocols.Ping.pongs)
  | None -> fail "valid schedule rejected"

let test_replay_rejects_unsent () =
  let bogus = [ Dsm.Trace.Deliver (env ~src:1 ~dst:0 Protocols.Ping.Pong) ] in
  check Alcotest.bool "unsent message rejected" true
    (W.replay ~init:(ping_init ()) bogus = None)

let test_replay_rejects_assert () =
  (* delivering Ping to the client trips its local assert *)
  let bad =
    [
      Dsm.Trace.Execute (0, ());
      Dsm.Trace.Deliver (env ~src:0 ~dst:1 Protocols.Ping.Ping);
      Dsm.Trace.Deliver (env ~src:1 ~dst:0 Protocols.Ping.Pong);
    ]
  in
  (* craft an impossible delivery: Ping addressed to node 0 *)
  let bad = bad @ [ Dsm.Trace.Deliver (env ~src:1 ~dst:0 Protocols.Ping.Ping) ] in
  check Alcotest.bool "assert-tripping schedule rejected" true
    (W.replay ~init:(ping_init ()) bad = None)

let test_minimize_drops_irrelevant () =
  (* predicate: the client got server 1's pong — server 2's whole
     exchange is irrelevant and must be shrunk away *)
  let predicate (final : Ping.state array) =
    List.mem 1 final.(0).Protocols.Ping.pongs
  in
  let minimal = W.minimize ~init:(ping_init ()) ~predicate full_schedule in
  check Alcotest.int "three events suffice" 3 (List.length minimal);
  (match W.replay ~init:(ping_init ()) minimal with
  | Some final -> check Alcotest.bool "still satisfies" true (predicate final)
  | None -> fail "minimized schedule must replay");
  (* 1-minimality: removing any single event breaks the predicate *)
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) minimal in
      match W.replay ~init:(ping_init ()) without with
      | Some final ->
          check Alcotest.bool "not 1-minimal" false (predicate final)
      | None -> ())
    minimal

let test_minimize_keeps_necessary () =
  (* predicate needs both pongs: nothing can be dropped *)
  let predicate (final : Ping.state array) =
    List.length final.(0).Protocols.Ping.pongs >= 2
  in
  let minimal = W.minimize ~init:(ping_init ()) ~predicate full_schedule in
  check Alcotest.int "nothing droppable" 5 (List.length minimal)

let test_minimize_non_violating_input () =
  let predicate _ = false in
  let out = W.minimize ~init:(ping_init ()) ~predicate full_schedule in
  check Alcotest.int "returned unchanged" 5 (List.length out)

let test_minimize_lmc_witness () =
  (* end to end: minimize a witness the checker produced *)
  let trigger =
    Dsm.Invariant.make ~name:"one-pong" (fun sys ->
        if List.mem 1 sys.(0).Protocols.Ping.pongs then Some "hit" else None)
  in
  let r =
    L_ping.run L_ping.default_config ~strategy:L_ping.General
      ~invariant:trigger (ping_init ())
  in
  match r.sound_violation with
  | None -> fail "expected a violation"
  | Some v ->
      let predicate sys = Dsm.Invariant.check trigger sys <> None in
      let minimal = W.minimize ~init:(ping_init ()) ~predicate v.schedule in
      check Alcotest.bool "no longer than original" true
        (List.length minimal <= List.length v.schedule);
      check Alcotest.int "the 3-event core" 3 (List.length minimal)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_to_dot () =
  let dot = W.to_dot ~title:"ping run" full_schedule in
  check Alcotest.bool "digraph" true (contains dot "digraph \"ping run\"");
  (* one lane per node *)
  check Alcotest.bool "lane N0" true (contains dot "label=\"N0\"");
  check Alcotest.bool "lane N2" true (contains dot "label=\"N2\"");
  (* the ping-all action and a delivery appear as boxes *)
  check Alcotest.bool "action box" true (contains dot "ping-all");
  check Alcotest.bool "recv box" true (contains dot "recv ping");
  (* every delivery gets a producer arrow: 4 deliveries, 4 blue edges *)
  let count_blue =
    let rec go i acc =
      if i >= String.length dot then acc
      else if i + 11 <= String.length dot && String.sub dot i 11 = "color=blue]"
      then go (i + 11) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "four message arrows" 4 count_blue

let test_to_dot_escapes () =
  (* quotes in labels must be escaped for Graphviz *)
  let module Q = struct
    let name = "quote"
    let num_nodes = 1

    type state = unit
    type message = unit
    type action = unit

    let initial _ = ()
    let handle_message ~self:_ () _ = ((), [])
    let enabled_actions ~self:_ () = []
    let handle_action ~self:_ () () = ((), [])
    let on_recover = Dsm.Protocol.default_on_recover
    let pp_state ppf () = Format.pp_print_string ppf "()"
    let pp_message ppf () = Format.pp_print_string ppf "say \"hi\""
    let pp_action ppf () = Format.pp_print_string ppf "do \"it\""
  end in
  let module WQ = Lmc.Witness.Make (Q) in
  let dot = WQ.to_dot [ Dsm.Trace.Execute (0, ()) ] in
  check Alcotest.bool "escaped quotes" true (contains dot "do \\\"it\\\"")

(* ---------- FIFO wrapper ---------- *)

(* A burst sender: node 0 sends three tokens to node 1 in one action;
   node 1 records arrival order. *)
module Burst = struct
  let name = "burst"
  let num_nodes = 2

  type state = int list  (* received payloads, newest first *)
  type message = int
  type action = unit

  let initial _ = []

  let handle_message ~self:_ state env =
    (env.Dsm.Envelope.payload :: state, [])

  let enabled_actions ~self state =
    if self = 0 && state = [] then [ () ] else []

  let handle_action ~self state () =
    ( 99 :: state,
      List.map (fun i -> Dsm.Envelope.make ~src:0 ~dst:1 i) [ 1; 2; 3 ] )
  [@@warning "-27"]

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int s))

  let pp_message = Format.pp_print_int
  let pp_action ppf () = Format.pp_print_string ppf "burst"
end

module Fifo_burst = Protocols.Fifo.Make (Burst)
module G_plain = Mc_global.Bdfs.Make (Burst)
module G_fifo = Mc_global.Bdfs.Make (Fifo_burst)
module L_fifo = Lmc.Checker.Make (Fifo_burst)

let always_true = Dsm.Invariant.make ~name:"true" (fun _ -> None)

let test_fifo_stamps_sequences () =
  let s = Fifo_burst.initial 0 in
  let _, out = Fifo_burst.handle_action ~self:0 s () in
  let seqs =
    List.map (fun (e : _ Dsm.Envelope.t) -> e.Dsm.Envelope.payload.Protocols.Fifo.seq) out
  in
  check Alcotest.(list int) "sequence numbers" [ 0; 1; 2 ] seqs

let test_fifo_rejects_reorder () =
  let s = Fifo_burst.initial 1 in
  let in_order =
    Dsm.Envelope.make ~src:0 ~dst:1 { Protocols.Fifo.seq = 0; payload = 1 }
  in
  let s', _ = Fifo_burst.handle_message ~self:1 s in_order in
  (* delivering seq 2 next must be rejected *)
  let skip =
    Dsm.Envelope.make ~src:0 ~dst:1 { Protocols.Fifo.seq = 2; payload = 3 }
  in
  (match Fifo_burst.handle_message ~self:1 s' skip with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "reordered segment accepted");
  (* and a replayed old segment too *)
  let dup =
    Dsm.Envelope.make ~src:0 ~dst:1 { Protocols.Fifo.seq = 0; payload = 1 }
  in
  match Fifo_burst.handle_message ~self:1 s' dup with
  | exception Dsm.Protocol.Local_assert _ -> ()
  | _ -> fail "duplicate segment accepted"

let test_fifo_prunes_interleavings () =
  let plain =
    G_plain.run G_plain.default_config
      ~invariant:(Dsm.Invariant.make ~name:"true" (fun _ -> None))
      (Dsm.Protocol.initial_system (module Burst))
  in
  let fifo =
    G_fifo.run G_fifo.default_config ~invariant:always_true
      (Dsm.Protocol.initial_system (module Fifo_burst))
  in
  (* plain: all 3! arrival orders; fifo: only the sorted one *)
  check Alcotest.bool "fewer states under FIFO" true
    (fifo.stats.global_states < plain.stats.global_states);
  check Alcotest.bool "single linear run under FIFO" true
    (fifo.stats.global_states = 5)

let test_fifo_lmc_discards_reorders () =
  let r =
    L_fifo.run L_fifo.default_config ~strategy:L_fifo.General
      ~invariant:always_true
      (Dsm.Protocol.initial_system (module Fifo_burst))
  in
  check Alcotest.bool "completed" true r.completed;
  check Alcotest.bool "reordered deliveries discarded" true
    (r.local_assert_drops > 0);
  (* node 1 sees exactly the in-order prefixes: [], [1], [1;2], [1;2;3] *)
  check Alcotest.int "node-1 states" 4 r.node_states.(1)

let test_fifo_lift_invariant () =
  let inner_inv =
    Dsm.Invariant.make ~name:"no-two" (fun sys ->
        if List.mem 2 sys.(1) then Some "saw two" else None)
  in
  let lifted = Fifo_burst.lift_invariant inner_inv in
  let r =
    L_fifo.run L_fifo.default_config ~strategy:L_fifo.General
      ~invariant:lifted
      (Dsm.Protocol.initial_system (module Fifo_burst))
  in
  match r.sound_violation with
  | Some v ->
      (* under FIFO, seeing 2 requires having seen 1 first *)
      check Alcotest.bool "in-order history" true
        (match v.system.(1).Protocols.Fifo.inner with
        | 2 :: 1 :: _ -> true
        | _ -> false)
  | None -> fail "lifted invariant violation not found"

let () =
  Alcotest.run "witness_fifo"
    [
      ( "witness",
        [
          Alcotest.test_case "replay ok" `Quick test_replay_ok;
          Alcotest.test_case "replay unsent" `Quick test_replay_rejects_unsent;
          Alcotest.test_case "replay assert" `Quick test_replay_rejects_assert;
          Alcotest.test_case "minimize drops" `Quick
            test_minimize_drops_irrelevant;
          Alcotest.test_case "minimize keeps" `Quick
            test_minimize_keeps_necessary;
          Alcotest.test_case "minimize no-op" `Quick
            test_minimize_non_violating_input;
          Alcotest.test_case "minimize LMC witness" `Quick
            test_minimize_lmc_witness;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "to_dot escaping" `Quick test_to_dot_escapes;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "stamping" `Quick test_fifo_stamps_sequences;
          Alcotest.test_case "reorder rejected" `Quick test_fifo_rejects_reorder;
          Alcotest.test_case "pruned interleavings" `Quick
            test_fifo_prunes_interleavings;
          Alcotest.test_case "LMC discards reorders" `Quick
            test_fifo_lmc_discards_reorders;
          Alcotest.test_case "lifted invariant" `Quick test_fifo_lift_invariant;
        ] );
    ]
