(* Tests for lib/store: the mmap'd fingerprint set, checkpoint
   directories, crash-safety under truncation, and incremental
   (resumable) checking through the LMC, B-DFS and online layers. *)

let check = Alcotest.check
let fail = Alcotest.fail

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                 *)
(* ------------------------------------------------------------------ *)

let tmpdir () =
  let path = Filename.temp_file "lmc-store-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun e -> rm_rf (Filename.concat path e))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path

let with_dir f =
  let dir = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let fp_of_int i = Dsm.Fingerprint.of_value (`Store_test, i)

(* ------------------------------------------------------------------ *)
(* Fp_set                                                              *)
(* ------------------------------------------------------------------ *)

let test_fp_set_basics () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "s.fps" in
  let s = Store.Fp_set.create path in
  check Alcotest.int "empty" 0 (Store.Fp_set.length s);
  check Alcotest.bool "absent" false (Store.Fp_set.mem s (fp_of_int 1));
  check Alcotest.bool "fresh add" true (Store.Fp_set.add s (fp_of_int 1));
  check Alcotest.bool "duplicate add" false (Store.Fp_set.add s (fp_of_int 1));
  check Alcotest.bool "present" true (Store.Fp_set.mem s (fp_of_int 1));
  check Alcotest.int "one entry" 1 (Store.Fp_set.length s);
  let batch = Array.init 8 fp_of_int in
  let added = Store.Fp_set.add_batch s batch in
  check Alcotest.(array bool) "batch add: only 1 was present"
    (Array.init 8 (fun i -> i <> 1))
    added;
  check Alcotest.(array bool) "batch mem: all present"
    (Array.make 8 true)
    (Store.Fp_set.mem_batch s batch);
  Store.Fp_set.close s

let test_fp_set_persists () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "s.fps" in
  let s = Store.Fp_set.create path in
  for i = 0 to 99 do
    ignore (Store.Fp_set.add s (fp_of_int i))
  done;
  Store.Fp_set.flush s;
  Store.Fp_set.close s;
  match Store.Fp_set.load path with
  | Error e -> fail (Format.asprintf "load: %a" Store.Fp_set.pp_error e)
  | Ok s ->
      check Alcotest.int "count recovered" 100 (Store.Fp_set.length s);
      for i = 0 to 99 do
        if not (Store.Fp_set.mem s (fp_of_int i)) then
          fail (Printf.sprintf "entry %d lost across close/load" i)
      done;
      check Alcotest.bool "still absent" false
        (Store.Fp_set.mem s (fp_of_int 100));
      Store.Fp_set.close s

let test_fp_set_growth () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "s.fps" in
  let s = Store.Fp_set.create ~capacity:1024 path in
  let grow_events = ref [] in
  Store.Fp_set.on_compact s (fun ~old_capacity ~new_capacity ->
      grow_events := (old_capacity, new_capacity) :: !grow_events);
  let n = 2_000 in
  for i = 0 to n - 1 do
    ignore (Store.Fp_set.add s (fp_of_int i))
  done;
  check Alcotest.int "all inserted" n (Store.Fp_set.length s);
  check Alcotest.bool "grew at least once" true
    (Store.Fp_set.compactions s >= 1);
  check Alcotest.int "compaction callback fired per growth"
    (Store.Fp_set.compactions s)
    (List.length !grow_events);
  List.iter
    (fun (o, nw) ->
      if nw <> 2 * o then
        fail (Printf.sprintf "growth %d -> %d is not a doubling" o nw))
    !grow_events;
  check Alcotest.bool "below the 7/8 load factor" true
    (Store.Fp_set.occupancy s < 0.875);
  for i = 0 to n - 1 do
    if not (Store.Fp_set.mem s (fp_of_int i)) then
      fail (Printf.sprintf "entry %d lost across growth" i)
  done;
  Store.Fp_set.close s;
  (* the renamed file reloads with everything intact *)
  match Store.Fp_set.load path with
  | Error e -> fail (Format.asprintf "load: %a" Store.Fp_set.pp_error e)
  | Ok s ->
      check Alcotest.int "count after reload" n (Store.Fp_set.length s);
      Store.Fp_set.close s

(* A fingerprint folds to its documented on-disk key, and the folding
   round-trips through add/probe bit-identically (the same audit the
   lint sanitizer runs). *)
let test_fp_set_key_round_trip () =
  with_dir @@ fun dir ->
  let s = Store.Fp_set.create (Filename.concat dir "s.fps") in
  for i = 0 to 63 do
    let fp = fp_of_int i in
    ignore (Store.Fp_set.add s fp);
    match Store.Fp_set.probe s fp with
    | Some k ->
        check Alcotest.int64 "slot holds the folding" (Store.Fp_set.key fp) k
    | None -> fail "inserted fingerprint probes to an empty slot"
  done;
  (* and a tampered insert is visible as drift *)
  let fp = fp_of_int 1_000 in
  ignore
    (Store.Fp_set.add_key s (Int64.lognot (Store.Fp_set.key fp)));
  check Alcotest.bool "tampered entry does not satisfy mem" false
    (Store.Fp_set.mem s fp);
  Store.Fp_set.close s

(* ------------------------------------------------------------------ *)
(* Crash safety: truncations and bit flips are typed errors            *)
(* ------------------------------------------------------------------ *)

let build_store_file dir =
  let path = Filename.concat dir "s.fps" in
  let s = Store.Fp_set.create ~capacity:1024 path in
  for i = 0 to 49 do
    ignore (Store.Fp_set.add s (fp_of_int i))
  done;
  Store.Fp_set.flush s;
  Store.Fp_set.close s;
  path

let truncate_rejected =
  QCheck.Test.make ~count:60
    ~name:"truncated store file is a typed load error"
    QCheck.(float_range 0. 1.)
    (fun frac ->
      with_dir @@ fun dir ->
      let path = build_store_file dir in
      let size = (Unix.stat path).Unix.st_size in
      (* any proper prefix, header included, must be rejected *)
      let cut = int_of_float (frac *. float_of_int (size - 1)) in
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      match Store.Fp_set.load path with
      | Error (Store.Fp_set.Corrupt_store _) -> true
      | Ok s ->
          Store.Fp_set.close s;
          false)

let header_flip_rejected =
  QCheck.Test.make ~count:60
    ~name:"bit flip in the checksummed header prefix is a load error"
    (* cells 0-2 (magic, capacity, salt) are covered by the digest *)
    QCheck.(int_range 0 23)
    (fun off ->
      with_dir @@ fun dir ->
      let path = build_store_file dir in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      let b = Bytes.create 1 in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.read fd b 0 1);
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      ignore (Unix.write fd b 0 1);
      Unix.close fd;
      match Store.Fp_set.load path with
      | Error (Store.Fp_set.Corrupt_store _) -> true
      | Ok s ->
          Store.Fp_set.close s;
          false)

(* ------------------------------------------------------------------ *)
(* Checkpoint directories                                              *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_round_trip () =
  with_dir @@ fun dir ->
  let c =
    Store.Checkpoint.create ~dir ~protocol:"p" ~num_nodes:2 ~seed:42 ()
  in
  ignore (Store.Fp_set.add (Store.Checkpoint.combos c) (fp_of_int 0));
  ignore (Store.Fp_set.add (Store.Checkpoint.node_states c).(1) (fp_of_int 1));
  ignore (Store.Fp_set.add (Store.Checkpoint.iplus c) (fp_of_int 2));
  Store.Checkpoint.save c ~live_time:120. ~checks:3 ~states:17 ~hits:5
    ~found:false;
  Store.Checkpoint.close c;
  match Store.Checkpoint.load ~dir ~protocol:"p" ~num_nodes:2 ~seed:42 () with
  | Error e -> fail (Format.asprintf "load: %a" Store.Checkpoint.pp_error e)
  | Ok c ->
      let m = Store.Checkpoint.meta c in
      check (Alcotest.float 0.0) "live_time" 120. m.Store.Checkpoint.m_live_time;
      check Alcotest.int "checks" 3 m.Store.Checkpoint.m_checks;
      check Alcotest.int "states" 17 m.Store.Checkpoint.m_states;
      check Alcotest.int "hits" 5 m.Store.Checkpoint.m_hits;
      check Alcotest.bool "found" false m.Store.Checkpoint.m_found;
      check Alcotest.bool "combos survive" true
        (Store.Fp_set.mem (Store.Checkpoint.combos c) (fp_of_int 0));
      check Alcotest.bool "node stores survive" true
        (Store.Fp_set.mem (Store.Checkpoint.node_states c).(1) (fp_of_int 1));
      check Alcotest.bool "iplus survives" true
        (Store.Fp_set.mem (Store.Checkpoint.iplus c) (fp_of_int 2));
      Store.Checkpoint.close c

let expect_corrupt what = function
  | Error (Store.Checkpoint.Corrupt_checkpoint _) -> ()
  | Ok c ->
      Store.Checkpoint.close c;
      fail (what ^ ": corrupt checkpoint load unexpectedly succeeded")

let test_checkpoint_rejects_mismatch () =
  with_dir @@ fun dir ->
  let c =
    Store.Checkpoint.create ~dir ~protocol:"p" ~num_nodes:2 ~seed:42 ()
  in
  Store.Checkpoint.save c ~live_time:1. ~checks:1 ~states:1 ~hits:0
    ~found:false;
  Store.Checkpoint.close c;
  (* resuming a deterministic simulation under another identity would
     silently check the wrong system *)
  expect_corrupt "wrong seed"
    (Store.Checkpoint.load ~dir ~protocol:"p" ~num_nodes:2 ~seed:43 ());
  expect_corrupt "wrong protocol"
    (Store.Checkpoint.load ~dir ~protocol:"q" ~num_nodes:2 ~seed:42 ());
  (* a torn meta write must not be trusted *)
  let meta = Filename.concat dir "meta.bin" in
  let fd = Unix.openfile meta [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd 5;
  Unix.close fd;
  expect_corrupt "truncated meta"
    (Store.Checkpoint.load ~dir ~protocol:"p" ~num_nodes:2 ~seed:42 ())

let meta_truncate_rejected =
  QCheck.Test.make ~count:40
    ~name:"checkpoint truncated at any offset is rejected, typed"
    QCheck.(float_range 0. 1.)
    (fun frac ->
      with_dir @@ fun dir ->
      let c =
        Store.Checkpoint.create ~dir ~protocol:"p" ~num_nodes:1 ~seed:7 ()
      in
      ignore (Store.Fp_set.add (Store.Checkpoint.combos c) (fp_of_int 9));
      Store.Checkpoint.save c ~live_time:30. ~checks:1 ~states:4 ~hits:0
        ~found:false;
      Store.Checkpoint.close c;
      let meta = Filename.concat dir "meta.bin" in
      let size = (Unix.stat meta).Unix.st_size in
      let cut = int_of_float (frac *. float_of_int (size - 1)) in
      let fd = Unix.openfile meta [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd cut;
      Unix.close fd;
      match Store.Checkpoint.load ~dir ~protocol:"p" ~num_nodes:1 ~seed:7 () with
      | Error (Store.Checkpoint.Corrupt_checkpoint _) -> true
      | Ok c ->
          Store.Checkpoint.close c;
          false)

(* ------------------------------------------------------------------ *)
(* Incremental LMC: warm restarts skip proven-clean combinations       *)
(* ------------------------------------------------------------------ *)

module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config)
module L_tree = Lmc.Checker.Make (Tree)

module Ping2 = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module L_ping = Lmc.Checker.Make (Ping2)

let persist_in dir num_nodes =
  {
    Lmc.Checker.p_combos =
      Store.Fp_set.create (Filename.concat dir "combos.fps");
    p_nodes =
      Array.init num_nodes (fun i ->
          Store.Fp_set.create
            (Filename.concat dir (Printf.sprintf "node%d.fps" i)));
    p_iplus = Store.Fp_set.create (Filename.concat dir "iplus.fps");
  }

let close_persist (p : Lmc.Checker.persist) =
  Store.Fp_set.close p.Lmc.Checker.p_combos;
  Array.iter Store.Fp_set.close p.Lmc.Checker.p_nodes;
  Store.Fp_set.close p.Lmc.Checker.p_iplus

let test_lmc_warm_skips () =
  with_dir @@ fun dir ->
  let p = persist_in dir Tree.num_nodes in
  Fun.protect ~finally:(fun () -> close_persist p) @@ fun () ->
  let cfg = { L_tree.default_config with persist = Some p } in
  let init = Dsm.Protocol.initial_system (module Tree) in
  let cold =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent init
  in
  check Alcotest.int "cold run sees the primer's system states" 4
    cold.system_states_created;
  check Alcotest.int "cold run has nothing to hit" 0 cold.store_hits;
  let warm =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent init
  in
  (* clean combinations are skipped; the preliminary violation is
     deliberately never stored, so it alone is re-created and
     re-judged (soundness depends on the snapshot) *)
  check Alcotest.bool "warm run creates strictly fewer states" true
    (warm.system_states_created < cold.system_states_created);
  check Alcotest.bool "warm run hits the store" true (warm.store_hits > 0);
  check Alcotest.int "every clean combination was skipped"
    cold.system_states_created
    (warm.system_states_created + warm.store_hits);
  check Alcotest.bool "verdict unchanged" true
    (warm.sound_violation = None && cold.sound_violation = None);
  check Alcotest.int "re-judged violations unchanged"
    cold.preliminary_violations warm.preliminary_violations

(* The store gate must not perturb determinism: with equal starting
   stores, a pooled run and a serial run produce identical results. *)
let test_lmc_store_domain_determinism () =
  let run_at dir domains =
    let p = persist_in dir Ping2.num_nodes in
    Fun.protect ~finally:(fun () -> close_persist p) @@ fun () ->
    let cfg =
      { L_ping.default_config with persist = Some p; domains }
    in
    let init = Dsm.Protocol.initial_system (module Ping2) in
    let invariant = Ping2.no_excess_pongs in
    let cold = L_ping.run cfg ~strategy:L_ping.General ~invariant init in
    let warm = L_ping.run cfg ~strategy:L_ping.General ~invariant init in
    ( cold.system_states_created,
      cold.store_hits,
      warm.system_states_created,
      warm.store_hits,
      cold.transitions,
      warm.transitions )
  in
  let serial = with_dir (fun dir -> run_at dir 1) in
  let pooled = with_dir (fun dir -> run_at dir 2) in
  if serial <> pooled then
    fail "store-gated runs diverge between 1 and 2 domains"

(* ------------------------------------------------------------------ *)
(* Incremental B-DFS: a disk-backed visited set                        *)
(* ------------------------------------------------------------------ *)

module G_ping = Mc_global.Bdfs.Make (Ping2)

let test_bdfs_visited_store () =
  let init = Dsm.Protocol.initial_system (module Ping2) in
  let invariant = Ping2.no_excess_pongs in
  let ram =
    G_ping.run { G_ping.default_config with domains = 2 } ~invariant init
  in
  with_dir @@ fun dir ->
  let set = Store.Fp_set.create (Filename.concat dir "visited.fps") in
  Fun.protect ~finally:(fun () -> Store.Fp_set.close set) @@ fun () ->
  let cfg = { G_ping.default_config with visited_store = Some set } in
  let cold = G_ping.run cfg ~invariant init in
  check Alcotest.int "mmap visited set explores the same space"
    ram.stats.global_states cold.stats.global_states;
  check Alcotest.int "same transitions" ram.stats.transitions
    cold.stats.transitions;
  check Alcotest.bool "both complete" true (ram.completed && cold.completed);
  check Alcotest.bool "visited set stays off the heap" true
    (cold.stats.retained_bytes < ram.stats.retained_bytes);
  (* a second run against the same completed store re-expands nothing *)
  let warm = G_ping.run cfg ~invariant init in
  check Alcotest.int "warm restart discovers no new states" 0
    warm.stats.global_states;
  check Alcotest.bool "warm restart hits the store" true
    (warm.stats.store_hits > 0);
  check Alcotest.bool "warm restart completes" true warm.completed

(* ------------------------------------------------------------------ *)
(* Online: kill-and-resume                                             *)
(* ------------------------------------------------------------------ *)

module Common = struct
  let num_nodes = 3
  let proposers = [ 0; 1; 2 ]
  let max_attempts = 2
  let max_index = 8
  let bug = Protocols.Paxos_core.Last_response_wins
end

module Live = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = true
end)

module Check_p = Protocols.Paxos.Make (struct
  include Common

  let fresh_proposals = false
end)

module O = Online.Online_mc.Make (Live) (Check_p)
module Sim_p = Sim.Live_sim.Make (Live)

let lossy () =
  Net.Lossy_link.create ~drop_prob:0.3 ~latency_min:0.05 ~latency_max:0.3 ()

(* Seed 10 with a single widening bound: the first snapshot check
   (t = 30) explores a six-figure state count and finds nothing, the
   second (t = 60) reveals the injected bug — so a hunt killed after
   one check resumes into the revealing one. *)
let online_config ~max_live_time ~store =
  {
    O.sim =
      {
        Sim_p.seed = 10;
        link = lossy ();
        timer_min = 2.0;
        timer_max = 20.0;
        action_prob = None;
        faults = Fault.Plan.empty;
      };
    check_interval = 30.0;
    max_live_time;
    checker =
      {
        O.Checker.default_config with
        time_limit = Some 3.0;
        max_transitions = Some 30_000;
      };
    action_bounds = [ 1 ];
    steer = false;
    steer_scope = `Exact_action;
    supervisor = O.default_supervisor;
    store;
  }

let strategy = O.Checker.General

let test_online_resume () =
  with_dir @@ fun dir ->
  (* phase 1: a hunt killed after its first snapshot check *)
  let phase1 =
    O.run
      (online_config ~max_live_time:30.0
         ~store:(Some { O.dir; resume = false }))
      ~strategy ~invariant:Check_p.safety
  in
  check Alcotest.bool "phase 1 is cold" true (phase1.resumed_at = None);
  check Alcotest.bool "phase 1 checkpointed some exploration" true
    (phase1.states_explored > 0);
  check Alcotest.bool "phase 1 found nothing yet" true (phase1.report = None);
  (* phase 2: resume after the kill and finish the hunt *)
  let phase2 =
    O.run
      (online_config ~max_live_time:240.0
         ~store:(Some { O.dir; resume = true }))
      ~strategy ~invariant:Check_p.safety
  in
  (match phase2.resumed_at with
  | Some t ->
      check Alcotest.bool "fast-forwarded into phase 1's live time" true
        (t > 0. && t <= 30.0)
  | None -> fail "phase 2 did not resume from the checkpoint");
  check Alcotest.bool "no degradation on a clean resume" true
    (not (List.mem "corrupt_checkpoint" phase2.degradations));
  (match phase2.report with
  | None -> fail "resumed hunt missed the injected bug"
  | Some _ -> ());
  check Alcotest.bool "cumulative accounting inherited phase 1" true
    (phase2.states_explored > phase1.states_explored);
  (* the warm phase re-explores strictly less than a cold full hunt:
     its newly created states (cumulative minus inherited) stay below
     the cold run's total *)
  let cold =
    O.run
      (online_config ~max_live_time:240.0 ~store:None)
      ~strategy ~invariant:Check_p.safety
  in
  (match cold.report with
  | None -> fail "cold hunt missed the injected bug"
  | Some _ -> ());
  let phase2_new = phase2.states_explored - phase1.states_explored in
  check Alcotest.bool "warm phase re-explores strictly fewer states" true
    (phase2_new < cold.states_explored)

let test_online_corrupt_checkpoint_falls_back () =
  with_dir @@ fun dir ->
  let phase1 =
    O.run
      (online_config ~max_live_time:30.0
         ~store:(Some { O.dir; resume = false }))
      ~strategy ~invariant:Check_p.safety
  in
  check Alcotest.bool "phase 1 ran" true (phase1.total_checks > 0);
  (* tear the metadata mid-write *)
  let meta = Filename.concat dir "meta.bin" in
  let fd = Unix.openfile meta [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd 5;
  Unix.close fd;
  let phase2 =
    O.run
      (online_config ~max_live_time:30.0
         ~store:(Some { O.dir; resume = true }))
      ~strategy ~invariant:Check_p.safety
  in
  (* the supervisor records the corruption and cold-starts — no crash,
     no resume *)
  check Alcotest.bool "degradation recorded" true
    (List.mem "corrupt_checkpoint" phase2.degradations);
  check Alcotest.bool "fell back to a cold start" true
    (phase2.resumed_at = None);
  check Alcotest.bool "loop kept running" true (phase2.total_checks > 0)

(* A hunt killed between churn events must restore the checkpointed
   membership on resume — Store.Checkpoint carries the fleet map and
   Online_mc audits it against what Fault.Plan.membership_at says the
   resume instant should look like.  A bug-free protocol keeps both
   the resumed and the unkilled hunt running out the full plan, so
   their final fleets are comparable regardless of discovery timing. *)
module Live_ok = Protocols.Paxos.Make (struct
  include Common

  let bug = Protocols.Paxos_core.No_bug
  let fresh_proposals = true
end)

module Check_ok = Protocols.Paxos.Make (struct
  include Common

  let bug = Protocols.Paxos_core.No_bug
  let fresh_proposals = false
end)

module O_ok = Online.Online_mc.Make (Live_ok) (Check_ok)
module Sim_ok = Sim.Live_sim.Make (Live_ok)

let churn_plan = "leave:node=2,at=12;join:node=2,at=70;leave:node=1,at=100"

let churn_config ~max_live_time ~store ~plan =
  let faults =
    match Fault.Plan.of_string plan with
    | Ok p -> p
    | Error e -> failwith e
  in
  {
    O_ok.sim =
      {
        Sim_ok.seed = 10;
        link = lossy ();
        timer_min = 2.0;
        timer_max = 20.0;
        action_prob = None;
        faults;
      };
    check_interval = 30.0;
    max_live_time;
    checker =
      {
        O_ok.Checker.default_config with
        time_limit = Some 3.0;
        max_transitions = Some 30_000;
      };
    action_bounds = [ 1 ];
    steer = false;
    steer_scope = `Exact_action;
    supervisor = O_ok.default_supervisor;
    store;
  }

let test_online_churn_resume () =
  with_dir @@ fun dir ->
  (* phase 1: killed at t = 30, after the leave but before the rejoin *)
  let phase1 =
    O_ok.run
      (churn_config ~max_live_time:30.0
         ~store:(Some { O_ok.dir; resume = false })
         ~plan:churn_plan)
      ~strategy:O_ok.Checker.General ~invariant:Check_ok.safety
  in
  check Alcotest.bool "phase 1 stays clean" true (phase1.report = None);
  check
    Alcotest.(array bool)
    "phase 1 checkpointed mid-churn: node 2 departed"
    [| true; true; false |]
    phase1.membership;
  (* phase 2: resume inside the churn window and run out the plan *)
  let phase2 =
    O_ok.run
      (churn_config ~max_live_time:240.0
         ~store:(Some { O_ok.dir; resume = true })
         ~plan:churn_plan)
      ~strategy:O_ok.Checker.General ~invariant:Check_ok.safety
  in
  (match phase2.resumed_at with
  | Some t ->
      check Alcotest.bool "resumed inside the churn window" true
        (t > 12.0 && t <= 30.0)
  | None -> fail "phase 2 did not resume from the checkpoint");
  check Alcotest.bool "checkpointed membership passed the plan audit" true
    (not (List.mem "membership_mismatch" phase2.degradations));
  (* the restored fleet must end exactly where an unkilled hunt ends:
     node 2 rejoined at t = 70, node 1 left at t = 100 *)
  let unkilled =
    O_ok.run
      (churn_config ~max_live_time:240.0 ~store:None ~plan:churn_plan)
      ~strategy:O_ok.Checker.General ~invariant:Check_ok.safety
  in
  check
    Alcotest.(array bool)
    "unkilled run ends with the post-churn fleet"
    [| true; false; true |]
    unkilled.membership;
  check
    Alcotest.(array bool)
    "restored membership matches the unkilled run" unkilled.membership
    phase2.membership

let test_online_churn_plan_mismatch () =
  with_dir @@ fun dir ->
  let phase1 =
    O_ok.run
      (churn_config ~max_live_time:30.0
         ~store:(Some { O_ok.dir; resume = false })
         ~plan:churn_plan)
      ~strategy:O_ok.Checker.General ~invariant:Check_ok.safety
  in
  check Alcotest.bool "phase 1 ran" true (phase1.total_checks > 0);
  (* resuming under a different plan: the checkpoint's fleet map no
     longer matches what the new plan says t = 30 should look like,
     so the supervisor records the mismatch and cold-starts *)
  let phase2 =
    O_ok.run
      (churn_config ~max_live_time:30.0
         ~store:(Some { O_ok.dir; resume = true })
         ~plan:"")
      ~strategy:O_ok.Checker.General ~invariant:Check_ok.safety
  in
  check Alcotest.bool "membership mismatch degradation recorded" true
    (List.mem "membership_mismatch" phase2.degradations);
  check Alcotest.bool "fell back to a cold start" true
    (phase2.resumed_at = None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "fp_set",
        [
          Alcotest.test_case "basics" `Quick test_fp_set_basics;
          Alcotest.test_case "persists across close/load" `Quick
            test_fp_set_persists;
          Alcotest.test_case "crash-safe growth" `Quick test_fp_set_growth;
          Alcotest.test_case "key folding round-trips" `Quick
            test_fp_set_key_round_trip;
        ] );
      ( "corruption",
        List.map QCheck_alcotest.to_alcotest
          [ truncate_rejected; header_flip_rejected; meta_truncate_rejected ]
      );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_round_trip;
          Alcotest.test_case "rejects mismatch and torn meta" `Quick
            test_checkpoint_rejects_mismatch;
        ] );
      ( "incremental-lmc",
        [
          Alcotest.test_case "warm restart skips clean combinations" `Quick
            test_lmc_warm_skips;
          Alcotest.test_case "deterministic across domains" `Quick
            test_lmc_store_domain_determinism;
        ] );
      ( "incremental-bdfs",
        [
          Alcotest.test_case "mmap visited set" `Quick
            test_bdfs_visited_store;
        ] );
      ( "online-resume",
        [
          Alcotest.test_case "kill and resume" `Quick test_online_resume;
          Alcotest.test_case "corrupt checkpoint falls back cold" `Quick
            test_online_corrupt_checkpoint_falls_back;
          Alcotest.test_case "churn survives kill and resume" `Quick
            test_online_churn_resume;
          Alcotest.test_case "plan mismatch on resume cold-starts" `Quick
            test_online_churn_plan_mismatch;
        ] );
    ]
