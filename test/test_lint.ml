(* Tests for lib/lint: the interleaving checker (soundness on known-racy
   clients, exact exploration counts on the Par structures CI gates)
   and the protocol sanitizers (each planted fixture detected with its
   expected kind, every bundled correct protocol and a qcheck sweep of
   synthetic seeds lint clean, lint.v1 emission round-trips). *)

let check = Alcotest.check
let fail = Alcotest.fail

module I = Lint.Interleave
module A = I.Shim.Atomic
module R = Lint.Report

(* ------------------------------------------------------------------ *)
(* Interleave: soundness on toy clients                                *)
(* ------------------------------------------------------------------ *)

(* The classic lost update: two unsynchronised read-modify-write
   threads.  The checker must find the interleaving where both read 0. *)
let racy_counter () =
  let c = A.make 0 in
  let body () = A.set c (A.get c + 1) in
  ( [ body; body ],
    fun () ->
      let v = A.get c in
      if v <> 2 then I.failf "lost update: counter = %d" v )

let test_racy_counter () =
  let o = I.explore racy_counter in
  match o.I.failure with
  | None -> fail "interleaving checker missed the lost update"
  | Some f ->
      check Alcotest.bool "failure message names the lost update" true
        (String.length f.I.message > 0
        && String.sub f.I.message 0 11 = "lost update")

let mutexed_counter () =
  let m = I.Shim.Mutex.create () in
  let c = A.make 0 in
  let body () = I.Shim.Mutex.protect m (fun () -> A.set c (A.get c + 1)) in
  ( [ body; body ],
    fun () ->
      let v = A.get c in
      if v <> 2 then I.failf "counter = %d" v )

let test_mutexed_counter () =
  let o = I.explore mutexed_counter in
  (match o.I.failure with
  | Some f -> fail (Format.asprintf "%a" I.pp_failure f)
  | None -> ());
  check Alcotest.bool "complete" true o.I.complete;
  (* the two lock orders are the only schedules that differ *)
  check Alcotest.int "executions" 2 o.I.executions

let deadlocking_locks () =
  let ma = I.Shim.Mutex.create () and mb = I.Shim.Mutex.create () in
  let t1 () = I.Shim.Mutex.protect ma (fun () -> I.Shim.Mutex.protect mb ignore) in
  let t2 () = I.Shim.Mutex.protect mb (fun () -> I.Shim.Mutex.protect ma ignore) in
  ([ t1; t2 ], fun () -> ())

let test_deadlock_found () =
  match (I.explore deadlocking_locks).I.failure with
  | None -> fail "lock-order inversion not detected"
  | Some f ->
      check Alcotest.bool "reported as deadlock" true
        (f.I.message = "deadlock")

(* ------------------------------------------------------------------ *)
(* Interleave: Par.Deque under the shimmed primitives                  *)
(* ------------------------------------------------------------------ *)

module D = Par.Deque.Make (I.Shim)

(* Owner pushes [npush] (after [preload] sequential pushes in the
   setup), then pops twice; [nthieves] thieves each steal once.  All
   cross-thread traffic goes through the deque; per-thread results land
   in single-writer cells read only by the final check. *)
let deque_client ?(preload = 0) ~npush ~nthieves () =
  let q = D.create () in
  for i = 1 to preload do
    D.push q i
  done;
  let owner_got = ref [] in
  let thief_got = Array.make nthieves None in
  let owner () =
    for i = preload + 1 to preload + npush do
      D.push q i
    done;
    (match D.pop q with Some x -> owner_got := x :: !owner_got | None -> ());
    match D.pop q with Some x -> owner_got := x :: !owner_got | None -> ()
  in
  let thief i () = thief_got.(i) <- D.steal q in
  ( owner :: List.init nthieves thief,
    fun () ->
      let taken =
        !owner_got @ (Array.to_list thief_got |> List.filter_map Fun.id)
      in
      let rec drain acc =
        match D.pop q with Some x -> drain (x :: acc) | None -> acc
      in
      let all = List.sort compare (taken @ drain []) in
      if all <> List.init (preload + npush) (fun i -> i + 1) then
        I.failf "items lost or duplicated: [%s]"
          (String.concat ";" (List.map string_of_int all)) )

(* Exhaustive exploration with the execution count pinned: a count
   drift means the independence relation, the sleep sets, or the deque
   itself changed — all of which demand a deliberate re-baseline. *)
let deque_case name ?preload ~npush ~nthieves ~executions () =
  let o = I.explore (deque_client ?preload ~npush ~nthieves) in
  (match o.I.failure with
  | Some f -> fail (Format.asprintf "%s: %a" name I.pp_failure f)
  | None -> ());
  check Alcotest.bool (name ^ ": complete") true o.I.complete;
  check Alcotest.int (name ^ ": executions") executions o.I.executions

let test_deque_owner_vs_thief () =
  deque_case "push2" ~npush:2 ~nthieves:1 ~executions:22 ();
  deque_case "push3" ~npush:3 ~nthieves:1 ~executions:18 ()

let test_deque_two_thieves () =
  deque_case "pre2" ~preload:2 ~npush:0 ~nthieves:2 ~executions:317 ();
  deque_case "pre3" ~preload:3 ~npush:0 ~nthieves:2 ~executions:228 ();
  deque_case "pre2push1" ~preload:2 ~npush:1 ~nthieves:2 ~executions:470 ()

(* A deliberately broken steal (read top / read slot / non-CAS bump)
   must be caught: proves the deque tests can fail at all. *)
let broken_steal () =
  let top = A.make 0 and items = [| "a"; "b" |] in
  let got = Array.make 2 None in
  let thief i () =
    let t = A.get top in
    if t < Array.length items then begin
      got.(i) <- Some items.(t);
      A.set top (t + 1)
    end
  in
  ( [ thief 0; thief 1 ],
    fun () ->
      match (got.(0), got.(1)) with
      | Some a, Some b when a = b -> I.failf "duplicate take: %s" a
      | _ -> () )

let test_broken_steal_caught () =
  match (I.explore broken_steal).I.failure with
  | None -> fail "non-CAS steal not detected"
  | Some _ -> ()

(* ------------------------------------------------------------------ *)
(* Interleave: Par.Shard_tbl under the shimmed primitives              *)
(* ------------------------------------------------------------------ *)

module T = Par.Shard_tbl.Make (I.Shim)

(* Writers on distinct shards are fully independent, so sleep sets
   collapse the exploration to a single execution. *)
let tbl_distinct_keys () =
  let t = T.create ~shards:2 4 in
  let w k () = ignore (T.add_if_absent t k k) in
  ( [ w 0; w 1 ],
    fun () ->
      if not (T.mem t 0 && T.mem t 1) || T.length t <> 2 then
        I.failf "lost update: length = %d" (T.length t) )

let tbl_same_key () =
  let t = T.create ~shards:2 4 in
  let won = Array.make 2 false in
  let w i () = won.(i) <- T.add_if_absent t 7 i in
  ( [ w 0; w 1 ],
    fun () ->
      (match (won.(0), won.(1)) with
      | true, true -> I.failf "both inserts won"
      | false, false -> I.failf "no insert won"
      | _ -> ());
      if T.length t <> 1 then I.failf "length = %d" (T.length t) )

let tbl_case name client ~executions =
  let o = I.explore client in
  (match o.I.failure with
  | Some f -> fail (Format.asprintf "%s: %a" name I.pp_failure f)
  | None -> ());
  check Alcotest.bool (name ^ ": complete") true o.I.complete;
  check Alcotest.int (name ^ ": executions") executions o.I.executions

let test_shard_tbl () =
  tbl_case "distinct-keys" tbl_distinct_keys ~executions:1;
  tbl_case "same-key" tbl_same_key ~executions:2

(* ------------------------------------------------------------------ *)
(* Sanitize: the planted fixtures                                      *)
(* ------------------------------------------------------------------ *)

let run_lint (module P : Dsm.Protocol.S) =
  let module S = Lint.Sanitize.Make (P) in
  let r = S.run () in
  if not r.S.completed then fail (P.name ^ ": lint budget exhausted");
  r.S.findings

let expect_fixture (module P : Dsm.Protocol.S) kind subject =
  match run_lint (module P) with
  | [ f ] ->
      check Alcotest.string "kind" (R.kind_to_string kind)
        (R.kind_to_string f.R.kind);
      check Alcotest.string "subject" subject f.R.subject
  | fs ->
      fail
        (Printf.sprintf "%s: expected exactly one finding, got %d" P.name
           (List.length fs))

let test_fixture_nondet () =
  expect_fixture
    (module Protocols.Lint_fixtures.Nondet)
    R.Nondeterministic_handler "Ping"

let test_fixture_noncanon () =
  expect_fixture
    (module Protocols.Lint_fixtures.Noncanon)
    R.Noncanonical_state "state"

let test_fixture_dead () =
  expect_fixture
    (module Protocols.Lint_fixtures.Dead_letter)
    R.Dead_message "Noise"

let test_fixture_flaky_recovery () =
  expect_fixture
    (module Protocols.Lint_fixtures.Flaky_recovery)
    R.Nondeterministic_recovery "on_recover(node 0)"

(* The crash-recovery pb-store variant must lint clean under
   message-only exploration (the defect is reachable only through a
   crash), and in particular its [on_recover] must pass the recovery
   audit: deterministic, and canonical — recovered states digest like
   their message-reachable twins. *)
let test_crash_variant_recovery_clean () =
  match
    run_lint
      (module Protocols.Pb_store.Make (struct
        let key = 7
        let value = 42
        let bug = Protocols.Pb_store.Lose_acked_writes_on_recovery
      end))
  with
  | [] -> ()
  | f :: _ -> fail (Format.asprintf "unexpected finding: %a" R.pp_finding f)

(* The persistence audit's planted fixture: a tampering hook between
   the 64-bit folding and the insert stands in for a corrupting store
   layer, and must surface as a digest-drift finding.  The clean
   round-trip is exercised by every other lint in this file (the audit
   runs on each distinct state fingerprint). *)
let test_fixture_store_drift () =
  let module P = Protocols.Tree.Make (Protocols.Tree.Paper_config) in
  let module S = Lint.Sanitize.Make (P) in
  let r =
    S.run
      ~config:
        {
          S.default_config with
          store_tamper = Some (fun k -> Int64.logxor k 0x00ff_00ff_00ff_00ffL);
        }
      ()
  in
  if not r.S.completed then fail "lint budget exhausted";
  match
    List.filter (fun f -> f.R.kind = R.Store_digest_drift) r.S.findings
  with
  | _ :: _ -> ()
  | [] -> fail "tampered store produced no store_digest_drift finding"

(* ------------------------------------------------------------------ *)
(* Sanitize: bundled correct protocols lint clean                      *)
(* ------------------------------------------------------------------ *)

let clean_instances : (string * (module Dsm.Protocol.S)) list =
  [
    ("tree", (module Protocols.Tree.Make (Protocols.Tree.Paper_config)));
    ( "chain",
      (module Protocols.Chain.Make (struct
        let length = 8
      end)) );
    ( "ping",
      (module Protocols.Ping.Make (struct
        let num_servers = 2
      end)) );
    ( "randtree",
      (module Protocols.Randtree.Make (struct
        let num_nodes = 4
        let max_children = 2
        let max_attempts = 1
        let bug = Protocols.Randtree.No_bug
      end)) );
    ( "2pc",
      (module Protocols.Twophase.Make (struct
        let num_nodes = 4
        let no_voters = [ 2 ]
        let bug = Protocols.Twophase.No_bug
      end)) );
    ( "ring",
      (module Protocols.Ring_election.Make (struct
        let num_nodes = 3
        let starters = [ 0; 1 ]
        let bug = Protocols.Ring_election.No_bug
      end)) );
    ( "mutex",
      (module Protocols.Token_mutex.Make (struct
        let num_nodes = 3
        let contenders = [ 1; 2 ]
        let max_regenerations = 1
        let bug = Protocols.Token_mutex.No_bug
      end)) );
    ( "abp",
      (module Protocols.Fifo.Make (Protocols.Alternating_bit.Make (struct
        let data = [ 10; 20 ]
        let max_retransmits = 1
        let bug = Protocols.Alternating_bit.No_bug
      end))) );
    ( "pb-store",
      (module Protocols.Pb_store.Make (struct
        let key = 7
        let value = 42
        let bug = Protocols.Pb_store.No_bug
      end)) );
  ]

let test_correct_protocols_clean () =
  List.iter
    (fun (name, p) ->
      match run_lint p with
      | [] -> ()
      | f :: _ ->
          fail
            (Format.asprintf "%s: unexpected finding: %a" name R.pp_finding f))
    clean_instances

(* Synthetic protocols are pure by construction (every behavioural
   decision hashes the seed and the inputs), so a determinism,
   canonicality, purity, or exception finding on any seed is a
   sanitizer false positive.  The coverage lint is excluded: a
   hash-derived behaviour may legitimately make every delivery of some
   message family a no-op (e.g. seed 34379), which in a hand-written
   protocol would be dead code but here is just the dice.  *)
let synthetic_clean =
  QCheck.Test.make ~count:120 ~name:"synthetic seeds lint clean"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let module P = Protocols.Synthetic.Make (struct
        let seed = seed
        let num_nodes = 3
        let max_state = 4
        let kinds = 3
      end) in
      let module S = Lint.Sanitize.Make (P) in
      let r =
        S.run
          ~config:{ S.default_config with min_deliveries = max_int }
          ()
      in
      r.S.completed && r.S.findings = [])

(* And under the default config, the only findings a synthetic seed
   may ever produce are coverage verdicts. *)
let synthetic_contract_only =
  QCheck.Test.make ~count:60 ~name:"synthetic findings are coverage-only"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let module P = Protocols.Synthetic.Make (struct
        let seed = seed
        let num_nodes = 3
        let max_state = 4
        let kinds = 3
      end) in
      let module S = Lint.Sanitize.Make (P) in
      let r = S.run () in
      List.for_all
        (fun (f : R.finding) ->
          match f.R.kind with
          | R.Dead_message | R.Dead_action -> true
          | _ -> false)
        r.S.findings)

(* ------------------------------------------------------------------ *)
(* Report: families, allowlists, and the lint.v1 stream                *)
(* ------------------------------------------------------------------ *)

let test_family () =
  let cases =
    [
      ("Prepare(1,2)", "Prepare");
      ("Pong 3", "Pong");
      ("m123", "m");
      ("42", "42");
      ("fail-over", "fail-over");
      ("GetReply(miss)", "GetReply");
    ]
  in
  List.iter
    (fun (label, want) -> check Alcotest.string label want (R.family label))
    cases

let with_temp_file contents f =
  let path = Filename.temp_file "lint_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_allowlist_reconcile () =
  let allow =
    with_temp_file
      "# a comment\n\
       {\"protocol\":\"p\",\"kind\":\"dead_message\",\"subject\":\"M\"}\n\
       {\"protocol\":\"q\",\"kind\":\"dead_action\",\"subject\":\"A\"}\n"
      (fun path ->
        match R.load_allowlist path with
        | Ok l -> l
        | Error e -> fail e)
  in
  check Alcotest.int "entries" 2 (List.length allow);
  let finding =
    { R.kind = R.Dead_message; protocol = "p"; subject = "M"; detail = "d" }
  in
  let novel = { finding with R.subject = "Other" } in
  (* the covered finding is absorbed; the novel one surfaces; the "q"
     entry is stale only once "q" is actually linted *)
  let r = R.reconcile ~allow ~linted:[ "p" ] [ finding; novel ] in
  check Alcotest.int "unexpected" 1 (List.length r.R.unexpected);
  check Alcotest.int "stale (q unlinted)" 0 (List.length r.R.stale);
  let r = R.reconcile ~allow ~linted:[ "p"; "q" ] [ finding ] in
  check Alcotest.int "stale (q linted)" 1 (List.length r.R.stale)

let test_allowlist_rejects_garbage () =
  let bad s =
    with_temp_file s (fun path ->
        match R.load_allowlist path with Ok _ -> false | Error _ -> true)
  in
  check Alcotest.bool "unknown kind" true
    (bad "{\"protocol\":\"p\",\"kind\":\"nope\",\"subject\":\"M\"}\n");
  check Alcotest.bool "missing field" true (bad "{\"protocol\":\"p\"}\n");
  check Alcotest.bool "not json" true (bad "hello\n")

(* Round-trip: emit a run through a jsonl_file sink, then re-parse the
   serialized lines and re-validate what bin/jsonl_check enforces —
   schema tag, per-ev required fields, strictly increasing seq. *)
let test_lint_v1_round_trip () =
  let path = Filename.temp_file "lint_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      let t = R.to_sink sink in
      R.emit_start t ~protocol:"demo" ~max_depth:None ~max_transitions:100;
      R.emit_finding t
        { R.kind = R.Dead_message; protocol = "demo"; subject = "M";
          detail = "d" };
      R.emit_end t ~protocol:"demo" ~findings:1 ~transitions:7 ~states:3
        ~elapsed_s:0.01;
      Obs.Sink.close sink;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      check Alcotest.int "records" 3 (List.length lines);
      let last_seq = ref (-1) in
      let evs =
        List.map
          (fun line ->
            match Dsm.Json.of_string line with
            | Error e -> fail e
            | Ok (Dsm.Json.Obj fields) ->
                let str name =
                  match List.assoc_opt name fields with
                  | Some (Dsm.Json.String s) -> s
                  | _ -> fail (Printf.sprintf "missing string field %S" name)
                in
                check Alcotest.string "schema" "lint.v1" (str "schema");
                (match List.assoc_opt "seq" fields with
                | Some (Dsm.Json.Int s) ->
                    if s <= !last_seq then fail "seq not increasing";
                    last_seq := s
                | _ -> fail "missing seq");
                (match str "ev" with
                | "finding" ->
                    check Alcotest.string "kind" "dead_message" (str "kind");
                    check Alcotest.string "subject" "M" (str "subject")
                | "run_start" | "run_end" -> ()
                | ev -> fail ("unknown ev " ^ ev));
                str "ev"
            | Ok _ -> fail "not an object")
          lines
      in
      check
        Alcotest.(list string)
        "ev order"
        [ "run_start"; "finding"; "run_end" ]
        evs)

(* ------------------------------------------------------------------ *)
(* Symmetry: inference, commutation/orbit audits, canonicalization     *)
(* ------------------------------------------------------------------ *)

module Sym = Dsm.Symmetry
module Y_broken = Lint.Symmetry.Make (Protocols.Lint_fixtures.Sym_broken)
module Y_flood = Lint.Symmetry.Make (Protocols.Lint_fixtures.Sym_flood)

(* The invariant the sym-flood runner checks: slot-symmetric (it never
   looks at node identifiers), so the orbit audit should license the
   full group. *)
let flood_gap =
  Dsm.Invariant.for_all_pairs ~name:"bounded-progress-gap"
    (fun _ a _ b ->
      if abs (a - b) > 100 then Some "progress gap exceeds 100" else None)

(* The planted claim defect: fixture-sym-broken claims [S_3] but its
   Ping handler special-cases node 0.  The audit must report exactly
   one [broken_symmetry] finding and poison the claim entirely —
   identity verdict for BOTH reduction layers, so no checker ever
   reduces under the broken group. *)
let test_sym_broken_claim_caught () =
  let r =
    Y_broken.run
      ~config:
        {
          Y_broken.default_config with
          claim = Some (Sym.with_id_maps (Sym.full 3));
        }
      ()
  in
  if not r.Y_broken.completed then fail "audit budget exhausted";
  (match r.Y_broken.findings with
  | [ f ] ->
      check Alcotest.string "kind" "broken_symmetry"
        (R.kind_to_string f.R.kind);
      check Alcotest.string "subject" "Ping" f.R.subject
  | fs ->
      fail
        (Printf.sprintf "expected exactly one finding, got %d"
           (List.length fs)));
  check Alcotest.bool "commutation poisoned to identity" true
    (Sym.is_trivial r.Y_broken.verdict.Y_broken.commutation.Sym.group);
  check Alcotest.bool "orbit poisoned to identity" true
    (Sym.is_trivial r.Y_broken.verdict.Y_broken.orbit)

(* Same protocol, no claim: inference proposes candidates, the audit
   silently demotes them (that is the audit doing its job), and no
   finding reaches the report pipeline. *)
let test_sym_broken_inference_silent () =
  let r = Y_broken.run () in
  if not r.Y_broken.completed then fail "audit budget exhausted";
  check Alcotest.int "no findings" 0 (List.length r.Y_broken.findings);
  check Alcotest.bool "commutation demoted to identity" true
    (Sym.is_trivial r.Y_broken.verdict.Y_broken.commutation.Sym.group)

(* The positive control: the same flood without the special case is
   genuinely [S_3]-symmetric, so the claimed group passes both audits
   and the verdict licenses both reduction layers. *)
let test_sym_flood_claim_passes () =
  let r =
    Y_flood.run
      ~config:
        {
          Y_flood.default_config with
          claim = Some (Sym.with_id_maps (Sym.full 3));
          invariant = Some flood_gap;
        }
      ()
  in
  if not r.Y_flood.completed then fail "audit budget exhausted";
  check Alcotest.int "no findings" 0 (List.length r.Y_flood.findings);
  check Alcotest.string "commutation = full" "full"
    (Sym.name r.Y_flood.verdict.Y_flood.commutation.Sym.group);
  check Alcotest.string "orbit = full" "full"
    (Sym.name r.Y_flood.verdict.Y_flood.orbit)

(* And inference finds the same group without being told. *)
let test_sym_flood_inferred () =
  let r =
    Y_flood.run
      ~config:{ Y_flood.default_config with invariant = Some flood_gap }
      ()
  in
  check Alcotest.int "no findings" 0 (List.length r.Y_flood.findings);
  check Alcotest.string "commutation = full" "full"
    (Sym.name r.Y_flood.verdict.Y_flood.commutation.Sym.group);
  check Alcotest.string "orbit = full" "full"
    (Sym.name r.Y_flood.verdict.Y_flood.orbit)

(* A slot-asymmetric invariant on an identifier-free protocol breaks
   both reduction layers at once (with identity mappers the full
   action IS slot permutation), and the broken claim masks the orbit
   verdict: one [broken_symmetry] finding, both layers refused. *)
let test_sym_asym_invariant_poisons_claim () =
  let asym =
    Dsm.Invariant.for_all_nodes ~name:"node0-even" (fun i s ->
        if i = 0 && s mod 2 = 1 then Some "node 0 odd" else None)
  in
  let r =
    Y_flood.run
      ~config:
        {
          Y_flood.default_config with
          claim = Some (Sym.with_id_maps (Sym.full 3));
          invariant = Some asym;
        }
      ()
  in
  (match r.Y_flood.findings with
  | [ f ] ->
      check Alcotest.string "kind" "broken_symmetry"
        (R.kind_to_string f.R.kind);
      check Alcotest.string "subject" "invariant" f.R.subject
  | fs ->
      fail
        (Printf.sprintf "expected exactly one finding, got %d"
           (List.length fs)));
  check Alcotest.bool "commutation refused" true
    (Sym.is_trivial r.Y_flood.verdict.Y_flood.commutation.Sym.group);
  check Alcotest.bool "orbit refused" true
    (Sym.is_trivial r.Y_flood.verdict.Y_flood.orbit)

(* The genuine [unsound_orbit] path needs the two layers to diverge:
   states that embed node identifiers, mapped by the spec, so the
   invariant IS equivariant under the full action (rewrite ids, then
   permute slots — B-DFS reduction stays licensed) yet is not under
   LMC's slot-only permutation (states travel to other nodes
   untouched). *)
module Owner = struct
  let name = "test-owner"
  let num_nodes = 3

  type state = int  (* the node's own identifier, set at [initial] *)
  type message = Nop [@warning "-37"]  (* no sender exists; audit probes only *)
  type action = Never [@warning "-37"]

  let initial self = self
  let handle_message ~self:_ st (_ : message Dsm.Envelope.t) = (st, [])
  let enabled_actions ~self:_ _ = []
  let handle_action ~self:_ st (Never : action) = (st, [])
  let on_recover = Dsm.Protocol.default_on_recover
  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf Nop = Format.fprintf ppf "Nop"
  let pp_action ppf Never = Format.fprintf ppf "Never"
end

let test_sym_unsound_orbit () =
  let module Y = Lint.Symmetry.Make (Owner) in
  let claim =
    {
      Sym.group = Sym.full 3;
      map_state = (fun rename s -> rename s);
      map_message = (fun _ m -> m);
    }
  in
  let owns_own_id =
    Dsm.Invariant.for_all_nodes ~name:"owns-own-id" (fun i s ->
        if s <> i then Some "identifier moved to another slot" else None)
  in
  let r =
    Y.run
      ~config:
        {
          Y.default_config with
          claim = Some claim;
          invariant = Some owns_own_id;
        }
      ()
  in
  (match r.Y.findings with
  | [ f ] ->
      check Alcotest.string "kind" "unsound_orbit"
        (R.kind_to_string f.R.kind);
      check Alcotest.string "subject" "invariant" f.R.subject
  | fs ->
      fail
        (Printf.sprintf "expected exactly one finding, got %d"
           (List.length fs)));
  check Alcotest.string "commutation survives" "full"
    (Sym.name r.Y.verdict.Y.commutation.Sym.group);
  check Alcotest.bool "orbit refused" true
    (Sym.is_trivial r.Y.verdict.Y.orbit)

(* Orbit canonicalization: the canonical tuple is orbit-invariant and
   lexicographically least; for the full group that is the sorted
   tuple.  A transposition is not a rotation, so under [C_3] it lands
   in a different orbit. *)
let test_orbit_canonicalization () =
  let fp i = Dsm.Fingerprint.of_value i in
  let hex t =
    String.concat "," (List.map Dsm.Fingerprint.to_hex (Array.to_list t))
  in
  let a = fp 1 and b = fp 2 and c = fp 3 in
  let full = Sym.full 3 and rot = Sym.rotations 3 in
  let sorted =
    Array.of_list (List.sort Dsm.Fingerprint.compare [ a; b; c ])
  in
  let orbit =
    [
      [| a; b; c |]; [| a; c; b |]; [| b; a; c |];
      [| b; c; a |]; [| c; a; b |]; [| c; b; a |];
    ]
  in
  List.iter
    (fun t ->
      check Alcotest.string "full: sorted representative" (hex sorted)
        (hex (Sym.canonical_tuple full t));
      check Alcotest.string "full: combo orbit-invariant"
        (Dsm.Fingerprint.to_hex (Sym.canonical_combo full [| a; b; c |]))
        (Dsm.Fingerprint.to_hex (Sym.canonical_combo full t)))
    orbit;
  (* rotations: the three cyclic shifts share a representative... *)
  let r0 = Sym.canonical_combo rot [| a; b; c |] in
  List.iter
    (fun t ->
      check Alcotest.string "rot: combo orbit-invariant"
        (Dsm.Fingerprint.to_hex r0)
        (Dsm.Fingerprint.to_hex (Sym.canonical_combo rot t)))
    [ [| b; c; a |]; [| c; a; b |] ];
  (* ...and a transposition does not. *)
  check Alcotest.bool "rot: transposition is a different orbit" false
    (Dsm.Fingerprint.equal r0 (Sym.canonical_combo rot [| a; c; b |]));
  (* identity group: canonicalization is the identity *)
  let id = Sym.identity_group 3 in
  check Alcotest.string "id: untouched"
    (hex [| b; a; c |])
    (hex (Sym.canonical_tuple id [| b; a; c |]))

(* Every kind — including the two symmetry kinds — must round-trip
   through the string encoding the lint.v1 stream and the allowlists
   use. *)
let test_kind_round_trip () =
  check Alcotest.bool "broken_symmetry registered" true
    (List.mem R.Broken_symmetry R.all_kinds);
  check Alcotest.bool "unsound_orbit registered" true
    (List.mem R.Unsound_orbit R.all_kinds);
  List.iter
    (fun k ->
      let s = R.kind_to_string k in
      match R.kind_of_string s with
      | Ok k' ->
          check Alcotest.string ("round-trip " ^ s) s (R.kind_to_string k')
      | Error e -> fail (s ^ ": " ^ e))
    R.all_kinds;
  check Alcotest.bool "unknown kind rejected" true
    (match R.kind_of_string "no_such_kind" with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "lint"
    [
      ( "interleave-soundness",
        [
          Alcotest.test_case "racy counter fails" `Quick test_racy_counter;
          Alcotest.test_case "mutexed counter clean" `Quick
            test_mutexed_counter;
          Alcotest.test_case "deadlock found" `Quick test_deadlock_found;
          Alcotest.test_case "broken steal caught" `Quick
            test_broken_steal_caught;
        ] );
      ( "interleave-par",
        [
          Alcotest.test_case "deque owner vs thief" `Quick
            test_deque_owner_vs_thief;
          Alcotest.test_case "deque two thieves" `Quick
            test_deque_two_thieves;
          Alcotest.test_case "shard_tbl" `Quick test_shard_tbl;
        ] );
      ( "sanitize-fixtures",
        [
          Alcotest.test_case "nondeterministic handler" `Quick
            test_fixture_nondet;
          Alcotest.test_case "noncanonical state" `Quick
            test_fixture_noncanon;
          Alcotest.test_case "dead message" `Quick test_fixture_dead;
          Alcotest.test_case "flaky recovery" `Quick
            test_fixture_flaky_recovery;
          Alcotest.test_case "crash variant recovers clean" `Quick
            test_crash_variant_recovery_clean;
          Alcotest.test_case "store digest drift" `Quick
            test_fixture_store_drift;
        ] );
      ( "sanitize-clean",
        Alcotest.test_case "bundled correct protocols" `Quick
          test_correct_protocols_clean
        :: List.map QCheck_alcotest.to_alcotest
             [ synthetic_clean; synthetic_contract_only ] );
      ( "report",
        [
          Alcotest.test_case "label families" `Quick test_family;
          Alcotest.test_case "allowlist reconcile" `Quick
            test_allowlist_reconcile;
          Alcotest.test_case "allowlist rejects garbage" `Quick
            test_allowlist_rejects_garbage;
          Alcotest.test_case "lint.v1 round-trip" `Quick
            test_lint_v1_round_trip;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "broken claim caught" `Quick
            test_sym_broken_claim_caught;
          Alcotest.test_case "broken inference silent" `Quick
            test_sym_broken_inference_silent;
          Alcotest.test_case "flood claim passes" `Quick
            test_sym_flood_claim_passes;
          Alcotest.test_case "flood group inferred" `Quick
            test_sym_flood_inferred;
          Alcotest.test_case "asymmetric invariant poisons claim" `Quick
            test_sym_asym_invariant_poisons_claim;
          Alcotest.test_case "unsound orbit refused" `Quick
            test_sym_unsound_orbit;
          Alcotest.test_case "orbit canonicalization" `Quick
            test_orbit_canonicalization;
          Alcotest.test_case "kind round-trip" `Quick test_kind_round_trip;
        ] );
    ]
