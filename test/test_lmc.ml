(* Tests for the local model checker — the paper's contribution. *)

let check = Alcotest.check
let fail = Alcotest.fail

module Tree = Protocols.Tree.Make (Protocols.Tree.Paper_config)
module L_tree = Lmc.Checker.Make (Tree)
module G_tree = Mc_global.Bdfs.Make (Tree)

module Ping2 = Protocols.Ping.Make (struct
  let num_servers = 2
end)

module L_ping = Lmc.Checker.Make (Ping2)
module G_ping = Mc_global.Bdfs.Make (Ping2)

module Chain4 = Protocols.Chain.Make (struct
  let length = 4
end)

module L_chain = Lmc.Checker.Make (Chain4)

let tree_init () = Dsm.Protocol.initial_system (module Tree)
let ping_init () = Dsm.Protocol.initial_system (module Ping2)

(* ---------- the primer (§2, Fig. 4) ---------- *)

let test_primer_numbers () =
  let r =
    L_tree.run L_tree.default_config ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  check Alcotest.bool "completed" true r.completed;
  (* Fig. 4: the four system states -----, s----, s---r and the
     invalid ----r *)
  check Alcotest.int "4 system states" 4 r.system_states_created;
  (* ----r violates received-implies-sent but is unsound *)
  check Alcotest.int "1 preliminary violation" 1 r.preliminary_violations;
  check Alcotest.int "1 rejection" 1 r.soundness_rejections;
  check Alcotest.bool "no sound violation" true (r.sound_violation = None);
  (* node stores: node 0 gains Sent, node 4 gains Received *)
  check Alcotest.(array int) "per-node states" [| 2; 1; 1; 1; 2 |]
    r.node_states;
  (* I+ holds the four tree messages and never shrinks *)
  check Alcotest.int "I+ size" 4 r.net_messages;
  check Alcotest.bool "fewer transitions than global" true
    (r.transitions < 16)

let test_primer_sound_violation_confirmed () =
  (* The reachable state s---r, flagged by a trigger invariant, must be
     confirmed by soundness verification with a replayable schedule. *)
  let trigger =
    Dsm.Invariant.make ~name:"received" (fun sys ->
        if sys.(4) = Protocols.Tree.Received && sys.(0) = Protocols.Tree.Sent
        then Some "target received"
        else None)
  in
  let r =
    L_tree.run L_tree.default_config ~strategy:L_tree.General
      ~invariant:trigger (tree_init ())
  in
  match r.sound_violation with
  | None -> fail "reachable violation not confirmed"
  | Some v ->
      check Alcotest.bool "schedule non-empty" true (v.schedule <> []);
      check Alcotest.int "schedule length = depth" v.system_depth
        (List.length v.schedule);
      (* replay the schedule on the global semantics *)
      let states = tree_init () in
      let net = ref Net.Multiset.empty in
      List.iter
        (fun step ->
          match step with
          | Dsm.Trace.Execute (n, a) ->
              let s', out = Tree.handle_action ~self:n states.(n) a in
              states.(n) <- s';
              net := Net.Multiset.add_list out !net
          | Dsm.Trace.Deliver env ->
              (match Net.Multiset.remove env !net with
              | Some net' -> net := net'
              | None -> fail "schedule consumes an unsent message");
              let node = env.Dsm.Envelope.dst in
              let s', out = Tree.handle_message ~self:node states.(node) env in
              states.(node) <- s';
              net := Net.Multiset.add_list out !net
          | Dsm.Trace.Crash n ->
              states.(n) <- Tree.on_recover ~self:n states.(n))
        v.schedule;
      check Alcotest.bool "replay reaches the reported state" true
        (states.(0) = v.system.(0) && states.(4) = v.system.(4))

(* ---------- toggles ---------- *)

let test_no_system_states () =
  let cfg = { L_tree.default_config with create_system_states = false } in
  let r =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  check Alcotest.int "no system states" 0 r.system_states_created;
  check Alcotest.int "no preliminary violations" 0 r.preliminary_violations;
  check Alcotest.bool "exploration unaffected" true (r.total_node_states = 7)

let test_no_soundness () =
  let cfg = { L_tree.default_config with verify_soundness = false } in
  let r =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  check Alcotest.int "preliminary still counted" 1 r.preliminary_violations;
  check Alcotest.int "no soundness calls" 0 r.soundness_calls;
  check Alcotest.bool "nothing reported" true (r.sound_violation = None)

let test_sequences_mode () =
  (* the paper's explicit sequence enumeration handles the primer *)
  let cfg = { L_tree.default_config with soundness_via_sequences = true } in
  let r =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  check Alcotest.int "rejects ----r" 1 r.soundness_rejections;
  check Alcotest.bool "no false positive" true (r.sound_violation = None)

let test_observer_hook () =
  let seen = ref 0 in
  let cfg =
    { L_tree.default_config with
      on_new_node_state = Some (fun _ _ -> incr seen) }
  in
  let r =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  (* fires once per non-root state *)
  check Alcotest.int "observer saw non-root states" (r.total_node_states - 5)
    !seen

let test_transition_budget () =
  let cfg = { L_ping.default_config with max_transitions = Some 2 } in
  let r =
    L_ping.run cfg ~strategy:L_ping.General ~invariant:Ping2.no_excess_pongs
      (ping_init ())
  in
  check Alcotest.bool "truncated" false r.completed

let test_depth_bound () =
  let cfg = { L_tree.default_config with max_depth = Some 1 } in
  let r =
    L_tree.run cfg ~strategy:L_tree.General
      ~invariant:Tree.received_implies_sent (tree_init ())
  in
  (* within one event per node: node 0 reaches Sent; node 4 reaches
     Received (the forwarded token is in I+ even though the forwarding
     nodes never changed state) *)
  check Alcotest.int "seven node states" 7 r.total_node_states;
  check Alcotest.bool "bounded depth" true (r.max_system_depth <= 1)

let test_local_action_bound () =
  let cfg = { L_ping.default_config with local_action_bound = Some 0 } in
  let r =
    L_ping.run cfg ~strategy:L_ping.General ~invariant:Ping2.no_excess_pongs
      (ping_init ())
  in
  (* no local actions allowed: nothing ever happens *)
  check Alcotest.int "only roots" 3 r.total_node_states;
  check Alcotest.int "no messages" 0 r.net_messages

let test_initial_snapshot_violation_is_sound () =
  (* A live state that already violates must be reported immediately
     with an empty schedule. *)
  let trigger =
    Dsm.Invariant.make ~name:"never" (fun _ -> Some "always fails")
  in
  let r =
    L_tree.run L_tree.default_config ~strategy:L_tree.General
      ~invariant:trigger (tree_init ())
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.int "empty schedule" 0 (List.length v.schedule);
      check Alcotest.int "depth 0" 0 v.system_depth
  | None -> fail "live violation not reported"

let test_deferred_soundness () =
  (* deferral decides the same verdicts as inline checking *)
  let trigger =
    Dsm.Invariant.make ~name:"received" (fun sys ->
        if sys.(4) = Protocols.Tree.Received && sys.(0) = Protocols.Tree.Sent
        then Some "target received"
        else None)
  in
  let run cfg =
    L_tree.run cfg ~strategy:L_tree.General ~invariant:trigger (tree_init ())
  in
  let inline = run L_tree.default_config in
  let deferred = run { L_tree.default_config with defer_soundness = true } in
  check Alcotest.bool "both confirm" true
    (inline.sound_violation <> None && deferred.sound_violation <> None);
  (* and the unreachable ----r stays rejected under deferral *)
  let deferred_neg =
    L_tree.run
      { L_tree.default_config with defer_soundness = true }
      ~strategy:L_tree.General ~invariant:Tree.received_implies_sent
      (tree_init ())
  in
  check Alcotest.bool "no false positive deferred" true
    (deferred_neg.sound_violation = None);
  check Alcotest.int "rejection counted" 1 deferred_neg.soundness_rejections

let test_parallel_verification_agrees () =
  (* multi-domain deferred verification = serial verdicts *)
  let trigger =
    Dsm.Invariant.make ~name:"one-pong" (fun sys ->
        if List.length sys.(0).Protocols.Ping.pongs >= 1 then Some "hit"
        else None)
  in
  let run domains =
    L_ping.run
      {
        L_ping.default_config with
        defer_soundness = true;
        verify_domains = domains;
        stop_on_violation = false;
      }
      ~strategy:L_ping.General ~invariant:trigger (ping_init ())
  in
  let serial = run 1 and parallel = run 4 in
  check Alcotest.bool "both confirm" true
    (serial.sound_violation <> None && parallel.sound_violation <> None);
  check Alcotest.int "same rejections" serial.soundness_rejections
    parallel.soundness_rejections;
  check Alcotest.int "same calls" serial.soundness_calls
    parallel.soundness_calls

let test_deferred_cache_overflow_falls_back () =
  (* with a tiny cache, overflowing combos are verified inline, so
     nothing is lost *)
  let trigger =
    Dsm.Invariant.make ~name:"both-pongs" (fun sys ->
        if List.length sys.(0).Protocols.Ping.pongs >= 2 then Some "hit"
        else None)
  in
  let r =
    L_ping.run
      {
        L_ping.default_config with
        defer_soundness = true;
        max_rejected_cache = 1;
      }
      ~strategy:L_ping.General ~invariant:trigger (ping_init ())
  in
  check Alcotest.bool "still confirmed" true (r.sound_violation <> None)

(* ---------- automatic pruning (the paper's future work) ---------- *)

let test_automatic_equals_handcrafted_on_paxos () =
  let module Paxos = Protocols.Paxos.Make (Protocols.Paxos.Bench_config) in
  let module L = Lmc.Checker.Make (Paxos) in
  let init = Dsm.Protocol.initial_system (module Paxos) in
  let run strategy =
    L.run L.default_config ~strategy ~invariant:Paxos.safety init
  in
  let hand =
    run
      (L.Invariant_specific
         { abstract = Paxos.abstraction; conflict = Paxos.conflicts })
  in
  let auto = run L.Automatic in
  check Alcotest.int "both create zero system states" 0
    (hand.system_states_created + auto.system_states_created);
  check Alcotest.bool "both quiet" true
    (hand.sound_violation = None && auto.sound_violation = None)

let test_automatic_prunes_nodewise () =
  let module RTB = Protocols.Randtree.Make (struct
    let num_nodes = 4
    let max_children = 2
    let max_attempts = 1
    let bug = Protocols.Randtree.Double_bookkeeping
  end) in
  let module L = Lmc.Checker.Make (RTB) in
  let init = Dsm.Protocol.initial_system (module RTB) in
  let gen =
    L.run L.default_config ~strategy:L.General ~invariant:RTB.disjointness
      init
  in
  let auto =
    L.run L.default_config ~strategy:L.Automatic ~invariant:RTB.disjointness
      init
  in
  check Alcotest.bool "both find the bug" true
    (gen.sound_violation <> None && auto.sound_violation <> None);
  check Alcotest.bool "automatic creates far fewer combinations" true
    (auto.system_states_created * 2 < gen.system_states_created);
  (* every automatic combination is a preliminary violation by
     construction *)
  check Alcotest.int "no wasted combinations" auto.system_states_created
    auto.preliminary_violations

let test_automatic_falls_back_for_opaque_invariants () =
  (* invariants built with [make] carry no shape: behave like General *)
  let trigger =
    Dsm.Invariant.make ~name:"both-pongs" (fun sys ->
        if List.length sys.(0).Protocols.Ping.pongs >= 2 then Some "hit"
        else None)
  in
  let auto =
    L_ping.run L_ping.default_config ~strategy:L_ping.Automatic
      ~invariant:trigger (ping_init ())
  in
  let gen =
    L_ping.run L_ping.default_config ~strategy:L_ping.General
      ~invariant:trigger (ping_init ())
  in
  check Alcotest.bool "same verdict" true
    ((auto.sound_violation <> None) = (gen.sound_violation <> None));
  check Alcotest.int "same combinations" gen.system_states_created
    auto.system_states_created

let test_automatic_initial_violation () =
  (* a live snapshot that already violates a pairwise invariant must be
     reported by the Automatic strategy immediately *)
  let disagree =
    Dsm.Invariant.for_all_pairs ~name:"states-agree" (fun _ a _ b ->
        if a <> b then Some "differ" else None)
  in
  let snapshot =
    [| Protocols.Tree.Sent; Protocols.Tree.Waiting; Protocols.Tree.Waiting;
       Protocols.Tree.Waiting; Protocols.Tree.Waiting |]
  in
  let r =
    L_tree.run L_tree.default_config ~strategy:L_tree.Automatic
      ~invariant:disagree snapshot
  in
  match r.sound_violation with
  | Some v -> check Alcotest.int "depth 0" 0 v.system_depth
  | None -> fail "live pairwise violation missed"

(* ---------- monotonic network ---------- *)

let test_network_monotone () =
  (* the chain delivers 3 messages; LMC's I+ retains all of them *)
  let r =
    L_chain.run L_chain.default_config ~strategy:L_chain.General
      ~invariant:Chain4.prefix_closed
      (Dsm.Protocol.initial_system (module Chain4))
  in
  check Alcotest.int "all messages retained" 3 r.net_messages;
  check Alcotest.bool "completed" true r.completed

(* ---------- cross-checker agreement ---------- *)

(* For a list of trigger invariants over ping, B-DFS and LMC must agree
   on reachability: B-DFS finds a violating state iff LMC confirms a
   sound violation. *)
let cross_check_ping name trigger expected_reachable =
  let g =
    G_ping.run G_ping.default_config ~invariant:trigger (ping_init ())
  in
  let l =
    L_ping.run L_ping.default_config ~strategy:L_ping.General
      ~invariant:trigger (ping_init ())
  in
  check Alcotest.bool (name ^ ": B-DFS reachability") expected_reachable
    (g.violation <> None);
  check Alcotest.bool (name ^ ": LMC agrees") expected_reachable
    (l.sound_violation <> None)

let test_cross_reachable_states () =
  cross_check_ping "one pong"
    (Dsm.Invariant.make ~name:"one-pong" (fun sys ->
         if List.length sys.(0).Protocols.Ping.pongs >= 1 then Some "hit"
         else None))
    true;
  cross_check_ping "both pongs"
    (Dsm.Invariant.make ~name:"two-pongs" (fun sys ->
         if List.length sys.(0).Protocols.Ping.pongs >= 2 then Some "hit"
         else None))
    true;
  cross_check_ping "server 1 before ping impossible"
    (Dsm.Invariant.make ~name:"served-unpinged" (fun sys ->
         if sys.(1).Protocols.Ping.served && not sys.(0).Protocols.Ping.pinged
         then Some "hit"
         else None))
    false;
  cross_check_ping "pong without serve impossible"
    (Dsm.Invariant.make ~name:"pong-unserved" (fun sys ->
         if
           List.mem 1 sys.(0).Protocols.Ping.pongs
           && not sys.(1).Protocols.Ping.served
         then Some "hit"
         else None))
    false

(* LMC also flags cross-node states that are unreachable and must
   reject all of them. *)
let test_unsound_combination_rejected () =
  (* server 2 served while server 1 unserved AND client has server 1's
     pong: the pong implies server 1 served — unreachable. *)
  let trigger =
    Dsm.Invariant.make ~name:"impossible-combo" (fun sys ->
        if
          List.mem 1 sys.(0).Protocols.Ping.pongs
          && not sys.(1).Protocols.Ping.served
        then Some "hit"
        else None)
  in
  let r =
    L_ping.run L_ping.default_config ~strategy:L_ping.General
      ~invariant:trigger (ping_init ())
  in
  check Alcotest.bool "combinations were flagged" true
    (r.preliminary_violations > 0);
  check Alcotest.int "all rejected" r.preliminary_violations
    r.soundness_rejections;
  check Alcotest.bool "none reported" true (r.sound_violation = None)

(* qcheck over tree shapes: the received-implies-sent invariant never
   produces a sound violation, on any topology. *)
let prop_tree_invariant_never_sound =
  QCheck.Test.make ~count:30 ~name:"received-implies-sent sound on all trees"
    QCheck.(pair (int_range 2 5) (int_range 0 1000))
    (fun (n, seed) ->
      (* random tree over n nodes: parent of i is a random j < i *)
      let rng = Sim.Rng.create ~seed in
      let children = Array.make n [] in
      for i = 1 to n - 1 do
        let parent = Sim.Rng.int rng i in
        children.(parent) <- children.(parent) @ [ i ]
      done;
      let module T = Protocols.Tree.Make (struct
        let children = children
        let origin = 0
        let target = n - 1
      end) in
      let module L = Lmc.Checker.Make (T) in
      let r =
        L.run L.default_config ~strategy:L.General
          ~invariant:T.received_implies_sent
          (Dsm.Protocol.initial_system (module T))
      in
      r.completed && r.sound_violation = None)

(* qcheck: B-DFS and LMC agree on chain reachability of the last hop *)
let prop_chain_agreement =
  QCheck.Test.make ~count:15 ~name:"chain: B-DFS and LMC agree on reachability"
    QCheck.(int_range 2 7)
    (fun n ->
      let module C = Protocols.Chain.Make (struct
        let length = n
      end) in
      let module G = Mc_global.Bdfs.Make (C) in
      let module L = Lmc.Checker.Make (C) in
      let trigger =
        Dsm.Invariant.make ~name:"last-received" (fun sys ->
            if sys.(n - 1).Protocols.Chain.received then Some "hit" else None)
      in
      let init () = Dsm.Protocol.initial_system (module C) in
      let g = G.run G.default_config ~invariant:trigger (init ()) in
      let l =
        L.run L.default_config ~strategy:L.General ~invariant:trigger (init ())
      in
      g.violation <> None && l.sound_violation <> None)

(* ---------- memory accounting ---------- *)

let test_lmc_memory_smaller_than_global () =
  (* On a space with real parallel network activity (Paxos, §5.3) LMC's
     node stores retain less than the global visited set.  On toy
     spaces constants dominate, so the comparison lives on Paxos. *)
  let module Paxos = Protocols.Paxos.Make (Protocols.Paxos.Bench_config) in
  let module G = Mc_global.Bdfs.Make (Paxos) in
  let module L = Lmc.Checker.Make (Paxos) in
  let init () = Dsm.Protocol.initial_system (module Paxos) in
  let g = G.run G.default_config ~invariant:Paxos.safety (init ()) in
  let l =
    L.run L.default_config
      ~strategy:
        (L.Invariant_specific
           { abstract = Paxos.abstraction; conflict = Paxos.conflicts })
      ~invariant:Paxos.safety (init ())
  in
  check Alcotest.bool "LMC retains less" true
    (l.retained_bytes < g.stats.retained_bytes);
  check Alcotest.bool "LMC executes fewer transitions" true
    (l.transitions < g.stats.transitions)

(* ---------- symmetry reduction: auto vs off equivalence ----------

   The contract the CLI's --symmetry flag rides on: with an audited
   orbit group, every verdict-bearing number is bit-identical to a run
   with reduction off — exploration (node stores, I+, transitions),
   preliminary violations, and the sound violation's witness — while
   the combinations materialized drop by at least the 2x the issue
   demands.  Checked at 1 and 2 domains: orbit bookkeeping lives on
   the sequential half, so the parallel path must agree exactly. *)

module Sym_equiv (P : Dsm.Protocol.S) = struct
  module L = Lmc.Checker.Make (P)
  module Y = Lint.Symmetry.Make (P)

  (* A violation collapsed to a comparable fingerprint: invariant,
     detail, witness depth, and the schedule itself. *)
  let viol_fp = function
    | None -> "none"
    | Some (v : L.violation) ->
        Format.asprintf "%s/%s/%d/%s" v.violation.Dsm.Invariant.invariant
          v.violation.Dsm.Invariant.detail v.system_depth
          (Dsm.Fingerprint.to_hex (Dsm.Fingerprint.of_value v.schedule))

  (* [expect_cut] asserts the issue's >= 2x reduction in materialized
     combinations — meaningful only for runs that sweep the space to
     completion; a run stopping at its first sound violation may halt
     before the orbits pay off, so there we only require the reduced
     run never to do MORE work. *)
  let run ~name ~invariant ?(expect_cut = true) () =
    let y =
      Y.run ~config:{ Y.default_config with invariant = Some invariant } ()
    in
    check Alcotest.bool (name ^ ": audit licenses a non-trivial group") false
      (Dsm.Symmetry.is_trivial y.Y.verdict.Y.orbit);
    List.iter
      (fun domains ->
        let go symmetry =
          L.run
            { L.default_config with domains; symmetry }
            ~strategy:L.General ~invariant
            (Dsm.Protocol.initial_system (module P))
        in
        let off = go (Dsm.Symmetry.identity_group P.num_nodes) in
        let on = go y.Y.verdict.Y.orbit in
        let tag s = Printf.sprintf "%s/d%d: %s" name domains s in
        check Alcotest.bool (tag "completed") off.L.completed on.L.completed;
        check
          Alcotest.(array int)
          (tag "node stores") off.L.node_states on.L.node_states;
        check Alcotest.int (tag "I+") off.L.net_messages on.L.net_messages;
        check Alcotest.int (tag "transitions") off.L.transitions
          on.L.transitions;
        check Alcotest.int (tag "preliminary violations")
          off.L.preliminary_violations on.L.preliminary_violations;
        check Alcotest.string (tag "sound violation")
          (viol_fp off.L.sound_violation)
          (viol_fp on.L.sound_violation);
        (if expect_cut then
           check Alcotest.bool (tag "combinations cut >= 2x") true
             (off.L.system_states_created >= 2 * on.L.system_states_created)
         else
           check Alcotest.bool (tag "reduction never adds work") true
             (off.L.system_states_created >= on.L.system_states_created));
        check Alcotest.int (tag "orbit hits stay 0 when off") 0
          off.L.orbit_hits;
        if expect_cut then
          check Alcotest.bool (tag "orbit hits counted") true
            (on.L.orbit_hits > 0))
      [ 1; 2 ]
end

let test_sym_equiv_ring () =
  let module R = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = Protocols.Ring_election.No_bug
  end) in
  let module E = Sym_equiv (R) in
  E.run ~name:"ring" ~invariant:R.agreement ()

let test_sym_equiv_ring_buggy () =
  let module R = Protocols.Ring_election.Make (struct
    let num_nodes = 3
    let starters = [ 0; 1 ]
    let bug = Protocols.Ring_election.Forward_smaller
  end) in
  let module E = Sym_equiv (R) in
  E.run ~name:"ring-buggy" ~invariant:R.agreement ~expect_cut:false ()

let test_sym_equiv_mutex () =
  let module M = Protocols.Token_mutex.Make (struct
    let num_nodes = 3
    let contenders = [ 1; 2 ]
    let max_regenerations = 1
    let bug = Protocols.Token_mutex.No_bug
  end) in
  let module E = Sym_equiv (M) in
  E.run ~name:"mutex" ~invariant:M.mutual_exclusion ()

let test_sym_equiv_paxos () =
  let module Paxos = Protocols.Paxos.Make (Protocols.Paxos.Bench_config) in
  let module E = Sym_equiv (Paxos) in
  E.run ~name:"paxos" ~invariant:Paxos.safety ()

let () =
  Alcotest.run "lmc"
    [
      ( "primer",
        [
          Alcotest.test_case "Fig. 4 numbers" `Quick test_primer_numbers;
          Alcotest.test_case "sound confirmation" `Quick
            test_primer_sound_violation_confirmed;
        ] );
      ( "toggles",
        [
          Alcotest.test_case "no system states" `Quick test_no_system_states;
          Alcotest.test_case "no soundness" `Quick test_no_soundness;
          Alcotest.test_case "sequence mode" `Quick test_sequences_mode;
          Alcotest.test_case "observer" `Quick test_observer_hook;
          Alcotest.test_case "transition budget" `Quick test_transition_budget;
          Alcotest.test_case "depth bound" `Quick test_depth_bound;
          Alcotest.test_case "local action bound" `Quick
            test_local_action_bound;
          Alcotest.test_case "live violation" `Quick
            test_initial_snapshot_violation_is_sound;
          Alcotest.test_case "deferred soundness" `Quick
            test_deferred_soundness;
          Alcotest.test_case "parallel verification" `Quick
            test_parallel_verification_agrees;
          Alcotest.test_case "deferred overflow" `Quick
            test_deferred_cache_overflow_falls_back;
        ] );
      ( "automatic",
        [
          Alcotest.test_case "matches handcrafted OPT" `Quick
            test_automatic_equals_handcrafted_on_paxos;
          Alcotest.test_case "prunes nodewise" `Quick
            test_automatic_prunes_nodewise;
          Alcotest.test_case "opaque fallback" `Quick
            test_automatic_falls_back_for_opaque_invariants;
          Alcotest.test_case "initial violation" `Quick
            test_automatic_initial_violation;
        ] );
      ( "network",
        [ Alcotest.test_case "monotone I+" `Quick test_network_monotone ] );
      ( "cross-checker",
        [
          Alcotest.test_case "reachability agreement" `Quick
            test_cross_reachable_states;
          Alcotest.test_case "unsound combos rejected" `Quick
            test_unsound_combination_rejected;
          QCheck_alcotest.to_alcotest prop_tree_invariant_never_sound;
          QCheck_alcotest.to_alcotest prop_chain_agreement;
        ] );
      ( "memory",
        [
          Alcotest.test_case "smaller than global" `Quick
            test_lmc_memory_smaller_than_global;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "ring auto = off" `Quick test_sym_equiv_ring;
          Alcotest.test_case "ring-buggy auto = off" `Quick
            test_sym_equiv_ring_buggy;
          Alcotest.test_case "mutex auto = off" `Quick test_sym_equiv_mutex;
          Alcotest.test_case "paxos auto = off" `Quick test_sym_equiv_paxos;
        ] );
    ]
