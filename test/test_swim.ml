(* Unit tests for the SWIM gossip-membership protocol: the probe /
   ping-req / suspicion / refutation lifecycle, crash-recovery
   semantics, the two planted bugs, and the invariants that catch
   them.  Handlers are driven directly — a 4-node instance, node ids
   0..3, relay choice deterministic (first id that is neither origin
   nor target). *)

open Protocols.Swim

module P = Protocols.Swim.Make (struct
  let num_servers = 4

  let bug = No_bug
end)

module P_nosuspect = Protocols.Swim.Make (struct
  let num_servers = 4

  let bug = No_suspicion
end)

module P_ackrace = Protocols.Swim.Make (struct
  let num_servers = 4

  let bug = Ack_race
end)

let check = Alcotest.check

let fail = Alcotest.fail

let env ~src ~dst payload = Dsm.Envelope.make ~src ~dst payload

let expect_one = function
  | [ e ] -> e
  | l -> fail (Printf.sprintf "expected one message, got %d" (List.length l))

let expect_none label = function
  | [] -> ()
  | l -> fail (Printf.sprintf "%s: expected no messages, got %d" label (List.length l))

let status s n =
  match List.assoc_opt n s.peers with
  | Some st -> st
  | None -> fail (Printf.sprintf "no peer entry for %d" n)

(* system state: [node]'s state substituted into an otherwise-initial
   fleet, for invariant checks *)
let system (type s) (module M : Dsm.Protocol.S with type state = s) node s =
  Array.init 4 (fun n -> if n = node then s else M.initial n)

let clean label inv states =
  match Dsm.Invariant.check inv states with
  | None -> ()
  | Some v ->
      fail (Printf.sprintf "%s: unexpected violation: %s" label v.Dsm.Invariant.detail)

let violated label inv states =
  match Dsm.Invariant.check inv states with
  | Some _ -> ()
  | None -> fail (Printf.sprintf "%s: expected a violation" label)

(* ---------- probe lifecycle ---------- *)

let test_probe_and_direct_ack () =
  let s0, msgs = P.handle_action ~self:0 (P.initial 0) Probe_round in
  let ping = expect_one msgs in
  check Alcotest.int "first probe goes to peer 1" 1 ping.Dsm.Envelope.dst;
  (match s0.probe with
  | Some p ->
      check Alcotest.int "probe target" 1 p.p_target;
      check Alcotest.int "probe fresh" 0 p.p_rounds;
      check Alcotest.int "seq encodes the issuer" 0 (p.p_seq mod 4)
  | None -> fail "no outstanding probe after the round");
  (* the target echoes the seq; the ack closes the probe *)
  let s1, acks = P.handle_message ~self:1 (P.initial 1) ping in
  ignore s1;
  let ack = expect_one acks in
  check Alcotest.int "ack returns to the origin" 0 ack.Dsm.Envelope.dst;
  let s0', out = P.handle_message ~self:0 s0 ack in
  expect_none "ack closes quietly" out;
  check Alcotest.bool "probe cleared" true (s0'.probe = None);
  (match status s0' 1 with
  | Alive _ -> ()
  | _ -> fail "target not alive after the ack");
  clean "clean exchange" P.membership_safety (system (module P) 0 s0')

let test_stale_ack_ignored () =
  let s0, msgs = P.handle_action ~self:0 (P.initial 0) Probe_round in
  ignore (expect_one msgs);
  let wrong_seq = 999 * 4 in
  let s0', out = P.handle_message ~self:0 s0 (env ~src:1 ~dst:0 (Ack { seq = wrong_seq })) in
  expect_none "stale ack" out;
  check Alcotest.bool "probe still outstanding" true (s0'.probe <> None)

(* ---------- indirect probing through the relay ---------- *)

let tick ~self s =
  let s', msgs = P.handle_action ~self s Probe_round in
  (s', msgs)

let test_ping_req_roundtrip () =
  (* origin 0 probes 1; the ack is slow, so the second round asks
     relay 2 to ping indirectly; the forwarded ack settles the probe *)
  let s0, _ = tick ~self:0 (P.initial 0) in
  let s0, msgs = tick ~self:0 s0 in
  let ping_req = expect_one msgs in
  check Alcotest.int "relay is node 2" 2 ping_req.Dsm.Envelope.dst;
  (match ping_req.Dsm.Envelope.payload with
  | Ping_req { target; _ } -> check Alcotest.int "relayed target" 1 target
  | _ -> fail "expected a ping-req");
  let s2, relay_pings = P.handle_message ~self:2 (P.initial 2) ping_req in
  let relay_ping = expect_one relay_pings in
  check Alcotest.int "relay pings the target" 1 relay_ping.Dsm.Envelope.dst;
  check Alcotest.bool "relay duty taken" true (s2.relay <> None);
  let _, relay_acks = P.handle_message ~self:1 (P.initial 1) relay_ping in
  let relay_ack = expect_one relay_acks in
  let s2', fwd_acks = P.handle_message ~self:2 s2 relay_ack in
  let fwd_ack = expect_one fwd_acks in
  check Alcotest.int "forwarded ack reaches the origin" 0
    fwd_ack.Dsm.Envelope.dst;
  check Alcotest.bool "relay duty settled" true (s2'.relay = None);
  let s0', out = P.handle_message ~self:0 s0 fwd_ack in
  expect_none "forwarded ack closes quietly" out;
  check Alcotest.bool "probe cleared by the forwarded ack" true
    (s0'.probe = None);
  check Alcotest.bool "no phantom on the correct path" false s0'.phantom;
  clean "indirect exchange" P.membership_safety (system (module P) 0 s0')

(* ---------- timeout, suspicion, refutation ---------- *)

(* 4 rounds: start (rounds=0), then 1, 2, 3 >= ping_timeout_rounds *)
let run_to_timeout handle_action ~self init act =
  let rec go s n last_msgs =
    if n = 0 then (s, last_msgs)
    else
      let s', msgs = handle_action ~self s act in
      go s' (n - 1) msgs
  in
  go init 4 []

let test_timeout_suspects_then_refutes () =
  let s0, msgs =
    run_to_timeout P.handle_action ~self:0 (P.initial 0) Probe_round
  in
  let notice = expect_one msgs in
  (match notice.Dsm.Envelope.payload with
  | Suspect_notice _ -> ()
  | _ -> fail "timeout should send a suspect notice");
  (match status s0 1 with
  | Suspect (_, 0) -> ()
  | _ -> fail "target should be suspected, not dead");
  clean "suspicion is not death" P.membership_safety
    (system (module P) 0 s0);
  (* the suspected node bumps its incarnation and refutes *)
  let s1, refutes = P.handle_message ~self:1 (P.initial 1) notice in
  let refute = expect_one refutes in
  check Alcotest.int "refutation incarnation" 1 s1.incarnation;
  let s0', out = P.handle_message ~self:0 s0 refute in
  expect_none "refutation closes quietly" out;
  match status s0' 1 with
  | Alive 1 -> ()
  | _ -> fail "refutation should restore the peer to alive"

let test_unrefuted_suspicion_becomes_death () =
  let s0, _ =
    run_to_timeout P.handle_action ~self:0 (P.initial 0) Probe_round
  in
  (* two more rounds age the suspicion into a fully-audited death *)
  let s0, _ = tick ~self:0 s0 in
  let s0, _ = tick ~self:0 s0 in
  (match status s0 1 with
  | Dead (_, rounds) ->
      check Alcotest.bool "full suspicion period served" true
        (rounds >= suspicion_rounds)
  | _ -> fail "unrefuted suspicion should end in a death verdict");
  clean "audited death is legal" P.membership_safety
    (system (module P) 0 s0)

(* ---------- planted bug: No_suspicion ---------- *)

let test_nosuspect_bug_violates () =
  let s0, msgs =
    run_to_timeout P_nosuspect.handle_action ~self:0 (P_nosuspect.initial 0)
      Probe_round
  in
  expect_none "buggy timeout sends nothing" msgs;
  (match status s0 1 with
  | Dead (_, 0) -> ()
  | _ -> fail "the bug should declare death with no suspicion rounds");
  violated "unsuspected death caught" P_nosuspect.no_unsuspected_death
    (system (module P_nosuspect) 0 s0);
  violated "conjunction catches it too" P_nosuspect.membership_safety
    (system (module P_nosuspect) 0 s0)

(* ---------- planted bug: Ack_race ---------- *)

(* Drive origin [origin] through two rounds so its ping-req for
   [target] is in flight. *)
let ping_req_of handle_action initial ~origin act =
  let s, _ = handle_action ~self:origin (initial origin) act in
  let s, msgs = handle_action ~self:origin s act in
  (s, expect_one msgs)

let test_ackrace_bug_phantom () =
  (* 1. origin 1 probes 0; relay 2 takes the duty *)
  let _, req1 = ping_req_of P_ackrace.handle_action P_ackrace.initial ~origin:1 Probe_round in
  check Alcotest.int "first duty lands on relay 2" 2 req1.Dsm.Envelope.dst;
  let s2, _ = P_ackrace.handle_message ~self:2 (P_ackrace.initial 2) req1 in
  check Alcotest.bool "duty pending" true (s2.relay <> None);
  (* 2. the relay crash-recovers mid-duty: the seq survives, the
        origin does not *)
  let s2 = P_ackrace.on_recover ~self:2 s2 in
  check Alcotest.bool "duty dropped by the crash" true (s2.relay = None);
  check Alcotest.bool "stale seq leaked" true (s2.stale_seq <> None);
  (* 3. a different origin (0, probing 1) enlists the same relay; the
        stale seq is stitched onto the new duty *)
  let s0, req2 = ping_req_of P_ackrace.handle_action P_ackrace.initial ~origin:0 Probe_round in
  check Alcotest.int "second duty lands on relay 2" 2 req2.Dsm.Envelope.dst;
  let s2, relay_pings = P_ackrace.handle_message ~self:2 s2 req2 in
  check Alcotest.bool "stale seq consumed" true (s2.stale_seq = None);
  let relay_ping = expect_one relay_pings in
  (* 4. the target acks; the relay forwards an ack carrying a seq the
        new origin never issued *)
  let _, relay_acks =
    P_ackrace.handle_message ~self:1 (P_ackrace.initial 1) relay_ping
  in
  let s2, fwd_acks =
    P_ackrace.handle_message ~self:2 s2 (expect_one relay_acks)
  in
  ignore s2;
  let fwd_ack = expect_one fwd_acks in
  check Alcotest.int "phantom ack reaches the new origin" 0
    fwd_ack.Dsm.Envelope.dst;
  let s0', _ = P_ackrace.handle_message ~self:0 s0 fwd_ack in
  check Alcotest.bool "phantom detected via the issuer encoding" true
    s0'.phantom;
  violated "phantom ack caught" P_ackrace.no_phantom_ack
    (system (module P_ackrace) 0 s0');
  check Alcotest.bool "probe still pending (the real ack was lost)" true
    (s0'.probe <> None)

let test_correct_relay_survives_crash () =
  (* same schedule, correct protocol: recovery drops the duty cleanly
     and the re-relayed seq still names its true issuer *)
  let _, req1 = ping_req_of P.handle_action P.initial ~origin:1 Probe_round in
  let s2, _ = P.handle_message ~self:2 (P.initial 2) req1 in
  let s2 = P.on_recover ~self:2 s2 in
  check Alcotest.bool "no stale seq on the correct path" true
    (s2.stale_seq = None);
  let s0, req2 = ping_req_of P.handle_action P.initial ~origin:0 Probe_round in
  let s2, relay_pings = P.handle_message ~self:2 s2 req2 in
  let _, relay_acks = P.handle_message ~self:1 (P.initial 1) (expect_one relay_pings) in
  let _, fwd_acks = P.handle_message ~self:2 s2 (expect_one relay_acks) in
  let s0', _ = P.handle_message ~self:0 s0 (expect_one fwd_acks) in
  check Alcotest.bool "no phantom" false s0'.phantom;
  check Alcotest.bool "probe settled by the honest forwarded ack" true
    (s0'.probe = None)

(* ---------- recovery volatility ---------- *)

let test_recovery_volatility () =
  let s, _ = tick ~self:0 (P.initial 0) in
  let r = P.on_recover ~self:0 s in
  check Alcotest.bool "probe volatile" true (r.probe = None);
  check Alcotest.int "counter durable" s.counter r.counter;
  check Alcotest.int "incarnation durable" s.incarnation r.incarnation

(* ---------- scenario soak over the live simulator ---------- *)

let parse s =
  match Fault.Plan.of_string s with
  | Ok p -> p
  | Error e -> fail e

let test_scenario_soak_churn_clean () =
  let module K = Sim.Scenario.Soak (P) in
  let faults = parse "leave:node=3,at=10;join:node=3,at=30" in
  let report =
    K.run ~invariant:P.membership_safety ~duration:60.
      {
        K.S.seed = 5;
        link =
          Net.Lossy_link.create ~drop_prob:0.1 ~latency_min:0.05
            ~latency_max:0.3 ();
        timer_min = 2.0;
        timer_max = 20.0;
        action_prob = None;
        faults;
      }
  in
  check Alcotest.bool "clean verdict" true
    (report.Sim.Scenario.verdict = Sim.Scenario.Clean);
  check Alcotest.int "both churn events executed" 2
    report.Sim.Scenario.churn;
  check Alcotest.int "full fleet at the end" 4 report.Sim.Scenario.fleet

let test_scenario_soak_storm_violates () =
  (* the no-suspicion bug surfaces in a plain soak once a reorder
     storm delays acks past the probe timeout *)
  let module K = Sim.Scenario.Soak (P_nosuspect) in
  let report =
    K.run ~invariant:P_nosuspect.membership_safety ~duration:300.
      {
        K.S.seed = 11;
        link =
          Net.Lossy_link.create ~drop_prob:0.0 ~latency_min:0.05
            ~latency_max:0.3 ();
        timer_min = 2.0;
        timer_max = 20.0;
        action_prob = None;
        faults = parse "reorder:p=0.9,window=60";
      }
  in
  check Alcotest.bool "storm verdict is a violation" true
    (report.Sim.Scenario.verdict = Sim.Scenario.Violation);
  check Alcotest.bool "detail names the invariant" true
    (String.length report.Sim.Scenario.detail > 0)

let () =
  Alcotest.run "swim"
    [
      ( "probe",
        [
          Alcotest.test_case "probe and direct ack" `Quick
            test_probe_and_direct_ack;
          Alcotest.test_case "stale ack ignored" `Quick test_stale_ack_ignored;
          Alcotest.test_case "ping-req round trip" `Quick
            test_ping_req_roundtrip;
        ] );
      ( "suspicion",
        [
          Alcotest.test_case "timeout suspects, refutation heals" `Quick
            test_timeout_suspects_then_refutes;
          Alcotest.test_case "unrefuted suspicion becomes death" `Quick
            test_unrefuted_suspicion_becomes_death;
        ] );
      ( "planted-bugs",
        [
          Alcotest.test_case "no-suspicion death violates" `Quick
            test_nosuspect_bug_violates;
          Alcotest.test_case "ack-race phantom across relay crash" `Quick
            test_ackrace_bug_phantom;
          Alcotest.test_case "correct relay survives the crash" `Quick
            test_correct_relay_survives_crash;
          Alcotest.test_case "recovery volatility" `Quick
            test_recovery_volatility;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "churn soak stays clean" `Quick
            test_scenario_soak_churn_clean;
          Alcotest.test_case "reorder storm violates in the soak" `Quick
            test_scenario_soak_storm_violates;
        ] );
    ]
