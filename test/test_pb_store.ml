(* Tests for the primary-backup replicated store. *)

let check = Alcotest.check
let fail = Alcotest.fail

module PB = Protocols.Pb_store.Make (struct
  let key = 7
  let value = 42
  let bug = Protocols.Pb_store.No_bug
end)

module PB_bug = Protocols.Pb_store.Make (struct
  let key = 7
  let value = 42
  let bug = Protocols.Pb_store.Ack_before_replication
end)

let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

let init (type s) (module P : Dsm.Protocol.S with type state = s) =
  Dsm.Protocol.initial_system (module P)

(* ---------- handlers ---------- *)

let test_correct_put_path () =
  let primary = PB.initial 0 in
  let primary, out =
    PB.handle_message ~self:0 primary
      (env ~src:2 ~dst:0 (Protocols.Pb_store.Put (7, 42)))
  in
  (* correct primary replicates but does not ack yet *)
  check Alcotest.int "only the replication" 1 (List.length out);
  (match (List.hd out).Dsm.Envelope.payload with
  | Protocols.Pb_store.Replicate (7, 42) -> ()
  | _ -> fail "expected Replicate");
  (match primary with
  | Protocols.Pb_store.Replica r ->
      check Alcotest.bool "pending" true
        (r.Protocols.Pb_store.repl_pending <> None)
  | _ -> fail "state shape");
  (* the backup applies and confirms *)
  let backup = PB.initial 1 in
  let backup, acks =
    PB.handle_message ~self:1 backup
      (env ~src:0 ~dst:1 (Protocols.Pb_store.Replicate (7, 42)))
  in
  (match (List.hd acks).Dsm.Envelope.payload with
  | Protocols.Pb_store.Repl_ack -> ()
  | _ -> fail "expected ReplAck");
  (match backup with
  | Protocols.Pb_store.Replica r ->
      check Alcotest.(option int) "backup stored" (Some 42)
        (List.assoc_opt 7 r.Protocols.Pb_store.store)
  | _ -> fail "state shape");
  (* the confirmation releases the client ack *)
  let _, client_ack =
    PB.handle_message ~self:0 primary
      (env ~src:1 ~dst:0 Protocols.Pb_store.Repl_ack)
  in
  match (List.hd client_ack).Dsm.Envelope.payload with
  | Protocols.Pb_store.Put_ack ->
      check Alcotest.int "ack to the client" 2 (List.hd client_ack).Dsm.Envelope.dst
  | _ -> fail "expected PutAck"

let test_buggy_acks_early () =
  let primary = PB_bug.initial 0 in
  let _, out =
    PB_bug.handle_message ~self:0 primary
      (env ~src:2 ~dst:0 (Protocols.Pb_store.Put (7, 42)))
  in
  check Alcotest.int "replicate AND ack at once" 2 (List.length out);
  check Alcotest.bool "ack among them" true
    (List.exists
       (fun (e : _ Dsm.Envelope.t) ->
         e.Dsm.Envelope.payload = Protocols.Pb_store.Put_ack)
       out)

let test_get_paths () =
  let replica =
    Protocols.Pb_store.Replica
      { Protocols.Pb_store.store = [ (7, 42) ]; disk = [ (7, 42) ]; repl_pending = None }
  in
  let _, out =
    PB.handle_message ~self:1 replica
      (env ~src:2 ~dst:1 (Protocols.Pb_store.Get 7))
  in
  (match (List.hd out).Dsm.Envelope.payload with
  | Protocols.Pb_store.Get_reply (Some 42) -> ()
  | _ -> fail "expected the stored value");
  let empty = PB.initial 1 in
  let _, out =
    PB.handle_message ~self:1 empty
      (env ~src:2 ~dst:1 (Protocols.Pb_store.Get 7))
  in
  match (List.hd out).Dsm.Envelope.payload with
  | Protocols.Pb_store.Get_reply None -> ()
  | _ -> fail "expected a miss"

let test_client_driver () =
  let c = PB.initial 2 in
  (match PB.enabled_actions ~self:2 c with
  | [ Protocols.Pb_store.Do_put ] -> ()
  | _ -> fail "client starts with the put");
  let c, out = PB.handle_action ~self:2 c Protocols.Pb_store.Do_put in
  check Alcotest.int "put to primary" 0 (List.hd out).Dsm.Envelope.dst;
  check Alcotest.int "nothing until the ack" 0
    (List.length (PB.enabled_actions ~self:2 c));
  let c, _ = PB.handle_message ~self:2 c (env ~src:0 ~dst:2 Protocols.Pb_store.Put_ack) in
  (* after the ack: fail over or read *)
  check Alcotest.int "two choices" 2 (List.length (PB.enabled_actions ~self:2 c));
  let c, _ = PB.handle_action ~self:2 c Protocols.Pb_store.Fail_over in
  let _, out = PB.handle_action ~self:2 c Protocols.Pb_store.Do_get in
  check Alcotest.int "failed-over read goes to the backup" 1
    (List.hd out).Dsm.Envelope.dst

(* ---------- checking ---------- *)

let test_correct_safe_both_checkers () =
  let module G = Mc_global.Bdfs.Make (PB) in
  let o =
    G.run G.default_config ~invariant:PB.read_your_writes (init (module PB))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "read-your-writes holds" true (o.violation = None);
  let module L = Lmc.Checker.Make (PB) in
  let r =
    L.run L.default_config ~strategy:L.Automatic
      ~invariant:PB.read_your_writes (init (module PB))
  in
  check Alcotest.bool "LMC agrees" true (r.sound_violation = None)

let test_bug_found_both_checkers () =
  let module G = Mc_global.Bdfs.Make (PB_bug) in
  let o =
    G.run G.default_config ~invariant:PB_bug.read_your_writes
      (init (module PB_bug))
  in
  (match o.violation with
  | Some v ->
      (* the witness must contain the failover: reads at the primary
         are always fresh *)
      check Alcotest.bool "witness fails over" true
        (List.exists
           (function
             | Dsm.Trace.Execute (_, Protocols.Pb_store.Fail_over) -> true
             | _ -> false)
           v.trace)
  | None -> fail "B-DFS missed the stale read");
  let module L = Lmc.Checker.Make (PB_bug) in
  let r =
    L.run L.default_config ~strategy:L.Automatic
      ~invariant:PB_bug.read_your_writes (init (module PB_bug))
  in
  match r.sound_violation with
  | Some v ->
      check Alcotest.bool "stale read confirmed" true
        (Dsm.Invariant.check PB_bug.read_your_writes v.system <> None);
      (* replay the witness *)
      let module W = Lmc.Witness.Make (PB_bug) in
      (match W.replay ~init:(init (module PB_bug)) v.schedule with
      | Some final ->
          check Alcotest.bool "witness replays to a violation" true
            (Dsm.Invariant.check PB_bug.read_your_writes final <> None)
      | None -> fail "witness does not replay")
  | None -> fail "LMC missed the stale read"

let test_primary_reads_always_fresh () =
  (* without the failover the bug is unobservable: reads served by the
     primary always include the acked write *)
  let module PBnf = Protocols.Pb_store.Make (struct
    let key = 7
    let value = 42
    let bug = Protocols.Pb_store.Ack_before_replication
  end) in
  (* simulate "no failover" simply by checking the global space with a
     trigger that requires a violation without any Fail_over step *)
  let module G = Mc_global.Bdfs.Make (PBnf) in
  let o =
    G.run G.default_config ~invariant:PBnf.read_your_writes
      (init (module PBnf))
  in
  match o.violation with
  | Some v ->
      check Alcotest.bool "every violation involves a failover" true
        (List.exists
           (function
             | Dsm.Trace.Execute (_, Protocols.Pb_store.Fail_over) -> true
             | _ -> false)
           v.trace)
  | None -> fail "expected the buggy build to violate somewhere"

(* ---------- crash-recovery (fault injection) ---------- *)

module PB_cr = Protocols.Pb_store.Make (struct
  let key = 7
  let value = 42
  let bug = Protocols.Pb_store.Lose_acked_writes_on_recovery
end)

let test_crash_bug_invisible_without_faults () =
  (* the persistence bug is unreachable under any message schedule *)
  let module G = Mc_global.Bdfs.Make (PB_cr) in
  let o =
    G.run G.default_config ~invariant:PB_cr.read_your_writes
      (init (module PB_cr))
  in
  check Alcotest.bool "B-DFS completes" true o.completed;
  check Alcotest.bool "no violation without crashes" true (o.violation = None);
  let module L = Lmc.Checker.Make (PB_cr) in
  let r =
    L.run L.default_config ~strategy:L.Automatic
      ~invariant:PB_cr.read_your_writes (init (module PB_cr))
  in
  check Alcotest.bool "LMC agrees" true (r.sound_violation = None)

let test_crash_bug_found_lmc () =
  let module L = Lmc.Checker.Make (PB_cr) in
  let snapshot = init (module PB_cr) in
  let r =
    L.run
      { L.default_config with crash_budget = 1 }
      ~strategy:L.Automatic ~invariant:PB_cr.read_your_writes snapshot
  in
  match r.sound_violation with
  | None -> fail "crash budget 1 should expose the lost acked write"
  | Some v ->
      check Alcotest.bool "witness crashes a replica" true
        (List.exists
           (function Dsm.Trace.Crash _ -> true | _ -> false)
           v.schedule);
      let module W = Lmc.Witness.Make (PB_cr) in
      (match W.replay ~init:snapshot v.schedule with
      | Some final ->
          check Alcotest.bool "witness replays to the lost write" true
            (Dsm.Invariant.check PB_cr.read_your_writes final <> None)
      | None -> fail "witness does not replay")

let test_crash_bug_found_bdfs () =
  let module G = Mc_global.Bdfs.Make (PB_cr) in
  let o =
    G.run
      { G.default_config with crash_budget = 1 }
      ~invariant:PB_cr.read_your_writes (init (module PB_cr))
  in
  match o.violation with
  | None -> fail "B-DFS with a crash budget should find the lost write"
  | Some v ->
      check Alcotest.bool "trace crashes a replica" true
        (List.exists
           (function Dsm.Trace.Crash _ -> true | _ -> false)
           v.trace)

let test_write_through_survives_crashes () =
  (* the correct build persists before acking: crash-recovery cannot
     lose an acknowledged write, so a crash budget finds nothing *)
  let module G = Mc_global.Bdfs.Make (PB) in
  let o =
    G.run
      { G.default_config with crash_budget = 1 }
      ~invariant:PB.read_your_writes (init (module PB))
  in
  check Alcotest.bool "completed" true o.completed;
  check Alcotest.bool "crash-safe" true (o.violation = None);
  let module L = Lmc.Checker.Make (PB) in
  let r =
    L.run
      { L.default_config with crash_budget = 1 }
      ~strategy:L.Automatic ~invariant:PB.read_your_writes (init (module PB))
  in
  check Alcotest.bool "LMC agrees" true (r.sound_violation = None)

let () =
  Alcotest.run "pb_store"
    [
      ( "handlers",
        [
          Alcotest.test_case "correct put path" `Quick test_correct_put_path;
          Alcotest.test_case "buggy early ack" `Quick test_buggy_acks_early;
          Alcotest.test_case "get paths" `Quick test_get_paths;
          Alcotest.test_case "client driver" `Quick test_client_driver;
        ] );
      ( "checking",
        [
          Alcotest.test_case "correct safe" `Quick
            test_correct_safe_both_checkers;
          Alcotest.test_case "bug found" `Quick test_bug_found_both_checkers;
          Alcotest.test_case "failover required" `Quick
            test_primary_reads_always_fresh;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "invisible without faults" `Quick
            test_crash_bug_invisible_without_faults;
          Alcotest.test_case "LMC finds the lost write" `Quick
            test_crash_bug_found_lmc;
          Alcotest.test_case "B-DFS finds the lost write" `Quick
            test_crash_bug_found_bdfs;
          Alcotest.test_case "write-through is crash-safe" `Quick
            test_write_through_survives_crashes;
        ] );
    ]
