type persistence = Full | Volatile | Hook

type spec =
  | Crash of {
      node : int;
      at : float;
      recover : float option;
      persistence : persistence;
    }
  | Partition of { groups : int list list; from_ : float; until : float }
  | Duplicate of { prob : float; from_ : float; until : float }
  | Reorder of { prob : float; window : float; from_ : float; until : float }
  | Corrupt of { prob : float; from_ : float; until : float }
  | Join of { node : int; at : float }
  | Leave of { node : int; at : float }
  | Load of { rate : float; from_ : float; until : float }

type t = spec list

let empty = []

let is_empty plan = plan = []

(* ----- parsing ----- *)

let persistence_of_string = function
  | "full" -> Ok Full
  | "volatile" -> Ok Volatile
  | "hook" -> Ok Hook
  | s -> Error (Printf.sprintf "unknown persistence %S" s)

let persistence_to_string = function
  | Full -> "full"
  | Volatile -> "volatile"
  | Hook -> "hook"

let ( let* ) = Result.bind

let strip s = String.trim s

let split_on c s = List.map strip (String.split_on_char c s)

let parse_kvs clause body =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      if item = "" then Ok acc
      else
        match String.index_opt item '=' with
        | None ->
            Error
              (Printf.sprintf "fault plan: clause %S: expected key=value, got %S"
                 clause item)
        | Some i ->
            let k = strip (String.sub item 0 i) in
            let v =
              strip (String.sub item (i + 1) (String.length item - i - 1))
            in
            Ok ((k, v) :: acc))
    (Ok [])
    (split_on ',' body)
  |> Result.map List.rev

let lookup kvs k = List.assoc_opt k kvs

let required clause kvs k =
  match lookup kvs k with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fault plan: clause %S: missing %s=" clause k)

let parse_float clause k v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None ->
      Error (Printf.sprintf "fault plan: clause %S: %s=%S is not a number"
               clause k v)

let parse_int clause k v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None ->
      Error (Printf.sprintf "fault plan: clause %S: %s=%S is not an integer"
               clause k v)

let opt_float clause kvs k ~default =
  match lookup kvs k with
  | None -> Ok default
  | Some v -> parse_float clause k v

let window clause kvs =
  let* from_ = opt_float clause kvs "from" ~default:0. in
  let* until = opt_float clause kvs "until" ~default:infinity in
  if until <= from_ then
    Error (Printf.sprintf "fault plan: clause %S: until must exceed from" clause)
  else Ok (from_, until)

let reject_unknown clause kvs allowed =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
  | Some (k, _) ->
      Error (Printf.sprintf "fault plan: clause %S: unknown key %S" clause k)
  | None -> Ok ()

let parse_groups clause v =
  List.fold_left
    (fun acc group ->
      let* acc = acc in
      let* nodes =
        List.fold_left
          (fun acc n ->
            let* acc = acc in
            let* n = parse_int clause "cut" n in
            Ok (n :: acc))
          (Ok [])
          (List.filter (fun s -> s <> "") (split_on '+' group))
      in
      match nodes with
      | [] -> Error (Printf.sprintf "fault plan: clause %S: empty group" clause)
      | ns -> Ok (List.rev ns :: acc))
    (Ok [])
    (split_on '/' v)
  |> Result.map List.rev

let parse_clause clause =
  match String.index_opt clause ':' with
  | None ->
      Error
        (Printf.sprintf "fault plan: clause %S: expected kind:key=value,..."
           clause)
  | Some i ->
      let kind = strip (String.sub clause 0 i) in
      let body = String.sub clause (i + 1) (String.length clause - i - 1) in
      let* kvs = parse_kvs clause body in
      (match kind with
      | "crash" ->
          let* () =
            reject_unknown clause kvs [ "node"; "at"; "recover"; "persist" ]
          in
          let* node = Result.bind (required clause kvs "node")
                        (parse_int clause "node") in
          let* at = Result.bind (required clause kvs "at")
                      (parse_float clause "at") in
          let* () =
            if at < 0. then
              Error
                (Printf.sprintf
                   "fault plan: clause %S: at must be non-negative" clause)
            else Ok ()
          in
          let* recover =
            match lookup kvs "recover" with
            | None -> Ok None
            | Some v ->
                let* r = parse_float clause "recover" v in
                if r <= at then
                  Error
                    (Printf.sprintf
                       "fault plan: clause %S: recover must follow at" clause)
                else Ok (Some r)
          in
          let* persistence =
            match lookup kvs "persist" with
            | None -> Ok Hook
            | Some v -> (
                match persistence_of_string v with
                | Ok p -> Ok p
                | Error e ->
                    Error (Printf.sprintf "fault plan: clause %S: %s" clause e))
          in
          Ok (Crash { node; at; recover; persistence })
      | "part" ->
          let* () = reject_unknown clause kvs [ "from"; "until"; "cut" ] in
          let* from_, until = window clause kvs in
          if until = infinity && lookup kvs "until" = None then
            Error
              (Printf.sprintf "fault plan: clause %S: partitions need until="
                 clause)
          else
            let* cut = required clause kvs "cut" in
            let* groups = parse_groups clause cut in
            if List.length groups < 2 then
              Error
                (Printf.sprintf
                   "fault plan: clause %S: a cut needs >= 2 groups (a/b)"
                   clause)
            else Ok (Partition { groups; from_; until })
      | "dup" ->
          let* () = reject_unknown clause kvs [ "p"; "from"; "until" ] in
          let* prob = Result.bind (required clause kvs "p")
                        (parse_float clause "p") in
          let* from_, until = window clause kvs in
          Ok (Duplicate { prob; from_; until })
      | "reorder" ->
          let* () =
            reject_unknown clause kvs [ "p"; "window"; "from"; "until" ]
          in
          let* prob = Result.bind (required clause kvs "p")
                        (parse_float clause "p") in
          let* w = Result.bind (required clause kvs "window")
                     (parse_float clause "window") in
          if w <= 0. then
            Error
              (Printf.sprintf "fault plan: clause %S: window must be positive"
                 clause)
          else
            let* from_, until = window clause kvs in
            Ok (Reorder { prob; window = w; from_; until })
      | "corrupt" ->
          let* () = reject_unknown clause kvs [ "p"; "from"; "until" ] in
          let* prob = Result.bind (required clause kvs "p")
                        (parse_float clause "p") in
          let* from_, until = window clause kvs in
          Ok (Corrupt { prob; from_; until })
      | ("join" | "leave") as kind ->
          let* () = reject_unknown clause kvs [ "node"; "at" ] in
          let* node = Result.bind (required clause kvs "node")
                        (parse_int clause "node") in
          let* at = Result.bind (required clause kvs "at")
                      (parse_float clause "at") in
          let* () =
            if at < 0. then
              Error
                (Printf.sprintf
                   "fault plan: clause %S: at must be non-negative" clause)
            else Ok ()
          in
          if kind = "join" then Ok (Join { node; at })
          else Ok (Leave { node; at })
      | "load" ->
          let* () = reject_unknown clause kvs [ "rate"; "from"; "until" ] in
          let* rate = Result.bind (required clause kvs "rate")
                        (parse_float clause "rate") in
          let* () =
            if rate <= 0. || not (Float.is_finite rate) then
              Error
                (Printf.sprintf
                   "fault plan: clause %S: rate must be positive" clause)
            else Ok ()
          in
          let* from_, until = window clause kvs in
          Ok (Load { rate; from_; until })
      | k ->
          Error
            (Printf.sprintf
               "fault plan: unknown clause kind %S \
                (crash|part|dup|reorder|corrupt|join|leave|load)"
               k))

let check_prob spec prob =
  if prob < 0. || prob > 1. then
    Error
      (Printf.sprintf "fault plan: clause %S: p must be within [0,1]" spec)
  else Ok ()

let of_string s =
  let clauses = List.filter (fun c -> c <> "") (split_on ';' s) in
  let* plan =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        let* spec = parse_clause clause in
        let* () =
          match spec with
          | Duplicate { prob; _ } | Reorder { prob; _ } | Corrupt { prob; _ }
            ->
              check_prob clause prob
          | Crash _ | Partition _ | Join _ | Leave _ | Load _ -> Ok ()
        in
        Ok (spec :: acc))
      (Ok []) clauses
  in
  Ok (List.rev plan)

(* ----- printing ----- *)

let float_str f =
  if f = infinity then "inf"
  else if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else string_of_float f

let window_str from_ until =
  (if from_ = 0. then "" else ",from=" ^ float_str from_)
  ^ if until = infinity then "" else ",until=" ^ float_str until

let spec_to_string = function
  | Crash { node; at; recover; persistence } ->
      Printf.sprintf "crash:node=%d,at=%s%s%s" node (float_str at)
        (match recover with
        | None -> ""
        | Some r -> ",recover=" ^ float_str r)
        (match persistence with
        | Hook -> ""
        | p -> ",persist=" ^ persistence_to_string p)
  | Partition { groups; from_; until } ->
      Printf.sprintf "part:cut=%s%s"
        (String.concat "/"
           (List.map
              (fun g -> String.concat "+" (List.map string_of_int g))
              groups))
        (window_str from_ until)
  | Duplicate { prob; from_; until } ->
      Printf.sprintf "dup:p=%g%s" prob (window_str from_ until)
  | Reorder { prob; window; from_; until } ->
      Printf.sprintf "reorder:p=%g,window=%s%s" prob (float_str window)
        (window_str from_ until)
  | Corrupt { prob; from_; until } ->
      Printf.sprintf "corrupt:p=%g%s" prob (window_str from_ until)
  | Join { node; at } ->
      Printf.sprintf "join:node=%d,at=%s" node (float_str at)
  | Leave { node; at } ->
      Printf.sprintf "leave:node=%d,at=%s" node (float_str at)
  | Load { rate; from_; until } ->
      Printf.sprintf "load:rate=%g%s" rate (window_str from_ until)

let to_string plan = String.concat ";" (List.map spec_to_string plan)

let pp ppf plan = Format.pp_print_string ppf (to_string plan)

let validate ~num_nodes plan =
  let check_node n =
    if n < 0 || n >= num_nodes then
      Error
        (Printf.sprintf "fault plan: node %d outside instance of %d nodes" n
           num_nodes)
    else Ok ()
  in
  List.fold_left
    (fun acc spec ->
      let* () = acc in
      match spec with
      | Crash { node; _ } | Join { node; _ } | Leave { node; _ } ->
          check_node node
      | Partition { groups; _ } ->
          List.fold_left
            (fun acc g ->
              let* () = acc in
              List.fold_left
                (fun acc n ->
                  let* () = acc in
                  check_node n)
                (Ok ()) g)
            (Ok ()) groups
      | Duplicate _ | Reorder _ | Corrupt _ | Load _ -> Ok ())
    (Ok ()) plan

(* ----- pure injection queries ----- *)

let node_events plan =
  let events =
    List.concat_map
      (function
        | Crash { node; at; recover; persistence } -> (
            ((at, `Crash node)
             : float
               * [ `Crash of int
                 | `Recover of int * persistence
                 | `Join of int
                 | `Leave of int ])
            ::
            (match recover with
            | None -> []
            | Some r -> [ (r, `Recover (node, persistence)) ]))
        | Join { node; at } -> [ (at, `Join node) ]
        | Leave { node; at } -> [ (at, `Leave node) ]
        | Partition _ | Duplicate _ | Reorder _ | Corrupt _ | Load _ -> [])
      plan
  in
  (* stable: simultaneous events keep plan order *)
  List.stable_sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) events

let active ~time from_ until = time >= from_ && time < until

let group_index groups n =
  let rec go i = function
    | [] -> None
    | g :: rest -> if List.mem n g then Some i else go (i + 1) rest
  in
  go 0 groups

(* a named loop, not [List.exists] with a closure: this runs once per
   live delivery under a non-empty plan *)
let rec partitioned_loop ~time ~src ~dst = function
  | [] -> false
  | Partition { groups; from_; until } :: rest ->
      (active ~time from_ until
      &&
      match (group_index groups src, group_index groups dst) with
      | Some i, Some j -> i <> j
      | _ -> false)
      || partitioned_loop ~time ~src ~dst rest
  | _ :: rest -> partitioned_loop ~time ~src ~dst rest

let partitioned plan ~time ~src ~dst =
  src <> dst && partitioned_loop ~time ~src ~dst plan

type fate = { corrupt : bool; duplicate : bool; extra_latency : float }

let no_fate = { corrupt = false; duplicate = false; extra_latency = 0. }

(* One roll per active probabilistic clause, in plan order; the roll is
   consumed whether or not the clause fires, so the fault stream's
   consumption pattern depends only on (plan, time). *)
(* a named top-level loop with accumulator arguments, not a fold with
   closures: this runs once per live send, and the inactive-plan walk
   must not allocate *)
let rec fate_loop ~time ~roll corrupt duplicate extra = function
  | [] ->
      if corrupt || duplicate || extra <> 0. then
        { corrupt; duplicate; extra_latency = extra }
      else no_fate
  | Duplicate { prob; from_; until } :: rest when active ~time from_ until ->
      let fired = roll () < prob in
      fate_loop ~time ~roll corrupt (duplicate || fired) extra rest
  | Reorder { prob; window; from_; until } :: rest
    when active ~time from_ until ->
      let fired = roll () < prob in
      let extra = if fired then extra +. (roll () *. window) else extra in
      fate_loop ~time ~roll corrupt duplicate extra rest
  | Corrupt { prob; from_; until } :: rest when active ~time from_ until ->
      let fired = roll () < prob in
      fate_loop ~time ~roll (corrupt || fired) duplicate extra rest
  | _ :: rest -> fate_loop ~time ~roll corrupt duplicate extra rest

let message_fate plan ~time ~roll = fate_loop ~time ~roll false false 0. plan

let message_clauses plan =
  List.filter
    (function
      | Duplicate _ | Reorder _ | Corrupt _ | Partition _ -> true
      | Crash _ | Join _ | Leave _ | Load _ -> false)
    plan

(* The earliest membership event decides the starting side: a node
   whose first event is a join begins outside the fleet, one whose
   first event is a leave (or that has no membership clause) begins
   inside it.  Ties keep plan order, matching [node_events]'s stable
   sort and hence the execution order of simultaneous events. *)
let starts_absent plan ~node =
  let earliest = ref None in
  List.iter
    (fun spec ->
      let consider kind at =
        match !earliest with
        | Some (_, t) when t <= at -> ()
        | _ -> earliest := Some (kind, at)
      in
      match spec with
      | Join { node = n; at } when n = node -> consider `Join at
      | Leave { node = n; at } when n = node -> consider `Leave at
      | _ -> ())
    plan;
  match !earliest with Some (`Join, _) -> true | _ -> false

(* Membership is a pure function of (plan, time): replay the schedule
   up to [time] over the starting map.  The online resume path audits
   a checkpoint's saved membership against this before trusting it. *)
let membership_at plan ~num_nodes ~time =
  let m =
    Array.init num_nodes (fun n -> not (starts_absent plan ~node:n))
  in
  List.iter
    (fun (t, ev) ->
      if t <= time then
        match ev with
        | `Join n -> m.(n) <- true
        | `Leave n -> m.(n) <- false
        | `Crash _ | `Recover _ -> ())
    (node_events plan);
  m

(* a named loop for the same reason as [fate_loop]: the simulator asks
   after every load arrival, and the walk must not allocate *)
let rec load_rate_loop ~time acc = function
  | [] -> acc
  | Load { rate; from_; until } :: rest when active ~time from_ until ->
      load_rate_loop ~time (acc +. rate) rest
  | _ :: rest -> load_rate_loop ~time acc rest

let load_rate plan ~time = load_rate_loop ~time 0. plan

let has_load plan =
  List.exists (function Load _ -> true | _ -> false) plan

(* The earliest load window opening strictly after [time]; lets the
   simulator's arrival process sleep across gaps between windows
   instead of polling. *)
let next_load_start plan ~time =
  List.fold_left
    (fun acc spec ->
      match spec with
      | Load { from_; _ } when from_ > time -> (
          match acc with
          | Some t when t <= from_ -> acc
          | _ -> Some from_)
      | _ -> acc)
    None plan
