(** Deterministic fault plans.

    A plan is a pure value describing when and how the environment
    misbehaves: crash-stop and crash-recovery of nodes, network
    partitions over time windows, message duplication, bounded
    reordering, and payload corruption (modelled as a drop — the
    receiver's checksum rejects the packet).  {!Sim.Live_sim} turns a
    plan into ordinary events on its event queue, so the same seed and
    the same plan always produce bit-identical runs.

    The concrete syntax (for the CLI's [--faults PLAN]) is a
    semicolon-separated list of clauses, each [kind:key=value,...]:

    {v
    crash:node=0,at=40                        crash-stop node 0 at t=40
    crash:node=0,at=40,recover=60             ... restart at t=60 (hook)
    crash:node=0,at=40,recover=60,persist=volatile
    part:from=10,until=30,cut=0+1/2           {0,1} | {2} during [10,30)
    dup:p=0.1                                 duplicate 10% of sends
    reorder:p=0.3,window=2                    extra latency U[0,2) on 30%
    corrupt:p=0.05,from=5,until=50            corrupt (drop) 5% of sends
    join:node=3,at=25                         node 3 joins the fleet at t=25
    leave:node=1,at=70                        node 1 departs at t=70
    load:rate=2,from=10,until=90              open-loop client traffic,
                                              2 arrivals/sec in [10,90)
    v}

    [from]/[until] default to the whole run.  Probabilistic clauses
    ([dup]/[reorder]/[corrupt]) and the [load] arrival process draw
    from a dedicated fault RNG stream, so the base simulation's random
    choices are untouched by the plan.

    Churn semantics: a node named by a [join] clause starts {e absent}
    (its slot exists but it receives no traffic and takes no actions
    until its join time); a [leave] clause removes a present node —
    envelopes addressed to it afterwards are dropped and counted as
    fault drops.  Both are membership events, distinct from crashes:
    a crashed node is still a member (it may recover), a departed node
    is not. *)

(** What survives a crash, for recovery scheduled by a plan:
    [Full] — the state is kept verbatim (amnesia-free restart);
    [Volatile] — everything is volatile, the node restarts from
    [Protocol.S.initial];
    [Hook] — the protocol's [on_recover] reconstructs the state from
    its durable part (the default, and the only mode the checkers
    explore under a crash budget). *)
type persistence = Full | Volatile | Hook

type spec =
  | Crash of {
      node : int;
      at : float;
      recover : float option;  (** [None]: crash-stop, never restarts *)
      persistence : persistence;
    }
  | Partition of {
      groups : int list list;
          (** nodes in different groups cannot exchange messages;
              unlisted nodes stay connected to everyone *)
      from_ : float;
      until : float;
    }
  | Duplicate of { prob : float; from_ : float; until : float }
  | Reorder of {
      prob : float;
      window : float;  (** extra delivery latency drawn from [0, window) *)
      from_ : float;
      until : float;
    }
  | Corrupt of { prob : float; from_ : float; until : float }
  | Join of { node : int; at : float }  (** node enters the fleet at [at] *)
  | Leave of { node : int; at : float }  (** node departs at [at] *)
  | Load of {
      rate : float;  (** mean arrivals per second (Poisson, seeded) *)
      from_ : float;
      until : float;
    }

type t = spec list

val empty : t

val is_empty : t -> bool

(** Parse the concrete syntax above.  [Error] carries a one-line
    diagnostic naming the offending clause. *)
val of_string : string -> (t, string) result

(** Round-trips through {!of_string}. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Check node indices and time windows against an instance size. *)
val validate : num_nodes:int -> t -> (unit, string) result

(** {2 Pure injection queries}

    Everything below is a deterministic function of the plan and its
    arguments; the simulator supplies time and random rolls. *)

(** Crash/recovery/membership schedule entries, sorted by time (ties
    keep plan order).  Recoveries carry the persistence mode of their
    crash. *)
val node_events :
  t ->
  (float
  * [ `Crash of int
    | `Recover of int * persistence
    | `Join of int
    | `Leave of int ])
  list

(** Whether [node] begins the run outside the fleet: true when its
    earliest membership event is a [join] (ties keep plan order,
    matching {!node_events}).  Nodes with no membership clause start
    present. *)
val starts_absent : t -> node:int -> bool

(** Summed rate of the [load] clauses active at [time], in arrivals
    per second; [0.] when none are active. *)
val load_rate : t -> time:float -> float

(** The membership map the plan implies at [time] (a pure function:
    the starting map with every join/leave at or before [time]
    replayed).  Lets a resume audit a checkpoint's saved membership
    without re-running the simulation. *)
val membership_at : t -> num_nodes:int -> time:float -> bool array

(** Whether the plan has any [load] clause at all (gates scheduling
    the arrival process). *)
val has_load : t -> bool

(** The earliest [load] window opening strictly after [time], if any —
    the arrival process sleeps to it across rate-zero gaps. *)
val next_load_start : t -> time:float -> float option

(** Whether [src -> dst] traffic is cut at [time] by an active
    partition (same cut, different groups). *)
val partitioned : t -> time:float -> src:int -> dst:int -> bool

(** The fate of one message sent at [time].  [roll] is consumed once
    per active probabilistic clause, in plan order — a fixed pattern,
    so runs replay exactly.  [corrupt] wins over everything else;
    [duplicate] sends one extra copy; [extra_latency] delays the
    (first) copy within its reorder window. *)
type fate = { corrupt : bool; duplicate : bool; extra_latency : float }

val message_fate : t -> time:float -> roll:(unit -> float) -> fate

(** The sub-plan [message_fate]/[partitioned] can ever consult: crash,
    churn and load clauses never touch a message in flight, so callers
    on the per-send hot path filter once up front instead of walking
    the whole plan per delivery.  Filtering preserves clause order,
    hence the roll-consumption pattern and bit-identical replay. *)
val message_clauses : t -> t
