module Make (P : Dsm.Protocol.S) = struct
  module Envelope = Dsm.Envelope
  module Fingerprint = Dsm.Fingerprint
  module Trace = Dsm.Trace

  type global = {
    nodes : P.state array;
    net : P.message Envelope.t Net.Multiset.t;
    crashes : int array;
        (* never mutated in place: crash successors copy, everything
           else shares the parent's array *)
  }

  type violation = {
    system : P.state array;
    violation : Dsm.Invariant.violation;
    trace : (P.message, P.action) Trace.t;
    depth : int;
  }

  type stats = {
    transitions : int;
    global_states : int;
    system_states : int;
    max_depth_reached : int;
    retained_bytes : int;
    store_hits : int;
    orbit_hits : int;
        (* successors deduplicated against a different orbit
           representative (the successor itself was not in canonical
           form); 0 with the identity group *)
    elapsed : float;
  }

  type outcome = {
    stats : stats;
    violation : violation option;
    completed : bool;
  }

  type config = {
    max_depth : int option;
    time_limit : float option;
    max_transitions : int option;
    crash_budget : int;
    stop_on_violation : bool;
    track_traces : bool;
    domains : int;
        (* > 1 switches to layered frontier expansion (deterministic
           parallel BFS); 1 keeps the recursive DFS *)
    pool : Par.Pool.t option;  (* borrowed; overrides [domains] *)
    visited_store : Store.Fp_set.t option;
        (* disk-backed visited set (lib/store).  Forces layered
           frontier expansion — layers visit each state at its minimum
           depth, so a presence-only set is exactly equivalent to the
           depth-keyed table, which the DFS's revisit-shallower
           correction is not.  Entries from earlier runs gate
           re-expansion, making restarts incremental; [retained_bytes]
           then counts only the parent table. *)
    obs : Obs.scope;
    trace : Obs.Trace.t;
        (* flight recorder: first-visit transitions, violation
           witnesses, run header/footer.  The global checker's network
           is a consumable multiset, not the LMC's monotone I+, but
           message provenance still applies: a delivery's consumed
           fingerprint references the step that produced it. *)
    symmetry : (P.state, P.message) Dsm.Symmetry.spec;
        (* audited role-permutation group (with identifier mappers for
           states and messages): the visited set and parent links are
           keyed by the least fingerprint over the group's images of a
           global state, so permutation-equivalent states are explored
           once.  Exploration, traces and witnesses stay in original
           coordinates — every recorded step is a real transition, so
           witness replay is untouched.  Sound iff every handler,
           [enabled_actions], [initial], [on_recover] and the invariant
           commute with the group's action — audited by
           [Lint.Symmetry]; the checker trusts the caller.  Default:
           identity spec (no reduction, fingerprints bit-identical to
           before). *)
  }

  let default_config =
    {
      max_depth = None;
      time_limit = None;
      max_transitions = None;
      crash_budget = 0;
      stop_on_violation = true;
      track_traces = true;
      domains = 1;
      pool = None;
      visited_store = None;
      obs = Obs.null;
      trace = Obs.Trace.null;
      symmetry = Dsm.Symmetry.id_spec ~degree:P.num_nodes;
    }

  (* The canonical fingerprint of a global state: node states are
     positional, the network multiset is sorted by construction.  The
     crash counts join the tuple only once some node has crashed, so a
     [crash_budget = 0] run hashes exactly what it always did. *)
  let fingerprint g =
    if Array.exists (fun c -> c > 0) g.crashes then
      Fingerprint.of_value (g.nodes, Net.Multiset.bindings g.net, g.crashes)
    else Fingerprint.of_value (g.nodes, Net.Multiset.bindings g.net)

  let system_fingerprint nodes = Fingerprint.of_value nodes

  (* Fingerprint of the image of [g] under one permutation: node
     [p.(i)] takes node [i]'s identifier-rewritten state, envelopes
     are renamed and re-sorted into the multiset's canonical binding
     order (a permutation is a bijection on envelopes, so multiplicity
     structure is preserved), crash counters travel with their node. *)
  let permuted_fp (spec : (P.state, P.message) Dsm.Symmetry.spec) p g =
    let rename = Dsm.Symmetry.apply p in
    let nodes' =
      Dsm.Symmetry.permute_slots p
        (Array.map (spec.Dsm.Symmetry.map_state rename) g.nodes)
    in
    let bindings' =
      List.sort compare
        (List.map
           (fun ((e : P.message Envelope.t), c) ->
             ( {
                 Envelope.src = rename e.Envelope.src;
                 dst = rename e.Envelope.dst;
                 payload = spec.Dsm.Symmetry.map_message rename e.payload;
               },
               c ))
           (Net.Multiset.bindings g.net))
    in
    if Array.exists (fun c -> c > 0) g.crashes then
      Fingerprint.of_value
        (nodes', bindings', Dsm.Symmetry.permute_slots p g.crashes)
    else Fingerprint.of_value (nodes', bindings')

  (* Canonical (least-over-orbit) fingerprint, given the state's raw
     fingerprint.  With the identity group this IS the raw fingerprint
     — reduction off reproduces prior runs bit for bit. *)
  let canonical_fp (spec : (P.state, P.message) Dsm.Symmetry.spec) g raw =
    if Dsm.Symmetry.is_trivial spec.Dsm.Symmetry.group then raw
    else
      List.fold_left
        (fun best p ->
          if Dsm.Symmetry.is_identity p then best
          else
            let f = permuted_fp spec p g in
            if Fingerprint.compare f best < 0 then f else best)
        raw spec.Dsm.Symmetry.group.Dsm.Symmetry.elements

  (* Per-entry analytic footprint of the visited set: fingerprint key
     plus hash-table slot overhead (next pointer, depth). *)
  let visited_entry_bytes = Fingerprint.size + 48
  let parent_entry_bytes = (2 * Fingerprint.size) + 80

  (* Metric handles resolved once per run; see the LMC checker for the
     cost model (atomic increments on the hot path). *)
  type obs_handles = {
    scope : Obs.scope;
    c_transitions : Obs.Metrics.counter;
    c_global_states : Obs.Metrics.counter;
    c_system_states : Obs.Metrics.counter;
    c_orbit_hits : Obs.Metrics.counter;
    h_depth : Obs.Metrics.histogram;
  }

  let make_obs_handles (config : config) =
    let scope = config.obs in
    {
      scope;
      c_transitions = Obs.counter scope "bdfs.transitions";
      c_global_states = Obs.counter scope "bdfs.global_states";
      c_system_states = Obs.counter scope "bdfs.system_states";
      c_orbit_hits = Obs.counter scope "bdfs.orbit_hits";
      h_depth = Obs.histogram scope "bdfs.depth";
    }

  module RWB = Obs.Replay.Make (P)

  let step_label = function
    | Trace.Deliver env ->
        Format.asprintf "%a" P.pp_message env.Envelope.payload
    | Trace.Execute (_, a) -> Format.asprintf "%a" P.pp_action a
    | Trace.Crash _ -> "crash-recover"

  (* One flight-recorder step for a first-visited global state.  [inj]
     maps message fingerprints to the seq of the step that produced
     them, giving deliveries their provenance link. *)
  let record_global_step ~trace ~inj step out ~fp_before ~fp_after ~depth =
    let node, kind, src, consumed =
      match step with
      | Trace.Deliver env ->
          let mfp = Fingerprint.of_value env in
          ( env.Envelope.dst,
            Obs.Trace.Deliver,
            env.Envelope.src,
            Some
              ( Fingerprint.to_hex mfp,
                match Hashtbl.find_opt inj mfp with
                | Some s -> s
                | None -> -1 ) )
      | Trace.Execute (n, _) -> (n, Obs.Trace.Action, -1, None)
      | Trace.Crash n -> (n, Obs.Trace.Crash, -1, None)
    in
    let produces = List.map Fingerprint.of_value out in
    let seq =
      Obs.Trace.record_step trace
        {
          Obs.Trace.node;
          kind;
          src;
          label = step_label step;
          fp_before = Fingerprint.to_hex fp_before;
          fp_after = Fingerprint.to_hex fp_after;
          consumed;
          produced = List.map Fingerprint.to_hex produces;
          depth;
          dom = 0;
        }
    in
    List.iter
      (fun f -> if not (Hashtbl.mem inj f) then Hashtbl.add inj f seq)
      produces

  let record_run_header ~trace ~domains =
    ignore
      (Obs.Trace.emit trace ~ev:"bdfs_run"
         [
           ("protocol", Dsm.Json.String P.name);
           ("nodes", Dsm.Json.Int P.num_nodes);
           ("domains", Dsm.Json.Int domains);
         ])

  let record_run_end ~trace ~symmetry (outcome : outcome) =
    ignore
      (Obs.Trace.emit trace ~ev:"bdfs_end"
         [
           ("transitions", Dsm.Json.Int outcome.stats.transitions);
           ("global_states", Dsm.Json.Int outcome.stats.global_states);
           ("violation", Dsm.Json.Bool (outcome.violation <> None));
           ("symmetry", Dsm.Json.String (Dsm.Symmetry.name symmetry));
           ("orbit_hits", Dsm.Json.Int outcome.stats.orbit_hits);
           ("completed", Dsm.Json.Bool outcome.completed);
         ]);
    Obs.Trace.flush trace

  type search = {
    config : config;
    o : obs_handles;
    tracing : bool;
    reduce : bool;  (* [config.symmetry] is non-trivial *)
    binj : (Fingerprint.t, int) Hashtbl.t;
    root : P.state array;  (* starting states, for witness records *)
    invariant : P.state Dsm.Invariant.t;
    visited : (Fingerprint.t, int) Hashtbl.t;
        (* canonical fingerprint -> min depth; with the identity group
           canonical = raw, so keys are unchanged from prior runs *)
    parents :
      (Fingerprint.t, Fingerprint.t option * (P.message, P.action) Trace.step)
      Hashtbl.t;
        (* keyed by canonical fingerprints; each key resolves to the
           unique first-visited (original-coordinate) state of its
           orbit, so a rebuilt chain is a real executable path *)
    mutable transitions : int;
    mutable orbit_hits : int;
    mutable system_states : Fingerprint.Set.t;
    mutable max_depth_reached : int;
    mutable violation : violation option;
    mutable truncated : bool;  (* some limit tripped *)
    started : float;
  }

  exception Stop

  let out_of_budget s =
    (match s.config.time_limit with
    | Some limit -> Unix.gettimeofday () -. s.started > limit
    | None -> false)
    ||
    match s.config.max_transitions with
    | Some limit -> s.transitions >= limit
    | None -> false

  let rebuild_trace s fp =
    let rec walk fp acc =
      match Hashtbl.find_opt s.parents fp with
      | None -> acc
      | Some (parent, step) -> (
          match parent with
          | None -> step :: acc
          | Some pfp -> walk pfp (step :: acc))
    in
    walk fp []

  let record_violation s g fp depth violation =
    if s.violation = None then begin
      let tr = if s.config.track_traces then rebuild_trace s fp else [] in
      s.violation <-
        Some { system = Array.copy g.nodes; violation; trace = tr; depth };
      Obs.event s.o.scope "bdfs.violation"
        ~fields:
          [
            ("invariant", Dsm.Json.String violation.Dsm.Invariant.invariant);
            ("detail", Dsm.Json.String violation.Dsm.Invariant.detail);
            ("depth", Dsm.Json.Int depth);
          ];
      if s.tracing && s.config.track_traces then
        ignore
          (Obs.Trace.emit s.config.trace ~ev:"witness"
             (RWB.witness_fields ~init:s.root ~schedule:tr
                ~invariant:violation.Dsm.Invariant.invariant
                ~detail:violation.Dsm.Invariant.detail))
    end

  (* Successors of a global state: one delivery per distinct in-flight
     message, one execution per enabled internal action.  A handler
     raising Local_assert makes the transition disabled.  The sent
     messages travel alongside each successor so the flight recorder
     can log productions without re-running the handler. *)
  let successors ~crash_budget g =
    let deliveries =
      Net.Multiset.fold_distinct
        (fun env _count acc ->
          let node = env.Envelope.dst in
          match P.handle_message ~self:node g.nodes.(node) env with
          | exception Dsm.Protocol.Local_assert _ -> acc
          | state', out ->
              let nodes = Array.copy g.nodes in
              nodes.(node) <- state';
              let net =
                match Net.Multiset.remove env g.net with
                | Some net -> Net.Multiset.add_list out net
                | None -> assert false
              in
              (Trace.Deliver env, { g with nodes; net }, out) :: acc)
        g.net []
    in
    let actions =
      List.concat_map
        (fun n ->
          List.filter_map
            (fun action ->
              match P.handle_action ~self:n g.nodes.(n) action with
              | exception Dsm.Protocol.Local_assert _ -> None
              | state', out ->
                  let nodes = Array.copy g.nodes in
                  nodes.(n) <- state';
                  let net = Net.Multiset.add_list out g.net in
                  Some (Trace.Execute (n, action), { g with nodes; net }, out))
            (P.enabled_actions ~self:n g.nodes.(n)))
        (Dsm.Node_id.all P.num_nodes)
    in
    let crashes =
      if crash_budget <= 0 then []
      else
        List.filter_map
          (fun n ->
            if g.crashes.(n) >= crash_budget then None
            else
              let state' = P.on_recover ~self:n g.nodes.(n) in
              (* a recovery that lands on the same state adds nothing:
                 every successor of the crashed branch exists verbatim
                 on the uncrashed one, so the prune is sound *)
              if
                Fingerprint.equal
                  (Fingerprint.of_value state')
                  (Fingerprint.of_value g.nodes.(n))
              then None
              else begin
                let nodes = Array.copy g.nodes in
                nodes.(n) <- state';
                let crashes = Array.copy g.crashes in
                crashes.(n) <- crashes.(n) + 1;
                Some (Trace.Crash n, { g with nodes; crashes }, [])
              end)
          (Dsm.Node_id.all P.num_nodes)
    in
    List.rev_append deliveries (actions @ crashes)

  let heartbeat s =
    Obs.heartbeat s.o.scope (fun () ->
        [
          ("transitions", Dsm.Json.Int s.transitions);
          ("global_states", Dsm.Json.Int (Hashtbl.length s.visited));
          ( "system_states",
            Dsm.Json.Int (Dsm.Fingerprint.Set.cardinal s.system_states) );
          ("max_depth", Dsm.Json.Int s.max_depth_reached);
          ( "elapsed_s",
            Dsm.Json.Float (Unix.gettimeofday () -. s.started) );
        ])

  (* [fp] is the raw fingerprint of [g] (trace records stay in
     original coordinates, so witness replay re-derives them); [cfp]
     its canonical form, keying the visited and parent tables. *)
  let rec explore s g fp cfp depth =
    heartbeat s;
    if out_of_budget s then begin
      s.truncated <- true;
      raise Stop
    end;
    if depth > s.max_depth_reached then s.max_depth_reached <- depth;
    let depth_ok =
      match s.config.max_depth with Some d -> depth < d | None -> true
    in
    if depth_ok then
      List.iter
        (fun (step, g', out) ->
          s.transitions <- s.transitions + 1;
          Obs.Metrics.incr s.o.c_transitions;
          let fp' = fingerprint g' in
          let cfp' = canonical_fp s.config.symmetry g' fp' in
          let depth' = depth + 1 in
          let revisit_shallower =
            match Hashtbl.find_opt s.visited cfp' with
            | Some d -> depth' < d
            | None -> true
          in
          if not revisit_shallower then begin
            if s.reduce && not (Fingerprint.equal fp' cfp') then begin
              s.orbit_hits <- s.orbit_hits + 1;
              Obs.Metrics.incr s.o.c_orbit_hits
            end
          end
          else begin
            let first_visit = not (Hashtbl.mem s.visited cfp') in
            if first_visit then begin
              Obs.Metrics.incr s.o.c_global_states;
              Obs.Metrics.observe s.o.h_depth depth'
            end;
            Hashtbl.replace s.visited cfp' depth';
            if s.config.track_traces && first_visit then
              Hashtbl.replace s.parents cfp' (Some cfp, step);
            if first_visit then begin
              if s.tracing then
                record_global_step ~trace:s.config.trace ~inj:s.binj step
                  out ~fp_before:fp ~fp_after:fp' ~depth:depth';
              let sys_fp = system_fingerprint g'.nodes in
              if not (Fingerprint.Set.mem sys_fp s.system_states) then begin
                s.system_states <- Fingerprint.Set.add sys_fp s.system_states;
                Obs.Metrics.incr s.o.c_system_states
              end;
              match Dsm.Invariant.check s.invariant g'.nodes with
              | Some violation ->
                  record_violation s g' cfp' depth' violation;
                  if s.config.stop_on_violation then raise Stop
              | None -> ()
            end;
            explore s g' fp' cfp' depth'
          end)
        (successors ~crash_budget:s.config.crash_budget g)

  let run_dfs config ~invariant ?(initial_net = []) init =
    let g =
      {
        nodes = Array.copy init;
        net = Net.Multiset.of_list initial_net;
        crashes = Array.make P.num_nodes 0;
      }
    in
    let s =
      {
        config;
        o = make_obs_handles config;
        tracing = Obs.Trace.enabled config.trace;
        reduce =
          not (Dsm.Symmetry.is_trivial config.symmetry.Dsm.Symmetry.group);
        binj = Hashtbl.create 256;
        root = Array.copy init;
        invariant;
        visited = Hashtbl.create 4096;
        parents = Hashtbl.create 4096;
        transitions = 0;
        orbit_hits = 0;
        system_states = Fingerprint.Set.empty;
        max_depth_reached = 0;
        violation = None;
        truncated = false;
        started = Unix.gettimeofday ();
      }
    in
    if s.tracing then record_run_header ~trace:config.trace ~domains:1;
    let fp = fingerprint g in
    let cfp = canonical_fp config.symmetry g fp in
    Hashtbl.replace s.visited cfp 0;
    Obs.Metrics.incr s.o.c_global_states;
    (* The root has no parent entry; [rebuild_trace] stops there. *)
    s.system_states <-
      Fingerprint.Set.add (system_fingerprint g.nodes) s.system_states;
    Obs.Metrics.incr s.o.c_system_states;
    (match Dsm.Invariant.check invariant g.nodes with
    | Some violation -> record_violation s g cfp 0 violation
    | None -> ());
    (if not (config.stop_on_violation && s.violation <> None) then
       try explore s g fp cfp 0 with Stop -> ());
    let elapsed = Unix.gettimeofday () -. s.started in
    let retained_bytes =
      (Hashtbl.length s.visited * visited_entry_bytes)
      + (Hashtbl.length s.parents * parent_entry_bytes)
    in
    let outcome =
      {
        stats =
          {
            transitions = s.transitions;
            global_states = Hashtbl.length s.visited;
            system_states = Fingerprint.Set.cardinal s.system_states;
            max_depth_reached = s.max_depth_reached;
            retained_bytes;
            store_hits = 0;
            orbit_hits = s.orbit_hits;
            elapsed;
          };
        violation = s.violation;
        completed = not s.truncated;
      }
    in
    if s.tracing then record_run_end ~trace:config.trace ~symmetry:config.symmetry.Dsm.Symmetry.group outcome;
    outcome

  (* ----- parallel frontier expansion (domains > 1) -----

     Breadth-first by layers: every state of depth [d] is expanded in
     one batch — the pure half (successor generation, fingerprints,
     the invariant, a read-only prefilter against the sharded visited
     table) fans out across the pool; insertion, parent recording and
     violation reporting happen on the submitting domain in submission
     order.  Layered traversal visits each state at its minimum depth,
     so the DFS's revisit-shallower correction never applies, and the
     merge order makes the outcome independent of the domain count.
     The traversal order differs from the DFS (this is BFS), but the
     explored set, the transition count and the verdict on an
     exhausted space are identical. *)

  type succ_compute =
    | S_seen of bool
        (* already visited at an earlier layer: counts as a transition,
           nothing else to do.  The flag marks an orbit hit — the
           successor was not itself in canonical form. *)
    | S_new of
        (P.message, P.action) Trace.step
        * global
        * Fingerprint.t  (* raw fingerprint, for trace records *)
        * Fingerprint.t  (* canonical fingerprint, for the visited set *)
        * Fingerprint.t  (* system fingerprint of the node states *)
        * Dsm.Invariant.violation option
        * P.message Envelope.t list  (* sent messages, for the recorder *)

  type fsearch = {
    fconfig : config;
    fo : obs_handles;
    ftracing : bool;
    fbinj : (Fingerprint.t, int) Hashtbl.t;
    froot : P.state array;
    fvisited : (Fingerprint.t, int) Par.Shard_tbl.t;
        (* unused when [fstore] is set: presence then lives on disk *)
    fstore : Store.Fp_set.t option;
    fparents :
      (Fingerprint.t, Fingerprint.t option * (P.message, P.action) Trace.step)
      Hashtbl.t;
    freduce : bool;
    mutable ftransitions : int;
    mutable ffresh : int;  (* states first visited by THIS run *)
    mutable fstore_hits : int;
        (* successors already present in the persistent visited set *)
    mutable forbit_hits : int;
    mutable fsystem_states : Fingerprint.Set.t;
    mutable fmax_depth : int;
    mutable fviolation : violation option;
    mutable ftruncated : bool;
    fstarted : float;
  }

  let fout_of_budget s =
    (match s.fconfig.time_limit with
    | Some limit -> Unix.gettimeofday () -. s.fstarted > limit
    | None -> false)
    ||
    match s.fconfig.max_transitions with
    | Some limit -> s.ftransitions >= limit
    | None -> false

  let frebuild_trace s fp =
    let rec walk fp acc =
      match Hashtbl.find_opt s.fparents fp with
      | None -> acc
      | Some (parent, step) -> (
          match parent with
          | None -> step :: acc
          | Some pfp -> walk pfp (step :: acc))
    in
    walk fp []

  let frecord_violation s g fp depth violation =
    if s.fviolation = None then begin
      let tr = if s.fconfig.track_traces then frebuild_trace s fp else [] in
      s.fviolation <-
        Some { system = Array.copy g.nodes; violation; trace = tr; depth };
      Obs.event s.fo.scope "bdfs.violation"
        ~fields:
          [
            ("invariant", Dsm.Json.String violation.Dsm.Invariant.invariant);
            ("detail", Dsm.Json.String violation.Dsm.Invariant.detail);
            ("depth", Dsm.Json.Int depth);
          ];
      if s.ftracing && s.fconfig.track_traces then
        ignore
          (Obs.Trace.emit s.fconfig.trace ~ev:"witness"
             (RWB.witness_fields ~init:s.froot ~schedule:tr
                ~invariant:violation.Dsm.Invariant.invariant
                ~detail:violation.Dsm.Invariant.detail))
    end

  let run_frontier config ~invariant ~initial_net init pool =
    let g =
      {
        nodes = Array.copy init;
        net = Net.Multiset.of_list initial_net;
        crashes = Array.make P.num_nodes 0;
      }
    in
    let s =
      {
        fconfig = config;
        fo = make_obs_handles config;
        ftracing = Obs.Trace.enabled config.trace;
        fbinj = Hashtbl.create 256;
        froot = Array.copy init;
        fvisited = Par.Shard_tbl.create 4096;
        fstore = config.visited_store;
        fparents = Hashtbl.create 4096;
        freduce =
          not (Dsm.Symmetry.is_trivial config.symmetry.Dsm.Symmetry.group);
        ftransitions = 0;
        ffresh = 0;
        fstore_hits = 0;
        forbit_hits = 0;
        fsystem_states = Fingerprint.Set.empty;
        fmax_depth = 0;
        fviolation = None;
        ftruncated = false;
        fstarted = Unix.gettimeofday ();
      }
    in
    if s.ftracing then
      record_run_header ~trace:config.trace
        ~domains:(Par.Pool.domains pool);
    (* Presence checks and inserts, dispatched on the backing set.
       [fseen] is read-only (safe from pool workers); [fadd] runs only
       on the sequential merge path. *)
    let fseen fp =
      match s.fstore with
      | Some st -> Store.Fp_set.mem st fp
      | None -> Par.Shard_tbl.mem s.fvisited fp
    in
    let fadd fp depth =
      let fresh =
        match s.fstore with
        | Some st -> Store.Fp_set.add st fp
        | None -> Par.Shard_tbl.add_if_absent s.fvisited fp depth
      in
      if fresh then begin
        s.ffresh <- s.ffresh + 1;
        Obs.Metrics.incr s.fo.c_global_states
      end
      else if s.fstore <> None then s.fstore_hits <- s.fstore_hits + 1;
      fresh
    in
    let root_fp = fingerprint g in
    let root_cfp = canonical_fp config.symmetry g root_fp in
    ignore (fadd root_cfp 0);
    s.fsystem_states <-
      Fingerprint.Set.add (system_fingerprint g.nodes) s.fsystem_states;
    Obs.Metrics.incr s.fo.c_system_states;
    (match Dsm.Invariant.check invariant g.nodes with
    | Some violation -> frecord_violation s g root_cfp 0 violation
    | None -> ());
    let stop () = config.stop_on_violation && s.fviolation <> None in
    let frontier = ref [| (g, root_fp, root_cfp) |] in
    let depth = ref 0 in
    (try
       while Array.length !frontier > 0 && not (stop ()) do
         Obs.heartbeat s.fo.scope (fun () ->
             [
               ("transitions", Dsm.Json.Int s.ftransitions);
               ("global_states", Dsm.Json.Int s.ffresh);
               ("store_hits", Dsm.Json.Int s.fstore_hits);
               ("orbit_hits", Dsm.Json.Int s.forbit_hits);
               ("depth", Dsm.Json.Int !depth);
               ( "elapsed_s",
                 Dsm.Json.Float (Unix.gettimeofday () -. s.fstarted) );
             ]);
         let layer = !frontier in
         frontier := [||];
         let depth' = !depth + 1 in
         let depth_ok =
           match config.max_depth with Some d -> !depth < d | None -> true
         in
         if depth_ok then begin
           (* Pure half, fanned out: successor generation, hashing,
              the invariant, and a monotone prefilter (states visited
              at earlier layers stay visited; in-layer duplicates are
              caught again at merge time). *)
           let computed =
             Par.Pool.tabulate pool ~chunk:4 (Array.length layer) (fun i ->
                 let g, _fp, _cfp = layer.(i) in
                 List.map
                   (fun (step, g', out) ->
                     let fp' = fingerprint g' in
                     let cfp' = canonical_fp config.symmetry g' fp' in
                     if fseen cfp' then
                       S_seen
                         (s.freduce && not (Fingerprint.equal fp' cfp'))
                     else
                       S_new
                         ( step,
                           g',
                           fp',
                           cfp',
                           system_fingerprint g'.nodes,
                           Dsm.Invariant.check invariant g'.nodes,
                           out ))
                   (successors ~crash_budget:config.crash_budget g))
           in
           (* Sequential merge in submission order. *)
           let next = ref [] in
           let orbit_hit () =
             s.forbit_hits <- s.forbit_hits + 1;
             Obs.Metrics.incr s.fo.c_orbit_hits
           in
           (try
              Array.iteri
                (fun i succs ->
                  let _, parent_fp, parent_cfp = layer.(i) in
                  List.iter
                    (fun succ ->
                      if fout_of_budget s then begin
                        s.ftruncated <- true;
                        raise Stop
                      end;
                      s.ftransitions <- s.ftransitions + 1;
                      Obs.Metrics.incr s.fo.c_transitions;
                      match succ with
                      | S_seen orbit ->
                          if orbit then orbit_hit ();
                          if s.fstore <> None then
                            s.fstore_hits <- s.fstore_hits + 1
                      | S_new (step, g', fp', cfp', sys_fp, viol, out) ->
                          if fadd cfp' depth' then begin
                            Obs.Metrics.observe s.fo.h_depth depth';
                            if depth' > s.fmax_depth then
                              s.fmax_depth <- depth';
                            if config.track_traces then
                              Hashtbl.replace s.fparents cfp'
                                (Some parent_cfp, step);
                            if s.ftracing then
                              record_global_step ~trace:config.trace
                                ~inj:s.fbinj step out ~fp_before:parent_fp
                                ~fp_after:fp' ~depth:depth';
                            if not (Fingerprint.Set.mem sys_fp s.fsystem_states)
                            then begin
                              s.fsystem_states <-
                                Fingerprint.Set.add sys_fp s.fsystem_states;
                              Obs.Metrics.incr s.fo.c_system_states
                            end;
                            (match viol with
                            | Some violation ->
                                frecord_violation s g' cfp' depth' violation;
                                if config.stop_on_violation then raise Stop
                            | None -> ());
                            next := (g', fp', cfp') :: !next
                          end
                          else if
                            s.freduce
                            && not (Fingerprint.equal fp' cfp')
                          then orbit_hit ())
                    succs)
                computed
            with Stop -> ());
           if not (stop ()) && not s.ftruncated then begin
             frontier := Array.of_list (List.rev !next);
             depth := depth'
           end
         end
       done
     with Stop -> ());
    let elapsed = Unix.gettimeofday () -. s.fstarted in
    let visited_count = s.ffresh in
    let retained_bytes =
      (* with a disk-backed visited set the fingerprints live in the
         page cache, not the heap: only the parent table is retained *)
      (match s.fstore with
      | Some _ -> 0
      | None -> visited_count * visited_entry_bytes)
      + (Hashtbl.length s.fparents * parent_entry_bytes)
    in
    let outcome =
      {
        stats =
          {
            transitions = s.ftransitions;
            global_states = visited_count;
            system_states = Fingerprint.Set.cardinal s.fsystem_states;
            max_depth_reached = s.fmax_depth;
            retained_bytes;
            store_hits = s.fstore_hits;
            orbit_hits = s.forbit_hits;
            elapsed;
          };
        violation = s.fviolation;
        completed = not s.ftruncated;
      }
    in
    if s.ftracing then record_run_end ~trace:config.trace ~symmetry:config.symmetry.Dsm.Symmetry.group outcome;
    outcome

  let run config ~invariant ?(initial_net = []) init =
    if config.domains < 1 then invalid_arg "Bdfs.run: domains must be >= 1";
    Obs.frame config.obs "bdfs" @@ fun () ->
    match config.pool with
    | Some pool -> run_frontier config ~invariant ~initial_net init pool
    | None when config.domains > 1 || config.visited_store <> None ->
        (* a visited store forces frontier mode even at [domains = 1]:
           only the layered traversal's minimum-depth-first discipline
           makes a presence-only set equivalent to the depth table *)
        Par.Pool.with_pool ~obs:config.obs config.domains (fun pool ->
            run_frontier config ~invariant ~initial_net init pool)
    | None -> run_dfs config ~invariant ~initial_net init
end
