(** Global model checking: bounded depth-first search (section 3.2).

    The classic approach the paper compares against.  States are
    {e global}: the system state (all node-local states) together with
    the network (a multiset of in-flight messages).  Every enabled
    handler is executed on every traversed global state; duplicate
    detection uses fingerprints of the canonical serialised state.

    B-DFS is sound (every traversed state is reachable, so every
    report is real) and complete given enough time — but the network
    component multiplies the state space, which is precisely the
    explosion LMC removes. *)

module Make (P : Dsm.Protocol.S) : sig
  type global = {
    nodes : P.state array;
    net : P.message Dsm.Envelope.t Net.Multiset.t;
    crashes : int array;
        (** crash-recoveries taken per node on the path to this state;
            all zero unless [crash_budget > 0] *)
  }

  type violation = {
    system : P.state array;  (** the violating system state *)
    violation : Dsm.Invariant.violation;
    trace : (P.message, P.action) Dsm.Trace.t;
        (** event sequence from the initial state *)
    depth : int;
  }

  type stats = {
    transitions : int;  (** handler executions *)
    global_states : int;  (** distinct global states visited *)
    system_states : int;  (** distinct system states among them *)
    max_depth_reached : int;
    retained_bytes : int;
        (** analytic heap memory of the visited + parent sets; with
            [visited_store] the fingerprints live in the page cache
            instead and only the parent table counts *)
    store_hits : int;
        (** successors whose fingerprint was already present in
            [visited_store] (earlier run or this one); [0] without a
            store *)
    orbit_hits : int;
        (** successors deduplicated against a {e different} member of
            their symmetry orbit (their raw fingerprint was new but the
            canonical one was already visited); [0] with the identity
            group *)
    elapsed : float;  (** wall-clock seconds *)
  }

  type outcome = {
    stats : stats;
    violation : violation option;
    completed : bool;
        (** the whole bounded space was explored (no limit tripped) *)
  }

  type config = {
    max_depth : int option;
    time_limit : float option;  (** wall-clock seconds *)
    max_transitions : int option;
    crash_budget : int;
        (** crash-recovery transitions allowed per node on any path: a
            crash rewrites the node state through
            {!Dsm.Protocol.S.on_recover}, consumes and produces no
            messages, and is pruned when the recovered state equals the
            current one.  The crash count joins the global fingerprint
            only when some node has crashed, so [0] (the default)
            explores the crash-free space bit-identically. *)
    stop_on_violation : bool;
    track_traces : bool;
        (** keep parent pointers for counterexample traces; disable to
            measure the bare visited-set footprint *)
    domains : int;
        (** worker domains.  [1] (the default) runs the classic
            recursive DFS.  [> 1] switches to layered frontier
            expansion — a breadth-first traversal whose pure half
            (successor generation, fingerprints, the invariant) fans
            out across a {!Par.Pool} with a sharded visited table,
            while insertions merge in submission order, so the explored
            set, transition count and verdict are independent of the
            domain count (traversal {e order} differs from the DFS, so
            a found counterexample may differ; an exhausted space
            yields identical state counts and verdict). *)
    pool : Par.Pool.t option;
        (** run frontier expansion on a caller-owned pool (borrowed,
            never shut down); overrides [domains] when set. *)
    visited_store : Store.Fp_set.t option;
        (** disk-backed visited set ({!Store.Fp_set}): global-state
            fingerprints go to an mmap'd file instead of the heap, so
            the visited set no longer bounds the explorable space by
            RAM (the paper's Fig. 10 axis) and a later run against the
            same file skips everything a {e completed} earlier run
            visited.  Forces layered frontier expansion even at
            [domains = 1], because only minimum-depth-first traversal
            makes a presence-only set equivalent to the DFS's
            depth-keyed table.  Reports stay sound after a resume
            (every violation found is real), but completeness is only
            guaranteed when the prior run [completed]: a truncated
            run may have recorded states whose successors it never
            expanded.  Default [None]. *)
    obs : Obs.scope;
        (** observability scope: [bdfs.transitions] /
            [bdfs.global_states] / [bdfs.system_states] counters and a
            [bdfs.depth] histogram mirror {!stats}; a periodic
            ["progress"] heartbeat and a [bdfs.violation] event flow to
            the scope's sinks.  Defaults to {!Obs.null}. *)
    trace : Obs.Trace.t;
        (** flight recorder: one [step] record per first-visited global
            state (global-state fingerprints before/after, message
            provenance), a replayable [witness] record per violation
            (requires [track_traces]), and [bdfs_run] / [bdfs_end]
            framing.  The DFS ([domains = 1]) and the layered frontier
            BFS ([domains > 1]) traverse in different orders, so their
            record streams legitimately differ — the determinism
            guarantee (identical streams for any domain count) applies
            among frontier runs, which emit only from the sequential
            merge.  Defaults to {!Obs.Trace.null}. *)
    symmetry : (P.state, P.message) Dsm.Symmetry.spec;
        (** audited role-permutation symmetry for global-state
            canonicalization.  Every successor's fingerprint is reduced
            to the lexicographically least over its orbit (node states
            renamed and slot-permuted, envelopes renamed, crash counts
            permuted) before the visited-set lookup, so each orbit is
            explored once.  {b Sound iff handlers, [enabled_actions],
            [initial], [on_recover] and the invariant all commute with
            the group} — audit with [Lint.Symmetry] before passing
            anything but the identity spec.  Witness traces are
            recorded in original coordinates: parent chains are keyed
            by canonical fingerprints but store the concrete
            first-visited state of each orbit, so a rebuilt trace is a
            real executable path.  With [visited_store], the persisted
            key becomes the canonical fingerprint; share a store file
            only between runs using the same symmetry setting.
            Default: the identity spec (no reduction). *)
  }

  val default_config : config

  (** [run config ~invariant ?initial_net init] explores from the
      system state [init] (node states indexed by id) with the given
      in-flight messages (default: none). *)
  val run :
    config ->
    invariant:P.state Dsm.Invariant.t ->
    ?initial_net:P.message Dsm.Envelope.t list ->
    P.state array ->
    outcome
end
