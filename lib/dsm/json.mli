(** Minimal JSON emission and parsing.

    The toolchain ships no JSON library and the sealed build must not
    add dependencies, so this is the small, correct subset needed to
    emit machine-readable checker results — full string escaping, the
    standard scalar types, arrays and objects — plus a parser for the
    same subset, used to validate JSONL metric/trace streams in tests
    and tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with RFC 8259 string escaping. *)
val to_string : t -> string

(** Serialise into an existing buffer — same bytes as {!to_string};
    hot paths use it to compose lines without intermediate strings. *)
val emit_into : Buffer.t -> t -> unit

(** Parse one JSON value.  Numbers without a fraction or exponent
    parse as [Int] (falling back to [Float] beyond the [int] range);
    [\u] escapes decode to UTF-8.  [Error] carries a human-readable
    reason, including trailing non-whitespace input. *)
val of_string : string -> (t, string) result
