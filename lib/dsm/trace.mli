(** Execution traces: the sequences of events a model checker reports.

    A step is the delivery of a network message to its destination,
    the execution of an internal action at a node — the two transition
    kinds of Fig. 5 — or a crash-recovery event: the node loses its
    volatile state and restarts from whatever [Protocol.S.on_recover]
    reconstructs from its durable part.  Crash steps carry no payload;
    replaying one applies the protocol's recovery function. *)

type ('m, 'a) step =
  | Deliver of 'm Envelope.t
  | Execute of Node_id.t * 'a
  | Crash of Node_id.t

type ('m, 'a) t = ('m, 'a) step list

(** Node at which the step executes (destination for deliveries). *)
val step_node : ('m, 'a) step -> Node_id.t

val pp_step :
  pp_message:(Format.formatter -> 'm -> unit) ->
  pp_action:(Format.formatter -> 'a -> unit) ->
  Format.formatter ->
  ('m, 'a) step ->
  unit

(** Numbered, one step per line. *)
val pp :
  pp_message:(Format.formatter -> 'm -> unit) ->
  pp_action:(Format.formatter -> 'a -> unit) ->
  Format.formatter ->
  ('m, 'a) t ->
  unit
