type ('m, 'a) step =
  | Deliver of 'm Envelope.t
  | Execute of Node_id.t * 'a
  | Crash of Node_id.t

type ('m, 'a) t = ('m, 'a) step list

let step_node = function
  | Deliver env -> env.Envelope.dst
  | Execute (n, _) -> n
  | Crash n -> n

let pp_step ~pp_message ~pp_action ppf = function
  | Deliver env -> Format.fprintf ppf "deliver %a" (Envelope.pp pp_message) env
  | Execute (n, a) ->
      Format.fprintf ppf "execute %a at %a" pp_action a Node_id.pp n
  | Crash n -> Format.fprintf ppf "crash-recover %a" Node_id.pp n

let pp ~pp_message ~pp_action ppf steps =
  List.iteri
    (fun i step ->
      Format.fprintf ppf "@[%3d. %a@]@." (i + 1)
        (pp_step ~pp_message ~pp_action)
        step)
    steps
