(* Role-permutation groups and orbit canonicalization.  See the mli
   for the soundness contract: groups built here are *candidates*;
   only [Lint.Symmetry]'s audits decide what the checkers may exploit. *)

type perm = int array

type kind = Id | Rot | Full

type group = {
  kind : kind;
  degree : int;
  elements : perm list;
  generators : perm list;
}

let identity n = Array.init n (fun i -> i)

let is_identity p =
  let ok = ref true in
  Array.iteri (fun i x -> if x <> i then ok := false) p;
  !ok

let compose p q = Array.init (Array.length p) (fun i -> p.(q.(i)))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let apply p (i : Node_id.t) : Node_id.t = p.(i)

let equal_perm (a : perm) (b : perm) = a = b

let pp_perm ppf p =
  Format.fprintf ppf "(%s)"
    (String.concat " "
       (Array.to_list (Array.map string_of_int p)))

let identity_group n =
  { kind = Id; degree = n; elements = [ identity n ]; generators = [] }

let rotation n k = Array.init n (fun i -> (i + k) mod n)

let rotations n =
  if n <= 1 then identity_group n
  else
    {
      kind = Rot;
      degree = n;
      elements = List.init n (rotation n);
      generators = [ rotation n 1 ];
    }

(* All of S_n by inserting element [n-1] into every permutation of
   [n-1]; eager, so cap the degree before the list explodes. *)
let all_perms n =
  let rec go k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest ->
          List.init k (fun pos ->
              let rec insert i = function
                | [] -> [ k - 1 ]
                | x :: xs ->
                    if i = 0 then (k - 1) :: x :: xs
                    else x :: insert (i - 1) xs
              in
              insert pos rest))
        (go (k - 1))
  in
  List.map Array.of_list (go n)

let transposition n i j =
  let p = identity n in
  p.(i) <- j;
  p.(j) <- i;
  p

let full n =
  if n > 8 then
    invalid_arg "Symmetry.full: degree > 8 (too many elements)"
  else if n <= 1 then identity_group n
  else
    {
      kind = Full;
      degree = n;
      elements = all_perms n;
      generators =
        (* adjacent transpositions generate S_n *)
        List.init (n - 1) (fun i -> transposition n i (i + 1));
    }

let is_trivial g = g.kind = Id || g.degree <= 1

let name g =
  if is_trivial g then "id"
  else match g.kind with Id -> "id" | Rot -> "rot" | Full -> "full"

let of_name s ~degree =
  match String.lowercase_ascii s with
  | "off" | "id" | "identity" -> Some (identity_group degree)
  | "rot" | "rotations" | "ring" -> Some (rotations degree)
  | "full" | "sym" -> Some (full degree)
  | _ -> None

let permute_slots p arr =
  let out = Array.make (Array.length arr) arr.(0) in
  Array.iteri (fun i x -> out.(p.(i)) <- x) arr;
  out

let compare_tuple a b =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = Fingerprint.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonical_tuple g fps =
  if is_trivial g || Array.length fps <= 1 then fps
  else
    match g.kind with
    | Full ->
        (* lex-least over all permutations = the sorted tuple *)
        let out = Array.copy fps in
        Array.sort Fingerprint.compare out;
        out
    | Id | Rot ->
        List.fold_left
          (fun best p ->
            let cand = permute_slots p fps in
            if compare_tuple cand best < 0 then cand else best)
          fps g.elements

let canonical_combo g fps =
  Fingerprint.combine (Array.to_list (canonical_tuple g fps))

type ('s, 'm) spec = {
  group : group;
  map_state : (Node_id.t -> Node_id.t) -> 's -> 's;
  map_message : (Node_id.t -> Node_id.t) -> 'm -> 'm;
}

let with_id_maps group =
  { group; map_state = (fun _ s -> s); map_message = (fun _ m -> m) }

let id_spec ~degree = with_id_maps (identity_group degree)

let permute_global spec p nodes envs =
  let rename = apply p in
  let nodes' =
    permute_slots p (Array.map (spec.map_state rename) nodes)
  in
  let envs' =
    List.map
      (fun (e : _ Envelope.t) ->
        {
          Envelope.src = rename e.Envelope.src;
          dst = rename e.Envelope.dst;
          payload = spec.map_message rename e.Envelope.payload;
        })
      envs
  in
  (nodes', envs')
