type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Copy maximal runs of characters that need no escaping in one
   [add_substring] instead of per-character closure calls — strings
   here are mostly hex fingerprints and handler labels, so the common
   case is a single full-length copy. *)
let escape_into b s =
  let n = String.length s in
  let flush_from start i =
    if i > start then Buffer.add_substring b s start (i - start)
  in
  let rec go start i =
    if i = n then flush_from start i
    else
      let c = String.unsafe_get s i in
      if c = '"' || c = '\\' || Char.code c < 0x20 then begin
        flush_from start i;
        (match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c)));
        go (i + 1) (i + 1)
      end
      else go start (i + 1)
  in
  go 0 0

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* [string_of_float] is the C-level converter; [Printf] with a
         float conversion runs the format interpreter and allocates an
         order of magnitude more, which matters because every sink
         event carries a float timestamp. *)
      if Float.is_integer f && Float.abs f < 1e15 then begin
        Buffer.add_string b (string_of_int (int_of_float f));
        Buffer.add_string b ".0"
      end
      else Buffer.add_string b (string_of_float f)
  | String s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          emit b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          emit b (String k);
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  emit b t;
  Buffer.contents b

let emit_into = emit

(* ----- parsing (recursive descent over the emitted subset) ----- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance p;
        true
    | _ -> false
  do
    ()
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> parse_error "expected %c at offset %d, got %c" c p.pos c'
  | None -> parse_error "expected %c at offset %d, got end of input" c p.pos

let literal p word value =
  if
    p.pos + String.length word <= String.length p.src
    && String.sub p.src p.pos (String.length word) = word
  then begin
    p.pos <- p.pos + String.length word;
    value
  end
  else parse_error "invalid literal at offset %d" p.pos

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> parse_error "invalid hex digit %c" c

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some '"' -> advance p; Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance p; Buffer.add_char b '\\'; loop ()
        | Some '/' -> advance p; Buffer.add_char b '/'; loop ()
        | Some 'n' -> advance p; Buffer.add_char b '\n'; loop ()
        | Some 'r' -> advance p; Buffer.add_char b '\r'; loop ()
        | Some 't' -> advance p; Buffer.add_char b '\t'; loop ()
        | Some 'b' -> advance p; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance p; Buffer.add_char b '\012'; loop ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then
              parse_error "truncated \\u escape";
            let code =
              (hex_digit p.src.[p.pos] lsl 12)
              lor (hex_digit p.src.[p.pos + 1] lsl 8)
              lor (hex_digit p.src.[p.pos + 2] lsl 4)
              lor hex_digit p.src.[p.pos + 3]
            in
            p.pos <- p.pos + 4;
            (* UTF-8 encode the BMP code point (we never emit
               surrogate pairs). *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
              Buffer.add_char b
                (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
            end;
            loop ()
        | _ -> parse_error "invalid escape at offset %d" p.pos)
    | Some c ->
        advance p;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_float = ref false in
  let continue () =
    match peek p with
    | Some ('0' .. '9' | '-' | '+') -> true
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        true
    | _ -> false
  in
  while continue () do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "invalid number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* out of [int] range: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> parse_error "invalid number %S" s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> String (parse_string p)
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else begin
        let items = ref [ parse_value p ] in
        skip_ws p;
        while peek p = Some ',' do
          advance p;
          items := parse_value p :: !items;
          skip_ws p
        done;
        expect p ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let field () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws p;
        while peek p = Some ',' do
          advance p;
          fields := field () :: !fields;
          skip_ws p
        done;
        expect p '}';
        Obj (List.rev !fields)
      end
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> parse_error "unexpected character %c at offset %d" c p.pos

let of_string s =
  let p = { src = s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error m -> Error m
