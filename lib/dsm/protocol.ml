exception Local_assert of string

module type S = sig
  val name : string
  val num_nodes : int

  type state
  type message
  type action

  val initial : Node_id.t -> state

  val handle_message :
    self:Node_id.t ->
    state ->
    message Envelope.t ->
    state * message Envelope.t list

  val enabled_actions : self:Node_id.t -> state -> action list

  val handle_action :
    self:Node_id.t -> state -> action -> state * message Envelope.t list

  val on_recover : self:Node_id.t -> state -> state

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
  val pp_action : Format.formatter -> action -> unit
end

(* Full persistence: the node restarts with exactly the state it
   crashed with.  Protocols without durable/volatile distinction bind
   [on_recover] to this. *)
let default_on_recover ~self:_ state = state

let initial_system (type s) (module P : S with type state = s) : s array =
  Array.init P.num_nodes (fun n -> P.initial (Node_id.of_int n))
