(** Protocol state machines (the system model of Fig. 5).

    Every node runs the same state machine, with two kinds of handlers:
    a message handler [H_M] executed in response to a network message,
    and an internal-action handler [H_A] executed in response to a
    node-local event such as a timer or an application call.  A handler
    maps [(state, event)] to [(state', sent messages)]; it never touches
    another node's state, which is the observation (section 3.1) that
    makes local model checking possible. *)

(** Raised by a handler to signal a node-local assertion failure.
    Section 4.2 ("Local assertions"): in the applications tested,
    asserts mostly exclude the receipt of unexpected messages, which
    LMC's conservative delivery can cause; LMC therefore discards the
    node state on which a local assert fires.  The global checker
    treats the transition as disabled. *)
exception Local_assert of string

module type S = sig
  val name : string

  (** Number of nodes in the configured instance; identifiers are
      [0 .. num_nodes - 1]. *)
  val num_nodes : int

  (** Node-local state.  Must be canonical pure data (see
      {!Fingerprint}): handlers must produce structurally identical
      states for logically equal ones. *)
  type state

  type message

  (** Internal node actions (timers, application calls). *)
  type action

  val initial : Node_id.t -> state

  (** [handle_message ~self s env] consumes [env] (addressed to [self])
      and yields the successor state plus messages to send.  May raise
      {!Local_assert}. *)
  val handle_message :
    self:Node_id.t ->
    state ->
    message Envelope.t ->
    state * message Envelope.t list

  (** Internal actions currently enabled at [self].  Enabledness is a
      function of the local state only (section 4.1). *)
  val enabled_actions : self:Node_id.t -> state -> action list

  (** May raise {!Local_assert}. *)
  val handle_action :
    self:Node_id.t -> state -> action -> state * message Envelope.t list

  (** Crash-recovery semantics: [on_recover ~self s] is the state the
      node restarts with after crashing in state [s] — i.e. whatever it
      reconstructs from its durable storage.  Must be deterministic and
      produce canonical states (the {!Fingerprint} contract applies
      like to any handler).  Most protocols keep everything ("full
      persistence") and bind this to {!default_on_recover}; fault
      injection ({!Sim.Live_sim}) and crash exploration (the checkers'
      crash budget) both call it. *)
  val on_recover : self:Node_id.t -> state -> state

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
  val pp_action : Format.formatter -> action -> unit
end

(** Identity recovery — full persistence, the default for protocols
    that model no volatile state. *)
val default_on_recover : self:Node_id.t -> 's -> 's

(** [initial_system (module P)] is the array of initial node states,
    indexed by node identifier. *)
val initial_system : (module S with type state = 's) -> 's array
