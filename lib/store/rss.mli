(** Resident-set sampling for the steady-state memory gauges.

    Reads [/proc/self/statm]; [None] where procfs is absent, so the
    gauges simply stay unset off Linux. *)

val sample_bytes : unit -> int option
