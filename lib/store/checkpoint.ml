type meta = {
  m_protocol : string;
  m_seed : int;
  m_live_time : float;
  m_checks : int;
  m_states : int;
  m_hits : int;
  m_found : bool;
  m_membership : bool array;
}

type t = {
  dir : string;
  combos : Fp_set.t;
  node_states : Fp_set.t array;
  iplus : Fp_set.t;
  events : Events.t;
  mutable meta : meta;
}

type error = Corrupt_checkpoint of string

let pp_error ppf (Corrupt_checkpoint why) =
  Format.fprintf ppf "corrupt checkpoint: %s" why

(* meta.bin: magic, MD5 of the payload, marshalled [meta] — the same
   torn-write discipline as [Sim.Snapshot]. *)
let meta_magic = "lmcckpt2"

let meta_file dir = Filename.concat dir "meta.bin"
let combos_file dir = Filename.concat dir "combos.fps"
let node_file dir i = Filename.concat dir (Printf.sprintf "node%d.fps" i)
let iplus_file dir = Filename.concat dir "iplus.fps"

let meta_to_string m =
  let payload = Marshal.to_string m [] in
  meta_magic ^ Digest.string payload ^ payload

let meta_of_string s =
  let mlen = String.length meta_magic in
  let hlen = mlen + 16 in
  if String.length s < hlen then Error (Corrupt_checkpoint "truncated meta")
  else if String.sub s 0 mlen <> meta_magic then
    Error (Corrupt_checkpoint "bad meta magic")
  else
    let digest = String.sub s mlen 16 in
    let payload = String.sub s hlen (String.length s - hlen) in
    if not (String.equal (Digest.string payload) digest) then
      Error (Corrupt_checkpoint "meta digest mismatch")
    else
      match (Marshal.from_string payload 0 : meta) with
      | m -> Ok m
      | exception _ -> Error (Corrupt_checkpoint "meta unmarshal failure")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s);
  Unix.rename tmp path

let wire_compaction events name set =
  Fp_set.on_compact set (fun ~old_capacity ~new_capacity ->
      Events.emit events ~ev:"compact"
        [
          ("file", Dsm.Json.String name);
          ("old_capacity", Dsm.Json.Int old_capacity);
          ("new_capacity", Dsm.Json.Int new_capacity);
        ])

let emit_open t ~resumed =
  Events.emit t.events ~ev:"open"
    [
      ("dir", Dsm.Json.String t.dir);
      ("resumed", Dsm.Json.Bool resumed);
      ("combos", Dsm.Json.Int (Fp_set.length t.combos));
    ]

let finish ~resumed t =
  wire_compaction t.events "combos.fps" t.combos;
  Array.iteri
    (fun i set ->
      wire_compaction t.events (Printf.sprintf "node%d.fps" i) set)
    t.node_states;
  wire_compaction t.events "iplus.fps" t.iplus;
  emit_open t ~resumed;
  t

let create ?(events = Events.null) ~dir ~protocol ~num_nodes ~seed () =
  mkdir_p dir;
  let meta =
    {
      m_protocol = protocol;
      m_seed = seed;
      m_live_time = 0.;
      m_checks = 0;
      m_states = 0;
      m_hits = 0;
      m_found = false;
      m_membership = Array.make num_nodes true;
    }
  in
  write_file_atomic (meta_file dir) (meta_to_string meta);
  finish ~resumed:false
    {
      dir;
      combos = Fp_set.create (combos_file dir);
      node_states =
        Array.init num_nodes (fun i -> Fp_set.create (node_file dir i));
      iplus = Fp_set.create (iplus_file dir);
      events;
      meta;
    }

let load ?(events = Events.null) ~dir ~protocol ~num_nodes ~seed () =
  let ( let* ) = Result.bind in
  let* raw =
    match read_file (meta_file dir) with
    | s -> Ok s
    | exception Sys_error why -> Error (Corrupt_checkpoint why)
  in
  let* meta = meta_of_string raw in
  let* () =
    if not (String.equal meta.m_protocol protocol) then
      Error
        (Corrupt_checkpoint
           (Printf.sprintf "protocol mismatch: checkpoint has %S, hunt is %S"
              meta.m_protocol protocol))
    else if meta.m_seed <> seed then
      Error
        (Corrupt_checkpoint
           (Printf.sprintf "seed mismatch: checkpoint has %d, hunt is %d"
              meta.m_seed seed))
    else if Array.length meta.m_membership <> num_nodes then
      Error
        (Corrupt_checkpoint
           (Printf.sprintf
              "membership width mismatch: checkpoint has %d slots, hunt has %d"
              (Array.length meta.m_membership)
              num_nodes))
    else Ok ()
  in
  let load_set path =
    Result.map_error
      (fun (Fp_set.Corrupt_store why) ->
        Corrupt_checkpoint (Filename.basename path ^ ": " ^ why))
      (Fp_set.load path)
  in
  let* combos = load_set (combos_file dir) in
  let* node_states =
    let rec go i acc =
      if i >= num_nodes then Ok (Array.of_list (List.rev acc))
      else
        match load_set (node_file dir i) with
        | Ok s -> go (i + 1) (s :: acc)
        | Error e ->
            List.iter Fp_set.close acc;
            Error e
    in
    match go 0 [] with
    | Ok sets -> Ok sets
    | Error e ->
        Fp_set.close combos;
        Error e
  in
  let* iplus =
    match load_set (iplus_file dir) with
    | Ok s -> Ok s
    | Error e ->
        Fp_set.close combos;
        Array.iter Fp_set.close node_states;
        Error e
  in
  Ok (finish ~resumed:true { dir; combos; node_states; iplus; events; meta })

let meta t = t.meta

let combos t = t.combos

let node_states t = t.node_states

let iplus t = t.iplus

let events t = t.events

let save ?membership t ~live_time ~checks ~states ~hits ~found =
  Fp_set.flush t.combos;
  Array.iter Fp_set.flush t.node_states;
  Fp_set.flush t.iplus;
  t.meta <-
    {
      t.meta with
      m_live_time = live_time;
      m_checks = checks;
      m_states = states;
      m_hits = hits;
      m_found = found;
      m_membership =
        (match membership with
        | None -> t.meta.m_membership
        | Some m -> Array.copy m);
    };
  write_file_atomic (meta_file t.dir) (meta_to_string t.meta);
  Events.emit t.events ~ev:"flush"
    [
      ("live_time", Dsm.Json.Float live_time);
      ("combos", Dsm.Json.Int (Fp_set.length t.combos));
      ( "node_states",
        Dsm.Json.Int
          (Array.fold_left
             (fun acc s -> acc + Fp_set.length s)
             0 t.node_states) );
      ("iplus", Dsm.Json.Int (Fp_set.length t.iplus));
      ("hits", Dsm.Json.Int hits);
    ]

let close t =
  Fp_set.close t.combos;
  Array.iter Fp_set.close t.node_states;
  Fp_set.close t.iplus
