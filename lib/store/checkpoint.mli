(** A checkpoint directory: everything an online hunt persists across
    process restarts.

    Layout (all files host-local, see {!Fp_set}):
    {ul
    {- [meta.bin] — checksummed run metadata ({!meta}): protocol,
       seed, live time reached, cumulative checks / system states /
       store hits, whether a violation was found.  Written to a
       temporary file and renamed, so a kill mid-save leaves the
       previous metadata intact.}
    {- [combos.fps] — fingerprints of system-state combinations whose
       invariant check came back clean.  An invariant verdict is a
       pure function of the combination, so a clean combination stays
       clean forever and warm restarts skip it outright: this set is
       what makes a resumed hunt explore strictly fewer states.}
    {- [node<i>.fps] — per-node LMC state-store fingerprints, the
       persistent image of each node's visited set.}
    {- [iplus.fps] — fingerprints of every message that ever entered
       [I+].}}

    Violating combinations deliberately never enter [combos.fps]: a
    preliminary violation rejected as unsound from one snapshot may be
    perfectly schedulable from a later one, so it must be re-examined
    on every restart.  Node and [I+] sets are bookkeeping for delta
    accounting (how much of a restart's exploration is genuinely new)
    — they never prune exploration, which soundness verification needs
    to rebuild in full from each snapshot's roots. *)

type t

type meta = {
  m_protocol : string;
  m_seed : int;
  m_live_time : float;  (** simulated live time the hunt had reached *)
  m_checks : int;  (** cumulative LMC restarts across all phases *)
  m_states : int;  (** cumulative system states created *)
  m_hits : int;  (** cumulative combination-store hits *)
  m_found : bool;  (** a sound violation had been reported *)
  m_membership : bool array;
      (** the fleet's membership map at the last save — under churn
          plans a resume must restore the same fleet it left *)
}

type error = Corrupt_checkpoint of string

val pp_error : Format.formatter -> error -> unit

(** [create ~dir ~protocol ~num_nodes ~seed ()] starts a cold
    checkpoint: the directory is created if missing and every store
    file is truncated fresh.  [events] (default {!Events.null})
    receives the [store.v1] stream; an ["open"] record is emitted
    here. *)
val create :
  ?events:Events.t ->
  dir:string ->
  protocol:string ->
  num_nodes:int ->
  seed:int ->
  unit ->
  t

(** [load ~dir ~protocol ~num_nodes ~seed ()] resumes from an existing
    checkpoint.  The metadata checksum, protocol name, node count and
    seed must all match — resuming a deterministic simulation under a
    different seed or protocol would silently check the wrong system,
    so any mismatch (and any truncated or bit-flipped file) is a typed
    {!error}; callers fall back to {!create}. *)
val load :
  ?events:Events.t ->
  dir:string ->
  protocol:string ->
  num_nodes:int ->
  seed:int ->
  unit ->
  (t, error) result

val meta : t -> meta

val combos : t -> Fp_set.t

val node_states : t -> Fp_set.t array

val iplus : t -> Fp_set.t

val events : t -> Events.t

(** Persist progress: flushes every store file and atomically replaces
    [meta.bin]; emits a ["flush"] record.  [membership] (default: keep
    the stored map) records the fleet at this save point. *)
val save :
  ?membership:bool array ->
  t ->
  live_time:float ->
  checks:int ->
  states:int ->
  hits:int ->
  found:bool ->
  unit

val close : t -> unit
