(* Mmap'd open-addressing set of 64-bit fingerprint keys.

   File layout (host byte order, all cells 8 bytes):

     cell 0      magic "store.v1"
     cell 1      capacity (slots, a power of two)
     cell 2      salt (reserved, 0)
     cell 3      advisory entry count (loading recounts)
     cells 4-5   MD5 of cells 0-2 (the immutable header prefix)
     cells 6-7   reserved, 0
     cells 8..   the slots; 0 = empty

   The checksum deliberately covers only the immutable prefix: the
   count cell is rewritten on every flush, and a crash between a slot
   store and a count store must not condemn the whole file.  Loading
   verifies the prefix and recounts the slots instead. *)

type slots = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  file : string;
  lock : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable slots : slots;  (* header cells included; slots at index 8+ *)
  mutable cap : int;
  mutable mask : int;
  mutable count : int;
  mutable grows : int;
  mutable grow_cb : (old_capacity:int -> new_capacity:int -> unit) option;
  mutable closed : bool;
}

type error = Corrupt_store of string

let pp_error ppf (Corrupt_store why) =
  Format.fprintf ppf "corrupt store: %s" why

let magic = "store.v1"
let header_cells = 8
let magic_cell = Bytes.get_int64_ne (Bytes.of_string magic) 0

(* Header prefix (cells 0-2) rendered to bytes for the checksum. *)
let header_digest ~cap ~salt =
  let b = Bytes.create 24 in
  Bytes.set_int64_ne b 0 magic_cell;
  Bytes.set_int64_ne b 8 (Int64.of_int cap);
  Bytes.set_int64_ne b 16 salt;
  Digest.bytes b

let digest_cells d =
  let b = Bytes.of_string d in
  (Bytes.get_int64_ne b 0, Bytes.get_int64_ne b 8)

let map_cells fd ncells =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.int64 Bigarray.c_layout true [| ncells |])

let round_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let write_header slots ~cap ~salt ~count =
  Bigarray.Array1.set slots 0 magic_cell;
  Bigarray.Array1.set slots 1 (Int64.of_int cap);
  Bigarray.Array1.set slots 2 salt;
  Bigarray.Array1.set slots 3 (Int64.of_int count);
  let lo, hi = digest_cells (header_digest ~cap ~salt) in
  Bigarray.Array1.set slots 4 lo;
  Bigarray.Array1.set slots 5 hi;
  Bigarray.Array1.set slots 6 0L;
  Bigarray.Array1.set slots 7 0L

let create_file path cap =
  let fd = Unix.openfile path [ O_RDWR; O_CREAT; O_TRUNC ] 0o644 in
  Unix.ftruncate fd ((header_cells + cap) * 8);
  let slots = map_cells fd (header_cells + cap) in
  write_header slots ~cap ~salt:0L ~count:0;
  (fd, slots)

let default_capacity = 65_536

let create ?(capacity = default_capacity) path =
  let cap = round_pow2 (max 1024 capacity) in
  let fd, slots = create_file path cap in
  {
    file = path;
    lock = Mutex.create ();
    fd;
    slots;
    cap;
    mask = cap - 1;
    count = 0;
    grows = 0;
    grow_cb = None;
    closed = false;
  }

let load path =
  match Unix.openfile path [ O_RDWR ] 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Corrupt_store (Printf.sprintf "cannot open %s: %s" path
                              (Unix.error_message e)))
  | fd -> (
      let fail why =
        Unix.close fd;
        Error (Corrupt_store why)
      in
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_cells * 8 then fail "truncated header"
      else if size mod 8 <> 0 then fail "ragged length"
      else
        match map_cells fd (size / 8) with
        | exception _ -> fail "unmappable file"
        | slots ->
            if not (Int64.equal (Bigarray.Array1.get slots 0) magic_cell)
            then fail "bad magic"
            else
              let cap = Int64.to_int (Bigarray.Array1.get slots 1) in
              if cap < 1 || cap land (cap - 1) <> 0 then
                fail "capacity not a power of two"
              else if size <> (header_cells + cap) * 8 then
                fail
                  (Printf.sprintf "truncated slots: %d bytes, want %d" size
                     ((header_cells + cap) * 8))
              else
                let salt = Bigarray.Array1.get slots 2 in
                let lo, hi = digest_cells (header_digest ~cap ~salt) in
                if
                  not
                    (Int64.equal lo (Bigarray.Array1.get slots 4)
                    && Int64.equal hi (Bigarray.Array1.get slots 5))
                then fail "header checksum mismatch"
                else begin
                  let count = ref 0 in
                  for i = header_cells to header_cells + cap - 1 do
                    if not (Int64.equal (Bigarray.Array1.get slots i) 0L)
                    then incr count
                  done;
                  Ok
                    {
                      file = path;
                      lock = Mutex.create ();
                      fd;
                      slots;
                      cap;
                      mask = cap - 1;
                      count = !count;
                      grows = 0;
                      grow_cb = None;
                      closed = false;
                    }
                end)

let path t = t.file

(* A fingerprint's on-disk key: XOR of the two 8-byte halves of the
   MD5.  Zero is the empty-slot sentinel, so the (astronomically rare)
   zero fold remaps to an arbitrary odd constant. *)
let key fp =
  if String.length fp <> Dsm.Fingerprint.size then
    invalid_arg "Fp_set.key: not a fingerprint";
  let b = Bytes.unsafe_of_string fp in
  let k = Int64.logxor (Bytes.get_int64_ne b 0) (Bytes.get_int64_ne b 8) in
  if Int64.equal k 0L then 0x9e3779b97f4a7c15L else k

let slot_index t k = Int64.to_int k land max_int land t.mask

(* Probe until the key or an empty slot; the [steps] bound terminates
   even on a (corrupt) full table. *)
let mem_key slots mask k =
  let rec go i steps =
    if steps > mask then false
    else
      let v = Bigarray.Array1.unsafe_get slots (header_cells + i) in
      if Int64.equal v 0L then false
      else if Int64.equal v k then true
      else go ((i + 1) land mask) (steps + 1)
  in
  go (Int64.to_int k land max_int land mask) 0

let mem t fp = mem_key t.slots t.mask (key fp)

let mem_batch t fps =
  let slots = t.slots and mask = t.mask in
  Array.map (fun fp -> mem_key slots mask (key fp)) fps

let probe t fp =
  let k = key fp in
  let rec go i steps =
    if steps > t.mask then None
    else
      let v = Bigarray.Array1.get t.slots (header_cells + i) in
      if Int64.equal v 0L then None
      else if Int64.equal v k then Some v
      else go ((i + 1) land t.mask) (steps + 1)
  in
  go (slot_index t k) 0

(* Callers hold [t.lock]. *)
let rec add_key_locked t k =
  if t.count >= t.cap - (t.cap / 8) then grow_locked t;
  let rec go i =
    let v = Bigarray.Array1.unsafe_get t.slots (header_cells + i) in
    if Int64.equal v 0L then begin
      Bigarray.Array1.unsafe_set t.slots (header_cells + i) k;
      t.count <- t.count + 1;
      true
    end
    else if Int64.equal v k then false
    else go ((i + 1) land t.mask)
  in
  go (slot_index t k)

(* Crash-safe growth: rehash into [file ^ ".grow"] at twice the
   capacity, then rename over the original.  A kill at any point
   leaves a valid store at [file] (old or new, never torn); the
   superseded mapping stays readable until this handle drops it. *)
and grow_locked t =
  let old_cap = t.cap in
  let cap = old_cap * 2 in
  let tmp = t.file ^ ".grow" in
  let fd, slots = create_file tmp cap in
  let mask = cap - 1 in
  let inserted = ref 0 in
  for i = header_cells to header_cells + old_cap - 1 do
    let v = Bigarray.Array1.get t.slots i in
    if not (Int64.equal v 0L) then begin
      let rec go j =
        let w = Bigarray.Array1.unsafe_get slots (header_cells + j) in
        if Int64.equal w 0L then begin
          Bigarray.Array1.unsafe_set slots (header_cells + j) v;
          incr inserted
        end
        else if not (Int64.equal w v) then go ((j + 1) land mask)
      in
      go (Int64.to_int v land max_int land mask)
    end
  done;
  Bigarray.Array1.set slots 3 (Int64.of_int !inserted);
  Unix.close t.fd;
  Unix.rename tmp t.file;
  t.fd <- fd;
  t.slots <- slots;
  t.cap <- cap;
  t.mask <- mask;
  t.count <- !inserted;
  t.grows <- t.grows + 1;
  match t.grow_cb with
  | Some cb -> cb ~old_capacity:old_cap ~new_capacity:cap
  | None -> ()

let add_key t k = Mutex.protect t.lock (fun () -> add_key_locked t k)

let add t fp = add_key t (key fp)

let add_batch t fps =
  Mutex.protect t.lock (fun () ->
      Array.map (fun fp -> add_key_locked t (key fp)) fps)

let length t = t.count

let capacity t = t.cap

let occupancy t = float_of_int t.count /. float_of_int t.cap

let compactions t = t.grows

let on_compact t cb = t.grow_cb <- Some cb

let flush t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then
        Bigarray.Array1.set t.slots 3 (Int64.of_int t.count))

let close t =
  flush t;
  Mutex.protect t.lock (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
