let schema = "store.v1"

type t = {
  sink : Obs.Sink.t option;
  mutable seq : int;
  clock0 : float;
}

let null = { sink = None; seq = 0; clock0 = 0. }

let of_sink sink = { sink = Some sink; seq = 0; clock0 = Unix.gettimeofday () }

let of_trace trace =
  match Obs.Trace.sink trace with Some s -> of_sink s | None -> null

let enabled t = t.sink <> None

let emit t ~ev fields =
  match t.sink with
  | None -> ()
  | Some sink ->
      let seq = t.seq in
      t.seq <- seq + 1;
      Obs.Sink.emit sink
        {
          Obs.Sink.ts = Unix.gettimeofday () -. t.clock0;
          name = "store";
          fields =
            ("schema", Dsm.Json.String schema)
            :: ("seq", Dsm.Json.Int seq)
            :: ("ev", Dsm.Json.String ev)
            :: fields;
        }
