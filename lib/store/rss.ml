(* statm counts pages; 4 KiB on every platform this runs on *)
let page_size = 4096

let sample_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match String.split_on_char ' ' (input_line ic) with
          | _size :: resident :: _ -> (
              match int_of_string_opt resident with
              | Some pages -> Some (pages * page_size)
              | None -> None)
          | _ -> None
          | exception End_of_file -> None)
