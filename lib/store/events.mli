(** The [store.v1] record stream.

    Checkpoint life-cycle events — open, resume, flush, compact — ride
    the same JSONL sinks as the flight recorder's [trace.v1] and the
    sanitizer's [lint.v1] records, carrying their own schema tag and
    their own strictly-increasing [seq] space so [bin/jsonl_check] can
    validate each stream independently however the lines interleave. *)

val schema : string

type t

val null : t

val of_sink : Obs.Sink.t -> t

(** Emit into the recorder's underlying sink; {!null} when the trace
    is disabled or buffers in ring mode (see {!Obs.Trace.sink}). *)
val of_trace : Obs.Trace.t -> t

val enabled : t -> bool

val emit : t -> ev:string -> (string * Dsm.Json.t) list -> unit
