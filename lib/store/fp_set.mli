(** Disk-backed visited set: an mmap'd open-addressing hash table over
    64-bit fingerprints.

    The table is one file — a versioned, checksummed 64-byte header
    ([store.v1]) followed by [capacity] 8-byte slots — mapped into
    memory with [Unix.map_file], so lookups are loads, inserts are
    stores, and the working set is bounded by the page cache rather
    than the OCaml heap.  A slot value of [0] means empty; 16-byte
    state fingerprints fold to a non-zero 64-bit key ({!key}).

    Growth is crash-safe by construction: when the load factor passes
    7/8 the table is rehashed into [path ^ ".grow"] at twice the
    capacity and renamed over the original, so a kill mid-growth
    leaves either the old or the new file, never a torn one.  Inserts
    themselves are single aligned 8-byte stores; a process killed
    between inserts loses at most the entries the kernel had not yet
    seen, and a visited set missing entries is always safe — the work
    is merely re-done.

    Concurrency follows the {!Par.Shard_tbl} discipline of the
    parallel checkers: {!mem} / {!mem_batch} are lock-free and may run
    from worker domains concurrently with the sequential apply path;
    {!add} / {!add_batch} serialise behind an internal mutex and must
    be called from the sequential apply path only, so the store's
    contents evolve in submission order and verdicts stay bit-identical
    at any domain count.

    The header and slots are written in host byte order: store files
    are a single-host resume format, not a portable interchange one. *)

type t

type error = Corrupt_store of string

val pp_error : Format.formatter -> error -> unit

(** [create ?capacity path] makes a fresh (empty) store file at
    [path], truncating any existing one.  [capacity] (default 65536)
    is rounded up to a power of two. *)
val create : ?capacity:int -> string -> t

(** [load path] maps an existing store file, verifying length, magic,
    capacity and the header checksum before trusting a single slot.
    Any mismatch — including a file truncated by a crash — is a typed
    {!error}, never an exception or a garbage table. *)
val load : string -> (t, error) result

val path : t -> string

(** [key fp] is the non-zero 64-bit on-disk folding of a 16-byte
    fingerprint (XOR of its two halves).  Exposed so the lint audit
    can verify that what {!add} wrote is bit-identical to what the
    folding says it should have written. *)
val key : Dsm.Fingerprint.t -> int64

(** Raw slot content reached by probing for [fp]: [Some k] when a
    matching or colliding entry terminates the probe, [None] when the
    probe hits an empty slot.  Audit/debug use. *)
val probe : t -> Dsm.Fingerprint.t -> int64 option

(** Insert a raw 64-bit key, bypassing {!key}.  This is the audit and
    test hook behind the lint sanitizer's digest-drift fixture; real
    callers use {!add}. *)
val add_key : t -> int64 -> bool

val mem : t -> Dsm.Fingerprint.t -> bool

(** [add t fp] inserts and returns [true] iff [fp] was absent. *)
val add : t -> Dsm.Fingerprint.t -> bool

(** Batched forms: one lock acquisition ({!add_batch}) / one bounds
    setup ({!mem_batch}) for the whole array, in array order. *)
val mem_batch : t -> Dsm.Fingerprint.t array -> bool array

val add_batch : t -> Dsm.Fingerprint.t array -> bool array

val length : t -> int

val capacity : t -> int

(** [length / capacity], in [0, 1). *)
val occupancy : t -> float

(** Number of crash-safe growth rounds this handle has performed. *)
val compactions : t -> int

(** Called after each growth round with the old and new slot counts;
    the checkpoint layer turns this into a [store.v1] "compact"
    record. *)
val on_compact : t -> (old_capacity:int -> new_capacity:int -> unit) -> unit

(** Persist the advisory header count.  Slot writes themselves go
    through the shared mapping and reach the page cache immediately;
    [flush] exists so a clean shutdown leaves the header's count in
    sync for tooling (loading always recounts). *)
val flush : t -> unit

val close : t -> unit
