(** Striped (sharded) hash table, safe for concurrent use from many
    domains.

    Keys are spread over a power-of-two number of independent shards,
    each a plain [Hashtbl] behind its own mutex, so domains touching
    different shards never contend.  This is the visited-set /
    digest-store substrate for parallel exploration: the common
    operation is {!add_if_absent}, one lock acquisition per call.

    Iteration order is unspecified; the table is not meant for ordered
    traversal (deterministic merges happen outside, in submission
    order).

    Like {!Deque}, the implementation is a functor over its
    synchronisation primitive ({!Make}) so the interleaving checker
    can interpose on lock operations; the default instantiation is
    [Make (Primitives.Native)]. *)

module type S = sig
  type ('k, 'v) t

  val create : ?shards:int -> int -> ('k, 'v) t
  (** [create n] makes an empty table sized for roughly [n] bindings.
      [shards] (default 64) is rounded up to a power of two. *)

  val find_opt : ('k, 'v) t -> 'k -> 'v option
  val mem : ('k, 'v) t -> 'k -> bool

  val replace : ('k, 'v) t -> 'k -> 'v -> unit
  (** Insert or overwrite. *)

  val add_if_absent : ('k, 'v) t -> 'k -> 'v -> bool
  (** [add_if_absent t k v] binds [k -> v] and returns [true] iff [k]
      was absent; a single atomic check-and-insert under the shard
      lock. *)

  val length : ('k, 'v) t -> int
  (** Total bindings across shards (takes every shard lock). *)

  val clear : ('k, 'v) t -> unit

  val shard_count : ('k, 'v) t -> int
end

module Make (_ : Primitives.S) : S

include S
