(* Fixed domain pool, work-stealing batches, deterministic tabulate.
 *
 * Life of a batch: the submitter publishes it (under the mutex, with
 * an epoch bump and a broadcast), then participates like any worker.
 * Each participant claims a static slice of the index range, splits
 * it binary-recursively into its own deque — exposing the upper
 * halves to thieves — and when its slice is gone, scans peers'
 * deques for spans to steal.  The batch ends when the completed
 * count reaches [total]; workers then block on the condition
 * variable until the next epoch.
 *
 * On an oversubscribed machine (fewer cores than domains) a spinning
 * thief would starve the domain actually holding the work, so the
 * steal loop backs off into [Unix.sleepf] after repeated misses —
 * [Domain.cpu_relax] alone never yields the OS thread. *)

type batch = {
  total : int;
  chunk : int;
  compute : int -> unit;
  completed : int Atomic.t;
  failed : exn option Atomic.t;
}

type t = {
  size : int;
  deques : (int * int) Deque.t array;  (* one per participant *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable batch : batch option;  (* written under [mutex] *)
  mutable epoch : int;  (* bumped under [mutex] per batch *)
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  scope : Obs.scope;
  c_batches : Obs.Metrics.counter;
  c_tasks : Obs.Metrics.counter array;  (* items computed, per domain *)
  c_steals : Obs.Metrics.counter array;  (* successful steals, per domain *)
  g_qdepth : Obs.Metrics.gauge array;  (* deque depth after push/pop *)
}

let domains t = t.size

let note_depth pool p =
  Obs.Metrics.set pool.g_qdepth.(p)
    (float_of_int (Deque.length pool.deques.(p)))

let rec process_span pool b p lo hi =
  if hi - lo <= b.chunk then begin
    (match Atomic.get b.failed with
    | Some _ -> ()  (* drain mode: count indices, skip compute *)
    | None -> (
        try
          for i = lo to hi - 1 do
            b.compute i
          done
        with e -> ignore (Atomic.compare_and_set b.failed None (Some e))));
    ignore (Atomic.fetch_and_add b.completed (hi - lo));
    Obs.Metrics.add pool.c_tasks.(p) (hi - lo)
  end
  else begin
    let mid = (lo + hi) / 2 in
    Deque.push pool.deques.(p) (mid, hi);
    note_depth pool p;
    process_span pool b p lo mid;
    match Deque.pop pool.deques.(p) with
    | Some (lo', hi') ->
        note_depth pool p;
        process_span pool b p lo' hi'
    | None -> ()  (* a thief got there first *)
  end

let participate pool b p =
  let lo = p * b.total / pool.size and hi = (p + 1) * b.total / pool.size in
  if hi > lo then process_span pool b p lo hi;
  (* Own slice exhausted: steal until the whole batch is done. *)
  let misses = ref 0 in
  while Atomic.get b.completed < b.total do
    let stolen = ref None in
    let k = ref 1 in
    while !stolen = None && !k < pool.size do
      let victim = (p + !k) mod pool.size in
      (match Deque.steal pool.deques.(victim) with
      | Some span ->
          stolen := Some span;
          Obs.Metrics.incr pool.c_steals.(p)
      | None -> ());
      incr k
    done;
    match !stolen with
    | Some (lo, hi) ->
        misses := 0;
        process_span pool b p lo hi
    | None ->
        incr misses;
        (* Every 32 misses, yield the OS thread: essential when the
           pool is wider than the machine. *)
        if !misses land 31 = 0 then Unix.sleepf 5e-5 else Domain.cpu_relax ()
  done

let worker pool p =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.closed) && pool.epoch = !seen do
      Condition.wait pool.cond pool.mutex
    done;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let b = pool.batch in
      Mutex.unlock pool.mutex;
      match b with Some b -> participate pool b p | None -> ()
    end
  done

let create ?(obs = Obs.null) size =
  if size < 1 then invalid_arg "Par.Pool.create: need >= 1 domain";
  let pool =
    {
      size;
      deques = Array.init size (fun _ -> Deque.create ());
      mutex = Mutex.create ();
      cond = Condition.create ();
      batch = None;
      epoch = 0;
      closed = false;
      workers = [];
      scope = obs;
      c_batches = Obs.counter obs "par.batches";
      c_tasks =
        Array.init size (fun p -> Obs.counter obs (Printf.sprintf "par.tasks.d%d" p));
      c_steals =
        Array.init size (fun p ->
            Obs.counter obs (Printf.sprintf "par.steals.d%d" p));
      g_qdepth =
        Array.init size (fun p ->
            Obs.gauge obs (Printf.sprintf "par.qdepth.d%d" p));
    }
  in
  pool.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  Obs.event obs "par.pool.start" ~fields:[ ("domains", Dsm.Json.Int size) ];
  pool

let run pool ?(chunk = 16) ~total compute =
  if total > 0 then
    if pool.size = 1 || total <= chunk then
      for i = 0 to total - 1 do
        compute i
      done
    else begin
      let b =
        {
          total;
          chunk;
          compute;
          completed = Atomic.make 0;
          failed = Atomic.make None;
        }
      in
      Mutex.lock pool.mutex;
      pool.batch <- Some b;
      pool.epoch <- pool.epoch + 1;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex;
      Obs.Metrics.incr pool.c_batches;
      participate pool b 0;
      match Atomic.get b.failed with Some e -> raise e | None -> ()
    end

let tabulate pool ?chunk n f =
  if n <= 0 then [||]
  else begin
    let r0 = f 0 in
    let out = Array.make n r0 in
    run pool ?chunk ~total:(n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let first = not pool.closed in
  pool.closed <- true;
  if first then Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  if first then begin
    List.iter Domain.join pool.workers;
    Obs.event pool.scope "par.pool.stop"
      ~fields:[ ("domains", Dsm.Json.Int pool.size) ]
  end

let with_pool ?obs size f =
  let pool = create ?obs size in
  Fun.protect
    ~finally:(fun () -> shutdown pool)
    (fun () ->
      Obs.span pool.scope "par.pool"
        ~fields:[ ("domains", Dsm.Json.Int size) ]
        (fun () -> f pool))
