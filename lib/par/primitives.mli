(** The atomic primitives [Deque] and [Shard_tbl] are built from.

    Both data structures are functors over this signature so that a
    model checker (see [Lint.Interleave]) can interpose on every
    shared-memory operation — each [Atomic] access and each mutex
    acquisition becomes a scheduling point — while production code
    instantiates {!Native}, the stdlib primitives, with no behavioural
    change. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  (** Physical-equality compare-and-set, like [Stdlib.Atomic]. *)
  val compare_and_set : 'a t -> 'a -> 'a -> bool

  val fetch_and_add : int t -> int -> int
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit

  (** [protect m f] runs [f] with [m] held, releasing on any exit. *)
  val protect : t -> (unit -> 'a) -> 'a
end

module type S = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
end

(** The stdlib primitives ([Stdlib.Atomic], [Stdlib.Mutex]). *)
module Native : S
