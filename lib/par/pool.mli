(** Fixed pool of domains executing index-range batches with
    work-stealing, plus a deterministic fork/join map.

    A pool of [d] domains comprises the calling domain and [d - 1]
    spawned workers.  Work is submitted as a batch of [total] indices;
    each participant takes a static slice, splits it recursively into
    its own Chase–Lev deque ({!Deque}), and steals from peers when its
    slice runs dry.  Between batches workers block on a condition
    variable — an idle pool costs nothing.

    Determinism contract: {!tabulate} evaluates [f i] for every index
    (in some interleaved order, on some domain) but returns results
    placed by index — so as long as [f] is pure with respect to the
    observable state, callers that {e apply} results in index order
    behave bit-identically to a sequential loop.  This is the
    compute-parallel / apply-sequential discipline every checker
    integration follows.

    Exceptions raised by [f] are caught on the worker, the batch is
    drained, and the first exception (by detection order) is re-raised
    on the submitting domain. *)

type t

val create : ?obs:Obs.scope -> int -> t
(** [create d] spawns [d - 1] worker domains.  [d] must be >= 1;
    [d = 1] yields a degenerate pool whose batches run inline on the
    caller.  [obs] receives per-domain task/steal counters
    ([par.tasks.d<i>], [par.steals.d<i>]), queue-depth gauges
    ([par.qdepth.d<i>]) and batch span events ([par.batch]). *)

val domains : t -> int
(** The configured size [d] (including the submitting domain). *)

val run : t -> ?chunk:int -> total:int -> (int -> unit) -> unit
(** [run pool ~total f] executes [f i] for [0 <= i < total] across the
    pool and returns when all have completed.  [chunk] (default 16)
    is the grain below which a span executes without further
    splitting.  Must be called from the domain that created the pool;
    batches do not nest. *)

val tabulate : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [tabulate pool n f] is [Array.init n f] evaluated across the
    pool, deterministic by placement (slot [i] always holds [f i]).
    [n = 0] returns [[||]]. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?obs:Obs.scope -> int -> (t -> 'a) -> 'a
(** [with_pool d f] is [f (create d)] with a guaranteed
    {!shutdown}. *)
