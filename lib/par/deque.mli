(** Chase–Lev work-stealing deque.

    One domain — the {e owner} — pushes and pops at the bottom;
    any other domain may {!steal} from the top.  Owner operations
    are cheap (no CAS on the fast path for [push]); thieves
    synchronise with a single compare-and-set on the top index.

    The buffer grows geometrically and never shrinks; slots are
    individual [Atomic.t] cells so that a thief racing a grow reads
    either the old or the new value of a slot, never a torn one —
    staleness is then caught by the CAS on the monotonically
    increasing top index.

    The implementation is parameterised over its atomic primitives
    ({!Make}) so the interleaving checker in [lib/lint] can interpose
    on every shared access; the default instantiation below is
    [Make (Primitives.Native)] and is what [Pool] uses. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [create ()] makes an empty deque.  [capacity] (default 64) is
      rounded up to a power of two. *)

  val push : 'a t -> 'a -> unit
  (** Owner only.  Add at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only.  Remove the most recently pushed element (LIFO),
      or [None] if the deque is empty. *)

  val steal : 'a t -> 'a option
  (** Any domain.  Remove the oldest element (FIFO), or [None] if the
      deque is empty or the steal lost a race (callers should treat
      [None] as "try elsewhere", not "definitely empty"). *)

  val length : 'a t -> int
  (** Snapshot of the number of elements; racy but never negative. *)
end

module Make (_ : Primitives.S) : S

include S
