type ('k, 'v) shard = { lock : Mutex.t; tbl : ('k, 'v) Hashtbl.t }

type ('k, 'v) t = { shards : ('k, 'v) shard array; mask : int }

let create ?(shards = 64) n =
  let count =
    let c = ref 1 in
    while !c < max 1 shards do
      c := !c * 2
    done;
    !c
  in
  let per = max 16 (n / count) in
  {
    shards =
      Array.init count (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create per });
    mask = count - 1;
  }

let shard t k = t.shards.(Hashtbl.hash k land t.mask)

let[@inline] locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) (fun () -> f s.tbl)

let find_opt t k = locked (shard t k) (fun tbl -> Hashtbl.find_opt tbl k)
let mem t k = locked (shard t k) (fun tbl -> Hashtbl.mem tbl k)
let replace t k v = locked (shard t k) (fun tbl -> Hashtbl.replace tbl k v)

let add_if_absent t k v =
  locked (shard t k) (fun tbl ->
      if Hashtbl.mem tbl k then false
      else begin
        Hashtbl.add tbl k v;
        true
      end)

let length t =
  Array.fold_left (fun acc s -> acc + locked s Hashtbl.length) 0 t.shards

let clear t = Array.iter (fun s -> locked s Hashtbl.reset) t.shards

let shard_count t = t.mask + 1
