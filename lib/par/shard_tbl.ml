(* Lock-striped hash table, functorised over the mutex primitive so
   the interleaving checker in lib/lint can interpose on every lock
   acquisition; the exported Shard_tbl is Make (Primitives.Native). *)

module type S = sig
  type ('k, 'v) t

  val create : ?shards:int -> int -> ('k, 'v) t
  val find_opt : ('k, 'v) t -> 'k -> 'v option
  val mem : ('k, 'v) t -> 'k -> bool
  val replace : ('k, 'v) t -> 'k -> 'v -> unit
  val add_if_absent : ('k, 'v) t -> 'k -> 'v -> bool
  val length : ('k, 'v) t -> int
  val clear : ('k, 'v) t -> unit
  val shard_count : ('k, 'v) t -> int
end

module Make (P : Primitives.S) = struct
  module Mutex = P.Mutex

  type ('k, 'v) shard = { lock : Mutex.t; tbl : ('k, 'v) Hashtbl.t }

  type ('k, 'v) t = { shards : ('k, 'v) shard array; mask : int }

  let create ?(shards = 64) n =
    let count =
      let c = ref 1 in
      while !c < max 1 shards do
        c := !c * 2
      done;
      !c
    in
    let per = max 16 (n / count) in
    {
      shards =
        Array.init count (fun _ ->
            { lock = Mutex.create (); tbl = Hashtbl.create per });
      mask = count - 1;
    }

  let shard t k = t.shards.(Hashtbl.hash k land t.mask)

  let[@inline] locked s f = Mutex.protect s.lock (fun () -> f s.tbl)

  let find_opt t k = locked (shard t k) (fun tbl -> Hashtbl.find_opt tbl k)
  let mem t k = locked (shard t k) (fun tbl -> Hashtbl.mem tbl k)
  let replace t k v = locked (shard t k) (fun tbl -> Hashtbl.replace tbl k v)

  let add_if_absent t k v =
    locked (shard t k) (fun tbl ->
        if Hashtbl.mem tbl k then false
        else begin
          Hashtbl.add tbl k v;
          true
        end)

  let length t =
    Array.fold_left (fun acc s -> acc + locked s Hashtbl.length) 0 t.shards

  let clear t = Array.iter (fun s -> locked s Hashtbl.reset) t.shards

  let shard_count t = t.mask + 1
end

include Make (Primitives.Native)
