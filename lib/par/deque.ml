(* Chase–Lev deque on OCaml 5 atomics.
 *
 * Indices [top] and [bottom] grow without bound; the live window is
 * [top, bottom).  The owner manipulates [bottom]; thieves advance
 * [top] by CAS.  Slots are ['a option Atomic.t] cells rather than a
 * plain array: the OCaml memory model would otherwise let a thief
 * racing [grow] observe an unspecified (though untorn) value.  With
 * atomic cells a thief reads either the old or the new contents of a
 * slot, and the subsequent CAS on the monotonic [top] index rejects
 * any stale read.
 *
 * [grow] copies into a fresh array of fresh atomics; the old array is
 * never written again, so thieves still holding it see a consistent
 * (frozen) snapshot whose entries their CAS will validate.
 *
 * The implementation is a functor over its atomic primitives so that
 * [Lint.Interleave] can interpose a scheduling point on every shared
 * access and exhaustively check small concurrent histories; the
 * exported [Deque] is [Make (Primitives.Native)]. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val length : 'a t -> int
end

module Make (P : Primitives.S) = struct
  module Atomic = P.Atomic

  type 'a t = {
    mutable buf : 'a option Atomic.t array;  (* owner writes; thieves read *)
    top : int Atomic.t;
    bottom : int Atomic.t;
  }

  let create ?(capacity = 64) () =
    let cap = max 2 capacity in
    let cap =
      let c = ref 2 in
      while !c < cap do
        c := !c * 2
      done;
      !c
    in
    {
      buf = Array.init cap (fun _ -> Atomic.make None);
      top = Atomic.make 0;
      bottom = Atomic.make 0;
    }

  let slot buf i = buf.(i land (Array.length buf - 1))

  let grow q b t =
    let old = q.buf in
    let n = Array.length old in
    let buf = Array.init (2 * n) (fun _ -> Atomic.make None) in
    for i = t to b - 1 do
      Atomic.set (slot buf i) (Atomic.get (slot old i))
    done;
    q.buf <- buf

  let push q v =
    let b = Atomic.get q.bottom in
    let t = Atomic.get q.top in
    if b - t >= Array.length q.buf - 1 then grow q b t;
    Atomic.set (slot q.buf b) (Some v);
    Atomic.set q.bottom (b + 1)

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* Empty: restore bottom. *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let cell = slot q.buf b in
      let v = Atomic.get cell in
      if b > t then begin
        (* More than one element: no thief can reach index b. *)
        Atomic.set cell None;
        v
      end
      else begin
        (* Last element: race thieves for it via the top index. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          Atomic.set cell None;
          v
        end
        else None
      end
    end

  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if b <= t then None
    else begin
      let v = Atomic.get (slot q.buf t) in
      if Atomic.compare_and_set q.top t (t + 1) then v else None
    end

  let length q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    max 0 (b - t)
end

include Make (Primitives.Native)
