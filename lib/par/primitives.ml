module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val protect : t -> (unit -> 'a) -> 'a
end

module type S = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
end

module Native : S = struct
  module Atomic = Stdlib.Atomic

  module Mutex = struct
    include Stdlib.Mutex

    let protect m f =
      lock m;
      Fun.protect ~finally:(fun () -> unlock m) f
  end
end
