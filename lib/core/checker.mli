(** The local model checker (LMC) — the paper's contribution (§4).

    Instead of global states, LMC keeps one store of traversed states
    {e per node} ([LS_n]) and a single shared network [I+] holding
    every message generated during checking; delivered messages are
    never removed (the monotonic-network abstraction, Fig. 8), so each
    message is eventually applied to every traversed state of its
    destination, which preserves completeness.

    System states exist only transiently: after each new node state,
    Cartesian combinations with the other nodes' stores are built just
    to evaluate the user invariant ([checkSystemInvariant], Fig. 9).
    A combination that violates the invariant is only a {e preliminary}
    violation — it may be unreachable — and is confirmed by
    {!Soundness} before being reported.

    Two system-state creation strategies mirror the paper's variants:
    {ul
    {- [General] (LMC-GEN): the full product of the stores;}
    {- [Invariant_specific] (LMC-OPT): node states are mapped through a
       user abstraction (for Paxos: the values chosen so far) and
       combinations are built only when two node states conflict under
       that abstraction; states that map to [None] are never combined
       at all.}} *)

(** Cross-restart persistence, built from {!Store.Checkpoint} stores.
    Not parameterised by the protocol, so the online supervisor builds
    it once and threads it through every [Make(P)] restart. *)
type persist = {
  p_combos : Store.Fp_set.t;
      (** combinations whose invariant check came back clean; an
          invariant verdict is a pure function of the combination, so a
          clean combination stays clean and warm restarts skip it *)
  p_nodes : Store.Fp_set.t array;
      (** per-node visited node-state fingerprints, across restarts *)
  p_iplus : Store.Fp_set.t;
      (** every message that ever entered [I+] *)
}

module Make (P : Dsm.Protocol.S) : sig
  (** How system states are created for invariant checking. *)
  type 'k strategy =
    | General
    | Invariant_specific of {
        abstract : P.state -> 'k option;
            (** [None] means the state can never contribute to a
                violation and is skipped entirely *)
        conflict : 'k -> 'k -> bool;
            (** whether two abstractions can violate the invariant
                together *)
      }
    | Automatic
        (** derive the pruning from the invariant's shape — the paper's
            future-work idea made concrete.  Invariants built with
            {!Dsm.Invariant.for_all_pairs} only seed combinations
            containing a violating pair; {!Dsm.Invariant.for_all_nodes}
            ones only when the new node state itself violates; anything
            else falls back to [General]. *)

  type config = {
    max_depth : int option;
        (** bound on the number of events of a system state (the sum
            of its node states' path depths); per-node path depths are
            bounded by the same value *)
    time_limit : float option;  (** wall-clock seconds *)
    max_transitions : int option;
    local_action_bound : int option;
        (** max internal actions per node along a path (§4.2 "Local
            events") *)
    crash_budget : int;
        (** crash-recovery events explored per node path.  A crash is a
            local event that rewrites the node state through
            {!Dsm.Protocol.S.on_recover} — it requires no message and
            produces none, so soundness schedules it like any other
            history entry.  [0] (the default) skips the crash pass
            entirely and reproduces the crash-free state graph
            bit-for-bit. *)
    create_system_states : bool;
        (** disable for the LMC-explore configuration of Fig. 13 *)
    verify_soundness : bool;
        (** disable for the LMC-system-state configuration of Fig. 13;
            preliminary violations are then counted but not reported *)
    use_history : bool;
        (** per-state message history suppressing redundant
            re-deliveries (§4.2 "Duplicate messages"); off only for
            ablations *)
    stop_on_violation : bool;
    max_paths_per_entry : int;
        (** cap on event sequences enumerated per node state during
            soundness verification *)
    max_sequence_combos : int;
        (** cap on sequence combinations per soundness invocation *)
    soundness_budget : int;  (** backtracking budget per sequence set *)
    max_preds_per_entry : int;
        (** cap on predecessor pointers kept per node state; with the
            history simplification, the soundness budget and this cap,
            the only sources of incompleteness are explicit and
            configurable *)
    reverify_rejected : bool;
        (** cache soundness-rejected violations and re-verify them after
            exploration settles, when later-added predecessor pointers
            may have made them schedulable (§4.2's suggested remedy) *)
    max_rejected_cache : int;  (** size bound on that cache *)
    soundness_via_sequences : bool;
        (** use the paper's explicit sequence-combination enumeration
            instead of the default DAG-product search; kept for
            ablation — the enumeration samples an exponential path
            space under [max_paths_per_entry]/[max_sequence_combos]
            and can miss the one schedulable combination *)
    defer_soundness : bool;
        (** postpone all soundness verification to a single pass after
            exploration settles — the decoupling the paper's third
            contribution highlights.  Deferred checks see the final
            predecessor DAGs (strictly more complete than inline
            checking) and can be parallelised via [verify_domains].
            Trade-off: no early stop on the first confirmed bug. *)
    verify_domains : int;
        (** worker domains for the deferred/re-verification pass
            ("the model checking process can be embarrassingly
            parallelized"); 1 = serial.  Only the DAG soundness mode
            parallelises. *)
    domains : int;
        (** worker domains for {e exploration}: per-message and
            per-node compute batches (handler executions,
            fingerprints) and combination invariant checks fan out
            over a {!Par.Pool}; results are applied in submission
            order, so any domain count produces bit-identical results
            — verdicts, counters, witness traces — to [domains = 1].
            Requires handlers, [enabled_actions] and the invariant to
            be pure.  Independent of [verify_domains] (the
            verification fan-out).  1 = the unchanged sequential
            path. *)
    pool : Par.Pool.t option;
        (** run exploration on a caller-owned pool instead of
            spawning one per run — {!Online.Online_mc} shares a pool
            across its budgeted restarts this way.  The pool is
            borrowed, never shut down; when set it overrides
            [domains]. *)
    obs : Obs.scope;
        (** observability scope.  Counters mirroring every [result]
            tally ([lmc.transitions], [lmc.node_states],
            [lmc.soundness_calls], ...) are always recorded —
            single atomic increments, safe under [verify_domains > 1];
            structured events ([lmc.node_state],
            [lmc.preliminary_violation], [lmc.sound_violation],
            [lmc.round] / [lmc.reverify] spans) flow to the scope's
            sinks, and a periodic ["progress"] heartbeat reports
            explored states / |I+| / preliminary violations during
            long runs.  Defaults to {!Obs.null} (no sinks, throwaway
            registry). *)
    trace : Obs.Trace.t;
        (** flight recorder.  When enabled, every explored transition
            is logged as a causal [trace.v1] record (acting node,
            handler label, consumed/produced message fingerprints with
            I+ provenance, state fingerprints before/after, depth),
            together with the soundness search's own records
            (preliminary violations, per-call verdicts, rejections and
            why), fully replayable violation witnesses, and per-phase
            time attribution.  Records are emitted only on the
            sequential apply path, so the stream's fingerprints are
            bit-identical for any [domains] /​ [verify_domains] value.
            Defaults to {!Obs.Trace.null} (disabled; the hot loops pay
            one branch). *)
    on_new_node_state : (Dsm.Node_id.t -> P.state -> unit) option;
        (** @deprecated superseded by the [obs] event stream: the
            callback is kept working but is now just one more
            subscriber of the [lmc.node_state] notification (fired
            once per newly visited node state).  New code should
            attach an {!Obs.Sink} instead. *)
    persist : persist option;
        (** disk-backed stores shared across restarts ({!persist}).
            When set, every combination consults the on-disk set of
            proven-clean combinations before a system state is created;
            clean verdicts are recorded back.  Skips and inserts happen
            on the sequential apply path only, so verdicts and traces
            stay bit-identical at any [domains] value.  Violating
            combinations are never stored: soundness depends on the
            snapshot, so they must be re-judged on every restart.
            Default [None]. *)
    symmetry : Dsm.Symmetry.group;
        (** audited role-permutation group for combination orbit
            deduplication.  A combination whose slot-permuted
            fingerprint tuple canonicalizes to one already proven
            invariant-clean is skipped without re-evaluating the
            invariant.  {b Sound iff the invariant is slot-symmetric
            under the group} (its verdict does not depend on which node
            holds which state) — audit with [Lint.Symmetry] before
            passing anything but the identity group.  Only clean
            verdicts are orbit-shared, so the first violating
            combination in enumeration order — and hence the verdict,
            witness and preliminary-violation count — is bit-identical
            to an unreduced run.  Orbit bookkeeping happens on the
            sequential apply path only, so results also stay
            bit-identical at any [domains] value.  With
            [config.persist], the persisted key becomes the canonical
            (orbit-representative) fingerprint — itself the raw
            fingerprint of a real combination, so stores interoperate
            between reduced and unreduced runs (mismatched lookups can
            only re-check, never skip unsoundly).  Default: the
            identity group (no reduction). *)
  }

  val default_config : config

  type violation = {
    system : P.state array;  (** the violating system state *)
    violation : Dsm.Invariant.violation;
    schedule : (P.message, P.action) Dsm.Trace.t;
        (** a witness total order of events from the snapshot to the
            violating system state, found by soundness verification *)
    system_depth : int;  (** events in the witness schedule *)
  }

  type result = {
    node_states : int array;  (** per-node store sizes (|LS_n|) *)
    total_node_states : int;
    transitions : int;  (** handler executions *)
    net_messages : int;  (** |I+| at the end *)
    system_states_created : int;
    preliminary_violations : int;
    sound_violation : violation option;
    soundness_calls : int;  (** isStateSound invocations *)
    sequences_checked : int;
        (** event-sequence combinations fed to the soundness engine *)
    soundness_rejections : int;
        (** preliminary violations not confirmed (proven unreachable,
            or undecided within the soundness budget) *)
    soundness_budget_exhausted : int;
        (** soundness checks that ran out of search budget — counted
            within [soundness_rejections]; a nonzero value means some
            rejections are "unknown", not "proven invalid" *)
    local_assert_drops : int;  (** node states discarded per §4.2 *)
    store_hits : int;
        (** combinations skipped because a previous run (or an earlier
            restart) already proved them invariant-clean; [0] without
            [config.persist] *)
    orbit_hits : int;
        (** combinations skipped because a slot permutation of them
            was proven invariant-clean earlier in this run; [0] with
            the identity group *)
    completed : bool;  (** fixpoint reached within budget *)
    elapsed : float;
    system_state_time : float;
        (** seconds spent creating system states and checking the
            invariant on them *)
    soundness_time : float;  (** seconds spent in soundness checks *)
    retained_bytes : int;
        (** analytic footprint of the node stores and I+ (Fig. 12) *)
    max_system_depth : int;
        (** deepest system state created (events) *)
    max_node_depth : int;
        (** longest per-node event path explored *)
  }

  (** Exploration time excluding system-state creation and soundness
      verification (the LMC-explore series of Fig. 13). *)
  val explore_time : result -> float

  (** [run config ~strategy ~invariant snapshot] runs [findBugs] from
      the live system state [snapshot] (node states indexed by id).
      [I+] starts empty, as in Fig. 9 line 2. *)
  val run :
    config ->
    strategy:'k strategy ->
    invariant:P.state Dsm.Invariant.t ->
    P.state array ->
    result
end
