(* Cross-restart persistence (lib/store): not parameterised by the
   protocol, so the online supervisor can build it once and thread it
   through every [Make(P)] restart. *)
type persist = {
  p_combos : Store.Fp_set.t;
      (* combinations whose invariant check came back clean; the
         verdict is a pure function of the tuple, so a clean
         combination stays clean and warm restarts skip it *)
  p_nodes : Store.Fp_set.t array;
      (* per-node visited node-state fingerprints, across restarts *)
  p_iplus : Store.Fp_set.t;  (* every message that ever entered I+ *)
}

module Make (P : Dsm.Protocol.S) = struct
  module Envelope = Dsm.Envelope
  module Fingerprint = Dsm.Fingerprint
  module Vec = Dsm.Vec
  module Trace = Dsm.Trace

  type 'k strategy =
    | General
    | Invariant_specific of {
        abstract : P.state -> 'k option;
        conflict : 'k -> 'k -> bool;
      }
    | Automatic

  type config = {
    max_depth : int option;
    time_limit : float option;
    max_transitions : int option;
    local_action_bound : int option;
    crash_budget : int;
        (* crash-recovery events allowed per node path; 0 (default)
           explores no crashes and leaves the state graph untouched *)
    create_system_states : bool;
    verify_soundness : bool;
    use_history : bool;
    stop_on_violation : bool;
    max_paths_per_entry : int;
    max_sequence_combos : int;
    soundness_budget : int;
    max_preds_per_entry : int;
    reverify_rejected : bool;
    max_rejected_cache : int;
    soundness_via_sequences : bool;
    defer_soundness : bool;
    verify_domains : int;
    domains : int;
    pool : Par.Pool.t option;
    obs : Obs.scope;
    trace : Obs.Trace.t;
    on_new_node_state : (Dsm.Node_id.t -> P.state -> unit) option;
    persist : persist option;
        (* disk-backed stores shared across restarts; combination
           skips happen on the sequential apply path only, so verdicts
           stay bit-identical at any domain count *)
    symmetry : Dsm.Symmetry.group;
        (* audited role-permutation group for combination orbit
           deduplication: combinations whose slot-permuted fingerprint
           tuple was already proven invariant-clean are skipped.  Sound
           iff the invariant is slot-symmetric under the group —
           audited by [Lint.Symmetry]; the checker trusts the caller.
           Only clean verdicts are orbit-shared, so the first violating
           combination (verdict, witness, preliminary count) is
           bit-identical to a run with the identity group.  All orbit
           bookkeeping lives on the sequential apply path. *)
  }

  let default_config =
    {
      max_depth = None;
      time_limit = None;
      max_transitions = None;
      local_action_bound = None;
      crash_budget = 0;
      create_system_states = true;
      verify_soundness = true;
      use_history = true;
      stop_on_violation = true;
      max_paths_per_entry = 64;
      max_sequence_combos = 4096;
      soundness_budget = 50_000;
      max_preds_per_entry = 256;
      reverify_rejected = true;
      max_rejected_cache = 20_000;
      soundness_via_sequences = false;
      defer_soundness = false;
      verify_domains = 1;
      domains = 1;
      pool = None;
      obs = Obs.null;
      trace = Obs.Trace.null;
      on_new_node_state = None;
      persist = None;
      symmetry = Dsm.Symmetry.identity_group P.num_nodes;
    }

  type violation = {
    system : P.state array;
    violation : Dsm.Invariant.violation;
    schedule : (P.message, P.action) Trace.t;
    system_depth : int;
  }

  type result = {
    node_states : int array;
    total_node_states : int;
    transitions : int;
    net_messages : int;
    system_states_created : int;
    preliminary_violations : int;
    sound_violation : violation option;
    soundness_calls : int;
    sequences_checked : int;
    soundness_rejections : int;
    soundness_budget_exhausted : int;
    local_assert_drops : int;
    store_hits : int;
        (** combinations skipped because a previous (or earlier) run
            already proved them invariant-clean; [0] without
            [config.persist] *)
    orbit_hits : int;
        (** combinations skipped because a slot permutation of them was
            already proven invariant-clean this run; [0] with the
            identity group *)
    completed : bool;
    elapsed : float;
    system_state_time : float;
    soundness_time : float;
    retained_bytes : int;
    max_system_depth : int;
    max_node_depth : int;
  }

  let explore_time r = r.elapsed -. r.system_state_time -. r.soundness_time

  type event_kind = Net_event of int | Action_event of P.action | Crash_event

  type event_info = {
    label : Fingerprint.t;
    kind : event_kind;
    requires : Fingerprint.t option;
    produces : Fingerprint.t list;
  }

  type pred = { prev : int option; event : event_info }

  type 'k entry = {
    idx : int;
    node : Dsm.Node_id.t;
    root : bool;
    state : P.state;
    fp : Fingerprint.t;
    history : Fingerprint.Set.t;
    depth : int;
    local_count : int;
    crashes : int;  (* crash-recoveries consumed on the path here *)
    key : 'k option;
    mutable preds : pred list;
    mutable fp_hex : string option;
        (* hex rendering of [fp], cached — every outgoing transition
           of this entry puts it in a step record's [fp_before] *)
  }

  type net_entry = {
    net_id : int;
    env : P.message Envelope.t;
    net_fp : Fingerprint.t;
    mutable cursor : int;  (* states of [env.dst] already served *)
    mutable first_inj : int;
        (* I+ provenance: seq of the step record that first injected
           this message; -1 = predates recording (or recording off) *)
    mutable lbl : string option;
        (* rendered payload, cached — exploration delivers the same
           message to many states, the trace renders it once *)
    mutable hex : string option;  (* hex of [net_fp], same reuse story *)
    mutable frm : string option;
        (* profiler frame name ("deliver:Accept"), cached on the entry
           so the per-transition push is a field read, not a lookup *)
  }

  (* A soundness-rejected preliminary violation, cached so it can be
     re-verified once exploration has added more predecessor pointers
     (the remedy §4.2 suggests for the simplification of verifying only
     at state-creation time). *)
  type 'k rejected = {
    r_tuple : 'k entry array;
    r_system : P.state array;
    r_violation : Dsm.Invariant.violation;
    r_depth : int;
  }

  (* Pre-resolved metric handles: the registry lookup happens once per
     run, the hot loops pay one atomic increment per update.  The
     counters mirror the [result] record exactly, so a metrics dump of
     a finished run agrees with the printed summary. *)
  type obs_handles = {
    scope : Obs.scope;
    soundness_obs : Obs.scope option;
        (* [None] for the null scope, sparing {!Soundness} the
           per-call recording entirely *)
    prof : Obs.Prof.t option;
        (* the scope's sampling profiler, resolved once; frames are
           pushed on the sequential apply path only, like trace
           records, so profiles never depend on domain scheduling *)
    fam_act : (P.action, string) Hashtbl.t;
        (* action -> profiler frame name ("action:Propose"), touched
           only when a profiler is attached; delivery frames are
           cached on the net entry itself ([net_entry.frm]) *)
    node_state_observers : (Dsm.Node_id.t -> P.state -> unit) list;
        (* subscribers of the lmc.node_state stream; the deprecated
           [on_new_node_state] callback is re-implemented as one *)
    c_transitions : Obs.Metrics.counter;
    c_node_states : Obs.Metrics.counter;
    c_net_messages : Obs.Metrics.counter;
    c_system_states : Obs.Metrics.counter;
    c_prelim : Obs.Metrics.counter;
    c_soundness_calls : Obs.Metrics.counter;
    c_sequences : Obs.Metrics.counter;
    c_rejections : Obs.Metrics.counter;
    c_budget_exhausted : Obs.Metrics.counter;
    c_local_drops : Obs.Metrics.counter;
    c_store_hits : Obs.Metrics.counter;
    c_orbit_hits : Obs.Metrics.counter;
    h_system_depth : Obs.Metrics.histogram;
    h_node_depth : Obs.Metrics.histogram;
    h_soundness_us : Obs.Metrics.histogram;
  }

  let make_obs_handles (config : config) =
    let scope = config.obs in
    {
      scope;
      soundness_obs = (if Obs.is_null scope then None else Some scope);
      prof = Obs.prof scope;
      fam_act = Hashtbl.create 16;
      node_state_observers =
        (match config.on_new_node_state with Some f -> [ f ] | None -> []);
      c_transitions = Obs.counter scope "lmc.transitions";
      c_node_states = Obs.counter scope "lmc.node_states";
      c_net_messages = Obs.counter scope "lmc.net_messages";
      c_system_states = Obs.counter scope "lmc.system_states_created";
      c_prelim = Obs.counter scope "lmc.preliminary_violations";
      c_soundness_calls = Obs.counter scope "lmc.soundness_calls";
      c_sequences = Obs.counter scope "lmc.sequences_checked";
      c_rejections = Obs.counter scope "lmc.soundness_rejections";
      c_budget_exhausted = Obs.counter scope "lmc.soundness_budget_exhausted";
      c_local_drops = Obs.counter scope "lmc.local_assert_drops";
      c_store_hits = Obs.counter scope "lmc.store_hits";
      c_orbit_hits = Obs.counter scope "lmc.orbit_hits";
      h_system_depth = Obs.histogram scope "lmc.system_depth";
      h_node_depth = Obs.histogram scope "lmc.node_depth";
      h_soundness_us = Obs.histogram scope "lmc.soundness_us";
    }

  (* Witness records embed marshalled protocol values so [lmc replay]
     can re-execute them against the live handlers. *)
  module RW = Obs.Replay.Make (P)

  type 'k t = {
    config : config;
    crash_labels : Fingerprint.t array array;
        (* [crash_labels.(n).(k)]: label of node [n]'s (k+1)-th
           crash-recovery, precomputed so the hot path never hashes;
           empty when [crash_budget = 0] *)
    o : obs_handles;
    tracing : bool;  (* [config.trace] is enabled; gates field assembly *)
    soundness_trace : Obs.Trace.t option;
        (* passed to {!Soundness} only on the sequential path *)
    snapshot : P.state array;  (* starting states, for witness records *)
    ph_handler_us : int Atomic.t;
    ph_fingerprint_us : int Atomic.t;
    ph_invariant_us : int Atomic.t;
        (* per-phase attribution, accumulated from any domain *)
    mutable timed_tick : int;
        (* sampling cursor for {!timed}.  Deliberately non-atomic: an
           occasionally lost increment only perturbs which calls get
           sampled, and an atomic op on every handler / invariant call
           is exactly the cost the sampling exists to avoid. *)
    act_lbl : (P.action, string) Hashtbl.t;
        (* rendered action labels, cached like [net_entry.lbl] *)
    strategy : 'k strategy;
    invariant : P.state Dsm.Invariant.t;
    stores : 'k entry Vec.t array;
    by_fp : (Fingerprint.t, int) Hashtbl.t array;
    action_cursor : int array;  (* states already expanded for actions *)
    crash_cursor : int array;  (* states already expanded for crashes *)
    net : net_entry Vec.t;
    net_by_fp : (Fingerprint.t, int) Hashtbl.t;
    seen_combos : (Fingerprint.t, unit) Hashtbl.t;
    reduce : bool;  (* [config.symmetry] is non-trivial *)
    orbit_clean : (Fingerprint.t, unit) Hashtbl.t;
        (* canonical (least slot-permuted) fingerprints of combinations
           proven invariant-clean this run; read and written on the
           sequential apply path only *)
    rejected : 'k rejected Vec.t;
    pool : Par.Pool.t option;
        (* exploration pool ([config.domains]); independent of the
           deferred-verification fan-out ([config.verify_domains]) *)
    combo_buf : ('k entry array * int * Fingerprint.t option) Vec.t;
        (* combination tuples awaiting a batched invariant check (with
           their store fingerprint when [config.persist] is set);
           always drained before [check_system_invariant] returns *)
    started : float;
    mutable transitions : int;
    mutable system_states_created : int;
    mutable store_hits : int;
    mutable orbit_hits : int;
    mutable preliminary_violations : int;
    mutable soundness_calls : int;
    mutable sequences_checked : int;
    mutable soundness_rejections : int;
    mutable local_assert_drops : int;
    mutable soundness_budget_exhausted : int;
    mutable sound_violation : violation option;
    mutable system_state_time : float;
    mutable soundness_time : float;
    mutable max_system_depth : int;
    mutable max_node_depth : int;
    mutable truncated : bool;
  }

  exception Stop

  let now () = Unix.gettimeofday ()

  let now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

  (* Attribute [f]'s wall time to [cell] when recording; free otherwise.
     Worker domains call this concurrently — the cells are atomic.
     Attribution is sampled: every 256th call is timed and counted for
     256, so the hot path pays two clock reads on 0.4% of calls
     instead of all of them.  Invariant checks on tuple states make
     this wrapper far hotter than the step records themselves (tuple
     enumeration grows with depth while the state graph saturates), so
     the sampling stride is what keeps the ring recorder inside its 2%
     budget.  The phases record is a statistical profile either way —
     wall-clock is not part of the determinism contract. *)
  let sample_mask = 255

  let timed t cell f =
    let tick = t.timed_tick in
    t.timed_tick <- tick + 1;
    if t.tracing && tick land sample_mask = 0 then begin
      let t0 = now_us () in
      let r = f () in
      ignore
        (Atomic.fetch_and_add cell ((now_us () - t0) * (sample_mask + 1)));
      r
    end
    else f ()

  (* ----- flight-recorder emission (sequential apply path only) ----- *)

  (* Label caches: exploration revisits the same messages and actions
     constantly, so each distinct value is rendered through Format
     once and the trace reuses the string.  Only touched from record
     thunks, which run on the sequential apply path or single-threaded
     at ring dump time. *)
  let message_label (m : net_entry) =
    match m.lbl with
    | Some l -> l
    | None ->
        let l = Format.asprintf "%a" P.pp_message m.env.Envelope.payload in
        m.lbl <- Some l;
        l

  let action_label t action =
    match Hashtbl.find_opt t.act_lbl action with
    | Some l -> l
    | None ->
        let l = Format.asprintf "%a" P.pp_action action in
        Hashtbl.add t.act_lbl action l;
        l

  let message_hex (m : net_entry) =
    match m.hex with
    | Some h -> h
    | None ->
        let h = Fingerprint.to_hex m.net_fp in
        m.hex <- Some h;
        h

  (* ----- profiler frames (sequential apply path only) ----- *)

  (* Frame names group by label *family* — the constructor before any
     payload — so "Accept(2,7)" and "Accept(3,1)" share one flamegraph
     frame.  Memoised per rendered label; only touched with a profiler
     attached. *)
  let label_family label =
    let cut = ref (String.length label) in
    (match String.index_opt label '(' with
    | Some i -> if i < !cut then cut := i
    | None -> ());
    (match String.index_opt label ' ' with
    | Some i -> if i < !cut then cut := i
    | None -> ());
    String.sub label 0 !cut

  let net_frame (m : net_entry) =
    match m.frm with
    | Some f -> f
    | None ->
        let f = "deliver:" ^ label_family (message_label m) in
        m.frm <- Some f;
        f

  let action_frame t action =
    match Hashtbl.find_opt t.o.fam_act action with
    | Some f -> f
    | None ->
        let f = "action:" ^ label_family (action_label t action) in
        Hashtbl.add t.o.fam_act action f;
        f

  let entry_hex (e : 'k entry) =
    match e.fp_hex with
    | Some h -> h
    | None ->
        let h = Fingerprint.to_hex e.fp in
        e.fp_hex <- Some h;
        h

  (* [label] is a thunk: rendering a message or action goes through
     Format, which is the most expensive part of assembling a step
     record.  Deferring it (with the hex conversions) into the record
     thunk means ring-mode recording pays neither per transition.
     Provenance stays eager — [consumed] carries the [first_inj] the
     caller read before this emit, and the produced entries are
     stamped right after it, because a read deferred to dump time
     could see a later injection. *)
  let stamp_injections pentries seq =
    List.iter
      (fun e -> if e.first_inj < 0 then e.first_inj <- seq)
      pentries

  let record_net_step t (m : net_entry) (entry : 'k entry) ~fp_after ~pentries
      =
    let consumed_inj = m.first_inj in
    let depth = entry.depth + 1 in
    let seq =
      Obs.Trace.record_step_lazy t.config.trace (fun () ->
          {
            Obs.Trace.node = m.env.Envelope.dst;
            kind = Obs.Trace.Deliver;
            src = m.env.Envelope.src;
            label = message_label m;
            fp_before = entry_hex entry;
            fp_after = Fingerprint.to_hex fp_after;
            consumed = Some (message_hex m, consumed_inj);
            produced = List.map message_hex pentries;
            depth;
            dom = 0;
          })
    in
    stamp_injections pentries seq

  let record_act_step t ~node action (entry : 'k entry) ~fp_after ~pentries =
    let depth = entry.depth + 1 in
    let seq =
      Obs.Trace.record_step_lazy t.config.trace (fun () ->
          {
            Obs.Trace.node;
            kind = Obs.Trace.Action;
            src = -1;
            label = action_label t action;
            fp_before = entry_hex entry;
            fp_after = Fingerprint.to_hex fp_after;
            consumed = None;
            produced = List.map message_hex pentries;
            depth;
            dom = 0;
          })
    in
    stamp_injections pentries seq

  let record_crash_step t ~node (entry : 'k entry) ~fp_after =
    ignore
      (Obs.Trace.record_step_lazy t.config.trace (fun () ->
           {
             Obs.Trace.node;
             kind = Obs.Trace.Crash;
             src = -1;
             label = "crash-recover";
             fp_before = entry_hex entry;
             fp_after = Fingerprint.to_hex fp_after;
             consumed = None;
             produced = [];
             depth = entry.depth + 1;
             dom = 0;
           }))

  let record_drop t ~node ~kind ~src ~label ~fp_before ~depth =
    ignore
      (Obs.Trace.emit_lazy t.config.trace ~ev:"drop" (fun () ->
           [
             ("node", Dsm.Json.Int node);
             ("kind", Dsm.Json.String kind);
             ("src", Dsm.Json.Int src);
             ("label", Dsm.Json.String (label ()));
             ("fp_before", Dsm.Json.String (Fingerprint.to_hex fp_before));
             ("depth", Dsm.Json.Int depth);
           ]))

  let record_prelim t (violation : Dsm.Invariant.violation) sdepth
      (tuple : 'k entry array) =
    ignore
      (Obs.Trace.emit t.config.trace ~ev:"prelim"
         [
           ("invariant", Dsm.Json.String violation.Dsm.Invariant.invariant);
           ("detail", Dsm.Json.String violation.Dsm.Invariant.detail);
           ("system_depth", Dsm.Json.Int sdepth);
           ( "tuple",
             Dsm.Json.List
               (Array.to_list
                  (Array.map
                     (fun (e : 'k entry) ->
                       Dsm.Json.String (Fingerprint.to_hex e.fp))
                     tuple)) );
         ])

  let record_reject t (violation : Dsm.Invariant.violation) sdepth ~why =
    ignore
      (Obs.Trace.emit t.config.trace ~ev:"reject"
         [
           ("invariant", Dsm.Json.String violation.Dsm.Invariant.invariant);
           ("system_depth", Dsm.Json.Int sdepth);
           ("why", Dsm.Json.String why);
         ])

  let record_witness t (violation : Dsm.Invariant.violation) schedule =
    ignore
      (Obs.Trace.emit t.config.trace ~ev:"witness"
         (RW.witness_fields ~init:t.snapshot ~schedule
            ~invariant:violation.Dsm.Invariant.invariant
            ~detail:violation.Dsm.Invariant.detail))

  (* Live progress for long runs: explored node states, |I+| and the
     violation tallies (§5's headline numbers), reported while the
     checker is still working.  Sits on the per-transition path — the
     heartbeat's common case is a branch and an integer increment. *)
  let heartbeat t =
    Obs.heartbeat t.o.scope (fun () ->
        [
          ("transitions", Dsm.Json.Int t.transitions);
          ( "node_states",
            Dsm.Json.Int
              (Array.fold_left (fun acc s -> acc + Vec.length s) 0 t.stores)
          );
          ("net_messages", Dsm.Json.Int (Vec.length t.net));
          ("system_states", Dsm.Json.Int t.system_states_created);
          ("preliminary_violations", Dsm.Json.Int t.preliminary_violations);
          ("elapsed_s", Dsm.Json.Float (now () -. t.started));
        ])

  let check_budget t =
    heartbeat t;
    let over_time =
      match t.config.time_limit with
      | Some limit -> now () -. t.started > limit
      | None -> false
    in
    let over_transitions =
      match t.config.max_transitions with
      | Some limit -> t.transitions >= limit
      | None -> false
    in
    if over_time || over_transitions then begin
      t.truncated <- true;
      raise Stop
    end

  let abstract_key t state =
    match t.strategy with
    | General | Automatic -> None
    | Invariant_specific { abstract; _ } -> abstract state

  let depth_allows t d =
    match t.config.max_depth with Some bound -> d <= bound | None -> true

  (* Add a generated message to the shared network I+, deduplicating by
     fingerprint (the paper's duplicate limit of zero).  The returned
     fingerprint always enters the producing event's [produces] list:
     soundness bookkeeping counts productions, not distinct contents.
     The fingerprint itself is computed separately ([register_message]
     takes it precomputed) so parallel rounds can hash message payloads
     on worker domains and register them on the main one. *)
  let register_message t env fp =
    match Hashtbl.find_opt t.net_by_fp fp with
    | Some id -> Vec.get t.net id
    | None ->
        let id = Vec.length t.net in
        let entry =
          {
            net_id = id;
            env;
            net_fp = fp;
            cursor = 0;
            first_inj = -1;
            lbl = None;
            hex = None;
            frm = None;
          }
        in
        ignore (Vec.push t.net entry);
        Hashtbl.replace t.net_by_fp fp id;
        (match t.config.persist with
        | Some p -> ignore (Store.Fp_set.add p.p_iplus fp)
        | None -> ());
        Obs.Metrics.incr t.o.c_net_messages;
        entry

  (* ----- soundness verification (isStateSound, Fig. 9) ----- *)

  (* All event sequences that can lead to [entry], by following the
     predecessor pointers backwards.  Self-references are ignored
     (§4.2) and cycles are cut by an on-path guard; the number of
     sequences is capped. *)
  let enumerate_paths t (entry : 'k entry) : event_info list list =
    let store = t.stores.(entry.node) in
    let results = ref [] in
    let count = ref 0 in
    let max_paths = t.config.max_paths_per_entry in
    let rec walk e suffix on_path =
      if !count >= max_paths then ()
      else if e.root then begin
        results := suffix :: !results;
        incr count
      end
      else
        List.iter
          (fun p ->
            if !count < max_paths then
              match p.prev with
              | None -> ()
              | Some i when i = e.idx -> ()
              | Some i when List.mem i on_path -> ()
              | Some i ->
                  walk (Vec.get store i) (p.event :: suffix) (e.idx :: on_path))
          e.preds
    in
    walk entry [] [];
    !results

  let to_soundness_sequence node events : Soundness.sequence =
    List.map
      (fun (e : event_info) ->
        {
          Soundness.node;
          label = e.label;
          requires = e.requires;
          produces = e.produces;
        })
      events

  let step_of_event t node (e : event_info) : (P.message, P.action) Trace.step =
    match e.kind with
    | Net_event id -> Trace.Deliver (Vec.get t.net id).env
    | Action_event a -> Trace.Execute (node, a)
    | Crash_event -> Trace.Crash node

  (* The predecessor DAG of one component node state, restricted to the
     backward closure of the target.  Self-references are ignored
     (§4.2); cycles are tolerated, the memoised search handles them. *)
  let build_graph t (entry : 'k entry)
      (by_label : (Dsm.Node_id.t * Fingerprint.t, event_info) Hashtbl.t) :
      Soundness.node_graph =
    (* Even a snapshot-state target can carry self-edges (events that
       produced messages without changing the state), so the closure is
       built uniformly. *)
    begin
      let store = t.stores.(entry.node) in
      let seen = Hashtbl.create 64 in
      let edges = ref [] in
      let stack = ref [ entry.idx ] in
      Hashtbl.replace seen entry.idx ();
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | i :: rest ->
            stack := rest;
            let e = Vec.get store i in
            List.iter
              (fun (p : pred) ->
                match p.prev with
                | None -> ()
                | Some j ->
                    (* self-edges (j = i) carry productions of events
                       that left the state unchanged; the DAG search
                       may traverse them *)
                    Hashtbl.replace by_label (entry.node, p.event.label) p.event;
                    edges :=
                      ( j,
                        {
                          Soundness.node = entry.node;
                          label = p.event.label;
                          requires = p.event.requires;
                          produces = p.event.produces;
                        },
                        i )
                      :: !edges;
                    if not (Hashtbl.mem seen j) then begin
                      Hashtbl.replace seen j ();
                      stack := j :: !stack
                    end)
              e.preds
      done;
      { Soundness.root = 0; target = entry.idx; edges = !edges }
    end

  (* Confirm a preliminary violation (isStateSound): either search the
     product of the per-node predecessor DAGs directly (default), or
     enumerate explicit event-sequence combinations as in the paper. *)
  let verify_soundness_run ?(cache_rejection = true) t
      (tuple : 'k entry array) system violation sdepth =
    t.soundness_calls <- t.soundness_calls + 1;
    Obs.Metrics.incr t.o.c_soundness_calls;
    let t0 = now () in
    (* Map a scheduled event back to its protocol-level step. *)
    let by_label : (Dsm.Node_id.t * Fingerprint.t, event_info) Hashtbl.t =
      Hashtbl.create 64
    in
    let found = ref None in
    let exhausted = ref false in
    if t.config.soundness_via_sequences then begin
      let paths =
        Array.map (fun e -> Array.of_list (enumerate_paths t e)) tuple
      in
      Array.iteri
        (fun n node_paths ->
          Array.iter
            (List.iter (fun (e : event_info) ->
                 Hashtbl.replace by_label (n, e.label) e))
            node_paths)
        paths;
      let combos = ref 0 in
      ignore
        (Combination.iter paths (fun sequences ->
             incr combos;
             t.sequences_checked <- t.sequences_checked + 1;
             Obs.Metrics.incr t.o.c_sequences;
             let seqs =
               Array.mapi (fun n evs -> to_soundness_sequence n evs) sequences
             in
             match
               Soundness.check ?obs:t.o.soundness_obs
                 ?trace:t.soundness_trace ~budget:t.config.soundness_budget
                 ~initial_net:[] seqs
             with
             | Soundness.Valid order ->
                 found := Some order;
                 `Stop
             | Soundness.Invalid ->
                 if !combos >= t.config.max_sequence_combos then `Stop
                 else `Continue
             | Soundness.Budget_exhausted ->
                 exhausted := true;
                 if !combos >= t.config.max_sequence_combos then `Stop
                 else `Continue))
    end
    else begin
      let graphs = Array.map (fun e -> build_graph t e by_label) tuple in
      t.sequences_checked <- t.sequences_checked + 1;
      Obs.Metrics.incr t.o.c_sequences;
      (match
         Soundness.check_dag ?obs:t.o.soundness_obs
           ?trace:t.soundness_trace ~budget:t.config.soundness_budget
           ~initial_net:[] graphs
       with
      | Soundness.Valid order -> found := Some order
      | Soundness.Invalid -> ()
      | Soundness.Budget_exhausted ->
          exhausted := true;
          t.soundness_budget_exhausted <- t.soundness_budget_exhausted + 1;
          Obs.Metrics.incr t.o.c_budget_exhausted);
      ()
    end;
    let spent = now () -. t0 in
    t.soundness_time <- t.soundness_time +. spent;
    Obs.Metrics.observe t.o.h_soundness_us
      (int_of_float (1e6 *. spent));
    match !found with
    | None ->
        if t.tracing then
          record_reject t violation sdepth
            ~why:(if !exhausted then "budget_exhausted" else "invalid");
        if cache_rejection then begin
          t.soundness_rejections <- t.soundness_rejections + 1;
          Obs.Metrics.incr t.o.c_rejections;
          if
            t.config.reverify_rejected
            && Vec.length t.rejected < t.config.max_rejected_cache
          then
            ignore
              (Vec.push t.rejected
                 {
                   r_tuple = tuple;
                   r_system = system;
                   r_violation = violation;
                   r_depth = sdepth;
                 })
        end
    | Some order ->
        let schedule =
          List.map
            (fun (sev : Soundness.event) ->
              match Hashtbl.find_opt by_label (sev.node, sev.label) with
              | Some e -> step_of_event t sev.node e
              | None -> assert false)
            order
        in
        ignore sdepth;
        t.sound_violation <-
          Some
            {
              system = Array.copy system;
              violation;
              schedule;
              (* the witness may include productive events that left a
                 node state unchanged, so its length can exceed the sum
                 of the component state depths *)
              system_depth = List.length schedule;
            };
        Obs.event t.o.scope "lmc.sound_violation"
          ~fields:
            [
              ("invariant", Dsm.Json.String violation.Dsm.Invariant.invariant);
              ("detail", Dsm.Json.String violation.Dsm.Invariant.detail);
              ("witness_events", Dsm.Json.Int (List.length schedule));
            ];
        if t.tracing then record_witness t violation schedule;
        if t.config.stop_on_violation then raise Stop

  (* Soundness verification under a boundary-sampled profiler frame:
     [Prof.enter]/[leave] pin the phase edges, so the (often long)
     search never bleeds into the enclosing combination frame. *)
  let verify_soundness ?cache_rejection t (tuple : 'k entry array) system
      violation sdepth =
    Obs.frame t.o.scope "soundness" (fun () ->
        verify_soundness_run ?cache_rejection t tuple system violation
          sdepth)

  (* ----- system state creation (checkSystemInvariant, Fig. 9) ----- *)

  let tuple_fp tuple =
    Fingerprint.combine (Array.to_list (Array.map (fun e -> e.fp) tuple))

  (* With a non-trivial symmetry group, combinations are keyed by the
     fingerprint of the lexicographically-least slot permutation of
     their tuple — which is the raw fingerprint of a real combination
     (the orbit representative), so persisted stores stay meaningful
     whether or not later runs reduce.  With the identity group this
     is [tuple_fp] bit for bit. *)
  let ctuple_fp t tuple =
    if t.reduce then
      Dsm.Symmetry.canonical_combo t.config.symmetry
        (Array.map (fun e -> e.fp) tuple)
    else tuple_fp tuple

  let orbit_hit t =
    t.orbit_hits <- t.orbit_hits + 1;
    Obs.Metrics.incr t.o.c_orbit_hits

  let mark_orbit_clean t = function
    | Some cfp when t.reduce -> Hashtbl.replace t.orbit_clean cfp ()
    | _ -> ()

  (* With [config.persist], every combination consults the on-disk set
     of proven-clean combinations before a system state is created: a
     hit is work some earlier restart already did.  Only clean
     verdicts are recorded — a violating combination must be re-judged
     from every snapshot, because soundness depends on the snapshot it
     is scheduled from.  All store reads and writes below happen on
     the sequential apply path, in submission order.

     With [config.symmetry], the in-memory orbit set is consulted
     first: a hit means a slot permutation of this tuple was already
     proven clean this run.  Violating combinations never enter the
     set, so reduction can only skip invariant evaluations that would
     have come back clean. *)
  let consider_combo t (tuple : 'k entry array) =
    check_budget t;
    let sdepth = Array.fold_left (fun acc e -> acc + e.depth) 0 tuple in
    if depth_allows t sdepth then begin
      let cfp =
        if t.reduce || t.config.persist <> None then
          Some (ctuple_fp t tuple)
        else None
      in
      let orbit_seen =
        match cfp with
        | Some f when t.reduce -> Hashtbl.mem t.orbit_clean f
        | _ -> false
      in
      if orbit_seen then orbit_hit t
      else
      let stored =
        match (t.config.persist, cfp) with
        | Some p, Some f -> Some (p, f)
        | _ -> None
      in
      match stored with
      | Some (p, f) when Store.Fp_set.mem p.p_combos f ->
          t.store_hits <- t.store_hits + 1;
          Obs.Metrics.incr t.o.c_store_hits;
          mark_orbit_clean t cfp
      | _ -> (
      t.system_states_created <- t.system_states_created + 1;
      Obs.Metrics.incr t.o.c_system_states;
      Obs.Metrics.observe t.o.h_system_depth sdepth;
      if sdepth > t.max_system_depth then t.max_system_depth <- sdepth;
      let system = Array.map (fun e -> e.state) tuple in
      match
        timed t t.ph_invariant_us (fun () ->
            Dsm.Invariant.check t.invariant system)
      with
      | None ->
          (match stored with
          | Some (p, f) -> ignore (Store.Fp_set.add p.p_combos f)
          | None -> ());
          mark_orbit_clean t cfp
      | Some violation ->
          t.preliminary_violations <- t.preliminary_violations + 1;
          Obs.Metrics.incr t.o.c_prelim;
          Obs.event t.o.scope "lmc.preliminary_violation"
            ~fields:
              [
                ( "invariant",
                  Dsm.Json.String violation.Dsm.Invariant.invariant );
                ("system_depth", Dsm.Json.Int sdepth);
              ];
          if t.tracing then record_prelim t violation sdepth tuple;
          if t.config.verify_soundness then begin
            if
              t.config.defer_soundness
              && Vec.length t.rejected < t.config.max_rejected_cache
            then
              (* Contribution 3 of the paper: exploration, system-state
                 creation and soundness verification are decoupled, so
                 verification can be postponed (and parallelised) after
                 exploration settles.  When the queue overflows we fall
                 back to verifying inline — never drop a preliminary
                 violation silently. *)
              ignore
                (Vec.push t.rejected
                   {
                     r_tuple = Array.copy tuple;
                     r_system = system;
                     r_violation = violation;
                     r_depth = sdepth;
                   })
            else verify_soundness t (Array.copy tuple) system violation sdepth
          end)
    end

  (* ----- batched combination checking (parallel rounds) -----

     With a pool attached, combination tuples are buffered during
     enumeration; the pure part of [consider_combo] — building the
     system array and running the invariant — fans out across domains,
     and verdicts are applied strictly in submission order, so every
     counter, event and Stop point lands exactly where the inline path
     would put it. *)

  type combo_verdict =
    | C_gated  (* system depth beyond the bound: budget check only *)
    | C_orbit  (* orbit prefilter hit: a slot image was proven clean *)
    | C_seen  (* store prefilter hit: proven clean by an earlier run *)
    | C_ok
    | C_viol of P.state array * Dsm.Invariant.violation

  let combo_buf_max = 1024
  let combo_chunk = 64

  let apply_combo t (tuple : 'k entry array) sdepth cfp verdict =
    check_budget t;
    let store_hit () =
      t.store_hits <- t.store_hits + 1;
      Obs.Metrics.incr t.o.c_store_hits
    in
    (* The prefilters in [flush_combos] are read-only and ran against
       the store / orbit set as of flush time; the checks here are the
       authoritative ones, in apply (= submission) order, so the store,
       the orbit set and every counter evolve exactly as the inline
       path's would.  The orbit check comes first, as in
       [consider_combo]: an earlier apply in this very batch may have
       proven a slot image of this tuple clean. *)
    let orbit_seen =
      match (verdict, cfp) with
      | C_gated, _ -> false
      | _, Some f when t.reduce -> Hashtbl.mem t.orbit_clean f
      | _ -> false
    in
    if orbit_seen then orbit_hit t
    else
    let store_skip =
      match (t.config.persist, cfp, verdict) with
      | _, _, (C_gated | C_orbit | C_seen) -> false
      | Some p, Some f, C_ok -> not (Store.Fp_set.add p.p_combos f)
      | Some p, Some f, C_viol _ -> Store.Fp_set.mem p.p_combos f
      | _ -> false
    in
    match verdict with
    | C_gated -> ()
    | C_orbit ->
        (* prefilter said so and the authoritative check above did not:
           impossible, the orbit set only grows *)
        orbit_hit t
    | C_seen ->
        store_hit ();
        mark_orbit_clean t cfp
    | (C_ok | C_viol _) when store_skip ->
        store_hit ();
        mark_orbit_clean t cfp
    | C_ok | C_viol _ -> (
        (match verdict with
        | C_ok -> mark_orbit_clean t cfp
        | _ -> ());
        t.system_states_created <- t.system_states_created + 1;
        Obs.Metrics.incr t.o.c_system_states;
        Obs.Metrics.observe t.o.h_system_depth sdepth;
        if sdepth > t.max_system_depth then t.max_system_depth <- sdepth;
        match verdict with
        | C_gated | C_orbit | C_seen | C_ok -> ()
        | C_viol (system, violation) ->
            t.preliminary_violations <- t.preliminary_violations + 1;
            Obs.Metrics.incr t.o.c_prelim;
            Obs.event t.o.scope "lmc.preliminary_violation"
              ~fields:
                [
                  ( "invariant",
                    Dsm.Json.String violation.Dsm.Invariant.invariant );
                  ("system_depth", Dsm.Json.Int sdepth);
                ];
            if t.tracing then record_prelim t violation sdepth tuple;
            if t.config.verify_soundness then begin
              if
                t.config.defer_soundness
                && Vec.length t.rejected < t.config.max_rejected_cache
              then
                ignore
                  (Vec.push t.rejected
                     {
                       r_tuple = tuple;
                       r_system = system;
                       r_violation = violation;
                       r_depth = sdepth;
                     })
              else verify_soundness t tuple system violation sdepth
            end)

  let flush_combos t pool =
    let n = Vec.length t.combo_buf in
    if n > 0 then begin
      let items = Vec.to_array t.combo_buf in
      Vec.clear t.combo_buf;
      (* Batched read-only prefilter against the persistent store: one
         lookup sweep for the whole batch spares the pool the invariant
         work on combinations an earlier run already proved clean.
         Monotone like the Shard_tbl prefilter — a miss here is
         re-decided at apply time. *)
      let seen =
        match t.config.persist with
        | None -> [||]
        | Some p ->
            Store.Fp_set.mem_batch p.p_combos
              (Array.map
                 (fun (_, _, cfp) ->
                   match cfp with Some f -> f | None -> assert false)
                 items)
      in
      (* Orbit prefilter, sequential and read-only (flush runs on the
         apply path): spare the pool the invariant work on combinations
         whose orbit was already proven clean as of flush time.  A miss
         is re-decided at apply — an earlier apply in this batch can
         still orbit-cover a later item. *)
      let orbit_seen =
        if not t.reduce then [||]
        else
          Array.map
            (fun (_, _, cfp) ->
              match cfp with
              | Some f -> Hashtbl.mem t.orbit_clean f
              | None -> false)
            items
      in
      let verdicts =
        Par.Pool.tabulate pool ~chunk:combo_chunk n (fun i ->
            let tuple, sdepth, _ = items.(i) in
            if not (depth_allows t sdepth) then C_gated
            else if orbit_seen <> [||] && orbit_seen.(i) then C_orbit
            else if seen <> [||] && seen.(i) then C_seen
            else
              let system = Array.map (fun (e : 'k entry) -> e.state) tuple in
              match
                timed t t.ph_invariant_us (fun () ->
                    Dsm.Invariant.check t.invariant system)
              with
              | None -> C_ok
              | Some violation -> C_viol (system, violation))
      in
      Array.iteri
        (fun i verdict ->
          let tuple, sdepth, cfp = items.(i) in
          apply_combo t tuple sdepth cfp verdict)
        verdicts
    end

  (* [tuple] may be a reused enumeration buffer; the pooled path copies
     it at enqueue time, the inline path relies on [consider_combo]
     copying before any retention. *)
  let submit_combo t (tuple : 'k entry array) =
    match t.pool with
    | None -> consider_combo t tuple
    | Some pool ->
        let sdepth = Array.fold_left (fun acc e -> acc + e.depth) 0 tuple in
        let cfp =
          (* computed at submit time — sequential, so canonicalization
             order never depends on domain scheduling *)
          if t.reduce || t.config.persist <> None then
            Some (ctuple_fp t tuple)
          else None
        in
        ignore (Vec.push t.combo_buf (Array.copy tuple, sdepth, cfp));
        if Vec.length t.combo_buf >= combo_buf_max then flush_combos t pool

  let drain_combos t =
    match t.pool with
    | Some pool when Vec.length t.combo_buf > 0 -> flush_combos t pool
    | _ -> ()

  let general_combos t (new_entry : 'k entry) =
    let candidates =
      Array.init P.num_nodes (fun k ->
          if k = new_entry.node then [| new_entry |]
          else Vec.to_array t.stores.(k))
    in
    ignore
      (Combination.iter candidates (fun tuple ->
           submit_combo t tuple;
           if t.sound_violation <> None && t.config.stop_on_violation then
             `Stop
           else `Continue))

  (* LMC-OPT: "we select only the node states that at least two of them
     are mapped to different values" — pin a conflicting pair (the new
     state plus one conflicting state of another node) and complete the
     system state from the full stores of the remaining nodes.  States
     that map to [None] never seed a combination, which is why a
     bug-free run creates no system states at all. *)

  (* Pin [new_entry] together with each partner the filter accepts and
     complete the system state from the remaining nodes' full stores. *)
  let pinned_pair_combos t (new_entry : 'k entry) ~partner =
    try
      for m = 0 to P.num_nodes - 1 do
        if m <> new_entry.node then
          Vec.iteri
            (fun _ (other : 'k entry) ->
              if partner m other then begin
                let candidates =
                  Array.init P.num_nodes (fun j ->
                      if j = new_entry.node then [| new_entry |]
                      else if j = m then [| other |]
                      else Vec.to_array t.stores.(j))
                in
                ignore
                  (Combination.iter candidates (fun tuple ->
                       let cfp = tuple_fp tuple in
                       if not (Hashtbl.mem t.seen_combos cfp) then begin
                         Hashtbl.replace t.seen_combos cfp ();
                         submit_combo t tuple
                       end;
                       if
                         t.sound_violation <> None
                         && t.config.stop_on_violation
                       then `Stop
                       else `Continue));
                if t.sound_violation <> None && t.config.stop_on_violation
                then raise Exit
              end)
            t.stores.(m)
      done
    with Exit -> ()

  let opt_combos t conflict (new_entry : 'k entry) =
    match new_entry.key with
    | None -> ()
    | Some k ->
        pinned_pair_combos t new_entry ~partner:(fun _ (other : 'k entry) ->
            match other.key with Some k' -> conflict k k' | None -> false)

  (* The paper's future-work pruning, derived from the invariant's
     shape: a pairwise invariant needs a violating pair in the
     combination, a node-local one needs the new component itself to
     violate.  Anything else falls back to the general product. *)
  let auto_combos t (new_entry : 'k entry) =
    match Dsm.Invariant.pairwise_witness t.invariant with
    | Some pair ->
        pinned_pair_combos t new_entry ~partner:(fun m (other : 'k entry) ->
            pair new_entry.node new_entry.state m other.state)
    | None -> (
        match Dsm.Invariant.nodewise_witness t.invariant with
        | Some local ->
            if local new_entry.node new_entry.state then
              general_combos t new_entry
        | None -> general_combos t new_entry)

  let check_system_invariant t (new_entry : 'k entry) =
    if t.config.create_system_states then begin
      let t0 = now () in
      let soundness_before = t.soundness_time in
      Obs.frame t.o.scope "combination" (fun () ->
          Fun.protect
            ~finally:(fun () ->
              let phase = now () -. t0 in
              t.system_state_time <-
                t.system_state_time +. phase
                -. (t.soundness_time -. soundness_before))
            (fun () ->
              (match t.strategy with
              | General -> general_combos t new_entry
              | Invariant_specific { conflict; _ } ->
                  opt_combos t conflict new_entry
              | Automatic -> auto_combos t new_entry);
              (* Verdicts land before any later node state is created,
                 so the pooled path interleaves exactly like the
                 inline one. *)
              drain_combos t))
    end

  (* ----- exploration (findBugs main loop, Fig. 9) ----- *)

  let add_next_state t ~node ~state ~fp ~history ~depth ~local_count ~crashes
      ~pred =
    let store = t.stores.(node) in
    match Hashtbl.find_opt t.by_fp.(node) fp with
    | Some i ->
        (* Known node state reached by a new path: record one more
           predecessor pointer (Fig. 9 line 14); the history — and the
           crash count — keep their first values (§4.2
           simplification). *)
        let e = Vec.get store i in
        if List.length e.preds < t.config.max_preds_per_entry then
          e.preds <- pred :: e.preds;
        false
    | None ->
        let idx = Vec.length store in
        let entry =
          {
            idx;
            node;
            root = false;
            state;
            fp;
            history;
            depth;
            local_count;
            crashes;
            key = abstract_key t state;
            preds = [ pred ];
            fp_hex = None;
          }
        in
        ignore (Vec.push store entry);
        Hashtbl.replace t.by_fp.(node) fp idx;
        (match t.config.persist with
        | Some p -> ignore (Store.Fp_set.add p.p_nodes.(node) fp)
        | None -> ());
        if depth > t.max_node_depth then t.max_node_depth <- depth;
        Obs.Metrics.incr t.o.c_node_states;
        Obs.Metrics.observe t.o.h_node_depth depth;
        Obs.event t.o.scope "lmc.node_state"
          ~fields:
            [
              ("node", Dsm.Json.Int node);
              ("depth", Dsm.Json.Int depth);
              ("fp", Dsm.Json.String (Fingerprint.to_hex fp));
            ];
        List.iter (fun f -> f node state) t.o.node_state_observers;
        check_system_invariant t entry;
        true

  (* Each transition splits into a pure *compute* half — the protocol
     handler plus every fingerprint, which is where the time goes — and
     a sequential *apply* half that mutates the stores and counters.
     Parallel rounds tabulate the compute half across the pool, then
     apply results in index order: because message [m]'s whole range is
     applied before the next message's range is read (and actions only
     ever append to their own node's store), the parallel schedule
     replays the sequential enumeration exactly — same states, same
     counters, same traces, for any domain count. *)

  type net_compute =
    | N_skip  (* history or depth gate *)
    | N_assert
    | N_step of
        P.state
        * Fingerprint.t
        * (P.message Envelope.t * Fingerprint.t) list

  let compute_net t (m : net_entry) (entry : 'k entry) =
    let skip_by_history =
      t.config.use_history && Fingerprint.Set.mem m.net_fp entry.history
    in
    if (not skip_by_history) && depth_allows t (entry.depth + 1) then
      match
        timed t t.ph_handler_us (fun () ->
            match
              P.handle_message ~self:m.env.Envelope.dst entry.state m.env
            with
            | exception Dsm.Protocol.Local_assert _ -> None
            | state', out -> Some (state', out))
      with
      | None -> N_assert
      | Some (state', out) ->
          timed t t.ph_fingerprint_us (fun () ->
              N_step
                ( state',
                  Fingerprint.of_value state',
                  List.map (fun env -> (env, Fingerprint.of_value env)) out ))
    else N_skip

  let apply_net_seq t (m : net_entry) (entry : 'k entry) = function
    | N_skip -> false
    | N_assert ->
        t.transitions <- t.transitions + 1;
        Obs.Metrics.incr t.o.c_transitions;
        check_budget t;
        t.local_assert_drops <- t.local_assert_drops + 1;
        Obs.Metrics.incr t.o.c_local_drops;
        if t.tracing then
          record_drop t ~node:m.env.Envelope.dst ~kind:"deliver"
            ~src:m.env.Envelope.src
            ~label:(fun () -> message_label m)
            ~fp_before:entry.fp ~depth:(entry.depth + 1);
        false
    | N_step (state', fp', outs) ->
        t.transitions <- t.transitions + 1;
        Obs.Metrics.incr t.o.c_transitions;
        check_budget t;
        let node = m.env.Envelope.dst in
        let pentries =
          List.map (fun (env, fp) -> register_message t env fp) outs
        in
        let produces = List.map (fun e -> e.net_fp) pentries in
        (* The step record precedes any record the new state causes
           (prelim / soundness / witness), preserving causal order. *)
        if t.tracing then
          record_net_step t m entry ~fp_after:fp' ~pentries;
        let event =
          {
            label = m.net_fp;
            kind = Net_event m.net_id;
            requires = Some m.net_fp;
            produces;
          }
        in
        let changed =
          if Fingerprint.equal fp' entry.fp then begin
            (* Self-loop predecessor (Fig. 9 line 14 with s' = s): the
               event did not change the node state but its message
               productions matter to other nodes' soundness DAGs —
               e.g. a tree node forwarding a token untouched. *)
            if
              produces <> []
              && List.length entry.preds < t.config.max_preds_per_entry
            then
              entry.preds <- { prev = Some entry.idx; event } :: entry.preds;
            false
          end
          else
            add_next_state t ~node ~state:state' ~fp:fp'
              ~history:
                (if t.config.use_history then
                   Fingerprint.Set.add m.net_fp entry.history
                 else entry.history)
              ~depth:(entry.depth + 1) ~local_count:entry.local_count
              ~crashes:entry.crashes
              ~pred:{ prev = Some entry.idx; event }
        in
        changed || produces <> []

  (* The apply half under a per-delivery handler-family frame
     ("deliver:Accept"): nested combination/soundness frames then
     attribute to the handler whose new state triggered them.  Hot
     push/pop — no clock, no closure; the exception match keeps the
     stack balanced when [check_budget] raises [Stop].  Zero cost
     without a profiler. *)
  let apply_net t (m : net_entry) (entry : 'k entry) comp =
    match t.o.prof with
    | None -> apply_net_seq t m entry comp
    | Some p -> (
        Obs.Prof.push p (net_frame m);
        match apply_net_seq t m entry comp with
        | r ->
            Obs.Prof.pop p;
            r
        | exception e ->
            Obs.Prof.pop p;
            raise e)

  let try_net_event t (m : net_entry) (entry : 'k entry) =
    apply_net t m entry (compute_net t m entry)

  type act_step =
    | A_assert
    | A_step of
        P.state
        * Fingerprint.t
        * (P.message Envelope.t * Fingerprint.t) list

  type act_compute =
    | A_blocked  (* local-action bound or depth gate *)
    | A_steps of (P.action * act_step) list

  let compute_actions t node (entry : 'k entry) =
    let bound_ok =
      match t.config.local_action_bound with
      | Some b -> entry.local_count < b
      | None -> true
    in
    if bound_ok && depth_allows t (entry.depth + 1) then
      A_steps
        (List.map
           (fun action ->
             ( action,
               match
                 timed t t.ph_handler_us (fun () ->
                     match P.handle_action ~self:node entry.state action with
                     | exception Dsm.Protocol.Local_assert _ -> None
                     | state', out -> Some (state', out))
               with
               | None -> A_assert
               | Some (state', out) ->
                   timed t t.ph_fingerprint_us (fun () ->
                       A_step
                         ( state',
                           Fingerprint.of_value state',
                           List.map
                             (fun env -> (env, Fingerprint.of_value env))
                             out )) ))
           (P.enabled_actions ~self:node entry.state))
    else A_blocked

  let apply_one_action t node (entry : 'k entry) action step progress =
    t.transitions <- t.transitions + 1;
    Obs.Metrics.incr t.o.c_transitions;
    check_budget t;
    match step with
    | A_assert ->
        t.local_assert_drops <- t.local_assert_drops + 1;
        Obs.Metrics.incr t.o.c_local_drops;
        if t.tracing then
          record_drop t ~node ~kind:"action" ~src:(-1)
            ~label:(fun () -> action_label t action)
            ~fp_before:entry.fp ~depth:(entry.depth + 1);
        progress
    | A_step (state', fp', outs) ->
        let pentries =
          List.map (fun (env, fp) -> register_message t env fp) outs
        in
        let produces = List.map (fun e -> e.net_fp) pentries in
        if t.tracing then
          record_act_step t ~node action entry ~fp_after:fp' ~pentries;
        let changed =
          if Fingerprint.equal fp' entry.fp then false
          else
            let event =
              {
                label = Fingerprint.of_value (node, action);
                kind = Action_event action;
                requires = None;
                produces;
              }
            in
            add_next_state t ~node ~state:state' ~fp:fp'
              ~history:entry.history ~depth:(entry.depth + 1)
              ~local_count:(entry.local_count + 1) ~crashes:entry.crashes
              ~pred:{ prev = Some entry.idx; event }
        in
        progress || changed || produces <> []

  let apply_actions t node (entry : 'k entry) = function
    | A_blocked -> false
    | A_steps steps ->
        List.fold_left
          (fun progress (action, step) ->
            match t.o.prof with
            | None -> apply_one_action t node entry action step progress
            | Some p -> (
                (* Per-action frame ("action:Propose"), like the
                   delivery path. *)
                Obs.Prof.push p (action_frame t action);
                match apply_one_action t node entry action step progress with
                | r ->
                    Obs.Prof.pop p;
                    r
                | exception e ->
                    Obs.Prof.pop p;
                    raise e))
          false steps

  let try_actions t node (entry : 'k entry) =
    apply_actions t node entry (compute_actions t node entry)

  (* Crash-recovery expansion: a crash is a local event that rewrites
     the node state through [P.on_recover] — requires no message,
     produces none — so soundness schedules it like any other history
     entry.  Bounded per path by [crash_budget]; a recovery that lands
     on the same fingerprint is a no-op and adds nothing.  The pass is
     sequential even under a pool: it is one handler call per newly
     visited state, far off the hot path, and sequencing keeps the
     store layout identical at any domain count. *)
  let crash_step t node (entry : 'k entry) =
    if entry.crashes >= t.config.crash_budget then false
    else if not (depth_allows t (entry.depth + 1)) then false
    else begin
      let state' =
        timed t t.ph_handler_us (fun () -> P.on_recover ~self:node entry.state)
      in
      let fp' =
        timed t t.ph_fingerprint_us (fun () -> Fingerprint.of_value state')
      in
      t.transitions <- t.transitions + 1;
      Obs.Metrics.incr t.o.c_transitions;
      check_budget t;
      if Fingerprint.equal fp' entry.fp then false
      else begin
        if t.tracing then record_crash_step t ~node entry ~fp_after:fp';
        let event =
          {
            label = t.crash_labels.(node).(entry.crashes);
            kind = Crash_event;
            requires = None;
            produces = [];
          }
        in
        add_next_state t ~node ~state:state' ~fp:fp' ~history:entry.history
          ~depth:(entry.depth + 1) ~local_count:entry.local_count
          ~crashes:(entry.crashes + 1)
          ~pred:{ prev = Some entry.idx; event }
      end
    end

  let try_crash t node (entry : 'k entry) =
    match t.o.prof with
    | None -> crash_step t node entry
    | Some p -> (
        Obs.Prof.push p "crash";
        match crash_step t node entry with
        | r ->
            Obs.Prof.pop p;
            r
        | exception e ->
            Obs.Prof.pop p;
            raise e)

  let net_chunk = 16
  let action_chunk = 8

  let round t =
    let progress = ref false in
    (* Network events: each message visits the states of its
       destination that it has not been applied to yet (§4.2); messages
       generated during this round wait for the next one. *)
    let net_len = Vec.length t.net in
    for mi = 0 to net_len - 1 do
      let m = Vec.get t.net mi in
      let store = t.stores.(m.env.Envelope.dst) in
      let upto = Vec.length store in
      let from = m.cursor in
      if from < upto then begin
        m.cursor <- upto;
        progress := true;
        match t.pool with
        | Some pool ->
            (* The compute half reads only entries below [upto], all of
               which exist before the batch is published. *)
            let comps =
              Par.Pool.tabulate pool ~chunk:net_chunk (upto - from) (fun i ->
                  compute_net t m (Vec.get store (from + i)))
            in
            for i = 0 to upto - from - 1 do
              if apply_net t m (Vec.get store (from + i)) comps.(i) then
                progress := true
            done
        | None ->
            for si = from to upto - 1 do
              if try_net_event t m (Vec.get store si) then progress := true
            done
      end
    done;
    (* Local events: expand each newly visited node state once. *)
    for n = 0 to P.num_nodes - 1 do
      let store = t.stores.(n) in
      let upto = Vec.length store in
      let from = t.action_cursor.(n) in
      if from < upto then begin
        t.action_cursor.(n) <- upto;
        progress := true;
        match t.pool with
        | Some pool ->
            let comps =
              Par.Pool.tabulate pool ~chunk:action_chunk (upto - from)
                (fun i -> compute_actions t n (Vec.get store (from + i)))
            in
            for i = 0 to upto - from - 1 do
              if apply_actions t n (Vec.get store (from + i)) comps.(i) then
                progress := true
            done
        | None ->
            for si = from to upto - 1 do
              if try_actions t n (Vec.get store si) then progress := true
            done
      end
    done;
    (* Crash events: visit each node state once, like the action pass. *)
    if t.config.crash_budget > 0 then
      for n = 0 to P.num_nodes - 1 do
        let store = t.stores.(n) in
        let upto = Vec.length store in
        let from = t.crash_cursor.(n) in
        if from < upto then begin
          t.crash_cursor.(n) <- upto;
          progress := true;
          for si = from to upto - 1 do
            if try_crash t n (Vec.get store si) then progress := true
          done
        end
      done;
    !progress

  (* Parallel a-posteriori verification: the paper's third contribution
     notes that with exploration, system-state creation and soundness
     verification decoupled, "the model checking process can be
     embarrassingly parallelized".  The predecessor DAGs are extracted
     on the main domain (they read the mutable stores, which are
     quiescent by now); the pure [Soundness.check_dag] calls fan out
     across worker domains; results are folded back in deterministic
     cache order. *)
  let verify_parallel t (pending : 'k rejected array) =
    let t0 = now () in
    let jobs =
      Array.map
        (fun r ->
          let by_label :
              (Dsm.Node_id.t * Fingerprint.t, event_info) Hashtbl.t =
            Hashtbl.create 64
          in
          let graphs =
            Array.map (fun e -> build_graph t e by_label) r.r_tuple
          in
          (r, graphs, by_label))
        pending
    in
    let n = Array.length jobs in
    let verdicts = Array.make n Soundness.Invalid in
    let domains = max 1 t.config.verify_domains in
    let next = Atomic.make 0 in
    let budget = t.config.soundness_budget in
    (* Worker domains record into the scope concurrently: the
       histogram/counter cells are atomic, per-domain effort merges
       without locks (the "per-domain buffers or atomic counters"
       requirement of always-on instrumentation). *)
    let soundness_obs = t.o.soundness_obs in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let _, graphs, _ = jobs.(i) in
          let j0 = now () in
          verdicts.(i) <-
            Soundness.check_dag ?obs:soundness_obs ~budget ~initial_net:[]
              graphs;
          Obs.Metrics.observe t.o.h_soundness_us
            (int_of_float (1e6 *. (now () -. j0)));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (domains - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    t.soundness_calls <- t.soundness_calls + n;
    t.sequences_checked <- t.sequences_checked + n;
    Obs.Metrics.add t.o.c_soundness_calls n;
    Obs.Metrics.add t.o.c_sequences n;
    t.soundness_time <- t.soundness_time +. (now () -. t0);
    (* Fold the verdicts deterministically.  Trace records are emitted
       here, not on the worker domains, so their order is the cache
       order regardless of scheduling; the search-step count stays on
       the workers and is reported as -1. *)
    let record_par_verdict verdict_str witness_events =
      ignore
        (Obs.Trace.emit t.config.trace ~ev:"soundness"
           [
             ("kind", Dsm.Json.String "dag");
             ("steps", Dsm.Json.Int (-1));
             ("verdict", Dsm.Json.String verdict_str);
             ( "witness_events",
               match witness_events with
               | Some n -> Dsm.Json.Int n
               | None -> Dsm.Json.Null );
           ])
    in
    Array.iteri
      (fun i verdict ->
        let r, _, by_label = jobs.(i) in
        match verdict with
        | Soundness.Invalid ->
            t.soundness_rejections <- t.soundness_rejections + 1;
            Obs.Metrics.incr t.o.c_rejections;
            if t.tracing then begin
              record_par_verdict "invalid" None;
              record_reject t r.r_violation r.r_depth ~why:"invalid"
            end
        | Soundness.Budget_exhausted ->
            t.soundness_rejections <- t.soundness_rejections + 1;
            t.soundness_budget_exhausted <- t.soundness_budget_exhausted + 1;
            Obs.Metrics.incr t.o.c_rejections;
            Obs.Metrics.incr t.o.c_budget_exhausted;
            if t.tracing then begin
              record_par_verdict "budget_exhausted" None;
              record_reject t r.r_violation r.r_depth ~why:"budget_exhausted"
            end
        | Soundness.Valid order ->
            if t.tracing then
              record_par_verdict "valid" (Some (List.length order));
            if t.sound_violation = None then begin
              let schedule =
                List.map
                  (fun (sev : Soundness.event) ->
                    match Hashtbl.find_opt by_label (sev.node, sev.label) with
                    | Some e -> step_of_event t sev.node e
                    | None -> assert false)
                  order
              in
              t.sound_violation <-
                Some
                  {
                    system = Array.copy r.r_system;
                    violation = r.r_violation;
                    schedule;
                    system_depth = List.length schedule;
                  };
              Obs.event t.o.scope "lmc.sound_violation"
                ~fields:
                  [
                    ( "invariant",
                      Dsm.Json.String r.r_violation.Dsm.Invariant.invariant );
                    ( "detail",
                      Dsm.Json.String r.r_violation.Dsm.Invariant.detail );
                    ("witness_events", Dsm.Json.Int (List.length schedule));
                  ];
              if t.tracing then record_witness t r.r_violation schedule
            end)
      verdicts

  (* Final verification pass.  In deferred mode this is where all the
     preliminary violations are decided; otherwise it re-verifies
     soundness-rejected ones, whose later-added predecessor pointers
     can have made them schedulable (§4.2's completeness caveat and
     suggested remedy). *)
  let reverify_rejected t =
    let wanted =
      t.config.verify_soundness
      && (t.config.defer_soundness || t.config.reverify_rejected)
    in
    if wanted then begin
      let pending = Vec.to_array t.rejected in
      Vec.clear t.rejected;
      Obs.span t.o.scope "lmc.reverify"
        ~fields:
          [
            ("pending", Dsm.Json.Int (Array.length pending));
            ("verify_domains", Dsm.Json.Int t.config.verify_domains);
          ]
        (fun () ->
          Obs.frame t.o.scope "reverify" @@ fun () ->
          if
            t.config.verify_domains > 1
            && not t.config.soundness_via_sequences
            && not (t.config.stop_on_violation && t.sound_violation <> None)
          then verify_parallel t pending
          else
            Array.iter
              (fun r ->
                if
                  not
                    (t.config.stop_on_violation && t.sound_violation <> None)
                then
                  verify_soundness
                    ~cache_rejection:t.config.defer_soundness t r.r_tuple
                    r.r_system r.r_violation r.r_depth)
              pending)
    end

  let check_initial t snapshot =
    if not t.config.create_system_states then ignore snapshot
    else
    match t.strategy with
    | General ->
        let tuple = Array.init P.num_nodes (fun n -> Vec.get t.stores.(n) 0) in
        consider_combo t tuple
    | Invariant_specific { conflict; _ } ->
        for i = 0 to P.num_nodes - 1 do
          for j = i + 1 to P.num_nodes - 1 do
            let ei = Vec.get t.stores.(i) 0 and ej = Vec.get t.stores.(j) 0 in
            match (ei.key, ej.key) with
            | Some ki, Some kj when conflict ki kj ->
                let tuple =
                  Array.init P.num_nodes (fun n -> Vec.get t.stores.(n) 0)
                in
                consider_combo t tuple
            | _ -> ()
          done
        done;
        ignore snapshot
    | Automatic ->
        let roots = Array.init P.num_nodes (fun n -> Vec.get t.stores.(n) 0) in
        let fire =
          match Dsm.Invariant.pairwise_witness t.invariant with
          | Some pair ->
              let hit = ref false in
              for i = 0 to P.num_nodes - 1 do
                for j = i + 1 to P.num_nodes - 1 do
                  if pair i roots.(i).state j roots.(j).state then hit := true
                done
              done;
              !hit
          | None -> (
              match Dsm.Invariant.nodewise_witness t.invariant with
              | Some local ->
                  Array.exists (fun (e : 'k entry) -> local e.node e.state) roots
              | None -> true)
        in
        if fire then consider_combo t roots

  let retained_bytes t =
    let entry_bytes acc (e : 'k entry) =
      acc
      + Fingerprint.serialized_size e.state
      + Fingerprint.size
      + (Fingerprint.Set.cardinal e.history * Fingerprint.size)
      + List.fold_left
          (fun acc (p : pred) ->
            acc + 48 + (List.length p.event.produces * Fingerprint.size))
          0 e.preds
      + 64 (* store slot + hash-table entry *)
    in
    let stores_bytes =
      Array.fold_left
        (fun acc store -> Vec.fold_left entry_bytes acc store)
        0 t.stores
    in
    let net_bytes =
      Vec.fold_left
        (fun acc (m : net_entry) ->
          acc + Fingerprint.serialized_size m.env + Fingerprint.size + 48)
        0 t.net
    in
    stores_bytes + net_bytes

  let exec config ~strategy ~invariant snapshot pool =
    let tracing = Obs.Trace.enabled config.trace in
    let t =
      {
        config;
        crash_labels =
          Array.init
            (if config.crash_budget > 0 then P.num_nodes else 0)
            (fun n ->
              Array.init config.crash_budget (fun k ->
                  Fingerprint.of_value ("crash", n, k)));
        o = make_obs_handles config;
        tracing;
        soundness_trace = (if tracing then Some config.trace else None);
        snapshot = Array.copy snapshot;
        ph_handler_us = Atomic.make 0;
        ph_fingerprint_us = Atomic.make 0;
        ph_invariant_us = Atomic.make 0;
        timed_tick = 0;
        act_lbl = Hashtbl.create 64;
        strategy;
        invariant;
        stores = Array.init P.num_nodes (fun _ -> Vec.create ());
        by_fp = Array.init P.num_nodes (fun _ -> Hashtbl.create 256);
        action_cursor = Array.make P.num_nodes 0;
        crash_cursor = Array.make P.num_nodes 0;
        net = Vec.create ();
        net_by_fp = Hashtbl.create 256;
        seen_combos = Hashtbl.create 256;
        reduce = not (Dsm.Symmetry.is_trivial config.symmetry);
        orbit_clean = Hashtbl.create 4096;
        rejected = Vec.create ();
        pool;
        combo_buf = Vec.create ();
        started = now ();
        transitions = 0;
        system_states_created = 0;
        store_hits = 0;
        orbit_hits = 0;
        preliminary_violations = 0;
        soundness_calls = 0;
        sequences_checked = 0;
        soundness_rejections = 0;
        local_assert_drops = 0;
        soundness_budget_exhausted = 0;
        sound_violation = None;
        system_state_time = 0.;
        soundness_time = 0.;
        max_system_depth = 0;
        max_node_depth = 0;
        truncated = false;
      }
    in
    (* Fig. 9 lines 2-4: LS_n starts from the live state; I+ empty. *)
    Array.iteri
      (fun n state ->
        let fp = Fingerprint.of_value state in
        let entry =
          {
            idx = 0;
            node = n;
            root = true;
            state;
            fp;
            history = Fingerprint.Set.empty;
            depth = 0;
            local_count = 0;
            crashes = 0;
            key = abstract_key t state;
            preds = [];
            fp_hex = None;
          }
        in
        ignore (Vec.push t.stores.(n) entry);
        Hashtbl.replace t.by_fp.(n) fp 0;
        (match config.persist with
        | Some p -> ignore (Store.Fp_set.add p.p_nodes.(n) fp)
        | None -> ());
        Obs.Metrics.incr t.o.c_node_states)
      snapshot;
    let explore_domains =
      match pool with Some p -> Par.Pool.domains p | None -> 1
    in
    Obs.event t.o.scope "lmc.run.start"
      ~fields:
        [
          ("protocol", Dsm.Json.String P.name);
          ("nodes", Dsm.Json.Int P.num_nodes);
          ("domains", Dsm.Json.Int explore_domains);
          ("verify_domains", Dsm.Json.Int config.verify_domains);
        ];
    if tracing then
      ignore
        (Obs.Trace.emit config.trace ~ev:"lmc_run"
           [
             ("protocol", Dsm.Json.String P.name);
             ("nodes", Dsm.Json.Int P.num_nodes);
             ("domains", Dsm.Json.Int explore_domains);
             ("verify_domains", Dsm.Json.Int config.verify_domains);
           ]);
    (try
       Obs.frame t.o.scope "lmc" @@ fun () ->
       check_initial t snapshot;
       if not (t.config.stop_on_violation && t.sound_violation <> None) then begin
         let rounds = ref 0 in
         let continue = ref true in
         while !continue do
           check_budget t;
           incr rounds;
           Obs.span t.o.scope "lmc.round"
             ~fields:[ ("round", Dsm.Json.Int !rounds) ]
             (fun () -> continue := round t)
         done;
         reverify_rejected t
       end
     with Stop -> ());
    let elapsed = now () -. t.started in
    let node_states = Array.map Vec.length t.stores in
    Obs.event t.o.scope "lmc.run.end"
      ~fields:
        [
          ("protocol", Dsm.Json.String P.name);
          ("transitions", Dsm.Json.Int t.transitions);
          ( "node_states",
            Dsm.Json.Int (Array.fold_left ( + ) 0 node_states) );
          ("net_messages", Dsm.Json.Int (Vec.length t.net));
          ("system_states", Dsm.Json.Int t.system_states_created);
          ("preliminary_violations", Dsm.Json.Int t.preliminary_violations);
          ("soundness_calls", Dsm.Json.Int t.soundness_calls);
          ("sound_violation", Dsm.Json.Bool (t.sound_violation <> None));
          ("store_hits", Dsm.Json.Int t.store_hits);
          ("symmetry", Dsm.Json.String (Dsm.Symmetry.name config.symmetry));
          ("orbit_hits", Dsm.Json.Int t.orbit_hits);
          ("completed", Dsm.Json.Bool (not t.truncated));
          ("domains", Dsm.Json.Int explore_domains);
          ("verify_domains", Dsm.Json.Int config.verify_domains);
          ("elapsed_s", Dsm.Json.Float elapsed);
        ];
    (match config.persist with
    | Some p ->
        Obs.Metrics.set
          (Obs.gauge t.o.scope "lmc.store_occupancy")
          (Store.Fp_set.occupancy p.p_combos);
        let considered = t.store_hits + t.system_states_created in
        if considered > 0 then
          Obs.Metrics.set
            (Obs.gauge t.o.scope "lmc.store_hit_rate")
            (float_of_int t.store_hits /. float_of_int considered)
    | None -> ());
    if tracing then begin
      (* Per-phase time attribution.  Handler / fingerprint / invariant
         are measured wherever they ran (worker domains included);
         system-state and soundness phases reuse the result's
         accounting; [lmc report] derives exploration/pool residue. *)
      ignore
        (Obs.Trace.emit config.trace ~ev:"phases"
           [
             ("handler_us", Dsm.Json.Int (Atomic.get t.ph_handler_us));
             ( "fingerprint_us",
               Dsm.Json.Int (Atomic.get t.ph_fingerprint_us) );
             ("invariant_us", Dsm.Json.Int (Atomic.get t.ph_invariant_us));
             ( "soundness_us",
               Dsm.Json.Int (int_of_float (1e6 *. t.soundness_time)) );
             ( "system_state_us",
               Dsm.Json.Int (int_of_float (1e6 *. t.system_state_time)) );
             ("elapsed_us", Dsm.Json.Int (int_of_float (1e6 *. elapsed)));
           ]);
      ignore
        (Obs.Trace.emit config.trace ~ev:"lmc_end"
           [
             ("transitions", Dsm.Json.Int t.transitions);
             ( "node_states",
               Dsm.Json.Int (Array.fold_left ( + ) 0 node_states) );
             ("net_messages", Dsm.Json.Int (Vec.length t.net));
             ("system_states", Dsm.Json.Int t.system_states_created);
             ( "preliminary_violations",
               Dsm.Json.Int t.preliminary_violations );
             ("sound_violation", Dsm.Json.Bool (t.sound_violation <> None));
             ( "symmetry",
               Dsm.Json.String (Dsm.Symmetry.name config.symmetry) );
             ("orbit_hits", Dsm.Json.Int t.orbit_hits);
             ("completed", Dsm.Json.Bool (not t.truncated));
           ]);
      Obs.Trace.flush config.trace
    end;
    {
      node_states;
      total_node_states = Array.fold_left ( + ) 0 node_states;
      transitions = t.transitions;
      net_messages = Vec.length t.net;
      system_states_created = t.system_states_created;
      preliminary_violations = t.preliminary_violations;
      sound_violation = t.sound_violation;
      soundness_calls = t.soundness_calls;
      sequences_checked = t.sequences_checked;
      soundness_rejections = t.soundness_rejections;
      soundness_budget_exhausted = t.soundness_budget_exhausted;
      local_assert_drops = t.local_assert_drops;
      store_hits = t.store_hits;
      orbit_hits = t.orbit_hits;
      completed = not t.truncated;
      elapsed;
      system_state_time = t.system_state_time;
      soundness_time = t.soundness_time;
      retained_bytes = retained_bytes t;
      max_system_depth = t.max_system_depth;
      max_node_depth = t.max_node_depth;
    }

  let run config ~strategy ~invariant snapshot =
    if Array.length snapshot <> P.num_nodes then
      invalid_arg "Checker.run: snapshot size does not match num_nodes";
    if config.domains < 1 then
      invalid_arg "Checker.run: domains must be >= 1";
    (match config.persist with
    | Some p when Array.length p.p_nodes <> P.num_nodes ->
        invalid_arg "Checker.run: persist has wrong node count"
    | _ -> ());
    match config.pool with
    | Some _ as pool ->
        (* Caller-owned pool (e.g. Online_mc sharing one across
           restarts): borrow it, never shut it down. *)
        exec config ~strategy ~invariant snapshot pool
    | None when config.domains > 1 ->
        Par.Pool.with_pool ~obs:config.obs config.domains (fun pool ->
            exec config ~strategy ~invariant snapshot (Some pool))
    | None -> exec config ~strategy ~invariant snapshot None
end
