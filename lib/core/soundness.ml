type event = {
  node : Dsm.Node_id.t;
  label : Dsm.Fingerprint.t;
  requires : Dsm.Fingerprint.t option;
  produces : Dsm.Fingerprint.t list;
}

type sequence = event list

type verdict = Valid of event list | Invalid | Budget_exhausted

(* Multiset of fingerprints as a hash table of counts. *)
module Net = struct
  let create fps =
    let t = Hashtbl.create 64 in
    List.iter
      (fun fp ->
        Hashtbl.replace t fp (1 + Option.value ~default:0 (Hashtbl.find_opt t fp)))
      fps;
    t

  let available t fp =
    match Hashtbl.find_opt t fp with Some c -> c > 0 | None -> false

  let consume t fp =
    match Hashtbl.find_opt t fp with
    | Some c when c > 0 -> Hashtbl.replace t fp (c - 1)
    | _ -> invalid_arg "Soundness.Net.consume: message not available"

  let produce t fp =
    Hashtbl.replace t fp (1 + Option.value ~default:0 (Hashtbl.find_opt t fp))
end

exception Out_of_budget

(* Per-call observability: search-step histograms separate the cheap
   prefilter rejections (0 steps) from the searches that actually
   backtrack, and the verdict counters make "how often does soundness
   save us" a first-class number.  All cells are atomic, so the
   deferred-verification worker domains record concurrently. *)
let record obs ~kind ~steps verdict =
  match obs with
  | None -> ()
  | Some scope ->
      Obs.Metrics.observe (Obs.histogram scope "soundness.steps") steps;
      Obs.Metrics.incr (Obs.counter scope ("soundness.checks." ^ kind));
      Obs.Metrics.incr
        (Obs.counter scope
           (match verdict with
           | Valid _ -> "soundness.valid"
           | Invalid -> "soundness.invalid"
           | Budget_exhausted -> "soundness.budget_exhausted"))

let verdict_string = function
  | Valid _ -> "valid"
  | Invalid -> "invalid"
  | Budget_exhausted -> "budget_exhausted"

(* Flight-recorder view of the same call: one [ev = "soundness"]
   record per interleaving search, with its effort and outcome.  Only
   wired on the sequential verification path — worker-domain emissions
   would make record order scheduling-dependent. *)
let record_trace trace ~kind ~steps verdict =
  match trace with
  | None -> ()
  | Some tr ->
      ignore
        (Obs.Trace.emit tr ~ev:"soundness"
           [
             ("kind", Dsm.Json.String kind);
             ("steps", Dsm.Json.Int steps);
             ("verdict", Dsm.Json.String (verdict_string verdict));
             ( "witness_events",
               match verdict with
               | Valid order -> Dsm.Json.Int (List.length order)
               | Invalid | Budget_exhausted -> Dsm.Json.Null );
           ])

(* Necessary condition checked before any search: every consumed
   message must be produced somewhere (by another event or the initial
   net), with multiplicity.  Most invalid combinations of node states
   fail here, in time linear in the number of events. *)
let balanced ~initial_net sequences =
  let counts = Hashtbl.create 64 in
  let bump fp d =
    Hashtbl.replace counts fp (d + Option.value ~default:0 (Hashtbl.find_opt counts fp))
  in
  List.iter (fun fp -> bump fp 1) initial_net;
  Array.iter
    (List.iter (fun ev ->
         List.iter (fun fp -> bump fp 1) ev.produces;
         match ev.requires with Some fp -> bump fp (-1) | None -> ()))
    sequences;
  Hashtbl.fold (fun _ c ok -> ok && c >= 0) counts true

let check ?obs ?trace ?(budget = 200_000) ~initial_net sequences =
  let n = Array.length sequences in
  let remaining = Array.map (fun s -> s) sequences in
  let net = Net.create initial_net in
  let steps = ref 0 in
  (* Positions identify a configuration: remaining lengths per node
     determine the whole search state (the net is a function of the
     executed prefix).  Failed configurations are memoised. *)
  let failed = Hashtbl.create 256 in
  let config_key () =
    let b = Buffer.create (4 * n) in
    Array.iter (fun s -> Buffer.add_string b (string_of_int (List.length s)); Buffer.add_char b ',') remaining;
    Buffer.contents b
  in
  let enabled ev =
    match ev.requires with None -> true | Some fp -> Net.available net fp
  in
  let apply ev rest i =
    remaining.(i) <- rest;
    (match ev.requires with Some fp -> Net.consume net fp | None -> ());
    List.iter (Net.produce net) ev.produces
  in
  let undo ev seq i =
    List.iter
      (fun fp ->
        match Hashtbl.find_opt net fp with
        | Some c when c > 0 -> Hashtbl.replace net fp (c - 1)
        | _ -> assert false)
      ev.produces;
    (match ev.requires with Some fp -> Net.produce net fp | None -> ());
    remaining.(i) <- seq
  in
  let rec dfs order =
    incr steps;
    if !steps > budget then raise Out_of_budget;
    let all_done = Array.for_all (fun s -> s = []) remaining in
    if all_done then Some (List.rev order)
    else begin
      let key = config_key () in
      if Hashtbl.mem failed key then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          (match remaining.(!i) with
          | ev :: rest when enabled ev ->
              let saved = remaining.(!i) in
              apply ev rest !i;
              (match dfs (ev :: order) with
              | Some _ as ok -> result := ok
              | None -> undo ev saved !i)
          | _ -> ());
          incr i
        done;
        if !result = None then Hashtbl.replace failed key ();
        !result
      end
    end
  in
  let verdict =
    if not (balanced ~initial_net sequences) then Invalid
    else
      match dfs [] with
      | Some order -> Valid order
      | None -> Invalid
      | exception Out_of_budget -> Budget_exhausted
  in
  record obs ~kind:"sequence" ~steps:!steps verdict;
  record_trace trace ~kind:"sequence" ~steps:!steps verdict;
  verdict

type node_graph = {
  root : int;
  target : int;
  edges : (int * event * int) list;
}

(* Necessary condition, checked before any search: every message that
   is consumed on EVERY root->target path of some component must be
   producible — by any edge of any component, or by the initial net.
   Most hopeless combinations (a component whose history depends on a
   node pinned at its snapshot state) die here in time linear in the
   closure, instead of burning a full product search each. *)
let feasible ~initial_net graphs =
  let may_produce =
    let s = ref (Dsm.Fingerprint.Set.of_list initial_net) in
    Array.iter
      (fun g ->
        List.iter
          (fun (_, ev, _) ->
            List.iter
              (fun fp -> s := Dsm.Fingerprint.Set.add fp !s)
              ev.produces)
          g.edges)
      graphs;
    !s
  in
  let graph_ok g =
    if g.target = g.root then true
    else begin
      let incoming = Hashtbl.create 64 in
      List.iter
        (fun (u, ev, v) ->
          Hashtbl.replace incoming v
            ((u, ev.requires)
            :: Option.value ~default:[] (Hashtbl.find_opt incoming v)))
        g.edges;
      (* must_consume(v): messages consumed on every cycle-free
         root->v path; [None] = no root path.  Memoisation across
         on-path contexts can only shrink the set, which keeps the
         filter sound. *)
      let memo : (int, Dsm.Fingerprint.Set.t option) Hashtbl.t =
        Hashtbl.create 64
      in
      let rec must v on_path =
        if v = g.root then Some Dsm.Fingerprint.Set.empty
        else if List.mem v on_path then None
        else
          match Hashtbl.find_opt memo v with
          | Some r -> r
          | None ->
              let contribs =
                List.filter_map
                  (fun (u, req) ->
                    match must u (v :: on_path) with
                    | None -> None
                    | Some s -> (
                        match req with
                        | Some fp -> Some (Dsm.Fingerprint.Set.add fp s)
                        | None -> Some s))
                  (Option.value ~default:[] (Hashtbl.find_opt incoming v))
              in
              let r =
                match contribs with
                | [] -> None
                | first :: rest ->
                    Some
                      (List.fold_left Dsm.Fingerprint.Set.inter first rest)
              in
              Hashtbl.replace memo v r;
              r
      in
      match must g.target [] with
      | None -> false (* target not reachable from the snapshot state *)
      | Some required -> Dsm.Fingerprint.Set.subset required may_produce
    end
  in
  Array.for_all graph_ok graphs

let check_dag ?obs ?trace ?(budget = 200_000) ~initial_net graphs =
  let n = Array.length graphs in
  (* Adjacency: per node, state index -> outgoing (event, next). *)
  let adj =
    Array.map
      (fun g ->
        let t = Hashtbl.create 64 in
        List.iter
          (fun (from_, ev, to_) ->
            Hashtbl.replace t from_
              ((ev, to_)
              :: Option.value ~default:[] (Hashtbl.find_opt t from_)))
          g.edges;
        t)
      graphs
  in
  let positions = Array.map (fun g -> g.root) graphs in
  let net = Net.create initial_net in
  let steps = ref 0 in
  let failed = Hashtbl.create 256 in
  (* Self-edges and cycles allow walks that return to an earlier
     configuration before it is memoised as failed; an on-path set cuts
     them. *)
  let on_path = Hashtbl.create 64 in
  let config_key () =
    let b = Buffer.create 64 in
    Array.iter
      (fun p ->
        Buffer.add_string b (string_of_int p);
        Buffer.add_char b ',')
      positions;
    (* The net is NOT a function of positions in a DAG (different paths
       to the same vertex produce different message multisets), so it
       is part of the memo key — in canonical order. *)
    let entries =
      Hashtbl.fold (fun fp c acc -> if c > 0 then (fp, c) :: acc else acc) net []
    in
    List.iter
      (fun (fp, c) -> Buffer.add_string b (Printf.sprintf "%s:%d;" fp c))
      (List.sort compare entries);
    Digest.string (Buffer.contents b)
  in
  let enabled ev =
    match ev.requires with None -> true | Some fp -> Net.available net fp
  in
  let apply ev =
    (match ev.requires with Some fp -> Net.consume net fp | None -> ());
    List.iter (Net.produce net) ev.produces
  in
  let undo ev =
    List.iter
      (fun fp ->
        match Hashtbl.find_opt net fp with
        | Some c when c > 0 -> Hashtbl.replace net fp (c - 1)
        | _ -> assert false)
      ev.produces;
    match ev.requires with Some fp -> Net.produce net fp | None -> ()
  in
  (* Returns (result, clean): [clean] is false when the subtree was cut
     by the on-path guard somewhere, in which case the failure must not
     be cached — the same configuration reached along another path
     could still succeed. *)
  let rec dfs order =
    incr steps;
    if !steps > budget then raise Out_of_budget;
    let rec arrived i =
      i >= n || (positions.(i) = graphs.(i).target && arrived (i + 1))
    in
    if arrived 0 then (Some (List.rev order), true)
    else begin
      let key = config_key () in
      if Hashtbl.mem failed key then (None, true)
      else if Hashtbl.mem on_path key then (None, false)
      else begin
        Hashtbl.replace on_path key ();
        let result = ref None in
        let clean = ref true in
        let i = ref 0 in
        while !result = None && !i < n do
          let here = positions.(!i) in
          let moves =
            Option.value ~default:[] (Hashtbl.find_opt adj.(!i) here)
          in
          (* a self-edge whose net effect is neutral is a no-op move *)
          let neutral (ev, next) =
            next = here
            &&
            match ev.requires with
            | None -> ev.produces = []
            | Some r -> ev.produces = [ r ]
          in
          let rec try_moves = function
            | [] -> ()
            | ((ev, next) as move) :: rest ->
                if !result = None && (not (neutral move)) && enabled ev
                then begin
                  positions.(!i) <- next;
                  apply ev;
                  (match dfs (ev :: order) with
                  | (Some _ as ok), _ -> result := ok
                  | None, sub_clean ->
                      if not sub_clean then clean := false;
                      undo ev;
                      positions.(!i) <- here);
                  if !result = None then try_moves rest
                end
                else if !result = None then try_moves rest
          in
          try_moves moves;
          incr i
        done;
        Hashtbl.remove on_path key;
        if !result = None && !clean then Hashtbl.replace failed key ();
        (!result, !clean)
      end
    end
  in
  let verdict =
    if not (feasible ~initial_net graphs) then Invalid
    else
      match dfs [] with
      | Some order, _ -> Valid order
      | None, _ -> Invalid
      | exception Out_of_budget -> Budget_exhausted
  in
  record obs ~kind:"dag" ~steps:!steps verdict;
  record_trace trace ~kind:"dag" ~steps:!steps verdict;
  verdict
