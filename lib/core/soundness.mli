(** A-posteriori soundness verification (Fig. 9, [isStateSound] /
    [isSequenceValid], with the efficient implementation of §4.2).

    Combining independently explored node states can yield system
    states no real run produces; a preliminary invariant violation is
    reported to the user only if the per-node event sequences leading
    to the combined states admit a valid total order — one in which
    every network event consumes a message generated earlier.

    The engine works purely on fingerprints: an event carries the hash
    of the message it consumes (if any) and the hashes of the messages
    it generates, so validity checking reduces to multiset bookkeeping
    over hashes — "some integer comparison operations" in the paper's
    words — with no protocol re-execution.

    The paper selects enabled events greedily and argues (technical
    report) that greediness loses nothing.  We use greedy order first
    and fall back to bounded backtracking with memoisation, which is
    never less complete. *)

type event = {
  node : Dsm.Node_id.t;
  label : Dsm.Fingerprint.t;  (** event identity, for reporting *)
  requires : Dsm.Fingerprint.t option;
      (** message consumed; [None] for internal actions, which are
          always enabled *)
  produces : Dsm.Fingerprint.t list;  (** messages generated *)
}

(** Events of one node, oldest first, from the live state to the node
    state under scrutiny. *)
type sequence = event list

type verdict =
  | Valid of event list
      (** a real run exists; the witness total order is returned *)
  | Invalid  (** no interleaving of the sequences is executable *)
  | Budget_exhausted
      (** undecided within [budget] search steps (counts as not-proven,
          so no bug is reported from it) *)

(** [check ~budget ~initial_net sequences] decides whether the [n]
    sequences admit a valid total order.  [initial_net] lists message
    fingerprints already in flight when the sequences start (empty for
    snapshot-rooted checks).  [budget] bounds backtracking steps
    (default 200_000).  [obs] records per-call search effort into the
    scope's registry: a [soundness.steps] histogram plus
    per-kind/per-verdict counters; safe to pass from concurrent
    verification domains.  [trace] additionally records one
    [ev = "soundness"] flight-recorder record per call — the
    interleaving search's kind, effort and verdict; pass it only from
    the sequential verification path (record order must not depend on
    domain scheduling). *)
val check :
  ?obs:Obs.scope ->
  ?trace:Obs.Trace.t ->
  ?budget:int ->
  initial_net:Dsm.Fingerprint.t list ->
  sequence array ->
  verdict

(** {2 DAG-based verification}

    Enumerating explicit event sequences per node state (the paper's
    formulation) samples an exponential path space and can miss the
    one compatible combination.  [check_dag] instead searches the
    product of the per-node {e predecessor DAGs} directly: one
    memoised forward search decides whether {e any} combination of
    paths to the target node states is schedulable — strictly more
    complete than capped sequence enumeration, and usually faster. *)

(** One node's predecessor DAG, restricted to the entries that can
    reach the target: vertices are the checker's node-state indices,
    an edge [(from, event, to)] says executing [event] on state [from]
    yields state [to]. *)
type node_graph = {
  root : int;  (** the snapshot state *)
  target : int;  (** the node state under scrutiny *)
  edges : (int * event * int) list;
}

(** [check_dag ~budget ~initial_net graphs] decides whether every node
    can walk from its root to its target such that the interleaved
    events form a valid run. *)
val check_dag :
  ?obs:Obs.scope ->
  ?trace:Obs.Trace.t ->
  ?budget:int ->
  initial_net:Dsm.Fingerprint.t list ->
  node_graph array ->
  verdict
