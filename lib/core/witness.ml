module Make (P : Dsm.Protocol.S) = struct
  let replay ~init schedule =
    let states = Array.copy init in
    let net = ref Net.Multiset.empty in
    let step_ok step =
      match step with
      | Dsm.Trace.Execute (n, a) -> (
          (* an internal action only happens in a real run when the
             node's driver has it enabled *)
          if not (List.mem a (P.enabled_actions ~self:n states.(n))) then
            false
          else
            match P.handle_action ~self:n states.(n) a with
            | exception Dsm.Protocol.Local_assert _ -> false
            | s', out ->
                states.(n) <- s';
                net := Net.Multiset.add_list out !net;
                true)
      | Dsm.Trace.Deliver env -> (
          match Net.Multiset.remove env !net with
          | None -> false
          | Some net' -> (
              let node = env.Dsm.Envelope.dst in
              match P.handle_message ~self:node states.(node) env with
              | exception Dsm.Protocol.Local_assert _ -> false
              | s', out ->
                  net := Net.Multiset.add_list out net';
                  states.(node) <- s';
                  true))
      | Dsm.Trace.Crash n ->
          (* a crash-recovery is always enabled and emits nothing *)
          states.(n) <- P.on_recover ~self:n states.(n);
          true
    in
    if List.for_all step_ok schedule then Some states else None

  let holds ~init ~predicate schedule =
    match replay ~init schedule with
    | Some final -> predicate final
    | None -> false

  (* Delta debugging over subsequences: first try dropping chunks of
     decreasing size, then single events until a fixpoint — the result
     is 1-minimal. *)
  let minimize ~init ~predicate schedule =
    if not (holds ~init ~predicate schedule) then schedule
    else begin
      let drop_range events from_ until =
        List.filteri (fun i _ -> i < from_ || i >= until) events
      in
      (* one pass at the given chunk size; returns the reduced list *)
      let pass events size =
        let n = List.length events in
        if size < 1 || size > n then events
        else begin
          let rec scan start events =
            if start >= List.length events then events
            else begin
              let candidate =
                drop_range events start
                  (min (start + size) (List.length events))
              in
              if holds ~init ~predicate candidate then
                (* keep scanning from the same offset: the list shrank *)
                scan start candidate
              else scan (start + size) events
            end
          in
          scan 0 events
        end
      in
      let rec shrink events size =
        let reduced = pass events size in
        if size = 1 then
          if List.length reduced < List.length events then
            (* another round of singles until nothing more drops *)
            shrink reduced 1
          else reduced
        else shrink reduced (max 1 (size / 2))
      in
      shrink schedule (max 1 (List.length schedule / 2))
    end

  (* ----- Graphviz rendering ----- *)

  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_dot ?init ?(title = "witness") schedule =
    let b = Buffer.create 1024 in
    Buffer.add_string b (Printf.sprintf "digraph \"%s\" {\n" (escape title));
    Buffer.add_string b "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
    let steps = Array.of_list schedule in
    let lane_events = Array.make P.num_nodes [] in
    Array.iteri
      (fun i step ->
        let node = Dsm.Trace.step_node step in
        lane_events.(node) <- i :: lane_events.(node))
      steps;
    (* one cluster per node, events connected top-to-bottom *)
    Array.iteri
      (fun n events ->
        Buffer.add_string b (Printf.sprintf "  subgraph cluster_%d {\n" n);
        Buffer.add_string b (Printf.sprintf "    label=\"N%d\";\n" n);
        let events = List.rev events in
        List.iter
          (fun i ->
            let label =
              match steps.(i) with
              | Dsm.Trace.Execute (_, a) ->
                  Format.asprintf "%d: %a" (i + 1) P.pp_action a
              | Dsm.Trace.Deliver env ->
                  Format.asprintf "%d: recv %a" (i + 1) P.pp_message
                    env.Dsm.Envelope.payload
              | Dsm.Trace.Crash _ ->
                  Printf.sprintf "%d: crash-recover" (i + 1)
            in
            Buffer.add_string b
              (Printf.sprintf "    e%d [label=\"%s\"];\n" i (escape label)))
          events;
        (match events with
        | first :: rest ->
            ignore
              (List.fold_left
                 (fun prev next ->
                   Buffer.add_string b
                     (Printf.sprintf
                        "    e%d -> e%d [style=dashed, color=gray, \
                         arrowhead=none];\n"
                        prev next);
                   next)
                 first rest)
        | [] -> ());
        Buffer.add_string b "  }\n")
      lane_events;
    (* message arrows: replay to associate each delivery with the step
       that produced the consumed copy *)
    let producers : (P.message Dsm.Envelope.t, int list) Hashtbl.t =
      Hashtbl.create 32
    in
    let produce i env =
      Hashtbl.replace producers env
        (Option.value ~default:[] (Hashtbl.find_opt producers env) @ [ i ])
    in
    let consume env =
      match Hashtbl.find_opt producers env with
      | Some (p :: rest) ->
          Hashtbl.replace producers env rest;
          Some p
      | _ -> None
    in
    let states =
      match init with
      | Some s -> Array.copy s
      | None -> Dsm.Protocol.initial_system (module P)
    in
    Array.iteri
      (fun i step ->
        match step with
        | Dsm.Trace.Execute (n, a) -> (
            match P.handle_action ~self:n states.(n) a with
            | exception Dsm.Protocol.Local_assert _ -> ()
            | s', out ->
                states.(n) <- s';
                List.iter (produce i) out)
        | Dsm.Trace.Deliver env -> (
            (match consume env with
            | Some p ->
                Buffer.add_string b
                  (Printf.sprintf "  e%d -> e%d [color=blue];\n" p i)
            | None -> ());
            let node = env.Dsm.Envelope.dst in
            match P.handle_message ~self:node states.(node) env with
            | exception Dsm.Protocol.Local_assert _ -> ()
            | s', out ->
                states.(node) <- s';
                List.iter (produce i) out)
        | Dsm.Trace.Crash n ->
            states.(n) <- P.on_recover ~self:n states.(n))
      steps;
    Buffer.add_string b "}\n";
    Buffer.contents b
end
