(* Soak timeseries: interval-gated samples of every counter and gauge
   in a Metrics registry — plus GC and RSS gauges refreshed at sample
   time — retained in a bounded ring and dumped as timeseries.v1
   JSONL at close.  A 10-minute soak at the default 1 s interval
   yields a plottable trajectory (states/sec, store load factor,
   frontier depth, memory pressure) in a few hundred lines.

   The sampler piggybacks on the progress-heartbeat tick gate
   (Obs.heartbeat calls [maybe_sample] at most every 256th
   transition), so an attached-but-idle timeseries costs the same as
   a progress heartbeat.  Samples drop oldest-first past [capacity];
   the [ts_meta] trailer reports how many.  Like the flight
   recorder's ring, [seq] numbers are assigned at dump time so the
   stream stays strictly increasing across drops. *)

type sample = { s_fields : (string * Dsm.Json.t) list }

type t = {
  metrics : Metrics.t;
  interval : float;
  capacity : int;
  ring : sample Queue.t;
  mutable dropped : int;
  mutable taken : int;
  mutable next : float;
  clock0 : float;
  path : string;
  mutable closed : bool;
  g_gc_minor : Metrics.gauge;
  g_gc_major : Metrics.gauge;
  g_heap_words : Metrics.gauge;
  g_rss_bytes : Metrics.gauge;
}

let schema = "timeseries.v1"

let create ?(interval = 1.0) ?(capacity = 4096) ~metrics path =
  let now = Unix.gettimeofday () in
  {
    metrics;
    interval = Float.max 0. interval;
    capacity = max 1 capacity;
    ring = Queue.create ();
    dropped = 0;
    taken = 0;
    next = now;
    clock0 = now;
    path;
    closed = false;
    g_gc_minor = Metrics.gauge metrics "proc.gc_minor_collections";
    g_gc_major = Metrics.gauge metrics "proc.gc_major_collections";
    g_heap_words = Metrics.gauge metrics "proc.heap_words";
    g_rss_bytes = Metrics.gauge metrics "proc.rss_bytes";
  }

let sample t ~now =
  (* Refresh the process gauges first so both this sample and any
     concurrent /metrics scrape see current memory figures. *)
  let m = Procstat.sample () in
  Metrics.set t.g_gc_minor (float_of_int m.Procstat.gc_minor);
  Metrics.set t.g_gc_major (float_of_int m.Procstat.gc_major);
  Metrics.set t.g_heap_words (float_of_int m.Procstat.heap_words);
  Metrics.set t.g_rss_bytes (float_of_int m.Procstat.rss);
  let counters = ref [] and gauges = ref [] in
  List.iter
    (fun view ->
      match view with
      | Metrics.Counter_view (name, v) ->
          counters := (name, Dsm.Json.Int v) :: !counters
      | Metrics.Gauge_view (name, v) ->
          gauges := (name, Dsm.Json.Float v) :: !gauges
      | Metrics.Histogram_view _ -> ())
    (Metrics.snapshot_all t.metrics);
  let s =
    {
      s_fields =
        [
          ("t", Dsm.Json.Float (now -. t.clock0));
          ("counters", Dsm.Json.Obj (List.rev !counters));
          ("gauges", Dsm.Json.Obj (List.rev !gauges));
        ];
    }
  in
  if Queue.length t.ring >= t.capacity then begin
    ignore (Queue.pop t.ring);
    t.dropped <- t.dropped + 1
  end;
  Queue.push s t.ring;
  t.taken <- t.taken + 1

let maybe_sample t ~now =
  if (not t.closed) && now >= t.next then begin
    t.next <- now +. t.interval;
    sample t ~now
  end

let samples t = Queue.length t.ring

let dropped t = t.dropped

(* Dump the ring: a ts_run header, the retained samples, a ts_meta
   trailer; one fresh seq space assigned here. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    (* Always end with a final sample so short runs (shorter than one
       interval) still dump a trajectory point. *)
    sample t ~now:(Unix.gettimeofday ());
    let oc = open_out t.path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        let seq = ref (-1) in
        let line ev fields =
          incr seq;
          output_string oc
            (Dsm.Json.to_string
               (Dsm.Json.Obj
                  (("schema", Dsm.Json.String schema)
                  :: ("seq", Dsm.Json.Int !seq)
                  :: ("ev", Dsm.Json.String ev)
                  :: fields)));
          output_char oc '\n'
        in
        line "ts_run"
          [
            ("interval_s", Dsm.Json.Float t.interval);
            ("capacity", Dsm.Json.Int t.capacity);
          ];
        Queue.iter (fun s -> line "sample" s.s_fields) t.ring;
        line "ts_meta"
          [
            ("samples", Dsm.Json.Int (Queue.length t.ring));
            ("dropped", Dsm.Json.Int t.dropped);
            ("capacity", Dsm.Json.Int t.capacity);
          ])
  end
