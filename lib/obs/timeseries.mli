(** Soak timeseries: interval-gated samples of every counter and
    gauge in a {!Metrics} registry, plus GC and RSS gauges refreshed
    at each sample, kept in a bounded ring and dumped as
    [timeseries.v1] JSONL at {!close}.

    Attach one to an [Obs] scope and the progress-heartbeat tick gate
    drives {!maybe_sample} — no extra hot-path cost beyond the
    heartbeat's own branch. *)

type t

(** [create ~metrics path] samples [metrics] every [interval] seconds
    (default 1.0) into a ring of [capacity] samples (default 4096,
    oldest dropped first), written to [path] at {!close}. *)
val create :
  ?interval:float -> ?capacity:int -> metrics:Metrics.t -> string -> t

(** Take a sample if the interval has elapsed; [now] is the caller's
    clock reading (the heartbeat already has one). *)
val maybe_sample : t -> now:float -> unit

(** Take a sample unconditionally. *)
val sample : t -> now:float -> unit

(** Samples currently retained in the ring. *)
val samples : t -> int

(** Samples dropped to retention so far. *)
val dropped : t -> int

(** Take a final sample, then write the ring as [ts_run] header /
    [sample] records / [ts_meta] trailer with a fresh strictly
    increasing [seq] space.  Idempotent. *)
val close : t -> unit
