(** Sampling wall-clock profiler over an explicit frame stack.

    Checkers push named frames around their phases and transitions;
    {!tick} rides the same per-transition path as the progress
    heartbeat.  Every [sample_every]-th tick the clock is read once
    and the elapsed interval is attributed to the collapsed stack
    current at that moment, yielding a statistical flamegraph.

    Two frame disciplines:
    {ul
    {- {!push}/{!pop} — hot frames (per applied transition): one
       store and a branch, no clock;}
    {- {!enter}/{!leave} — slow frames (phases such as combination
       checking or soundness verification): force a sample at both
       edges so neighbouring phases never bleed into each other.}}

    Single-domain: call only from the sequential apply path. *)

type t

(** [sample_every] is rounded up to a power of two (default 256). *)
val create : ?sample_every:int -> unit -> t

val push : t -> string -> unit

val pop : t -> unit

(** Boundary-sampled frame entry/exit for coarse phases. *)
val enter : t -> string -> unit

val leave : t -> unit

(** The per-transition sampling gate. *)
val tick : t -> unit

(** Force a sample now, attributing the interval since the previous
    sample to the current stack. *)
val boundary : t -> unit

type entry = {
  stack : string list;  (** outermost frame first *)
  total_us : int;
  samples : int;
}

(** Hottest stack first.  Forces a final boundary sample. *)
val snapshot : t -> entry list

(** Sum of attributed microseconds across all stacks. *)
val total_us : t -> int

(** Collapsed-stack flamegraph text ("a;b;c us" per line) — the input
    of flamegraph.pl / inferno / speedscope import. *)
val write_collapsed : t -> string -> unit

(** speedscope "sampled" profile JSON (weights in microseconds). *)
val write_speedscope : t -> name:string -> string -> unit

(** ["profile.v1"], the schema tag on every JSONL record below. *)
val schema : string

(** The profile.v1 JSONL stream: a [prof_run] header then one [stack]
    record per distinct collapsed stack, own [seq] space. *)
val jsonl_records : t -> Dsm.Json.t list

(** Append {!jsonl_records} to [path] (creating it if needed) — lets a
    recording file carry trace.v1 and profile.v1 together. *)
val append_jsonl : t -> string -> unit
