(** Unified observability: metrics, structured events/spans, progress.

    A {!scope} bundles a {!Metrics} registry, a list of event
    {!Sink}s, and an optional progress heartbeat; checkers thread one
    scope through their run and record into it.  The design splits the
    cost model in two:

    {ul
    {- {b metrics} (counters, gauges, log-scale histograms) are
       always-on: updates are single atomic operations, safe under
       [verify_domains > 1] and negligible next to a handler execution
       or a fingerprint;}
    {- {b events} flow only into attached sinks.  {!null} — the
       default scope everywhere — has no sinks, so every event/span
       call reduces to one branch (the no-op sink configuration).}}

    Event streams are JSONL-friendly: each event renders as one
    compact {!Dsm.Json} object per line. *)

module Metrics = Metrics
module Sink = Sink

(** The flight recorder (causal transition records, [trace.v1]). *)
module Trace = Trace

(** Witness replay for {!Trace} recordings. *)
module Replay = Replay

(** Sampling profiler over an explicit frame stack ([profile.v1],
    collapsed-stack and speedscope exports). *)
module Prof = Prof

(** Live /metrics (Prometheus exposition) + /healthz HTTP endpoint. *)
module Exporter = Exporter

(** Bounded counter/gauge timeseries ring ([timeseries.v1]). *)
module Timeseries = Timeseries

(** GC and RSS readings shared by heartbeats, health and timeseries. *)
module Procstat = Procstat

type scope

(** The disabled scope: no sinks, no heartbeat, a private throwaway
    registry.  Physically unique, so [scope == null] is the
    "instrumentation off" test. *)
val null : scope

(** [create ?metrics ?sinks ?progress ()] builds a live scope.
    [progress] is the heartbeat period in seconds; without it (and
    without a [timeseries]), {!heartbeat} is free.  An attached
    [profiler] makes {!frame} live and is boundary-sampled from the
    heartbeat tick gate; an attached [timeseries] is sampled from the
    same gate and closed by {!close}. *)
val create :
  ?metrics:Metrics.t ->
  ?sinks:Sink.t list ->
  ?progress:float ->
  ?profiler:Prof.t ->
  ?timeseries:Timeseries.t ->
  unit ->
  scope

val is_null : scope -> bool

(** Whether any sink is attached (events will be observed). *)
val active : scope -> bool

val metrics : scope -> Metrics.t

(** Get-or-create in the scope's registry. *)
val counter : scope -> string -> Metrics.counter

val gauge : scope -> string -> Metrics.gauge

val histogram : scope -> string -> Metrics.histogram

(** Seconds since the scope was created (event timestamps use this). *)
val elapsed : scope -> float

(** Emit a structured event to every attached sink; a single branch
    when no sink is attached. *)
val event : scope -> ?fields:(string * Dsm.Json.t) list -> string -> unit

(** [span scope name f] runs [f] and emits one [name] event carrying
    an ["elapsed_s"] field with [f]'s wall-clock duration (emitted
    even if [f] raises).  Just [f ()] when no sink is attached. *)
val span :
  scope -> ?fields:(string * Dsm.Json.t) list -> string -> (unit -> 'a) ->
  'a

(** [heartbeat scope fields] is called from hot loops; roughly every
    [progress] seconds it emits one ["progress"] event with
    [fields ()] plus GC/RSS figures.  The same tick gate drives the
    attached {!Timeseries} sampler.  The common path is a branch plus
    an integer increment — the clock is consulted every 256th call —
    so it can sit on a per-transition path.  Call from one domain
    only. *)
val heartbeat : scope -> (unit -> (string * Dsm.Json.t) list) -> unit

(** The attached profiler, if any — hot paths that push/pop per-
    transition frames resolve it once and use {!Prof} directly.
    Sampling boundaries ride {!heartbeat}'s tick gate (every 256th
    beat), so per-transition code needs no separate profiler tick. *)
val prof : scope -> Prof.t option

(** [frame scope name f] runs [f] inside a boundary-sampled profiler
    frame (see {!Prof.enter}); just [f ()] without a profiler. *)
val frame : scope -> string -> (unit -> 'a) -> 'a

val flush : scope -> unit

(** Flush and close every sink (file sinks close their channels) and
    dump the attached timeseries, if any. *)
val close : scope -> unit

(** Dump the scope's registry as JSONL, one metric per line. *)
val write_metrics_jsonl : scope -> string -> unit
