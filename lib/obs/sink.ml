type event = {
  ts : float;
  name : string;
  fields : (string * Dsm.Json.t) list;
}

let event_to_json e =
  Dsm.Json.Obj
    (("ts", Dsm.Json.Float e.ts)
    :: ("event", Dsm.Json.String e.name)
    :: e.fields)

type t = {
  only : string list option;
  emit : event -> unit;
  raw : (Buffer.t -> unit) option;
      (* byte-oriented fast path: the buffer holds whole pre-serialised
         newline-terminated lines, written verbatim.  Only sinks whose
         [emit] would produce exactly those bytes provide it. *)
  flush : unit -> unit;
  close : unit -> unit;
}

let accepts_name t name =
  match t.only with None -> true | Some names -> List.mem name names

let accepts t e = accepts_name t e.name

(* The raw line writer, if this sink has one and accepts [name]. *)
let raw t ~name = if accepts_name t name then t.raw else None

let emit t e = if accepts t e then t.emit e

let flush t = t.flush ()

let close t = t.close ()

(* Each sink serialises its own writes behind a mutex: events arriving
   from different domains interleave whole, never byte-by-byte. *)
let with_lock lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let jsonl ?only oc =
  let lock = Mutex.create () in
  {
    only;
    emit =
      (fun e ->
        let line = Dsm.Json.to_string (event_to_json e) in
        with_lock lock (fun () ->
            output_string oc line;
            output_char oc '\n'));
    raw =
      Some (fun buf -> with_lock lock (fun () -> Buffer.output_buffer oc buf));
    flush = (fun () -> with_lock lock (fun () -> Stdlib.flush oc));
    close = (fun () -> with_lock lock (fun () -> Stdlib.flush oc));
  }

let jsonl_file ?only path =
  let oc = open_out path in
  let t = jsonl ?only oc in
  { t with close = (fun () -> t.close (); close_out oc) }

let pp_field ppf (k, v) =
  Format.fprintf ppf " %s=%s" k (Dsm.Json.to_string v)

let console ?only () =
  let lock = Mutex.create () in
  {
    only;
    raw = None;
    emit =
      (fun e ->
        with_lock lock (fun () ->
            Format.eprintf "[obs %.3f] %s%a@." e.ts e.name
              (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_field)
              e.fields));
    flush = (fun () -> ());
    close = (fun () -> ());
  }

let memory ?only () =
  let lock = Mutex.create () in
  let events = ref [] in
  let t =
    {
      only;
      raw = None;
      emit = (fun e -> with_lock lock (fun () -> events := e :: !events));
      flush = (fun () -> ());
      close = (fun () -> ());
    }
  in
  (t, fun () -> with_lock lock (fun () -> List.rev !events))
