let schema = "trace.v1"

(* ----- hex transport encoding -----

   Witness records carry marshalled protocol values (states, message
   payloads, actions); hex keeps them printable inside JSON strings
   without escaping surprises. *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "invalid hex digit %C" c)
    in
    let b = Bytes.create (n / 2) in
    let rec fill i =
      if i >= n / 2 then Ok (Bytes.to_string b)
      else
        match (digit h.[2 * i], digit h.[(2 * i) + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
            fill (i + 1)
        | Error e, _ | _, Error e -> Error e
    in
    fill 0

(* ----- the typed step record -----

   One record per explored transition.  Fingerprints travel as full
   hex; [consumed] names the message the handler consumed together
   with the [seq] of the step that first injected it into I+ (-1 when
   it predates the recording, e.g. an initial in-flight message). *)

type step_kind = Deliver | Action | Crash

type step = {
  node : int;
  kind : step_kind;
  src : int;  (* sender for deliveries; -1 for internal actions *)
  label : string;
  fp_before : string;
  fp_after : string;
  consumed : (string * int) option;  (* (message fp, injected_by seq) *)
  produced : string list;
  depth : int;
  dom : int;
}

let kind_to_string = function
  | Deliver -> "deliver"
  | Action -> "action"
  | Crash -> "crash"

let kind_of_string = function
  | "deliver" -> Ok Deliver
  | "action" -> Ok Action
  | "crash" -> Ok Crash
  | s -> Error (Printf.sprintf "unknown step kind %S" s)

let step_fields (s : step) =
  [
    ("node", Dsm.Json.Int s.node);
    ("kind", Dsm.Json.String (kind_to_string s.kind));
    ("src", Dsm.Json.Int s.src);
    ("label", Dsm.Json.String s.label);
    ("fp_before", Dsm.Json.String s.fp_before);
    ("fp_after", Dsm.Json.String s.fp_after);
    ( "consumed",
      match s.consumed with
      | None -> Dsm.Json.Null
      | Some (fp, by) ->
          Dsm.Json.Obj
            [ ("fp", Dsm.Json.String fp); ("injected_by", Dsm.Json.Int by) ]
    );
    ( "produced",
      Dsm.Json.List (List.map (fun fp -> Dsm.Json.String fp) s.produced) );
    ("depth", Dsm.Json.Int s.depth);
    ("dom", Dsm.Json.Int s.dom);
  ]

let step_to_json s = Dsm.Json.Obj (step_fields s)

let field name fields =
  match List.assoc_opt name fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Dsm.Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected int" name)

let as_string name = function
  | Dsm.Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected string" name)

let ( let* ) = Result.bind

let int_field fields name =
  let* v = field name fields in
  as_int name v

let string_field fields name =
  let* v = field name fields in
  as_string name v

let step_of_json = function
  | Dsm.Json.Obj fields ->
      let* node = int_field fields "node" in
      let* kind_s = string_field fields "kind" in
      let* kind = kind_of_string kind_s in
      let* src = int_field fields "src" in
      let* label = string_field fields "label" in
      let* fp_before = string_field fields "fp_before" in
      let* fp_after = string_field fields "fp_after" in
      let* consumed =
        match List.assoc_opt "consumed" fields with
        | None | Some Dsm.Json.Null -> Ok None
        | Some (Dsm.Json.Obj c) ->
            let* fp = string_field c "fp" in
            let* by = int_field c "injected_by" in
            Ok (Some (fp, by))
        | Some _ -> Error "field \"consumed\": expected object or null"
      in
      let* produced =
        let* v = field "produced" fields in
        match v with
        | Dsm.Json.List items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* fp = as_string "produced" item in
                Ok (fp :: acc))
              (Ok []) items
            |> Result.map List.rev
        | _ -> Error "field \"produced\": expected list"
      in
      let* depth = int_field fields "depth" in
      let* dom = int_field fields "dom" in
      Ok { node; kind; src; label; fp_before; fp_after; consumed;
           produced; depth; dom }
  | _ -> Error "step: expected object"

(* ----- the recorder ----- *)

(* Ring entries keep the caller's field thunk unforced: the hot path
   stores four words and the expensive work — label formatting, hex
   conversion, JSON rendering — happens at {!close}, at most
   [capacity] times no matter how long the run was. *)
type rentry = {
  r_ts : float;
  r_seq : int;
  r_ev : string;
  r_fields : unit -> (string * Dsm.Json.t) list;
}

type mode =
  | Stream of {
      sink : Sink.t;
      raw : (Buffer.t -> unit) option;
          (* the sink's raw byte writer (jsonl sinks): step records —
             the overwhelming bulk of a trace — are serialised by
             {!write_step_into} instead of the generic Json walker *)
      buf : Buffer.t;
          (* batch of serialised lines awaiting [raw], guarded by
             [t.lock].  Drained before any record takes the generic
             [Sink.emit] path, so file order always equals seq order. *)
    }
  | Ring of {
      oc : out_channel;  (* opened eagerly so bad paths fail up front *)
      buf : rentry option array;
      mutable total : int;  (* records emitted over the whole run *)
    }

type t = {
  mode : mode option;  (* [None] only for {!null} *)
  lock : Mutex.t;
  mutable seq : int;
  clock0 : float;
  mutable closed : bool;
}

let make mode =
  {
    mode;
    lock = Mutex.create ();
    seq = 0;
    clock0 = Unix.gettimeofday ();
    closed = false;
  }

let null = make None

let enabled t = t.mode <> None

let of_sink sink =
  make
    (Some
       (Stream
          {
            sink;
            raw = Sink.raw sink ~name:"trace";
            buf = Buffer.create 512;
          }))

let to_file path = of_sink (Sink.jsonl_file path)

let sink t =
  match t.mode with
  | Some (Stream { sink; _ }) -> Some sink
  | Some (Ring _) | None -> None

let default_ring_capacity = 65_536

let ring ?(capacity = default_ring_capacity) path =
  if capacity < 1 then invalid_arg "Obs.Trace.ring: capacity must be >= 1";
  make (Some (Ring { oc = open_out path; buf = Array.make capacity None; total = 0 }))

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Serialised step lines accumulate in the stream batch buffer and hit
   the channel in ~32 KiB writes: the per-record cost is a few
   [Buffer] appends, and the sink lock plus channel write are paid
   once per batch. *)
let batch_bytes = 32_768

(* Caller holds [t.lock]. *)
let drain_batch ~write ~buf = if Buffer.length buf > 0 then begin
    write buf;
    Buffer.clear buf
  end

(* Every record carries the schema tag, a monotonically increasing
   [seq] (the file-order identity other records reference) and its
   record kind [ev]; the sequence number is returned so callers can
   index provenance tables by it. *)
let emit_lazy t ~ev fields =
  match t.mode with
  | None -> -1
  | Some (Ring r) ->
      (* The always-on path: no [Fun.protect] (nothing below can
         raise — the thunk stays unforced) and no per-record field
         consing; four words land in the ring and the caller is back
         on the apply loop. *)
      Mutex.lock t.lock;
      let seq = t.seq in
      t.seq <- seq + 1;
      r.buf.(r.total mod Array.length r.buf) <-
        Some
          {
            r_ts = Unix.gettimeofday () -. t.clock0;
            r_seq = seq;
            r_ev = ev;
            r_fields = fields;
          };
      r.total <- r.total + 1;
      Mutex.unlock t.lock;
      seq
  | Some (Stream { sink; raw; buf }) ->
      with_lock t (fun () ->
          (match raw with
          | Some write -> drain_batch ~write ~buf
          | None -> ());
          let seq = t.seq in
          t.seq <- seq + 1;
          Sink.emit sink
            {
              Sink.ts = Unix.gettimeofday () -. t.clock0;
              name = "trace";
              fields =
                ("schema", Dsm.Json.String schema)
                :: ("seq", Dsm.Json.Int seq)
                :: ("ev", Dsm.Json.String ev)
                :: fields ();
            };
          seq)

let emit t ~ev fields = emit_lazy t ~ev (fun () -> fields)

(* Serialise one step record straight into [b] — the same fields in
   the same order as the generic path ({!Sink.event_to_json} over
   {!step_fields}), without building the tree.  The only textual
   difference is [ts], rendered as fixed-point microseconds instead of
   %.12g — same information (the clock has microsecond resolution),
   a quarter of the cost.  Steps are the overwhelming bulk of a trace,
   and the generic walker is the single most expensive part of
   file-sink recording. *)
(* Digits straight into the buffer — [string_of_int] allocates, and a
   step record carries six integers. *)
let rec add_uint b v =
  if v >= 10 then add_uint b (v / 10);
  Buffer.add_char b (Char.chr (Char.code '0' + (v mod 10)))

let add_int b v =
  if v < 0 then begin
    Buffer.add_char b '-';
    add_uint b (-v)
  end
  else add_uint b v

(* Fingerprints are lowercase hex by construction (see the [step]
   doc), so they can skip the escape scan entirely. *)
let add_hex_field b s =
  Buffer.add_char b '"';
  Buffer.add_string b s;
  Buffer.add_char b '"'

(* Seconds with exactly six decimals: "3.022337".  [string_of_float]
   runs the C printf machinery and allocates; this is digit pushes. *)
let add_ts b ts =
  let us = int_of_float ((ts *. 1e6) +. 0.5) in
  add_uint b (us / 1_000_000);
  Buffer.add_char b '.';
  let frac = us mod 1_000_000 in
  let d = ref 100_000 in
  while !d > 0 do
    Buffer.add_char b (Char.chr (Char.code '0' + (frac / !d mod 10)));
    d := !d / 10
  done

let write_step_into b ~ts ~seq (s : step) =
  let str = add_hex_field b in
  let int v = add_int b v in
  Buffer.add_string b "{\"ts\":";
  add_ts b ts;
  Buffer.add_string b ",\"event\":\"trace\",\"schema\":\"";
  Buffer.add_string b schema;
  Buffer.add_string b "\",\"seq\":";
  int seq;
  Buffer.add_string b ",\"ev\":\"step\",\"node\":";
  int s.node;
  Buffer.add_string b ",\"kind\":";
  str (kind_to_string s.kind);
  Buffer.add_string b ",\"src\":";
  int s.src;
  Buffer.add_string b ",\"label\":";
  Dsm.Json.emit_into b (Dsm.Json.String s.label);
  Buffer.add_string b ",\"fp_before\":";
  str s.fp_before;
  Buffer.add_string b ",\"fp_after\":";
  str s.fp_after;
  Buffer.add_string b ",\"consumed\":";
  (match s.consumed with
  | None -> Buffer.add_string b "null"
  | Some (fp, by) ->
      Buffer.add_string b "{\"fp\":";
      str fp;
      Buffer.add_string b ",\"injected_by\":";
      int by);
  (match s.consumed with Some _ -> Buffer.add_char b '}' | None -> ());
  Buffer.add_string b ",\"produced\":[";
  List.iteri
    (fun i fp ->
      if i > 0 then Buffer.add_char b ',';
      str fp)
    s.produced;
  Buffer.add_string b "],\"depth\":";
  int s.depth;
  Buffer.add_string b ",\"dom\":";
  int s.dom;
  Buffer.add_char b '}'

let record_step_lazy t s =
  match t.mode with
  | Some (Stream { raw = Some write; buf; _ }) ->
      (* Force the thunk before taking the lock: label rendering goes
         through user [pp] functions that may raise, while everything
         under the lock is Buffer pushes and (on batch boundaries) the
         sink write — so no [Fun.protect] on this path. *)
      let st = s () in
      let ts = Unix.gettimeofday () -. t.clock0 in
      Mutex.lock t.lock;
      let seq = t.seq in
      t.seq <- seq + 1;
      write_step_into buf ~ts ~seq st;
      Buffer.add_char buf '\n';
      if Buffer.length buf >= batch_bytes then drain_batch ~write ~buf;
      Mutex.unlock t.lock;
      seq
  | _ -> emit_lazy t ~ev:"step" (fun () -> step_fields (s ()))

let record_step t (s : step) = record_step_lazy t (fun () -> s)

let flush t =
  match t.mode with
  | Some (Stream { sink; raw; buf }) ->
      with_lock t (fun () ->
          match raw with
          | Some write -> drain_batch ~write ~buf
          | None -> ());
      Sink.flush sink
  | Some (Ring _) | None -> ()

let write_event oc e =
  output_string oc (Dsm.Json.to_string (Sink.event_to_json e));
  output_char oc '\n'

let close t =
  match t.mode with
  | None -> ()
  | Some mode ->
      with_lock t (fun () ->
          if not t.closed then begin
            t.closed <- true;
            match mode with
            | Stream { sink; raw; buf } ->
                (match raw with
                | Some write -> drain_batch ~write ~buf
                | None -> ());
                Sink.close sink
            | Ring r ->
                (* Dump oldest-first; a trailing meta record says how
                   many early records the ring overwrote, so consumers
                   know the head is missing rather than malformed. *)
                let cap = Array.length r.buf in
                let dropped = max 0 (r.total - cap) in
                let count = min r.total cap in
                for i = 0 to count - 1 do
                  match r.buf.((dropped + i) mod cap) with
                  | Some e ->
                      write_event r.oc
                        {
                          Sink.ts = e.r_ts;
                          name = "trace";
                          fields =
                            ("schema", Dsm.Json.String schema)
                            :: ("seq", Dsm.Json.Int e.r_seq)
                            :: ("ev", Dsm.Json.String e.r_ev)
                            :: e.r_fields ();
                        }
                  | None -> assert false
                done;
                let seq = t.seq in
                t.seq <- seq + 1;
                write_event r.oc
                  {
                    Sink.ts = Unix.gettimeofday () -. t.clock0;
                    name = "trace";
                    fields =
                      [
                        ("schema", Dsm.Json.String schema);
                        ("seq", Dsm.Json.Int seq);
                        ("ev", Dsm.Json.String "ring_meta");
                        ("dropped", Dsm.Json.Int dropped);
                        ("capacity", Dsm.Json.Int cap);
                      ];
                  };
                close_out r.oc
          end)
