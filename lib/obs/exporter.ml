(* Minimal HTTP/1.0 telemetry endpoint: a single listener thread
   (stdlib [Thread] + [Unix], no dependencies) serving

     /metrics  - the live Metrics registry in Prometheus text
                 exposition format (counters get the _total suffix,
                 log-scale histograms render as cumulative buckets);
     /healthz  - a one-object JSON health report fed by the online
                 supervisor's gauges (degradation tier, restart budget
                 remaining, last-snapshot age) plus process memory.

   Scrapes are read-only: every registry cell is an [Atomic.t] and
   [Metrics.snapshot_all] takes only the registration mutex, so a
   scrape never blocks or perturbs the checker beyond a lock the hot
   path does not touch.  Connections are handled serially on the
   listener thread; [stop] flips a flag the 200 ms accept-select
   notices. *)

type t = {
  sock : Unix.file_descr;
  port : int;
  metrics : Metrics.t;
  health : unit -> (string * Dsm.Json.t) list;
  stopping : bool Atomic.t;
  started : float;
  mutable thread : Thread.t option;
  requests : int Atomic.t;
}

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — our dotted
   names ("lmc.system_states_created") map dots and dashes to '_'. *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render_prometheus metrics =
  let b = Buffer.create 4096 in
  List.iter
    (fun view ->
      match view with
      | Metrics.Counter_view (name, v) ->
          let n = sanitize name ^ "_total" in
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n v)
      | Metrics.Gauge_view (name, v) ->
          let n = sanitize name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %s\n" n (float_str v))
      | Metrics.Histogram_view (name, s) ->
          let n = sanitize name in
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          (* Cumulative buckets over the non-empty log-scale ranges;
             +Inf closes the series at the total count. *)
          let cum = ref 0 in
          List.iter
            (fun (_, hi, count) ->
              cum := !cum + count;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n hi !cum))
            s.Metrics.buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n s.Metrics.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %d\n" n s.Metrics.sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" n s.Metrics.count))
    (Metrics.snapshot_all metrics);
  Buffer.contents b

(* Default /healthz payload: whatever supervisor gauges exist in the
   registry (the online loop maintains them), translated to operator
   terms, plus process memory.  Works degraded for offline runs —
   absent gauges are simply omitted. *)
let default_health metrics () =
  let gauge name =
    match Metrics.find_gauge metrics name with
    | Some g -> Some (Metrics.gauge_value g)
    | None -> None
  in
  let fields = ref [] in
  (match gauge "online.last_snapshot_ts" with
  | Some ts when ts > 0. ->
      fields :=
        ("last_snapshot_age_s", Dsm.Json.Float (Unix.gettimeofday () -. ts))
        :: !fields
  | _ -> ());
  (match gauge "online.restart_budget_ms" with
  | Some v -> fields := ("restart_budget_ms", Dsm.Json.Float v) :: !fields
  | None -> ());
  (match gauge "online.tier" with
  | Some v -> fields := ("tier", Dsm.Json.Int (int_of_float v)) :: !fields
  | None -> ());
  !fields

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      status content_type (String.length body)
  in
  let payload = head ^ body in
  let len = String.length payload in
  let off = ref 0 in
  (try
     while !off < len do
       off :=
         !off + Unix.write_substring fd payload !off (len - !off)
     done
   with Unix.Unix_error _ -> ())

let handle t fd =
  let buf = Bytes.create 1024 in
  let n = try Unix.read fd buf 0 1024 with Unix.Unix_error _ -> 0 in
  if n > 0 then begin
    let request = Bytes.sub_string buf 0 n in
    let first_line =
      match String.index_opt request '\r' with
      | Some i -> String.sub request 0 i
      | None -> (
          match String.index_opt request '\n' with
          | Some i -> String.sub request 0 i
          | None -> request)
    in
    let path =
      match String.split_on_char ' ' first_line with
      | _meth :: path :: _ -> path
      | _ -> "/"
    in
    ignore (Atomic.fetch_and_add t.requests 1);
    match path with
    | "/metrics" ->
        respond fd ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8"
          (render_prometheus t.metrics)
    | "/healthz" ->
        let base =
          [
            ("status", Dsm.Json.String "ok");
            ("uptime_s", Dsm.Json.Float (Unix.gettimeofday () -. t.started));
          ]
        in
        let body =
          Dsm.Json.to_string
            (Dsm.Json.Obj (base @ t.health () @ Procstat.mem_fields ()))
        in
        respond fd ~status:"200 OK" ~content_type:"application/json"
          (body ^ "\n")
    | _ ->
        respond fd ~status:"404 Not Found" ~content_type:"text/plain"
          "not found\n"
  end

let serve t () =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.sock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () -> try handle t fd with _ -> ()))
    | exception Unix.Unix_error _ -> ()
  done

let start ?(addr = "127.0.0.1") ?health ~metrics ~port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let health =
    match health with Some h -> h | None -> default_health metrics
  in
  let t =
    {
      sock;
      port;
      metrics;
      health;
      stopping = Atomic.make false;
      started = Unix.gettimeofday ();
      thread = None;
      requests = Atomic.make 0;
    }
  in
  t.thread <- Some (Thread.create (serve t) ());
  t

let port t = t.port

let requests t = Atomic.get t.requests

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (match t.thread with Some th -> Thread.join th | None -> ());
    t.thread <- None;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
