module Make (P : Dsm.Protocol.S) = struct
  let marshal v = Trace.hex_of_string (Marshal.to_string v [])

  let fp_hex v = Dsm.Fingerprint.to_hex (Dsm.Fingerprint.of_value v)

  (* The final system fingerprint combines per-node fingerprints rather
     than hashing the array in one go: marshalling the whole array
     captures physical sharing *across* node states (live-sim snapshots
     share message payload structure), which independently unmarshalled
     replay states cannot reproduce.  Per-node values round-trip with
     their internal sharing intact, so this form is replay-stable. *)
  let system_fp states =
    Dsm.Fingerprint.to_hex
      (Dsm.Fingerprint.combine
         (Array.to_list (Array.map Dsm.Fingerprint.of_value states)))

  (* Apply one schedule step under the recorded-witness semantics:
     handlers are deterministic functions of (state, event), so
     sequential application from the recorded starting states
     reproduces the violating run exactly.  A Local_assert keeps the
     state (can only happen on malformed input; the soundness-verified
     schedules we record never assert) — the same rule is applied at
     record and at replay time, so the two stay comparable. *)
  let apply_step states = function
    | Dsm.Trace.Deliver env ->
        let node = env.Dsm.Envelope.dst in
        (match P.handle_message ~self:node states.(node) env with
        | exception Dsm.Protocol.Local_assert _ -> node
        | state', _out ->
            states.(node) <- state';
            node)
    | Dsm.Trace.Execute (node, action) -> (
        match P.handle_action ~self:node states.(node) action with
        | exception Dsm.Protocol.Local_assert _ -> node
        | state', _out ->
            states.(node) <- state';
            node)
    | Dsm.Trace.Crash node ->
        states.(node) <- P.on_recover ~self:node states.(node);
        node

  let step_json step ~fp_after =
    let kind, node, src, data, label =
      match step with
      | Dsm.Trace.Deliver env ->
          ( "deliver",
            env.Dsm.Envelope.dst,
            env.Dsm.Envelope.src,
            marshal env.Dsm.Envelope.payload,
            Format.asprintf "%a" P.pp_message env.Dsm.Envelope.payload )
      | Dsm.Trace.Execute (node, action) ->
          ( "action",
            node,
            -1,
            marshal action,
            Format.asprintf "%a" P.pp_action action )
      | Dsm.Trace.Crash node ->
          ("crash", node, -1, marshal (), "crash-recover")
    in
    Dsm.Json.Obj
      [
        ("kind", Dsm.Json.String kind);
        ("node", Dsm.Json.Int node);
        ("src", Dsm.Json.Int src);
        ("label", Dsm.Json.String label);
        ("data", Dsm.Json.String data);
        ("fp_after", Dsm.Json.String fp_after);
      ]

  let witness_fields ~init ~schedule ~invariant ~detail =
    let states = Array.copy init in
    let wsteps =
      List.map
        (fun step ->
          let node = apply_step states step in
          step_json step ~fp_after:(fp_hex states.(node)))
        schedule
    in
    [
      ("invariant", Dsm.Json.String invariant);
      ("detail", Dsm.Json.String detail);
      ("protocol", Dsm.Json.String P.name);
      ("events", Dsm.Json.Int (List.length schedule));
      ( "init",
        Dsm.Json.List
          (Array.to_list
             (Array.map
                (fun s ->
                  Dsm.Json.Obj
                    [
                      ("state", Dsm.Json.String (marshal s));
                      ("fp", Dsm.Json.String (fp_hex s));
                    ])
                init)) );
      ("wsteps", Dsm.Json.List wsteps);
      ("final_fp", Dsm.Json.String (system_fp states));
    ]

  (* ----- decoding and re-execution ----- *)

  type outcome = {
    steps_checked : int;
    divergence : (int * string * string) option;
        (** (step index, expected fp, replayed fp) of the first
            fingerprint mismatch; [None] = bit-identical throughout *)
    final_matches : bool;
    final : P.state array;
  }

  let ( let* ) = Result.bind

  let field name fields =
    match List.assoc_opt name fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "witness: missing field %S" name)

  let as_string name = function
    | Dsm.Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "witness: field %S: expected string" name)

  let as_int name = function
    | Dsm.Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "witness: field %S: expected int" name)

  let as_list name = function
    | Dsm.Json.List l -> Ok l
    | _ -> Error (Printf.sprintf "witness: field %S: expected list" name)

  let unmarshal (type a) name hex : (a, string) result =
    let* raw = Trace.string_of_hex hex in
    match (Marshal.from_string raw 0 : a) with
    | v -> Ok v
    | exception _ ->
        Error (Printf.sprintf "witness: field %S: cannot unmarshal" name)

  let decode_step json : ((P.message, P.action) Dsm.Trace.step * string, string) result =
    match json with
    | Dsm.Json.Obj fields ->
        let* kind = Result.bind (field "kind" fields) (as_string "kind") in
        let* node = Result.bind (field "node" fields) (as_int "node") in
        let* data = Result.bind (field "data" fields) (as_string "data") in
        let* fp_after =
          Result.bind (field "fp_after" fields) (as_string "fp_after")
        in
        let* step =
          match kind with
          | "deliver" ->
              let* src = Result.bind (field "src" fields) (as_int "src") in
              let* (payload : P.message) = unmarshal "data" data in
              Ok (Dsm.Trace.Deliver { Dsm.Envelope.src; dst = node; payload })
          | "action" ->
              let* (action : P.action) = unmarshal "data" data in
              Ok (Dsm.Trace.Execute (node, action))
          | "crash" -> Ok (Dsm.Trace.Crash node)
          | k -> Error (Printf.sprintf "witness: unknown step kind %S" k)
        in
        Ok (step, fp_after)
    | _ -> Error "witness: step: expected object"

  let decode_record fields =
    let* init_json = Result.bind (field "init" fields) (as_list "init") in
    let* init =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match item with
          | Dsm.Json.Obj f ->
              let* hex = Result.bind (field "state" f) (as_string "state") in
              let* (s : P.state) = unmarshal "state" hex in
              Ok (s :: acc)
          | _ -> Error "witness: init entry: expected object")
        (Ok []) init_json
      |> Result.map (fun l -> Array.of_list (List.rev l))
    in
    if Array.length init <> P.num_nodes then
      Error
        (Printf.sprintf "witness: %d initial states for a %d-node protocol"
           (Array.length init) P.num_nodes)
    else
      let* wsteps = Result.bind (field "wsteps" fields) (as_list "wsteps") in
      let* steps =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* s = decode_step item in
            Ok (s :: acc))
          (Ok []) wsteps
        |> Result.map List.rev
      in
      let* final_fp =
        Result.bind (field "final_fp" fields) (as_string "final_fp")
      in
      Ok (init, steps, final_fp)

  (* Re-execute a recorded [ev = "witness"] record (given as the field
     list of the parsed JSON object) transition by transition,
     comparing the acting node's state fingerprint after every step
     against the recorded one.  The walk continues past a divergence —
     [steps_checked] always covers the whole schedule — but only the
     first mismatch is reported. *)
  let replay_witness fields =
    let* init, steps, final_fp = decode_record fields in
    let states = Array.copy init in
    let divergence = ref None in
    List.iteri
      (fun i (step, expected) ->
        let node = apply_step states step in
        let got = fp_hex states.(node) in
        if got <> expected && !divergence = None then
          divergence := Some (i, expected, got))
      steps;
    Ok
      {
        steps_checked = List.length steps;
        divergence = !divergence;
        final_matches = system_fp states = final_fp;
        final = states;
      }
end
