(** Pluggable event sinks.

    A sink consumes structured events; emission is serialised behind a
    per-sink mutex so events arriving from several domains interleave
    whole.  The optional [?only] filter restricts a sink to the named
    event kinds (e.g. a console sink showing only ["progress"]). *)

type event = {
  ts : float;  (** seconds since the owning scope was created *)
  name : string;
  fields : (string * Dsm.Json.t) list;
}

val event_to_json : event -> Dsm.Json.t

type t

val emit : t -> event -> unit

(** The sink's raw byte writer, if it has one and accepts [name]: the
    buffer must hold whole newline-terminated lines, each a JSON
    object serialised exactly as {!emit} would have, and is written
    verbatim.  Lets hot paths skip the intermediate {!Dsm.Json.t} and
    batch many records into one write. *)
val raw : t -> name:string -> (Buffer.t -> unit) option

val flush : t -> unit

(** Flush and release resources; for [jsonl_file], closes the channel. *)
val close : t -> unit

(** One compact JSON object per line on [oc]. *)
val jsonl : ?only:string list -> out_channel -> t

val jsonl_file : ?only:string list -> string -> t

(** Human-oriented one-liners on stderr. *)
val console : ?only:string list -> unit -> t

(** In-memory sink for tests; the closure returns the events captured
    so far in emission order. *)
val memory : ?only:string list -> unit -> t * (unit -> event list)
