(* Sampling wall-clock profiler over an explicit frame stack.

   Checkers push/pop named frames around their phases ("lmc",
   "combination", "soundness") and around each applied transition
   ("deliver:Accept", "action:Propose"); [tick] is called from the
   same per-transition path as the progress heartbeat.  Every
   [sample_mask + 1]-th tick — and at every slow-frame boundary — the
   clock is read once and the time since the previous reading is
   attributed to the collapsed stack current at that moment.  The
   result is a statistical flamegraph with exact phase boundaries:
   hot frames cost one branch + one store per push, slow frames pin
   their entry/exit so neighbouring phases never bleed into each
   other.

   Single-domain by design: ticks and frames must come from the
   sequential apply path only (the same discipline as the flight
   recorder), which is also what keeps telemetry off the determinism
   contract. *)

type cell = { mutable us : int; mutable samples : int }

type t = {
  mutable stack : string array;
  mutable depth : int;
  tbl : (string, cell) Hashtbl.t;
  mutable tick_count : int;
  sample_mask : int;
  clock0 : float;
  mutable last_us : int;
  (* Collapsed key of the current stack, invalidated by push/pop.
     Most boundaries fire between stack changes (deep inside
     combination loops), so the join is usually amortised away. *)
  mutable key_cache : string;
}

let now_us t = int_of_float (1e6 *. (Unix.gettimeofday () -. t.clock0))

(* Round up to a power of two so the gate stays a single [land]. *)
let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(sample_every = 256) () =
  let t =
    {
      stack = Array.make 16 "";
      depth = 0;
      tbl = Hashtbl.create 64;
      tick_count = 0;
      sample_mask = pow2 (max 1 sample_every) 1 - 1;
      clock0 = Unix.gettimeofday ();
      last_us = 0;
      key_cache = "(idle)";
    }
  in
  t.last_us <- now_us t;
  t

let rebuild_key t =
  let key =
    if t.depth = 0 then "(idle)"
    else begin
      let b = Buffer.create 64 in
      for i = 0 to t.depth - 1 do
        if i > 0 then Buffer.add_char b ';';
        Buffer.add_string b t.stack.(i)
      done;
      Buffer.contents b
    end
  in
  t.key_cache <- key;
  key

(* A real key is never the empty string ("(idle)" stands in for an
   empty stack), so "" doubles as the invalidation sentinel. *)
let stack_key t =
  if String.length t.key_cache = 0 then rebuild_key t else t.key_cache

(* Read the clock and attribute the elapsed interval to the current
   stack.  Called at the sampling gate and at slow-frame boundaries. *)
let boundary t =
  let u = now_us t in
  let dt = u - t.last_us in
  t.last_us <- u;
  if dt > 0 then begin
    let key = stack_key t in
    let cell =
      match Hashtbl.find_opt t.tbl key with
      | Some c -> c
      | None ->
          let c = { us = 0; samples = 0 } in
          Hashtbl.add t.tbl key c;
          c
    in
    cell.us <- cell.us + dt;
    cell.samples <- cell.samples + 1
  end

let tick t =
  t.tick_count <- t.tick_count + 1;
  if t.tick_count land t.sample_mask = 0 then boundary t

let push t name =
  if t.depth >= Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) "" in
    Array.blit t.stack 0 bigger 0 t.depth;
    t.stack <- bigger
  end;
  t.stack.(t.depth) <- name;
  t.depth <- t.depth + 1;
  t.key_cache <- ""

let pop t =
  if t.depth > 0 then begin
    t.depth <- t.depth - 1;
    t.key_cache <- ""
  end

let enter t name =
  boundary t;
  push t name

let leave t =
  boundary t;
  pop t

type entry = { stack : string list; total_us : int; samples : int }

let snapshot t =
  boundary t;
  let entries =
    Hashtbl.fold
      (fun key c acc ->
        { stack = String.split_on_char ';' key; total_us = c.us;
          samples = c.samples }
        :: acc)
      t.tbl []
  in
  List.sort (fun a b -> compare b.total_us a.total_us) entries

let total_us t =
  Hashtbl.fold (fun _ c acc -> acc + c.us) t.tbl 0

(* Collapsed-stack flamegraph text: "frame;frame count" per line, the
   input format of flamegraph.pl / inferno / speedscope import. *)
let write_collapsed t path =
  let entries = snapshot t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (String.concat ";" e.stack);
          Printf.fprintf oc " %d\n" e.total_us)
        entries)

(* speedscope "sampled" profile: one sample per distinct stack,
   weighted by its attributed microseconds. *)
let speedscope_json t ~name =
  let entries = snapshot t in
  let frames = Hashtbl.create 64 in
  let frame_order = ref [] in
  let frame_index f =
    match Hashtbl.find_opt frames f with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frames in
        Hashtbl.add frames f i;
        frame_order := f :: !frame_order;
        i
  in
  let samples =
    List.map
      (fun e ->
        Dsm.Json.List
          (List.map (fun f -> Dsm.Json.Int (frame_index f)) e.stack))
      entries
  in
  let weights =
    List.map (fun e -> Dsm.Json.Int e.total_us) entries
  in
  let total = List.fold_left (fun a e -> a + e.total_us) 0 entries in
  Dsm.Json.Obj
    [
      ( "$schema",
        Dsm.Json.String "https://www.speedscope.app/file-format-schema.json"
      );
      ( "shared",
        Dsm.Json.Obj
          [
            ( "frames",
              Dsm.Json.List
                (List.rev_map
                   (fun f -> Dsm.Json.Obj [ ("name", Dsm.Json.String f) ])
                   !frame_order) );
          ] );
      ( "profiles",
        Dsm.Json.List
          [
            Dsm.Json.Obj
              [
                ("type", Dsm.Json.String "sampled");
                ("name", Dsm.Json.String name);
                ("unit", Dsm.Json.String "microseconds");
                ("startValue", Dsm.Json.Int 0);
                ("endValue", Dsm.Json.Int total);
                ("samples", Dsm.Json.List samples);
                ("weights", Dsm.Json.List weights);
              ];
          ] );
      ("exporter", Dsm.Json.String "lmc-prof");
      ("name", Dsm.Json.String name);
    ]

let write_speedscope t ~name path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Dsm.Json.to_string (speedscope_json t ~name));
      output_char oc '\n')

(* profile.v1 JSONL: a [prof_run] header, one [stack] record per
   distinct collapsed stack (hottest first), its own strictly
   increasing [seq] space — interleavable with trace.v1 in one
   recording file. *)
let schema = "profile.v1"

let jsonl_records t =
  let entries = snapshot t in
  let seq = ref (-1) in
  let record ev fields =
    incr seq;
    Dsm.Json.Obj
      (("schema", Dsm.Json.String schema)
      :: ("seq", Dsm.Json.Int !seq)
      :: ("ev", Dsm.Json.String ev)
      :: fields)
  in
  let header =
    record "prof_run"
      [
        ("clock_us", Dsm.Json.Int (total_us t));
        ("stacks", Dsm.Json.Int (List.length entries));
        ("sample_every", Dsm.Json.Int (t.sample_mask + 1));
      ]
  in
  header
  :: List.map
       (fun e ->
         record "stack"
           [
             ( "stack",
               Dsm.Json.List
                 (List.map (fun f -> Dsm.Json.String f) e.stack) );
             ("us", Dsm.Json.Int e.total_us);
             ("samples", Dsm.Json.Int e.samples);
           ])
       entries

let append_jsonl t path =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun json ->
          output_string oc (Dsm.Json.to_string json);
          output_char oc '\n')
        (jsonl_records t))
