type counter = { c_name : string; c_cell : int Atomic.t }

type gauge = { g_name : string; g_cell : float Atomic.t }

(* Log-scale (base-2) histogram: bucket 0 holds non-positive values,
   bucket i (i >= 1) holds [2^(i-1), 2^i).  63 buckets cover the whole
   non-negative [int] range on a 64-bit platform.  Every cell is an
   [Atomic.t], so concurrent observations from several domains merge
   without locking. *)
type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type histogram_snapshot = {
  count : int;
  sum : int;
  max : int;
  buckets : (int * int * int) list;  (** (lo, hi, count), non-empty only *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { lock : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let num_buckets = 63

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (num_buckets - 1)
  end

(* Inclusive value range of bucket [i]; bucket 0 is reported as [0, 0]
   even though it also absorbs negative observations. *)
let bucket_bounds i =
  if i <= 0 then (0, 0) else (1 lsl (i - 1), (1 lsl i) - 1)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let get_or_create t name build use =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> use m
      | None ->
          let m = build () in
          Hashtbl.replace t.tbl name m;
          use m)

let type_mismatch name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered with another type"
       name)

let counter t name =
  get_or_create t name
    (fun () -> Counter { c_name = name; c_cell = Atomic.make 0 })
    (function Counter c -> c | _ -> type_mismatch name)

let gauge t name =
  get_or_create t name
    (fun () -> Gauge { g_name = name; g_cell = Atomic.make 0. })
    (function Gauge g -> g | _ -> type_mismatch name)

let histogram t name =
  get_or_create t name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_buckets = Array.init num_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0;
        })
    (function Histogram h -> h | _ -> type_mismatch name)

let incr c = Atomic.incr c.c_cell

let add c n = ignore (Atomic.fetch_and_add c.c_cell n)

let value c = Atomic.get c.c_cell

let set g v = Atomic.set g.g_cell v

let gauge_value g = Atomic.get g.g_cell

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then
    atomic_max cell v

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum (max v 0));
  atomic_max h.h_max v

let histogram_snapshot h =
  let buckets = ref [] in
  for i = num_buckets - 1 downto 0 do
    let n = Atomic.get h.h_buckets.(i) in
    if n > 0 then
      let lo, hi = bucket_bounds i in
      buckets := (lo, hi, n) :: !buckets
  done;
  {
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    max = Atomic.get h.h_max;
    buckets = !buckets;
  }

(* Estimate the [q]-quantile from the bucket counts.  The estimate is
   the upper bound of the bucket holding the rank-[ceil(q*count)]
   observation, clamped by the observed max (the last bucket absorbs
   everything above its lower bound, so its nominal [hi] can be far
   beyond anything seen). *)
let quantile (s : histogram_snapshot) q =
  if s.count <= 0 then None
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.count))) in
    let rec walk cum = function
      | [] -> Some s.max
      | (_, hi, n) :: rest ->
          let cum = cum + n in
          if cum >= rank then Some (min hi s.max) else walk cum rest
    in
    walk 0 s.buckets
  end

type view =
  | Counter_view of string * int
  | Gauge_view of string * float
  | Histogram_view of string * histogram_snapshot

(* One consistent, name-sorted pass over the registry under the
   registration mutex — safe to call from a scraping thread while the
   run keeps registering metrics. *)
let snapshot_all t =
  let metrics =
    locked t (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl [])
  in
  let metrics =
    List.sort (fun (a, _) (b, _) -> String.compare a b) metrics
  in
  List.map
    (fun (_, m) ->
      match m with
      | Counter c -> Counter_view (c.c_name, value c)
      | Gauge g -> Gauge_view (g.g_name, gauge_value g)
      | Histogram h -> Histogram_view (h.h_name, histogram_snapshot h))
    metrics

let metric_to_json = function
  | Counter c ->
      Dsm.Json.Obj
        [
          ("metric", Dsm.Json.String c.c_name);
          ("type", Dsm.Json.String "counter");
          ("value", Dsm.Json.Int (value c));
        ]
  | Gauge g ->
      Dsm.Json.Obj
        [
          ("metric", Dsm.Json.String g.g_name);
          ("type", Dsm.Json.String "gauge");
          ("value", Dsm.Json.Float (gauge_value g));
        ]
  | Histogram h ->
      let s = histogram_snapshot h in
      Dsm.Json.Obj
        [
          ("metric", Dsm.Json.String h.h_name);
          ("type", Dsm.Json.String "histogram");
          ("count", Dsm.Json.Int s.count);
          ("sum", Dsm.Json.Int s.sum);
          ("max", Dsm.Json.Int s.max);
          ( "buckets",
            Dsm.Json.List
              (List.map
                 (fun (lo, hi, n) ->
                   Dsm.Json.List
                     [ Dsm.Json.Int lo; Dsm.Json.Int hi; Dsm.Json.Int n ])
                 s.buckets) );
        ]

let to_json_lines t =
  let metrics =
    locked t (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.tbl [])
  in
  let metrics =
    List.sort (fun (a, _) (b, _) -> String.compare a b) metrics
  in
  List.map (fun (_, m) -> metric_to_json m) metrics

let find_counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> Some c
      | _ -> None)

let find_gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Gauge g) -> Some g
      | _ -> None)

let find_histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Histogram h) -> Some h
      | _ -> None)
