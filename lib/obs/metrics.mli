(** Metrics registry: counters, gauges and log-scale histograms.

    Every cell is an [Atomic.t], so instrumented code can record from
    several domains concurrently and the registry stays consistent
    without per-update locking; only registration (get-or-create by
    name) takes a mutex.  Updates are a handful of nanoseconds, cheap
    enough to leave always-on in checker hot loops. *)

type t

val create : unit -> t

(** {2 Counters} — monotone integers. *)

type counter

(** Get or create; raises [Invalid_argument] if [name] is already
    registered as a different metric type. *)
val counter : t -> string -> counter

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

(** {2 Gauges} — last-written floats. *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

(** {2 Histograms} — log-scale (base-2) integer histograms. *)

type histogram

val histogram : t -> string -> histogram

val observe : histogram -> int -> unit

(** Bucket [0] holds values [<= 0]; bucket [i >= 1] holds
    [2^(i-1) .. 2^i - 1]; the last bucket absorbs everything above its
    lower bound (so [max_int] lands in bucket [num_buckets - 1]). *)
val bucket_index : int -> int

(** Inclusive (lo, hi) range of a bucket, for reporting. *)
val bucket_bounds : int -> int * int

val num_buckets : int

type histogram_snapshot = {
  count : int;
  sum : int;  (** negative observations contribute 0 to the sum *)
  max : int;
  buckets : (int * int * int) list;
      (** (lo, hi, count) of each non-empty bucket, ascending *)
}

val histogram_snapshot : histogram -> histogram_snapshot

(** [quantile snapshot q] estimates the [q]-quantile (clamped to
    [0..1]) from the log-scale bucket counts: the upper bound of the
    bucket holding the rank-[ceil(q*count)] observation, clamped by
    the observed maximum.  [None] on an empty histogram. *)
val quantile : histogram_snapshot -> float -> int option

(** {2 Export} *)

type view =
  | Counter_view of string * int
  | Gauge_view of string * float
  | Histogram_view of string * histogram_snapshot

(** One consistent, name-sorted snapshot of every registered metric,
    taken under the registration mutex — safe from a scraping thread
    while checker domains keep recording. *)
val snapshot_all : t -> view list

(** One JSON object per registered metric, sorted by name — ready to
    be written as JSONL. *)
val to_json_lines : t -> Dsm.Json.t list

(** Lookup without registration: [None] when the name is absent {e or}
    registered as a different metric type.  Lets tests and tooling
    read a finished run's registry without re-registering. *)
val find_counter : t -> string -> counter option

val find_gauge : t -> string -> gauge option

val find_histogram : t -> string -> histogram option
