(** Deterministic witness replay for {!Trace} recordings.

    A recorded [ev = "witness"] record is self-contained: the starting
    system states and every scheduled event travel as hex-marshalled
    protocol values, together with the expected state fingerprint
    after each step.  Replay decodes them inside the same protocol
    functor (the binary that wrote them names the protocol in its run
    header), re-executes the schedule against the live handlers, and
    compares fingerprints step by step — any divergence means the
    recorded run and the current code disagree bit-for-bit.

    The decode trusts the trace to match [P] (Marshal carries no type
    information); dispatch by the run header's protocol name before
    calling in. *)

module Make (P : Dsm.Protocol.S) : sig
  (** [witness_fields ~init ~schedule ~invariant ~detail] builds the
      payload of an [ev = "witness"] trace record: the starting states,
      the schedule with embedded payloads, and per-step expected
      fingerprints computed by sequential re-execution from [init]. *)
  val witness_fields :
    init:P.state array ->
    schedule:(P.message, P.action) Dsm.Trace.t ->
    invariant:string ->
    detail:string ->
    (string * Dsm.Json.t) list

  type outcome = {
    steps_checked : int;
    divergence : (int * string * string) option;
        (** (step index, expected fp, replayed fp) of the first
            fingerprint mismatch; [None] = bit-identical throughout *)
    final_matches : bool;
        (** the replayed final system fingerprint equals the recorded
            one *)
    final : P.state array;  (** the replayed final system state *)
  }

  (** [replay_witness fields] decodes the field list of a parsed
      witness record and re-executes it.  [Error] means the record is
      malformed (or for another protocol); a fingerprint mismatch is
      reported through [divergence], not as [Error]. *)
  val replay_witness :
    (string * Dsm.Json.t) list -> (outcome, string) result
end
