module Metrics = Metrics
module Sink = Sink
module Trace = Trace
module Replay = Replay
module Prof = Prof
module Exporter = Exporter
module Timeseries = Timeseries
module Procstat = Procstat

type scope = {
  metrics : Metrics.t;
  sinks : Sink.t list;
  active : bool;
  clock0 : float;
  progress_interval : float option;
  mutable next_beat : float;
  mutable beat_tick : int;
  profiler : Prof.t option;
  timeseries : Timeseries.t option;
  (* Precomputed: any of progress / profiler / timeseries attached.
     Keeps the heartbeat's common path to a load, a branch, an
     increment and a mask even when all three are on. *)
  ticking : bool;
}

let now () = Unix.gettimeofday ()

let make ?metrics ?(sinks = []) ?progress ?profiler ?timeseries () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    metrics;
    sinks;
    active = sinks <> [];
    clock0 = now ();
    progress_interval = progress;
    next_beat =
      (match progress with Some iv -> now () +. iv | None -> infinity);
    beat_tick = 0;
    profiler;
    timeseries;
    ticking =
      progress <> None || profiler <> None || timeseries <> None;
  }

let null = make ()

let create ?metrics ?sinks ?progress ?profiler ?timeseries () =
  make ?metrics ?sinks ?progress ?profiler ?timeseries ()

let is_null scope = scope == null

let active scope = scope.active

let metrics scope = scope.metrics

let counter scope name = Metrics.counter scope.metrics name

let gauge scope name = Metrics.gauge scope.metrics name

let histogram scope name = Metrics.histogram scope.metrics name

let elapsed scope = now () -. scope.clock0

let emit scope name fields =
  let e = { Sink.ts = elapsed scope; name; fields } in
  List.iter (fun sink -> Sink.emit sink e) scope.sinks

let event scope ?(fields = []) name =
  if scope.active then emit scope name fields

let span scope ?(fields = []) name f =
  if not scope.active then f ()
  else begin
    let t0 = now () in
    let finish () =
      emit scope name
        (fields @ [ ("elapsed_s", Dsm.Json.Float (now () -. t0)) ])
    in
    Fun.protect ~finally:finish f
  end

(* Hot-loop safe: a branch and an integer increment on the common path;
   the clock is consulted only every 256 calls.  Meant to be called
   from a single domain (the exploration loop).  The same tick gate
   drives profiler sampling and the attached timeseries sampler, and
   progress lines carry GC/RSS so memory pressure shows without any
   extra flag. *)
let heartbeat scope fields =
  if scope.ticking then begin
    scope.beat_tick <- scope.beat_tick + 1;
    if scope.beat_tick land 0xff = 0 then begin
      (match scope.profiler with
      | Some p -> Prof.boundary p
      | None -> ());
      match (scope.progress_interval, scope.timeseries) with
      | None, None -> ()
      | progress, timeseries -> (
          let t = now () in
          (match timeseries with
          | Some ts -> Timeseries.maybe_sample ts ~now:t
          | None -> ());
          match progress with
          | Some iv when t >= scope.next_beat ->
              scope.next_beat <- t +. iv;
              emit scope "progress" (fields () @ Procstat.mem_fields ())
          | _ -> ())
    end
  end

(* {2 Profiling} — all no-ops (one branch) without an attached
   profiler, so they can sit on per-transition paths. *)

let prof scope = scope.profiler

(* Boundary-sampled frame for coarse phases (combination checking,
   soundness verification, a whole run): entry and exit force a
   sample, so neighbouring phases never bleed into each other. *)
let frame scope name f =
  match scope.profiler with
  | None -> f ()
  | Some p -> (
      Prof.enter p name;
      match f () with
      | r ->
          Prof.leave p;
          r
      | exception e ->
          Prof.leave p;
          raise e)

let flush scope = List.iter Sink.flush scope.sinks

let close scope =
  (match scope.timeseries with
  | Some ts -> Timeseries.close ts
  | None -> ());
  List.iter Sink.close scope.sinks

let write_metrics_jsonl scope path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun json ->
          output_string oc (Dsm.Json.to_string json);
          output_char oc '\n')
        (Metrics.to_json_lines scope.metrics))
