module Metrics = Metrics
module Sink = Sink
module Trace = Trace
module Replay = Replay

type scope = {
  metrics : Metrics.t;
  sinks : Sink.t list;
  active : bool;
  clock0 : float;
  progress_interval : float option;
  mutable next_beat : float;
  mutable beat_tick : int;
}

let now () = Unix.gettimeofday ()

let make ?metrics ?(sinks = []) ?progress () =
  let metrics =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  {
    metrics;
    sinks;
    active = sinks <> [];
    clock0 = now ();
    progress_interval = progress;
    next_beat =
      (match progress with Some iv -> now () +. iv | None -> infinity);
    beat_tick = 0;
  }

let null = make ()

let create ?metrics ?sinks ?progress () = make ?metrics ?sinks ?progress ()

let is_null scope = scope == null

let active scope = scope.active

let metrics scope = scope.metrics

let counter scope name = Metrics.counter scope.metrics name

let gauge scope name = Metrics.gauge scope.metrics name

let histogram scope name = Metrics.histogram scope.metrics name

let elapsed scope = now () -. scope.clock0

let emit scope name fields =
  let e = { Sink.ts = elapsed scope; name; fields } in
  List.iter (fun sink -> Sink.emit sink e) scope.sinks

let event scope ?(fields = []) name =
  if scope.active then emit scope name fields

let span scope ?(fields = []) name f =
  if not scope.active then f ()
  else begin
    let t0 = now () in
    let finish () =
      emit scope name
        (fields @ [ ("elapsed_s", Dsm.Json.Float (now () -. t0)) ])
    in
    Fun.protect ~finally:finish f
  end

(* Hot-loop safe: a branch and an integer increment on the common path;
   the clock is consulted only every 256 calls.  Meant to be called
   from a single domain (the exploration loop). *)
let heartbeat scope fields =
  match scope.progress_interval with
  | None -> ()
  | Some iv ->
      scope.beat_tick <- scope.beat_tick + 1;
      if scope.beat_tick land 0xff = 0 then begin
        let t = now () in
        if t >= scope.next_beat then begin
          scope.next_beat <- t +. iv;
          emit scope "progress" (fields ())
        end
      end

let flush scope = List.iter Sink.flush scope.sinks

let close scope = List.iter Sink.close scope.sinks

let write_metrics_jsonl scope path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun json ->
          output_string oc (Dsm.Json.to_string json);
          output_char oc '\n')
        (Metrics.to_json_lines scope.metrics))
