(** The flight recorder: a causal, replayable record of exploration.

    Checkers log every explored transition as one structured record —
    acting node, handler label, consumed/produced messages with [I+]
    provenance (which earlier record first injected each message),
    state fingerprints before/after, depth — plus run headers, the
    soundness search's own verdicts, and fully materialised violation
    witnesses.  The stream is JSONL with a versioned schema
    ([trace.v1]); [bin/jsonl_check] validates it, [lmc report] renders
    it, and [lmc replay] re-executes recorded witnesses against the
    live handlers.

    Recording happens only on the sequential apply half of each
    checker (PR 2's determinism contract), so the record stream — in
    particular every fingerprint — is bit-identical at any domain
    count.

    Two bounded-memory modes: {!to_file} streams through a
    {!Sink.jsonl_file} as the run progresses; {!ring} keeps only the
    last [capacity] records in memory and dumps them at {!close}
    (cheap enough for always-on recording: no rendering or I/O on the
    hot path). *)

(** The schema version tag carried by every record (["trace.v1"]). *)
val schema : string

type t

(** The disabled recorder: {!emit} is one branch and returns [-1]. *)
val null : t

(** Whether records will actually be kept (callers gate the cost of
    assembling record fields on this). *)
val enabled : t -> bool

(** Stream records to [path] as JSONL while the run progresses. *)
val to_file : string -> t

(** Record through an existing sink (e.g. {!Sink.memory} in tests). *)
val of_sink : Sink.t -> t

(** The underlying sink of a streaming recorder ({!to_file} /
    {!of_sink}); [None] for {!null} and for {!ring} mode, whose file
    is only written at {!close}.  Lets sibling schemas (the
    checkpoint layer's [store.v1] records) interleave their own
    [seq]-spaces into the same JSONL stream. *)
val sink : t -> Sink.t option

(** Keep only the last [capacity] (default 65536) records in memory;
    {!close} writes them to [path] oldest-first, followed by a
    [ring_meta] record saying how many early records were overwritten.
    The file is opened eagerly so an unwritable path fails here. *)
val ring : ?capacity:int -> string -> t

(** [emit t ~ev fields] appends one record
    [{"ts":..,"event":"trace","schema":"trace.v1","seq":N,"ev":ev,...fields}]
    and returns its sequence number ([-1] when disabled).  Sequence
    numbers increase monotonically; provenance fields in later records
    reference them.  Thread-safe, but deterministic streams require
    emitting from the sequential apply path only. *)
val emit : t -> ev:string -> (string * Dsm.Json.t) list -> int

(** Like {!emit}, but field assembly is deferred: {!ring} stores the
    thunk unforced and renders at {!close} (at most [capacity] forces
    however long the run), streaming modes force immediately.  The
    [seq] is still assigned eagerly.  Captured values must be
    immutable — the thunk may run long after the transition. *)
val emit_lazy : t -> ev:string -> (unit -> (string * Dsm.Json.t) list) -> int

val flush : t -> unit

(** Flush and release; ring mode performs its dump here.  Idempotent. *)
val close : t -> unit

(** {2 The typed transition record}

    The [ev = "step"] payload, typed so encode/decode can be
    round-trip tested and consumers need no ad-hoc field picking. *)

type step_kind = Deliver | Action | Crash

type step = {
  node : int;  (** acting node *)
  kind : step_kind;
  src : int;  (** sender for deliveries; [-1] for internal actions and
                  crash-recoveries *)
  label : string;  (** rendered message/action (protocol [pp]) *)
  fp_before : string;  (** full-hex fingerprint of the node state *)
  fp_after : string;
  consumed : (string * int) option;
      (** delivered message fingerprint and the [seq] of the record
          that first injected it into [I+] ([-1]: predates recording) *)
  produced : string list;  (** fingerprints of sent messages *)
  depth : int;
  dom : int;  (** domain id of the recording (apply) side *)
}

val step_to_json : step -> Dsm.Json.t

val step_of_json : Dsm.Json.t -> (step, string) result

(** [record_step t s] = [emit t ~ev:"step" ...]. *)
val record_step : t -> step -> int

(** {!record_step} with the step assembled lazily (see {!emit_lazy});
    the checker's hot path uses this so ring-mode recording does no
    formatting or hex conversion per transition. *)
val record_step_lazy : t -> (unit -> step) -> int

(** {2 Hex transport encoding}

    Witness records embed marshalled protocol values; hex keeps them
    printable inside JSON strings. *)

val hex_of_string : string -> string

val string_of_hex : string -> (string, string) result
