(* Process-level stats for telemetry: resident set size from
   /proc/self/statm (0 where procfs is unavailable) and a compact view
   of the GC counters.  lib/store has its own RSS reader, but the
   dependency points the other way (store depends on obs), so the
   few-line parser is duplicated here rather than inverting the
   layering. *)

let page_size = 4096

let rss_bytes () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> 0
          | line -> (
              match String.split_on_char ' ' line with
              | _ :: resident :: _ -> (
                  match int_of_string_opt (String.trim resident) with
                  | Some pages when pages > 0 -> pages * page_size
                  | _ -> 0)
              | _ -> 0))

type mem = {
  gc_minor : int;  (** minor collections so far *)
  gc_major : int;  (** major collections so far *)
  heap_words : int;  (** major-heap size in words *)
  rss : int;  (** resident set size in bytes; 0 if unknown *)
}

let sample () =
  let g = Gc.quick_stat () in
  {
    gc_minor = g.Gc.minor_collections;
    gc_major = g.Gc.major_collections;
    heap_words = g.Gc.heap_words;
    rss = rss_bytes ();
  }

let mb bytes = float_of_int bytes /. (1024. *. 1024.)

(* The fields appended to progress heartbeats and health reports. *)
let mem_fields () =
  let m = sample () in
  [
    ("gc_minor", Dsm.Json.Int m.gc_minor);
    ("gc_major", Dsm.Json.Int m.gc_major);
    ("heap_mb", Dsm.Json.Float (mb (m.heap_words * 8)));
    ("rss_mb", Dsm.Json.Float (mb m.rss));
  ]
