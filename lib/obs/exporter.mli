(** Live telemetry endpoint: a tiny HTTP/1.0 server (one stdlib
    thread, no dependencies) exposing a {!Metrics} registry.

    - [/metrics] — Prometheus text exposition format.  Dots/dashes in
      metric names map to ['_']; counters gain the [_total] suffix;
      log-scale histograms render as cumulative [_bucket{le=...}]
      series.
    - [/healthz] — one JSON object: ["status"], ["uptime_s"], the
      health callback's fields (by default the online supervisor's
      gauges — degradation tier, restart budget remaining, last
      snapshot age — when present in the registry) and process
      GC/RSS figures.

    Scrapes read atomics and take only the registration mutex, so a
    running checker is never blocked mid-transition. *)

type t

(** [start ~metrics ~port ()] binds [addr] (default 127.0.0.1) and
    spawns the listener thread.  [port = 0] picks a free port — read
    it back with {!port}.  [health] overrides the /healthz payload
    (minus the status/uptime/memory envelope).
    Raises [Unix.Unix_error] if the bind fails. *)
val start :
  ?addr:string ->
  ?health:(unit -> (string * Dsm.Json.t) list) ->
  metrics:Metrics.t ->
  port:int ->
  unit ->
  t

(** The bound port (useful with [~port:0]). *)
val port : t -> int

(** Requests served so far. *)
val requests : t -> int

(** Stop the listener thread and close the socket.  Idempotent. *)
val stop : t -> unit

(** The /metrics payload for [metrics] — exposed for tests and for
    rendering a final scrape without a live server. *)
val render_prometheus : Metrics.t -> string
