type 'state t = { time : float; states : 'state array }

let make ~time states =
  if Array.length states = 0 then invalid_arg "Snapshot.make: no nodes";
  { time; states = Array.copy states }

let initial (type s) (module P : Dsm.Protocol.S with type state = s) =
  { time = 0.; states = Dsm.Protocol.initial_system (module P) }

type error = Corrupt_snapshot of string

let pp_error ppf (Corrupt_snapshot why) =
  Format.fprintf ppf "corrupt snapshot: %s" why

(* Wire format: an 8-byte magic, the 16-byte MD5 of the payload, then
   the marshalled snapshot.  The digest is checked before any byte
   reaches [Marshal], so a torn or bit-flipped snapshot surfaces as a
   typed [Corrupt_snapshot] instead of a segfault-adjacent
   [Marshal.from_string] failure. *)
let magic = "lmcsnp01"

let to_string snapshot =
  let payload = Marshal.to_string snapshot [] in
  let digest = Digest.string payload in
  magic ^ digest ^ payload

let of_string s =
  let mlen = String.length magic in
  let hlen = mlen + 16 in
  if String.length s < hlen then
    Error (Corrupt_snapshot "truncated header")
  else if String.sub s 0 mlen <> magic then
    Error (Corrupt_snapshot "bad magic")
  else
    let digest = String.sub s mlen 16 in
    let payload = String.sub s hlen (String.length s - hlen) in
    if not (String.equal (Digest.string payload) digest) then
      Error (Corrupt_snapshot "digest mismatch")
    else
      match (Marshal.from_string payload 0 : 'state t) with
      | snapshot ->
          if Array.length snapshot.states = 0 then
            Error (Corrupt_snapshot "empty snapshot")
          else Ok snapshot
      | exception _ -> Error (Corrupt_snapshot "unmarshal failure")
