type 'state t = {
  time : float;
  states : 'state array;
  membership : bool array;
}

let make ?membership ~time states =
  if Array.length states = 0 then invalid_arg "Snapshot.make: no nodes";
  let membership =
    match membership with
    | None -> Array.make (Array.length states) true
    | Some m ->
        if Array.length m <> Array.length states then
          invalid_arg "Snapshot.make: membership width mismatch";
        Array.copy m
  in
  { time; states = Array.copy states; membership }

let initial (type s) (module P : Dsm.Protocol.S with type state = s) =
  let states = Dsm.Protocol.initial_system (module P) in
  { time = 0.; states; membership = Array.make (Array.length states) true }

let live_nodes snapshot =
  let live = ref [] in
  for n = Array.length snapshot.membership - 1 downto 0 do
    if snapshot.membership.(n) then live := n :: !live
  done;
  !live

type error = Corrupt_snapshot of string

let pp_error ppf (Corrupt_snapshot why) =
  Format.fprintf ppf "corrupt snapshot: %s" why

(* Wire format: an 8-byte magic, the 16-byte MD5 of the payload, then
   the marshalled snapshot.  The digest is checked before any byte
   reaches [Marshal], so a torn or bit-flipped snapshot surfaces as a
   typed [Corrupt_snapshot] instead of a segfault-adjacent
   [Marshal.from_string] failure.  "02" added the membership map; old
   "01" snapshots fail the magic check and read as corrupt, which
   degrades to a cold start — the documented contract. *)
let magic = "lmcsnp02"

let to_string snapshot =
  let payload = Marshal.to_string snapshot [] in
  let digest = Digest.string payload in
  magic ^ digest ^ payload

let of_string s =
  let mlen = String.length magic in
  let hlen = mlen + 16 in
  if String.length s < hlen then
    Error (Corrupt_snapshot "truncated header")
  else if String.sub s 0 mlen <> magic then
    Error (Corrupt_snapshot "bad magic")
  else
    let digest = String.sub s mlen 16 in
    let payload = String.sub s hlen (String.length s - hlen) in
    if not (String.equal (Digest.string payload) digest) then
      Error (Corrupt_snapshot "digest mismatch")
    else
      match (Marshal.from_string payload 0 : 'state t) with
      | snapshot ->
          if Array.length snapshot.states = 0 then
            Error (Corrupt_snapshot "empty snapshot")
          else if
            Array.length snapshot.membership <> Array.length snapshot.states
          then Error (Corrupt_snapshot "membership width mismatch")
          else Ok snapshot
      | exception _ -> Error (Corrupt_snapshot "unmarshal failure")
