(** Discrete-event simulation of a live deployment.

    Substitutes for the real three-node UDP deployment of sections
    5.5/5.6: nodes run the protocol state machine, messages cross a
    lossy link with random latency, and a per-node timer periodically
    fires one enabled internal action (the application/test driver).
    Everything is driven by a seeded {!Rng}, so runs replay exactly.

    A {!Fault.Plan.t} in the config injects environment faults as
    ordinary events on the same queue: crash/recovery of nodes (with
    configurable persistence), partitions, duplication, bounded
    reordering, and corruption-as-drop.  Fault randomness draws from a
    dedicated stream split off the same seed, so an empty plan leaves
    the base run bit-identical and a non-empty plan is itself exactly
    replayable (same seed + same plan = same trace).

    The fleet is dynamic: [join]/[leave] clauses admit and remove
    nodes at plan times.  The state array keeps a fixed width — an
    absent slot holds the node's canonical initial state, ticks no
    timers, and drops (and counts as fault drops) any envelope
    addressed to it.  A [load] clause drives an open-loop Poisson
    arrival process (seeded, from the fault stream): each arrival
    fires one enabled action at a uniformly drawn present-and-up
    node. *)

module Make (P : Dsm.Protocol.S) : sig
  type config = {
    seed : int;
    link : Net.Lossy_link.t;
    timer_min : float;  (** earliest next tick after an action fires *)
    timer_max : float;  (** latest next tick *)
    action_prob : (Dsm.Node_id.t -> P.action -> float) option;
        (** probability that the action picked at a tick actually
            fires; [None] means always.  Models drivers like §5.6's
            fault detector, which the application "triggers with the
            probability of 0.1". *)
    faults : Fault.Plan.t;
        (** deterministic fault schedule; {!Fault.Plan.empty} (the
            default) injects nothing and costs nothing *)
  }

  (** Sensible defaults: seed 42, reliable link, ticks in [0.5, 1.5],
      actions always fire, no faults. *)
  val default_config : config

  type t

  (** [create ?obs ?trace config] builds a simulation.  When [obs] is
      given, [sim.events] / [sim.messages_sent] / [sim.messages_dropped]
      counters mirror the accessors below, and a periodic ["progress"]
      heartbeat reports them together with the simulated clock.  When
      [trace] is given, every executed event additionally enters the
      flight recorder as a lightweight [ev = "live"] record (simulated
      clock, acting node, rendered event). *)
  val create : ?obs:Obs.scope -> ?trace:Obs.Trace.t -> config -> t

  (** Current simulation time in seconds. *)
  val now : t -> float

  (** Copy of the node states at the current time. *)
  val states : t -> P.state array

  (** Snapshots carry the membership map; see {!Snapshot}. *)
  val snapshot : t -> P.state Snapshot.t

  (** Indices of the nodes currently in the fleet, ascending.  Without
      [join]/[leave] clauses this is every node. *)
  val live_nodes : t -> int list

  (** Copy of the membership map (width [P.num_nodes]). *)
  val membership : t -> bool array

  (** [run_until t time] processes events up to [time] (inclusive of
      events scheduled exactly at [time]). *)
  val run_until : t -> float -> unit

  (** [step t] processes one event; false when the queue is empty. *)
  val step : t -> bool

  val events_executed : t -> int

  val messages_sent : t -> int

  (** Dropped by the lossy link's own Bernoulli loss. *)
  val messages_dropped : t -> int

  (** Executed crash/recover events from the fault plan. *)
  val fault_events : t -> int

  (** Messages destroyed by the plan: corruption, delivery to a
      crashed node, or an active partition. *)
  val fault_drops : t -> int

  val messages_duplicated : t -> int

  (** Executed join/leave events from the plan. *)
  val churn_events : t -> int

  (** Executed load-process arrivals (inside an active window, with at
      least one present-and-up node to land on). *)
  val load_arrivals : t -> int
end
