(** Live-state snapshots.

    The online checker is "restarted periodically from the current live
    state of a running system" (section 3.3).  A snapshot captures the
    node-local states only: like the paper's [findBugs] (Fig. 9, line
    2), the shared network [I+] restarts empty, so in-flight messages
    at snapshot time are treated as lost — sound under the lossy
    network assumption of section 4.3.

    Under churn the fleet is dynamic, but the snapshot keeps a fixed
    width: [states] always spans every slot the protocol declares, and
    [membership.(n)] says whether slot [n] was part of the fleet at
    capture time.  Absent slots hold the node's canonical initial
    state, so fixed-width checkers restarted from the snapshot stay
    sound (an absent node behaves like one that has not acted yet). *)

type 'state t = {
  time : float;
  states : 'state array;
  membership : bool array;  (** same width as [states] *)
}

(** [membership] defaults to all-present; when given it must match the
    width of the state vector. *)
val make : ?membership:bool array -> time:float -> 'state array -> 'state t

(** Initial-system snapshot at time 0, for offline checking. *)
val initial : (module Dsm.Protocol.S with type state = 's) -> 's t

(** Indices of the present nodes, ascending. *)
val live_nodes : 'state t -> int list

(** {2 Checksummed transport encoding}

    In the CrystalBall deployment a snapshot crosses a wire from the
    live node to the checker; a torn or corrupted capture must fail
    loudly and typed, not somewhere inside [Marshal]. *)

type error = Corrupt_snapshot of string  (** carries a diagnostic *)

val pp_error : Format.formatter -> error -> unit

(** Marshal with an integrity header (magic + MD5 digest). *)
val to_string : 'state t -> string

(** Verify the header and digest {e before} unmarshalling; every
    failure mode (truncation, bad magic, bit flips, unmarshalable
    payload) comes back as [Error (Corrupt_snapshot reason)].  Type
    safety is the caller's promise, as with any [Marshal] read: the
    string must encode a snapshot of the expected state type. *)
val of_string : string -> ('state t, error) result
