(** Named scenarios: reproducible workload + fault-plan bundles.

    "Model Checking in Bits and Pieces" motivates checking a system
    per-scenario rather than in one monolithic run; a scenario here is
    a named, seeded record — protocol, node count, fault plan,
    expected verdict — that an executor (the CLI's [lmc scenario])
    drives either as a {!Live_sim} soak with periodic invariant
    evaluation or as an online hunt.  The scenario layer itself is
    protocol-generic: the concrete bundled suite lives with the CLI,
    which knows the protocol registry.

    Results stream as [scenario.v1] JSONL records (own schema tag,
    own [seq] space, interleavable with trace.v1 / store.v1 lines). *)

val schema : string

(** The [scenario.v1] emitter; same discipline as [Store.Events]. *)
module Events : sig
  type t

  val null : t

  val of_sink : Obs.Sink.t -> t

  val of_trace : Obs.Trace.t -> t

  val enabled : t -> bool

  val emit : t -> ev:string -> (string * Dsm.Json.t) list -> unit
end

type verdict = Clean | Violation

val verdict_to_string : verdict -> string

type kind = Soak | Hunt

val kind_to_string : kind -> string

type report = {
  verdict : verdict;
  detail : string;  (** violated invariant + detail; [""] when clean *)
  steps : int;
      (** executed sim events (soak) / explored states (hunt) *)
  churn : int;  (** executed join/leave events *)
  fleet : int;  (** present nodes at the end of the run *)
}

type t = {
  name : string;
  description : string;
  protocol : string;  (** runner name in the CLI registry *)
  nodes : int;
  seed : int;
  plan : string;  (** fault-plan DSL, for display and replay *)
  kind : kind;
  expected : verdict;
  run : domains:int -> report;  (** the executor closure *)
}

type outcome = {
  scenario : t;
  report : report;
  pass : bool;  (** verdict matched the expectation *)
  elapsed : float;
}

(** Run one scenario: emits a [scenario_run] record, executes, emits
    a [scenario_end] record carrying verdict/expected/pass. *)
val run_one : ?domains:int -> Events.t -> t -> outcome

val run_all : ?domains:int -> Events.t -> t list -> outcome list

(** Generic soak executor: drive {!Live_sim} to [duration] in
    [check_every]-sized slices (default 5 simulated seconds),
    evaluating [invariant] over the live states after each slice;
    the first violation ends the run. *)
module Soak (P : Dsm.Protocol.S) : sig
  module S : module type of Live_sim.Make (P)

  val run :
    ?obs:Obs.scope ->
    ?trace:Obs.Trace.t ->
    ?check_every:float ->
    invariant:P.state Dsm.Invariant.t ->
    duration:float ->
    S.config ->
    report
end
