module Make (P : Dsm.Protocol.S) = struct
  type config = {
    seed : int;
    link : Net.Lossy_link.t;
    timer_min : float;
    timer_max : float;
    action_prob : (Dsm.Node_id.t -> P.action -> float) option;
    faults : Fault.Plan.t;
  }

  let default_config =
    {
      seed = 42;
      link = Net.Lossy_link.reliable;
      timer_min = 0.5;
      timer_max = 1.5;
      action_prob = None;
      faults = Fault.Plan.empty;
    }

  (* Ticks carry the epoch they were scheduled in: a crash bumps the
     node's epoch, so timers pending from before the crash fire into
     the void and the recovery schedules a fresh one. *)
  type event =
    | Deliver of P.message Dsm.Envelope.t
    | Tick of Dsm.Node_id.t * int
    | Crash of Dsm.Node_id.t
    | Recover of Dsm.Node_id.t * Fault.Plan.persistence
    | Join of Dsm.Node_id.t
    | Leave of Dsm.Node_id.t
    | Arrival
        (* next point of the plan's open-loop load process; carries no
           payload, the target node is drawn at execution time *)

  (* Metric handles resolved once at [create]; see the LMC checker for
     the cost model. *)
  type obs_handles = {
    scope : Obs.scope;
    c_events : Obs.Metrics.counter;
    c_sent : Obs.Metrics.counter;
    c_dropped : Obs.Metrics.counter;
    c_faults : Obs.Metrics.counter;
    c_fault_drops : Obs.Metrics.counter;
    c_duplicated : Obs.Metrics.counter;
    c_churn : Obs.Metrics.counter;
    c_load : Obs.Metrics.counter;
  }

  let make_obs_handles scope =
    {
      scope;
      c_events = Obs.counter scope "sim.events";
      c_sent = Obs.counter scope "sim.messages_sent";
      c_dropped = Obs.counter scope "sim.messages_dropped";
      c_faults = Obs.counter scope "sim.fault_events";
      c_fault_drops = Obs.counter scope "sim.fault_drops";
      c_duplicated = Obs.counter scope "sim.messages_duplicated";
      c_churn = Obs.counter scope "sim.churn_events";
      c_load = Obs.counter scope "sim.load_arrivals";
    }

  type t = {
    config : config;
    o : obs_handles;
    trace : Obs.Trace.t;
    tracing : bool;
    states : P.state array;
    queue : event Event_queue.t;
    node_rng : Rng.t array;
    link_rng : Rng.t;
    fault_rng : Rng.t;
        (* probabilistic fault decisions draw here, never from the
           link/node streams: an empty plan leaves the base run's
           random choices bit-identical *)
    injecting : bool;  (* plan non-empty; gates all fault work *)
    msg_faults : Fault.Plan.t;
        (* the plan filtered to message-affecting clauses, once at
           creation: the per-send fate walk must not scan churn, crash
           or load clauses it can never apply *)
    msg_injecting : bool;  (* msg_faults non-empty; gates the fate walk *)
    fault_roll : unit -> float;
        (* the fault stream's roll, allocated once: [send] is the hot
           path and must not build a closure per message *)
    up : bool array;
    present : bool array;
        (* membership: an absent slot holds the node's canonical
           initial state and neither receives traffic nor ticks *)
    tick_epoch : int array;
    mutable clock : float;
    mutable events_executed : int;
    mutable messages_sent : int;
    mutable messages_dropped : int;
    mutable fault_events : int;
    mutable fault_drops : int;
    mutable messages_duplicated : int;
    mutable churn_events : int;
    mutable load_arrivals : int;
  }

  let schedule_tick t n =
    let rng = t.node_rng.(n) in
    let delay = Rng.range rng t.config.timer_min t.config.timer_max in
    Event_queue.push t.queue ~time:(t.clock +. delay)
      (Tick (n, t.tick_epoch.(n)))

  (* Exponential inter-arrival at the rate active now (a seeded Poisson
     process); across rate-zero gaps the process sleeps to the next
     window start instead of polling.  All draws come from the fault
     stream, so a load clause never perturbs node or link randomness. *)
  let schedule_arrival t =
    let rate = Fault.Plan.load_rate t.config.faults ~time:t.clock in
    if rate > 0. then begin
      let u = Rng.float t.fault_rng in
      let delay = -.log (1. -. u) /. rate in
      Event_queue.push t.queue ~time:(t.clock +. delay) Arrival
    end
    else
      match Fault.Plan.next_load_start t.config.faults ~time:t.clock with
      | Some time -> Event_queue.push t.queue ~time Arrival
      | None -> ()

  let live_up_count t =
    let c = ref 0 in
    for n = 0 to P.num_nodes - 1 do
      if t.present.(n) && t.up.(n) then incr c
    done;
    !c

  (* [k]th present-and-up node, 0-based; [-1] when out of range *)
  let nth_live t k =
    let seen = ref 0 and found = ref (-1) in
    (try
       for n = 0 to P.num_nodes - 1 do
         if t.present.(n) && t.up.(n) then begin
           if !seen = k then begin
             found := n;
             raise Exit
           end;
           incr seen
         end
       done
     with Exit -> ());
    !found

  let create ?(obs = Obs.null) ?(trace = Obs.Trace.null) config =
    if config.timer_min <= 0. || config.timer_max < config.timer_min then
      invalid_arg "Live_sim.create: need 0 < timer_min <= timer_max";
    (match Fault.Plan.validate ~num_nodes:P.num_nodes config.faults with
    | Ok () -> ()
    | Error e -> invalid_arg ("Live_sim.create: " ^ e));
    let root = Rng.create ~seed:config.seed in
    let node_rng = Array.init P.num_nodes (fun _ -> Rng.split root) in
    let link_rng = Rng.split root in
    (* split last: pre-fault seeds reproduce their exact old runs *)
    let fault_rng = Rng.split root in
    let t =
      {
        config;
        o = make_obs_handles obs;
        trace;
        tracing = Obs.Trace.enabled trace;
        states = Dsm.Protocol.initial_system (module P);
        queue = Event_queue.create ();
        node_rng;
        link_rng;
        fault_rng;
        injecting = not (Fault.Plan.is_empty config.faults);
        msg_faults = Fault.Plan.message_clauses config.faults;
        msg_injecting =
          not (Fault.Plan.is_empty (Fault.Plan.message_clauses config.faults));
        fault_roll = (fun () -> Rng.float fault_rng);
        up = Array.make P.num_nodes true;
        present =
          Array.init P.num_nodes (fun n ->
              not (Fault.Plan.starts_absent config.faults ~node:n));
        tick_epoch = Array.make P.num_nodes 0;
        clock = 0.;
        events_executed = 0;
        messages_sent = 0;
        messages_dropped = 0;
        fault_events = 0;
        fault_drops = 0;
        messages_duplicated = 0;
        churn_events = 0;
        load_arrivals = 0;
      }
    in
    List.iter
      (fun n -> if t.present.(n) then schedule_tick t n)
      (Dsm.Node_id.all P.num_nodes);
    List.iter
      (fun (time, ev) ->
        Event_queue.push t.queue ~time
          (match ev with
          | `Crash n -> Crash n
          | `Recover (n, p) -> Recover (n, p)
          | `Join n -> Join n
          | `Leave n -> Leave n))
      (Fault.Plan.node_events config.faults);
    if Fault.Plan.has_load config.faults then schedule_arrival t;
    t

  let now t = t.clock

  let states t = Array.copy t.states

  let snapshot t =
    Snapshot.make ~membership:t.present ~time:t.clock t.states

  let live_nodes t =
    let live = ref [] in
    for n = P.num_nodes - 1 downto 0 do
      if t.present.(n) then live := n :: !live
    done;
    !live

  let membership t = Array.copy t.present

  let push_delivery t env extra =
    let latency =
      Net.Lossy_link.latency t.config.link ~roll:(Rng.float t.link_rng)
    in
    Event_queue.push t.queue ~time:(t.clock +. latency +. extra) (Deliver env)

  let send t (env : P.message Dsm.Envelope.t) =
    t.messages_sent <- t.messages_sent + 1;
    Obs.Metrics.incr t.o.c_sent;
    if Net.Lossy_link.drops t.config.link ~roll:(Rng.float t.link_rng) env
    then begin
      t.messages_dropped <- t.messages_dropped + 1;
      Obs.Metrics.incr t.o.c_dropped
    end
    else if not t.msg_injecting then push_delivery t env 0.
    else begin
      let fate =
        Fault.Plan.message_fate t.msg_faults ~time:t.clock
          ~roll:t.fault_roll
      in
      if fate.Fault.Plan.corrupt then begin
        (* payload corruption: the receiver's checksum rejects it *)
        t.fault_drops <- t.fault_drops + 1;
        Obs.Metrics.incr t.o.c_fault_drops
      end
      else begin
        push_delivery t env fate.Fault.Plan.extra_latency;
        if fate.Fault.Plan.duplicate then begin
          t.messages_duplicated <- t.messages_duplicated + 1;
          Obs.Metrics.incr t.o.c_duplicated;
          (* the copy rolls its own latency, from the fault stream *)
          let latency =
            Net.Lossy_link.latency t.config.link
              ~roll:(Rng.float t.fault_rng)
          in
          Event_queue.push t.queue ~time:(t.clock +. latency) (Deliver env)
        end
      end
    end

  let apply t node run =
    match run () with
    | exception Dsm.Protocol.Local_assert _ ->
        (* A live node would drop the offending packet (e.g. one that
           arrived before initialisation); keep the node running. *)
        ()
    | state', out ->
        t.states.(node) <- state';
        List.iter (fun env -> send t env) out

  (* Executed live events enter the flight recorder as lightweight
     [live] records: wall-clock position, acting node, rendered event —
     no fingerprints, the live half is not replayed bit-for-bit. *)
  let record_live t ~kind ~node ~src ~label =
    ignore
      (Obs.Trace.emit t.trace ~ev:"live"
         [
           ("clock", Dsm.Json.Float t.clock);
           ("kind", Dsm.Json.String kind);
           ("node", Dsm.Json.Int node);
           ("src", Dsm.Json.Int src);
           ("label", Dsm.Json.String label);
         ])

  let count_fault_drop t ~node ~src ~why env =
    t.fault_drops <- t.fault_drops + 1;
    Obs.Metrics.incr t.o.c_fault_drops;
    if t.tracing then
      record_live t ~kind:"fault_drop" ~node ~src
        ~label:
          (Format.asprintf "%s %a" why P.pp_message env.Dsm.Envelope.payload)

  let count_fault t = t.fault_events <- t.fault_events + 1;
    Obs.Metrics.incr t.o.c_faults

  let count_churn t = t.churn_events <- t.churn_events + 1;
    Obs.Metrics.incr t.o.c_churn

  let execute t = function
    | Deliver env ->
        let node = env.Dsm.Envelope.dst in
        if t.injecting && not t.present.(node) then
          count_fault_drop t ~node ~src:env.Dsm.Envelope.src ~why:"departed"
            env
        else if t.injecting && not t.up.(node) then
          count_fault_drop t ~node ~src:env.Dsm.Envelope.src ~why:"crashed"
            env
        else if
          t.msg_injecting
          && Fault.Plan.partitioned t.msg_faults ~time:t.clock
               ~src:env.Dsm.Envelope.src ~dst:node
        then
          count_fault_drop t ~node ~src:env.Dsm.Envelope.src
            ~why:"partitioned" env
        else begin
          if t.tracing then
            record_live t ~kind:"deliver" ~node ~src:env.Dsm.Envelope.src
              ~label:
                (Format.asprintf "%a" P.pp_message env.Dsm.Envelope.payload);
          apply t node (fun () ->
              P.handle_message ~self:node t.states.(node) env)
        end
    | Tick (n, epoch) ->
        if epoch = t.tick_epoch.(n) then begin
          match P.enabled_actions ~self:n t.states.(n) with
          | [] -> schedule_tick t n
          | actions ->
              let action = Rng.pick t.node_rng.(n) actions in
              let fires =
                match t.config.action_prob with
                | None -> true
                | Some prob -> Rng.bool t.node_rng.(n) ~prob:(prob n action)
              in
              if fires then begin
                if t.tracing then
                  record_live t ~kind:"action" ~node:n ~src:(-1)
                    ~label:(Format.asprintf "%a" P.pp_action action);
                apply t n (fun () ->
                    P.handle_action ~self:n t.states.(n) action)
              end;
              schedule_tick t n
        end
    | Crash n ->
        count_fault t;
        t.up.(n) <- false;
        t.tick_epoch.(n) <- t.tick_epoch.(n) + 1;
        if t.tracing then
          record_live t ~kind:"crash" ~node:n ~src:(-1) ~label:"crash"
    | Recover (n, persistence) ->
        count_fault t;
        (* a recovery for a node that has since departed is void: the
           slot stays canonical until a join re-admits it *)
        if t.present.(n) then begin
          t.up.(n) <- true;
          t.tick_epoch.(n) <- t.tick_epoch.(n) + 1;
          t.states.(n) <-
            (match persistence with
            | Fault.Plan.Full -> t.states.(n)
            | Fault.Plan.Volatile -> P.initial n
            | Fault.Plan.Hook -> P.on_recover ~self:n t.states.(n));
          if t.tracing then
            record_live t ~kind:"recover" ~node:n ~src:(-1)
              ~label:
                (match persistence with
                | Fault.Plan.Full -> "recover full"
                | Fault.Plan.Volatile -> "recover volatile"
                | Fault.Plan.Hook -> "recover hook");
          schedule_tick t n
        end
    | Join n ->
        count_churn t;
        t.present.(n) <- true;
        t.up.(n) <- true;
        t.tick_epoch.(n) <- t.tick_epoch.(n) + 1;
        if t.tracing then
          record_live t ~kind:"join" ~node:n ~src:(-1) ~label:"join";
        schedule_tick t n
    | Leave n ->
        count_churn t;
        t.present.(n) <- false;
        t.tick_epoch.(n) <- t.tick_epoch.(n) + 1;
        (* the departed slot returns to its canonical initial state so
           snapshots stay sound: an absent node reads as one that has
           not acted yet *)
        t.states.(n) <- P.initial n;
        if t.tracing then
          record_live t ~kind:"leave" ~node:n ~src:(-1) ~label:"leave"
    | Arrival ->
        (if Fault.Plan.load_rate t.config.faults ~time:t.clock > 0. then begin
           let live = live_up_count t in
           if live > 0 then begin
             let node = nth_live t (Rng.int t.fault_rng live) in
             t.load_arrivals <- t.load_arrivals + 1;
             Obs.Metrics.incr t.o.c_load;
             match P.enabled_actions ~self:node t.states.(node) with
             | [] ->
                 if t.tracing then
                   record_live t ~kind:"load" ~node ~src:(-1) ~label:"idle"
             | actions ->
                 let action = Rng.pick t.fault_rng actions in
                 if t.tracing then
                   record_live t ~kind:"load" ~node ~src:(-1)
                     ~label:(Format.asprintf "%a" P.pp_action action);
                 apply t node (fun () ->
                     P.handle_action ~self:node t.states.(node) action)
           end
         end);
        schedule_arrival t

  let heartbeat t =
    Obs.heartbeat t.o.scope (fun () ->
        [
          ("sim_clock", Dsm.Json.Float t.clock);
          ("events", Dsm.Json.Int t.events_executed);
          ("messages_sent", Dsm.Json.Int t.messages_sent);
          ("messages_dropped", Dsm.Json.Int t.messages_dropped);
        ])

  let step t =
    match Event_queue.pop t.queue with
    | None -> false
    | Some (time, event) ->
        t.clock <- max t.clock time;
        t.events_executed <- t.events_executed + 1;
        Obs.Metrics.incr t.o.c_events;
        heartbeat t;
        execute t event;
        true

  let run_until t deadline =
    Obs.frame t.o.scope "sim.live" @@ fun () ->
    let rec loop () =
      match Event_queue.peek_time t.queue with
      | Some time when time <= deadline ->
          ignore (step t);
          loop ()
      | _ -> t.clock <- max t.clock deadline
    in
    loop ()

  let events_executed t = t.events_executed
  let messages_sent t = t.messages_sent
  let messages_dropped t = t.messages_dropped
  let fault_events t = t.fault_events
  let fault_drops t = t.fault_drops
  let messages_duplicated t = t.messages_duplicated
  let churn_events t = t.churn_events
  let load_arrivals t = t.load_arrivals
end
