module Make (P : Dsm.Protocol.S) = struct
  type config = {
    seed : int;
    link : Net.Lossy_link.t;
    timer_min : float;
    timer_max : float;
    action_prob : (Dsm.Node_id.t -> P.action -> float) option;
  }

  let default_config =
    {
      seed = 42;
      link = Net.Lossy_link.reliable;
      timer_min = 0.5;
      timer_max = 1.5;
      action_prob = None;
    }

  type event = Deliver of P.message Dsm.Envelope.t | Tick of Dsm.Node_id.t

  (* Metric handles resolved once at [create]; see the LMC checker for
     the cost model. *)
  type obs_handles = {
    scope : Obs.scope;
    c_events : Obs.Metrics.counter;
    c_sent : Obs.Metrics.counter;
    c_dropped : Obs.Metrics.counter;
  }

  let make_obs_handles scope =
    {
      scope;
      c_events = Obs.counter scope "sim.events";
      c_sent = Obs.counter scope "sim.messages_sent";
      c_dropped = Obs.counter scope "sim.messages_dropped";
    }

  type t = {
    config : config;
    o : obs_handles;
    trace : Obs.Trace.t;
    tracing : bool;
    states : P.state array;
    queue : event Event_queue.t;
    node_rng : Rng.t array;
    link_rng : Rng.t;
    mutable clock : float;
    mutable events_executed : int;
    mutable messages_sent : int;
    mutable messages_dropped : int;
  }

  let schedule_tick t n =
    let rng = t.node_rng.(n) in
    let delay = Rng.range rng t.config.timer_min t.config.timer_max in
    Event_queue.push t.queue ~time:(t.clock +. delay) (Tick n)

  let create ?(obs = Obs.null) ?(trace = Obs.Trace.null) config =
    if config.timer_min <= 0. || config.timer_max < config.timer_min then
      invalid_arg "Live_sim.create: need 0 < timer_min <= timer_max";
    let root = Rng.create ~seed:config.seed in
    let node_rng = Array.init P.num_nodes (fun _ -> Rng.split root) in
    let t =
      {
        config;
        o = make_obs_handles obs;
        trace;
        tracing = Obs.Trace.enabled trace;
        states = Dsm.Protocol.initial_system (module P);
        queue = Event_queue.create ();
        node_rng;
        link_rng = Rng.split root;
        clock = 0.;
        events_executed = 0;
        messages_sent = 0;
        messages_dropped = 0;
      }
    in
    List.iter (fun n -> schedule_tick t n) (Dsm.Node_id.all P.num_nodes);
    t

  let now t = t.clock

  let states t = Array.copy t.states

  let snapshot t = Snapshot.make ~time:t.clock t.states

  let send t (env : P.message Dsm.Envelope.t) =
    t.messages_sent <- t.messages_sent + 1;
    Obs.Metrics.incr t.o.c_sent;
    if Net.Lossy_link.drops t.config.link ~roll:(Rng.float t.link_rng) env
    then begin
      t.messages_dropped <- t.messages_dropped + 1;
      Obs.Metrics.incr t.o.c_dropped
    end
    else begin
      let latency =
        Net.Lossy_link.latency t.config.link ~roll:(Rng.float t.link_rng)
      in
      Event_queue.push t.queue ~time:(t.clock +. latency) (Deliver env)
    end

  let apply t node run =
    match run () with
    | exception Dsm.Protocol.Local_assert _ ->
        (* A live node would drop the offending packet (e.g. one that
           arrived before initialisation); keep the node running. *)
        ()
    | state', out ->
        t.states.(node) <- state';
        List.iter (fun env -> send t env) out

  (* Executed live events enter the flight recorder as lightweight
     [live] records: wall-clock position, acting node, rendered event —
     no fingerprints, the live half is not replayed bit-for-bit. *)
  let record_live t ~kind ~node ~src ~label =
    ignore
      (Obs.Trace.emit t.trace ~ev:"live"
         [
           ("clock", Dsm.Json.Float t.clock);
           ("kind", Dsm.Json.String kind);
           ("node", Dsm.Json.Int node);
           ("src", Dsm.Json.Int src);
           ("label", Dsm.Json.String label);
         ])

  let execute t = function
    | Deliver env ->
        let node = env.Dsm.Envelope.dst in
        if t.tracing then
          record_live t ~kind:"deliver" ~node ~src:env.Dsm.Envelope.src
            ~label:
              (Format.asprintf "%a" P.pp_message env.Dsm.Envelope.payload);
        apply t node (fun () -> P.handle_message ~self:node t.states.(node) env)
    | Tick n -> (
        match P.enabled_actions ~self:n t.states.(n) with
        | [] -> schedule_tick t n
        | actions ->
            let action = Rng.pick t.node_rng.(n) actions in
            let fires =
              match t.config.action_prob with
              | None -> true
              | Some prob ->
                  Rng.bool t.node_rng.(n) ~prob:(prob n action)
            in
            if fires then begin
              if t.tracing then
                record_live t ~kind:"action" ~node:n ~src:(-1)
                  ~label:(Format.asprintf "%a" P.pp_action action);
              apply t n (fun () -> P.handle_action ~self:n t.states.(n) action)
            end;
            schedule_tick t n)

  let heartbeat t =
    Obs.heartbeat t.o.scope (fun () ->
        [
          ("sim_clock", Dsm.Json.Float t.clock);
          ("events", Dsm.Json.Int t.events_executed);
          ("messages_sent", Dsm.Json.Int t.messages_sent);
          ("messages_dropped", Dsm.Json.Int t.messages_dropped);
        ])

  let step t =
    match Event_queue.pop t.queue with
    | None -> false
    | Some (time, event) ->
        t.clock <- max t.clock time;
        t.events_executed <- t.events_executed + 1;
        Obs.Metrics.incr t.o.c_events;
        heartbeat t;
        execute t event;
        true

  let run_until t deadline =
    let rec loop () =
      match Event_queue.peek_time t.queue with
      | Some time when time <= deadline ->
          ignore (step t);
          loop ()
      | _ -> t.clock <- max t.clock deadline
    in
    loop ()

  let events_executed t = t.events_executed
  let messages_sent t = t.messages_sent
  let messages_dropped t = t.messages_dropped
end
