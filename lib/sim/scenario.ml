let schema = "scenario.v1"

(* ----- the scenario.v1 record stream -----

   Same discipline as [Store.Events]: its own schema tag and its own
   strictly-increasing [seq] space, so the records interleave with
   trace.v1 / lint.v1 / store.v1 lines in one JSONL file and
   [bin/jsonl_check] validates each stream independently. *)

module Events = struct
  type t = {
    sink : Obs.Sink.t option;
    mutable seq : int;
    clock0 : float;
  }

  let null = { sink = None; seq = 0; clock0 = 0. }

  let of_sink sink =
    { sink = Some sink; seq = 0; clock0 = Unix.gettimeofday () }

  let of_trace trace =
    match Obs.Trace.sink trace with Some s -> of_sink s | None -> null

  let enabled t = t.sink <> None

  let emit t ~ev fields =
    match t.sink with
    | None -> ()
    | Some sink ->
        let seq = t.seq in
        t.seq <- seq + 1;
        Obs.Sink.emit sink
          {
            Obs.Sink.ts = Unix.gettimeofday () -. t.clock0;
            name = "scenario";
            fields =
              ("schema", Dsm.Json.String schema)
              :: ("seq", Dsm.Json.Int seq)
              :: ("ev", Dsm.Json.String ev)
              :: fields;
          }
end

(* ----- scenarios ----- *)

type verdict = Clean | Violation

let verdict_to_string = function Clean -> "clean" | Violation -> "violation"

type kind = Soak | Hunt

let kind_to_string = function Soak -> "soak" | Hunt -> "hunt"

type report = {
  verdict : verdict;
  detail : string;  (* violated invariant + detail; "" when clean *)
  steps : int;  (* executed sim events (soak) / explored states (hunt) *)
  churn : int;  (* executed join/leave events *)
  fleet : int;  (* present nodes at the end of the run *)
}

type t = {
  name : string;
  description : string;
  protocol : string;
  nodes : int;
  seed : int;
  plan : string;
  kind : kind;
  expected : verdict;
  run : domains:int -> report;
}

type outcome = {
  scenario : t;
  report : report;
  pass : bool;  (* verdict matched the expectation *)
  elapsed : float;
}

let run_one ?(domains = 1) events sc =
  Events.emit events ~ev:"scenario_run"
    [
      ("name", Dsm.Json.String sc.name);
      ("protocol", Dsm.Json.String sc.protocol);
      ("nodes", Dsm.Json.Int sc.nodes);
      ("seed", Dsm.Json.Int sc.seed);
      ("plan", Dsm.Json.String sc.plan);
      ("kind", Dsm.Json.String (kind_to_string sc.kind));
      ("expected", Dsm.Json.String (verdict_to_string sc.expected));
      ("domains", Dsm.Json.Int domains);
    ];
  let t0 = Unix.gettimeofday () in
  let report = sc.run ~domains in
  let elapsed = Unix.gettimeofday () -. t0 in
  let pass = report.verdict = sc.expected in
  Events.emit events ~ev:"scenario_end"
    [
      ("name", Dsm.Json.String sc.name);
      ("verdict", Dsm.Json.String (verdict_to_string report.verdict));
      ("expected", Dsm.Json.String (verdict_to_string sc.expected));
      ("pass", Dsm.Json.Bool pass);
      ("steps", Dsm.Json.Int report.steps);
      ("churn", Dsm.Json.Int report.churn);
      ("fleet", Dsm.Json.Int report.fleet);
      ("detail", Dsm.Json.String report.detail);
      ("elapsed", Dsm.Json.Float elapsed);
    ];
  { scenario = sc; report; pass; elapsed }

let run_all ?domains events scs =
  List.map (fun sc -> run_one ?domains events sc) scs

(* ----- the generic soak executor -----

   Drives [Live_sim] to [duration] in [check_every]-sized slices,
   evaluating the invariant over the live states after each slice.
   The state vector keeps its full width under churn (absent slots
   are canonical initial states), so a fixed-width invariant stays
   well-defined throughout. *)

module Soak (P : Dsm.Protocol.S) = struct
  module S = Live_sim.Make (P)

  let run ?obs ?trace ?(check_every = 5.) ~invariant ~duration config =
    let sim = S.create ?obs ?trace config in
    let rec loop violation =
      match violation with
      | Some _ -> violation
      | None ->
          if S.now sim >= duration then None
          else begin
            S.run_until sim (Float.min duration (S.now sim +. check_every));
            loop (Dsm.Invariant.check invariant (S.states sim))
          end
    in
    let violation = loop (Dsm.Invariant.check invariant (S.states sim)) in
    {
      verdict = (match violation with None -> Clean | Some _ -> Violation);
      detail =
        (match violation with
        | None -> ""
        | Some v ->
            Printf.sprintf "%s: %s" v.Dsm.Invariant.invariant
              v.Dsm.Invariant.detail);
      steps = S.events_executed sim;
      churn = S.churn_events sim;
      fleet = List.length (S.live_nodes sim);
    }
end
