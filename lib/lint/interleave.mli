(** Systematic interleaving checker for the [lib/par] primitives.

    Turns the repo's own exploration discipline on its concurrency
    substrate: client code (thread bodies) is written against
    {!Shim} — a [Par.Primitives.S] whose every atomic access and lock
    acquisition is a {e scheduling point} — and {!explore} runs the
    bodies under a deterministic cooperative scheduler, enumerating
    {b every} interleaving of those points by depth-first search over
    schedules (re-executing from scratch along each schedule prefix,
    as one-shot continuations cannot be forked).

    Between two scheduling points a thread runs atomically, which is
    exactly the granularity of the claim being checked: the
    linearizability arguments for [Par.Deque] and [Par.Shard_tbl]
    rest only on the interleaving of their primitive operations.
    Blocked threads (a {!Shim.Mutex.lock} on a held mutex) are
    excluded from the enabled set rather than spun, so lock-based
    histories stay finite; a state where no thread is enabled and not
    all are finished is reported as a deadlock.

    The explorer is exhaustive and deterministic: for a fixed client,
    {!outcome.executions} is a reproducible exact count (asserted in
    the test suite), not a sample. *)

(** Raised by a client's final check (or mid-thread assertion) to
    signal a property violation; the failing schedule is reported. *)
exception Check_failure of string

(** [failf fmt ...] raises {!Check_failure}. *)
val failf : ('a, unit, string, 'b) format4 -> 'a

(** Shimmed primitives: instantiate [Par.Deque.Make] /
    [Par.Shard_tbl.Make] (or build ad-hoc shared state) over this
    module inside thread bodies passed to {!explore}.  Operations
    outside an {!explore} run raise. *)
module Shim : Par.Primitives.S

type failure = {
  schedule : int list;
      (** thread indices in fire order, reproducing the failure *)
  steps : int;
  message : string;
}

type outcome = {
  executions : int;  (** complete interleavings executed *)
  truncated : int;  (** executions cut short by [max_steps] *)
  max_steps_seen : int;  (** longest execution, in scheduling points *)
  complete : bool;
      (** every interleaving explored: no failure, no truncation, and
          the execution budget was not exhausted *)
  failure : failure option;  (** first failing schedule, if any *)
}

(** [explore make] exhaustively interleaves the threads returned by
    [make].  [make] is called once per execution and must build {e
    fresh} shared state, returning the thread bodies and a final
    check run after all threads finish (raise {!Check_failure} to
    fail).  Both [make] and the check run under a pass-through
    handler, so they may use {!Shim} operations freely: setup (e.g.
    preloading a deque) is a sequential prefix before any
    concurrency, and the final check cannot race anything.

    [max_steps] (default [10_000]) bounds scheduling points per
    execution; [max_executions] (default [5_000_000]) bounds the
    number of interleavings.  Exploration stops at the first failure
    or deadlock. *)
val explore :
  ?max_steps:int ->
  ?max_executions:int ->
  (unit -> (unit -> unit) list * (unit -> unit)) ->
  outcome

val pp_failure : Format.formatter -> failure -> unit
