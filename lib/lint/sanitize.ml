module Make (P : Dsm.Protocol.S) = struct
  module Envelope = Dsm.Envelope
  module Fingerprint = Dsm.Fingerprint

  type config = {
    max_depth : int option;
    max_transitions : int;
    initial_net : P.message Envelope.t list;
    min_deliveries : int;
    store_tamper : (int64 -> int64) option;
  }

  let default_config =
    {
      max_depth = None;
      max_transitions = 20_000;
      initial_net = [];
      min_deliveries = 3;
      store_tamper = None;
    }

  type stats = {
    global_states : int;
    transitions : int;
    probes : int;
    elapsed : float;
  }

  type result = {
    findings : Report.finding list;
    stats : stats;
    completed : bool;
  }

  type global = {
    nodes : P.state array;
    net : P.message Envelope.t Net.Multiset.t;
  }

  let fingerprint g =
    Fingerprint.of_value (g.nodes, Net.Multiset.bindings g.net)

  let msg_family m = Report.family (Format.asprintf "%a" P.pp_message m)
  let act_family a = Report.family (Format.asprintf "%a" P.pp_action a)

  (* Coverage ledgers, aggregated by label family. *)
  type msg_cover = {
    mutable produced : int;
    mutable delivered : int;
    mutable effective : int;
        (* deliveries that changed state, sent something, or asserted *)
  }

  type act_cover = { mutable enabled : int; mutable acted : int }

  exception Stop

  let run ?(config = default_config) () =
    let started = Unix.gettimeofday () in
    (* findings, deduplicated on (kind, subject): the identity the
       allowlist names.  The first occurrence's detail is kept. *)
    let findings : (Report.kind * string, string) Hashtbl.t =
      Hashtbl.create 16
    in
    let found kind subject detail =
      if not (Hashtbl.mem findings (kind, subject)) then
        Hashtbl.add findings (kind, subject) detail
    in
    let transitions = ref 0 and probes = ref 0 and truncated = ref false in
    let msgs : (string, msg_cover) Hashtbl.t = Hashtbl.create 16 in
    let acts : (string, act_cover) Hashtbl.t = Hashtbl.create 16 in
    let msg_cover fam =
      match Hashtbl.find_opt msgs fam with
      | Some c -> c
      | None ->
          let c = { produced = 0; delivered = 0; effective = 0 } in
          Hashtbl.add msgs fam c;
          c
    in
    let act_cover fam =
      match Hashtbl.find_opt acts fam with
      | Some c -> c
      | None ->
          let c = { enabled = 0; acted = 0 } in
          Hashtbl.add acts fam c;
          c
    in
    let count_produced out =
      List.iter
        (fun (e : _ Envelope.t) ->
          let c = msg_cover (msg_family e.payload) in
          c.produced <- c.produced + 1)
        out
    in
    (* ----- canonicality audit -----

       Dual cross-check over every node state the exploration stores:
       [by_digest] catches two structurally distinct states sharing a
       digest (dedup would merge them); [by_struct] — a hashtable
       keyed by the state itself, so lookup uses structural equality —
       catches equal states with different digests (Marshal sharing
       divergence: dedup would explore them twice).  The Marshal
       round-trip additionally verifies a stored state survives
       serialisation with its fingerprint intact. *)
    let by_digest : (Fingerprint.t, P.state) Hashtbl.t = Hashtbl.create 256 in
    let by_struct : (P.state, Fingerprint.t) Hashtbl.t = Hashtbl.create 256 in
    (* ----- persistence audit -----

       The resumable checkers trust {!Store.Fp_set} with their visited
       sets: a store that does not read a fingerprint back
       bit-identical to its 64-bit folding would silently skip
       unexplored states on every resume.  Each distinct state
       fingerprint is round-tripped through a scratch store file
       (created lazily, removed at the end).  [store_tamper] is the
       planted fixture's hook: it rewrites the key between folding and
       insertion, standing in for a corrupting persistence layer. *)
    let scratch_store = ref None in
    let store_of () =
      match !scratch_store with
      | Some s -> s
      | None ->
          let path = Filename.temp_file "lmc-lint-store" ".fps" in
          let s = Store.Fp_set.create ~capacity:1024 path in
          scratch_store := Some s;
          s
    in
    let audit_store fp =
      let s = store_of () in
      let k = Store.Fp_set.key fp in
      let written =
        match config.store_tamper with Some f -> f k | None -> k
      in
      ignore (Store.Fp_set.add_key s written);
      incr probes;
      (* [probe] terminates with the slot holding exactly [k], or the
         empty slot ending its probe sequence: [None] means whatever
         [add] wrote is not bit-identical to the folding *)
      match Store.Fp_set.probe s fp with
      | Some _ -> ()
      | None ->
          found Store_digest_drift "state"
            (Printf.sprintf
               "fingerprint %s folds to %Ld but the store read back no \
                matching entry (resume would silently skip states)"
               (Fingerprint.to_hex fp) k)
    in
    let audit_state (s : P.state) =
      match Fingerprint.of_value s with
      | exception Invalid_argument msg ->
          found Unmarshalable_state "state"
            (Printf.sprintf "state cannot be marshalled: %s" msg);
          None
      | fp ->
          (match Hashtbl.find_opt by_digest fp with
          | Some prior when prior <> s ->
              found Digest_collision "state"
                (Printf.sprintf
                   "structurally distinct states share digest %s"
                   (Fingerprint.to_hex fp))
          | Some _ -> ()
          | None -> (
              Hashtbl.add by_digest fp s;
              audit_store fp;
              (match Hashtbl.find_opt by_struct s with
              | Some prior_fp when not (Fingerprint.equal prior_fp fp) ->
                  found Noncanonical_state "state"
                    (Printf.sprintf
                       "structurally equal states digest to %s and %s \
                        (Marshal sharing divergence: equal states would \
                        be explored twice)"
                       (Fingerprint.to_hex prior_fp) (Fingerprint.to_hex fp))
              | Some _ -> ()
              | None -> Hashtbl.add by_struct s fp);
              (* round-trip: a state must survive serialisation with
                 its fingerprint intact *)
              let bytes = Marshal.to_string s [] in
              match (Marshal.from_string bytes 0 : P.state) with
              | rt ->
                  if not (Fingerprint.equal (Fingerprint.of_value rt) fp)
                  then
                    found Noncanonical_state "state"
                      (Printf.sprintf
                         "Marshal round-trip changed the fingerprint of a \
                          state (digest %s)"
                         (Fingerprint.to_hex fp))
              | exception _ ->
                  found Unmarshalable_state "state"
                    "state does not survive a Marshal round-trip"));
          Some fp
    in
    (* ----- determinism probes -----

       Each distinct (state, input) pair is re-executed once and the
       (state', sends) fingerprints compared.  [`Effect r] carries the
       first run's result: the exploration continues from it, so a
       nondeterministic handler is reported but the search stays
       deterministic. *)
    let probed : (Fingerprint.t, unit) Hashtbl.t = Hashtbl.create 1024 in
    let outcome_fp (s', out) =
      try Some (Fingerprint.of_value (s', out))
      with Invalid_argument msg ->
        found Unmarshalable_state "state"
          (Printf.sprintf "handler result cannot be marshalled: %s" msg);
        None
    in
    let probe ~subject ~key invoke =
      if !transitions >= config.max_transitions then begin
        truncated := true;
        raise Stop
      end;
      incr transitions;
      match invoke () with
      | exception Dsm.Protocol.Local_assert _ -> `Asserted
      | exception e ->
          found Handler_exception subject
            (Printf.sprintf "handler raised %s" (Printexc.to_string e));
          `Disabled
      | r ->
          let fresh =
            match Hashtbl.find_opt probed key with
            | Some () -> false
            | None ->
                Hashtbl.add probed key ();
                true
          in
          if fresh then begin
            incr probes;
            (match invoke () with
            | exception e ->
                found Nondeterministic_handler subject
                  (Printf.sprintf
                     "second execution raised %s where the first returned"
                     (Printexc.to_string e))
            | r2 -> (
                match (outcome_fp r, outcome_fp r2) with
                | Some f1, Some f2 when not (Fingerprint.equal f1 f2) ->
                    found Nondeterministic_handler subject
                      (Printf.sprintf
                         "two executions from identical inputs produced \
                          different (state', sends): %s vs %s"
                         (Fingerprint.to_hex f1) (Fingerprint.to_hex f2))
                | _ -> ()))
          end;
          `Effect r
    in
    (* ----- crash-recovery audit -----

       [on_recover] is what the checkers run at every Crash step, so
       it is held to the same contract as the handlers: probed once
       per distinct (node, state) for determinism, and the recovered
       state fed through the canonicality audit — an alias-heavy
       recovery (e.g. sharing one list into two fields) would make a
       recovered state digest differently from its structurally equal
       message-reachable twin, and crash exploration would visit it
       twice.  Recovered states are only audited, never explored:
       crash interleavings belong to the checkers. *)
    let recovery_probed : (Fingerprint.t, unit) Hashtbl.t =
      Hashtbl.create 256
    in
    let audit_recovery self st = function
      | None -> ()
      | Some st_fp ->
          let key =
            Fingerprint.combine [ Fingerprint.of_value (`Recover, self); st_fp ]
          in
          if not (Hashtbl.mem recovery_probed key) then begin
            Hashtbl.add recovery_probed key ();
            incr probes;
            let subject = Printf.sprintf "on_recover(node %d)" self in
            match P.on_recover ~self st with
            | exception Dsm.Protocol.Local_assert _ -> ()
            | exception e ->
                found Handler_exception subject
                  (Printf.sprintf "on_recover raised %s"
                     (Printexc.to_string e))
            | r1 -> (
                ignore (audit_state r1);
                match P.on_recover ~self st with
                | exception e ->
                    found Nondeterministic_recovery subject
                      (Printf.sprintf
                         "second execution raised %s where the first \
                          returned"
                         (Printexc.to_string e))
                | r2 -> (
                    match (outcome_fp (r1, []), outcome_fp (r2, [])) with
                    | Some f1, Some f2 when not (Fingerprint.equal f1 f2) ->
                        found Nondeterministic_recovery subject
                          (Printf.sprintf
                             "two recoveries from one state produced \
                              different states: %s vs %s (crash \
                              exploration would not be replayable)"
                             (Fingerprint.to_hex f1) (Fingerprint.to_hex f2))
                    | _ -> ()))
          end
    in
    (* [enabled_actions] purity: probed once per distinct (node,
       state).  Returns the first run's list; exploration uses it. *)
    let enabled_probed : (Fingerprint.t, unit) Hashtbl.t =
      Hashtbl.create 256
    in
    let enabled_at self st st_fp =
      let l1 = P.enabled_actions ~self st in
      let key = Fingerprint.combine [ Fingerprint.of_value self; st_fp ] in
      if not (Hashtbl.mem enabled_probed key) then begin
        Hashtbl.add enabled_probed key ();
        incr probes;
        let l2 = P.enabled_actions ~self st in
        (match (outcome_fp (st, l1), outcome_fp (st, l2)) with
        | Some f1, Some f2 when not (Fingerprint.equal f1 f2) ->
            found Nondeterministic_actions
              (Printf.sprintf "node %d" self)
              "enabled_actions returned different lists for one state"
        | _ -> ());
        List.iter
          (fun a ->
            let c = act_cover (act_family a) in
            c.enabled <- c.enabled + 1)
          l1
      end;
      l1
    in
    (* ----- bounded BFS over global states ----- *)
    let visited : (Fingerprint.t, unit) Hashtbl.t = Hashtbl.create 4096 in
    let queue : (global * int) Queue.t = Queue.create () in
    let enqueue g depth =
      match fingerprint g with
      | exception Invalid_argument msg ->
          found Unmarshalable_state "state"
            (Printf.sprintf "global state cannot be marshalled: %s" msg)
      | fp ->
          if not (Hashtbl.mem visited fp) then begin
            Hashtbl.replace visited fp ();
            Queue.add (g, depth) queue
          end
    in
    let init = Dsm.Protocol.initial_system (module P) in
    Array.iteri (fun self s -> audit_recovery self s (audit_state s)) init;
    count_produced config.initial_net;
    enqueue
      { nodes = init; net = Net.Multiset.of_list config.initial_net }
      0;
    (try
       while not (Queue.is_empty queue) do
         let g, depth = Queue.pop queue in
         let depth_ok =
           match config.max_depth with Some d -> depth < d | None -> true
         in
         if depth_ok then begin
           (* deliveries: one per distinct in-flight message *)
           Net.Multiset.iter_distinct
             (fun (env : P.message Envelope.t) _count ->
               let self = env.Envelope.dst in
               let st = g.nodes.(self) in
               let fam = msg_family env.payload in
               let c = msg_cover fam in
               c.delivered <- c.delivered + 1;
               let key =
                 Fingerprint.of_value (`Deliver, self, st, env)
               in
               match
                 probe ~subject:fam ~key (fun () ->
                     P.handle_message ~self st env)
               with
               | `Asserted -> c.effective <- c.effective + 1
               | `Disabled -> ()
               | `Effect (st', out) ->
                   if st' <> st || out <> [] then
                     c.effective <- c.effective + 1;
                   audit_recovery self st' (audit_state st');
                   count_produced out;
                   let nodes = Array.copy g.nodes in
                   nodes.(self) <- st';
                   let net =
                     match Net.Multiset.remove env g.net with
                     | Some net -> Net.Multiset.add_list out net
                     | None -> assert false
                   in
                   enqueue { nodes; net } (depth + 1))
             g.net;
           (* internal actions, via the purity-probed enabled list *)
           List.iter
             (fun self ->
               let st = g.nodes.(self) in
               match Fingerprint.of_value st with
               | exception Invalid_argument _ -> ()
               | st_fp ->
                   List.iter
                     (fun action ->
                       let fam = act_family action in
                       let key =
                         Fingerprint.of_value (`Act, self, st, action)
                       in
                       match
                         probe ~subject:fam ~key (fun () ->
                             P.handle_action ~self st action)
                       with
                       | `Asserted | `Disabled -> ()
                       | `Effect (st', out) ->
                           if st' <> st || out <> [] then begin
                             let c = act_cover fam in
                             c.acted <- c.acted + 1
                           end;
                           audit_recovery self st' (audit_state st');
                           count_produced out;
                           let nodes = Array.copy g.nodes in
                           nodes.(self) <- st';
                           enqueue
                             { nodes; net = Net.Multiset.add_list out g.net }
                             (depth + 1))
                     (enabled_at self st st_fp))
             (Dsm.Node_id.all P.num_nodes)
         end
       done
     with Stop -> ());
    (* coverage verdicts *)
    Hashtbl.iter
      (fun fam (c : msg_cover) ->
        if
          c.produced > 0
          && c.delivered >= config.min_deliveries
          && c.effective = 0
        then
          found Dead_message fam
            (Printf.sprintf
               "produced %d time(s), %d deliveries never changed state, \
                sent anything, or asserted"
               c.produced c.delivered))
      msgs;
    Hashtbl.iter
      (fun fam (c : act_cover) ->
        if c.enabled >= config.min_deliveries && c.acted = 0 then
          found Dead_action fam
            (Printf.sprintf
               "enabled in %d state(s) but no execution ever changed \
                state or sent anything"
               c.enabled))
      acts;
    let findings =
      Hashtbl.fold
        (fun (kind, subject) detail acc ->
          { Report.kind; protocol = P.name; subject; detail } :: acc)
        findings []
      |> List.sort (fun (a : Report.finding) b ->
             compare
               (a.kind, a.subject, a.detail)
               (b.kind, b.subject, b.detail))
    in
    (match !scratch_store with
    | Some s ->
        let path = Store.Fp_set.path s in
        Store.Fp_set.close s;
        (try Sys.remove path with Sys_error _ -> ())
    | None -> ());
    {
      findings;
      stats =
        {
          global_states = Hashtbl.length visited;
          transitions = !transitions;
          probes = !probes;
          elapsed = Unix.gettimeofday () -. started;
        };
      completed = not !truncated;
    }
end
