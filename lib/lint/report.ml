type kind =
  | Nondeterministic_handler
  | Nondeterministic_actions
  | Noncanonical_state
  | Digest_collision
  | Unmarshalable_state
  | Dead_message
  | Dead_action
  | Handler_exception
  | Nondeterministic_recovery
  | Store_digest_drift
  | Broken_symmetry
  | Unsound_orbit

let all_kinds =
  [
    Nondeterministic_handler;
    Nondeterministic_actions;
    Noncanonical_state;
    Digest_collision;
    Unmarshalable_state;
    Dead_message;
    Dead_action;
    Handler_exception;
    Nondeterministic_recovery;
    Store_digest_drift;
    Broken_symmetry;
    Unsound_orbit;
  ]

let kind_to_string = function
  | Nondeterministic_handler -> "nondeterministic_handler"
  | Nondeterministic_actions -> "nondeterministic_actions"
  | Noncanonical_state -> "noncanonical_state"
  | Digest_collision -> "digest_collision"
  | Unmarshalable_state -> "unmarshalable_state"
  | Dead_message -> "dead_message"
  | Dead_action -> "dead_action"
  | Handler_exception -> "handler_exception"
  | Nondeterministic_recovery -> "nondeterministic_recovery"
  | Store_digest_drift -> "store_digest_drift"
  | Broken_symmetry -> "broken_symmetry"
  | Unsound_orbit -> "unsound_orbit"

let kind_of_string s =
  match
    List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds
  with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "unknown finding kind %S" s)

type finding = {
  kind : kind;
  protocol : string;
  subject : string;
  detail : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s: %s: %s: %s" f.protocol (kind_to_string f.kind)
    f.subject f.detail

(* ----- label families -----

   "Prepare(1,2)" and "Prepare(2,0)" are one handler; synthetic
   protocols render payloads as "m12".  The family is the prefix
   before the first '(' or ' ', then minus any trailing digits, so
   coverage aggregates whole constructors, not individual payloads. *)

let family label =
  let stem =
    match String.index_opt label '(' with
    | Some i -> String.sub label 0 i
    | None -> (
        match String.index_opt label ' ' with
        | Some i -> String.sub label 0 i
        | None -> label)
  in
  let n = String.length stem in
  let rec first_digit i =
    if i > 0 && (match stem.[i - 1] with '0' .. '9' -> true | _ -> false)
    then first_digit (i - 1)
    else i
  in
  let cut = first_digit n in
  (* keep purely numeric labels whole rather than reducing to "" *)
  if cut = 0 then stem else String.sub stem 0 cut

(* ----- the lint.v1 stream ----- *)

let schema = "lint.v1"

type emitter = {
  sink : Obs.Sink.t option;
  mutable seq : int;
  clock0 : float;
}

let null = { sink = None; seq = 0; clock0 = 0. }

let to_sink sink =
  { sink = Some sink; seq = 0; clock0 = Unix.gettimeofday () }

let emit t ~ev fields =
  match t.sink with
  | None -> ()
  | Some sink ->
      let seq = t.seq in
      t.seq <- seq + 1;
      Obs.Sink.emit sink
        {
          Obs.Sink.ts = Unix.gettimeofday () -. t.clock0;
          name = "lint";
          fields =
            ("schema", Dsm.Json.String schema)
            :: ("seq", Dsm.Json.Int seq)
            :: ("ev", Dsm.Json.String ev)
            :: fields;
        }

let emit_start t ~protocol ~max_depth ~max_transitions =
  emit t ~ev:"run_start"
    [
      ("protocol", Dsm.Json.String protocol);
      ( "max_depth",
        match max_depth with Some d -> Dsm.Json.Int d | None -> Dsm.Json.Null
      );
      ("max_transitions", Dsm.Json.Int max_transitions);
    ]

let emit_finding t (f : finding) =
  emit t ~ev:"finding"
    [
      ("kind", Dsm.Json.String (kind_to_string f.kind));
      ("protocol", Dsm.Json.String f.protocol);
      ("subject", Dsm.Json.String f.subject);
      ("detail", Dsm.Json.String f.detail);
    ]

let emit_end t ~protocol ~findings ~transitions ~states ~elapsed_s =
  emit t ~ev:"run_end"
    [
      ("protocol", Dsm.Json.String protocol);
      ("findings", Dsm.Json.Int findings);
      ("transitions", Dsm.Json.Int transitions);
      ("states", Dsm.Json.Int states);
      ("elapsed_s", Dsm.Json.Float elapsed_s);
    ]

(* ----- allowlist ----- *)

type allow_entry = { a_protocol : string; a_kind : kind; a_subject : string }

let parse_entry line =
  match Dsm.Json.of_string line with
  | Error e -> Error e
  | Ok (Dsm.Json.Obj fields) -> (
      let str name =
        match List.assoc_opt name fields with
        | Some (Dsm.Json.String s) -> Ok s
        | Some _ -> Error (Printf.sprintf "field %S: expected string" name)
        | None -> Error (Printf.sprintf "missing field %S" name)
      in
      match (str "protocol", str "kind", str "subject") with
      | Ok p, Ok k, Ok s ->
          Result.map
            (fun a_kind -> { a_protocol = p; a_kind; a_subject = s })
            (kind_of_string k)
      | (Error e, _, _ | _, Error e, _ | _, _, Error e) -> Error e)
  | Ok _ -> Error "expected a JSON object"

let load_allowlist path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let entries = ref [] and err = ref None and lineno = ref 0 in
          (try
             while !err = None do
               let line = input_line ic in
               incr lineno;
               let line = String.trim line in
               if line <> "" && line.[0] <> '#' then
                 match parse_entry line with
                 | Ok e -> entries := e :: !entries
                 | Error e ->
                     err := Some (Printf.sprintf "line %d: %s" !lineno e)
             done
           with End_of_file -> ());
          match !err with
          | Some e -> Error e
          | None -> Ok (List.rev !entries))

type reconciliation = {
  unexpected : finding list;
  stale : allow_entry list;
}

let reconcile ~allow ~linted findings =
  let covers e (f : finding) =
    String.equal e.a_protocol f.protocol
    && e.a_kind = f.kind
    && String.equal e.a_subject f.subject
  in
  let unexpected =
    List.filter (fun f -> not (List.exists (fun e -> covers e f) allow))
      findings
  in
  let stale =
    List.filter
      (fun e ->
        List.exists (String.equal e.a_protocol) linted
        && not (List.exists (fun f -> covers e f) findings))
      allow
  in
  { unexpected; stale }
