(* Symmetry inference + commutation/orbit audits.  See the mli for the
   contract.  The exploration mirrors Sanitize's bounded BFS; the
   audits piggyback on every distinct reachable invocation. *)

module Sym = Dsm.Symmetry

module Make (P : Dsm.Protocol.S) = struct
  module Envelope = Dsm.Envelope
  module Fingerprint = Dsm.Fingerprint

  type config = {
    max_depth : int option;
    max_transitions : int;
    initial_net : P.message Envelope.t list;
    claim : (P.state, P.message) Sym.spec option;
    invariant : P.state Dsm.Invariant.t option;
    max_combo_samples : int;
  }

  let default_config =
    {
      max_depth = None;
      max_transitions = 20_000;
      initial_net = [];
      claim = None;
      invariant = None;
      max_combo_samples = 4_096;
    }

  type stats = {
    global_states : int;
    transitions : int;
    probes : int;
    elapsed : float;
  }

  type verdict = {
    commutation : (P.state, P.message) Sym.spec;
    orbit : Sym.group;
    candidates : Sym.group list;
  }

  type result = {
    findings : Report.finding list;
    verdict : verdict;
    stats : stats;
    completed : bool;
  }

  type global = {
    nodes : P.state array;
    net : P.message Envelope.t Net.Multiset.t;
  }

  let fingerprint g =
    Fingerprint.of_value (g.nodes, Net.Multiset.bindings g.net)

  let msg_family m = Report.family (Format.asprintf "%a" P.pp_message m)
  let act_family a = Report.family (Format.asprintf "%a" P.pp_action a)

  (* A candidate under audit: the spec plus liveness flags for the two
     layers it could license.  [broken]/[orbit_broken] carry the first
     counterexample, used for claim findings and the CLI warning. *)
  type candidate = {
    spec : (P.state, P.message) Sym.spec;
    mutable broken : (string * string) option;  (* subject, detail *)
    mutable orbit_broken : (string * string) option;
  }

  exception Stop

  let run ?(config = default_config) () =
    let started = Unix.gettimeofday () in
    let n = P.num_nodes in
    let inferred =
      (* strongest first; S_n only while its eager enumeration is sane *)
      (if n <= 8 then [ Sym.full n ] else [])
      @ (if n >= 3 then [ Sym.rotations n ] else [])
      |> List.filter (fun g -> not (Sym.is_trivial g))
    in
    let candidates =
      match config.claim with
      | Some spec -> [ { spec; broken = None; orbit_broken = None } ]
      | None ->
          List.map
            (fun g ->
              { spec = Sym.with_id_maps g; broken = None; orbit_broken = None })
            inferred
    in
    let transitions = ref 0 and probes = ref 0 and truncated = ref false in
    let alive c = c.broken = None in
    let orbit_alive c = c.orbit_broken = None in
    let any_alive () =
      List.exists (fun c -> alive c || orbit_alive c) candidates
    in
    let fp_of v =
      match Fingerprint.of_value v with
      | fp -> Some fp
      | exception Invalid_argument _ -> None
    in
    (* sends are a multiset: compare as sorted envelope fingerprints *)
    let out_fp envs =
      match
        List.map
          (fun (e : _ Envelope.t) ->
            Fingerprint.of_value (e.Envelope.src, e.Envelope.dst, e.payload))
          envs
      with
      | fps -> Some (Fingerprint.combine (List.sort Fingerprint.compare fps))
      | exception Invalid_argument _ -> None
    in
    let permute_env spec p (e : P.message Envelope.t) =
      let r = Sym.apply p in
      {
        Envelope.src = r e.Envelope.src;
        dst = r e.Envelope.dst;
        payload = spec.Sym.map_message r e.payload;
      }
    in
    let kill c subject detail =
      if alive c then c.broken <- Some (subject, detail)
    in
    let kill_orbit c subject detail =
      if orbit_alive c then c.orbit_broken <- Some (subject, detail)
    in
    (* one commutation probe: run [invoke] permuted and un-permuted and
       compare (state', sends) fingerprints through the permutation *)
    let invoke_fp f =
      match f () with
      | exception Dsm.Protocol.Local_assert _ -> `Asserted
      | exception _ -> `Raised
      | st', out -> (
          match (fp_of st', out_fp out) with
          | Some sfp, Some ofp -> `Result (sfp, ofp, st', out)
          | _ -> `Unfingerprintable)
    in
    let commute_probe c p ~subject ~lhs ~rhs =
      incr probes;
      match (invoke_fp lhs, invoke_fp rhs) with
      | `Asserted, `Asserted | `Raised, `Raised -> ()
      | `Unfingerprintable, _ | _, `Unfingerprintable ->
          kill c subject "handler result cannot be fingerprinted"
      | `Result (_, _, st1, out1), `Result (sfp2, ofp2, _, _) -> (
          let r = Sym.apply p in
          let mapped1 = c.spec.Sym.map_state r st1 in
          let out1' = List.map (permute_env c.spec p) out1 in
          match (fp_of mapped1, out_fp out1') with
          | Some sfp1, Some ofp1 ->
              if
                not
                  (Fingerprint.equal sfp1 sfp2
                  && Fingerprint.equal ofp1 ofp2)
              then
                kill c subject
                  (Format.asprintf
                     "generator %a does not commute: permute(handle(s,e)) \
                      = %s/%s but handle(permute s, permute e) = %s/%s"
                     Sym.pp_perm p (Fingerprint.to_hex sfp1)
                     (Fingerprint.to_hex ofp1) (Fingerprint.to_hex sfp2)
                     (Fingerprint.to_hex ofp2))
          | _ -> kill c subject "permuted result cannot be fingerprinted")
      | a, b ->
          let tag = function
            | `Asserted -> "asserts"
            | `Raised -> "raises"
            | _ -> "returns"
          in
          kill c subject
            (Format.asprintf
               "generator %a does not commute: original %s where permuted \
                image %s"
               Sym.pp_perm p (tag a) (tag b))
    in
    (* ----- inference pre-probes: initial + enabled_actions ----- *)
    let init = Dsm.Protocol.initial_system (module P) in
    let audit_initial c =
      List.iter
        (fun p ->
          if alive c then
            Array.iteri
              (fun i s ->
                if alive c then
                  let mapped = c.spec.Sym.map_state (Sym.apply p) s in
                  match (fp_of mapped, fp_of init.(p.(i))) with
                  | Some f1, Some f2 when Fingerprint.equal f1 f2 -> ()
                  | _ ->
                      kill c "initial"
                        (Format.asprintf
                           "initial state of node %d is not the generator \
                            %a image of node %d's"
                           p.(i) Sym.pp_perm p i))
              init)
        c.spec.Sym.group.Sym.generators
    in
    List.iter audit_initial candidates;
    let acts_fp self st =
      match P.enabled_actions ~self st with
      | acts ->
          (match
             List.map (fun a -> Fingerprint.of_value a) acts
           with
          | fps ->
              Some (Fingerprint.combine (List.sort Fingerprint.compare fps))
          | exception Invalid_argument _ -> None)
      | exception _ -> None
    in
    let audit_enabled c self st =
      List.iter
        (fun p ->
          if alive c then begin
            incr probes;
            let mapped = c.spec.Sym.map_state (Sym.apply p) st in
            match (acts_fp self st, acts_fp p.(self) mapped) with
            | Some f1, Some f2 when Fingerprint.equal f1 f2 -> ()
            | _ ->
                kill c
                  (Printf.sprintf "enabled_actions(node %d)" self)
                  (Format.asprintf
                     "enabled_actions is not equivariant under generator %a"
                     Sym.pp_perm p)
          end)
        c.spec.Sym.group.Sym.generators
    in
    (* ----- audited exploration ----- *)
    let audited : (Fingerprint.t, unit) Hashtbl.t = Hashtbl.create 1024 in
    let once key f =
      if not (Hashtbl.mem audited key) then begin
        Hashtbl.add audited key ();
        f ()
      end
    in
    let audit_delivery self st (env : P.message Envelope.t) =
      match fp_of (`Deliver, self, st, env) with
      | None -> ()
      | Some key ->
          once key (fun () ->
              let subject = msg_family env.payload in
              List.iter
                (fun c ->
                  if alive c then
                    List.iter
                      (fun p ->
                        if alive c then
                          commute_probe c p ~subject
                            ~lhs:(fun () -> P.handle_message ~self st env)
                            ~rhs:(fun () ->
                              P.handle_message ~self:p.(self)
                                (c.spec.Sym.map_state (Sym.apply p) st)
                                (permute_env c.spec p env)))
                      c.spec.Sym.group.Sym.generators)
                candidates)
    in
    let audit_action self st action =
      match fp_of (`Act, self, st, action) with
      | None -> ()
      | Some key ->
          once key (fun () ->
              let subject = act_family action in
              List.iter
                (fun c ->
                  if alive c then
                    List.iter
                      (fun p ->
                        if alive c then
                          commute_probe c p ~subject
                            ~lhs:(fun () -> P.handle_action ~self st action)
                            ~rhs:(fun () ->
                              P.handle_action ~self:p.(self)
                                (c.spec.Sym.map_state (Sym.apply p) st)
                                action))
                      c.spec.Sym.group.Sym.generators)
                candidates)
    in
    let audit_recover self st =
      match fp_of (`Recover, self, st) with
      | None -> ()
      | Some key ->
          once key (fun () ->
              let subject = Printf.sprintf "on_recover(node %d)" self in
              List.iter
                (fun c ->
                  if alive c then
                    List.iter
                      (fun p ->
                        if alive c then
                          commute_probe c p ~subject
                            ~lhs:(fun () -> (P.on_recover ~self st, []))
                            ~rhs:(fun () ->
                              ( P.on_recover ~self:p.(self)
                                  (c.spec.Sym.map_state (Sym.apply p) st),
                                [] )))
                      c.spec.Sym.group.Sym.generators)
                candidates)
    in
    let audit_enabled_once self st =
      match fp_of (`Enabled, self, st) with
      | None -> ()
      | Some key ->
          once key (fun () ->
              List.iter
                (fun c -> if alive c then audit_enabled c self st)
                candidates)
    in
    (* ----- orbit audit -----

       LMC's combination reduction permutes *slots only* (states stay
       untouched; their assignment to nodes rotates), so the property
       to audit is: the invariant's clean/violating verdict does not
       depend on which node holds which state.  Checked on every
       reachable global tuple, and below on sampled cross-product
       combinations (LMC combines states from different branches, which
       no single global tuple exhibits).

       The commutation layer additionally needs the invariant to be
       equivariant under the *full* action (states identifier-mapped,
       then slots permuted): B-DFS skips whole states whose canonical
       fingerprint was seen, invariant evaluation included. *)
    let inv_clean tuple =
      match config.invariant with
      | None -> true
      | Some inv -> (
          match Dsm.Invariant.check inv tuple with
          | None -> true
          | Some _ -> false
          | exception _ -> false)
    in
    let audit_tuple_orbit tuple =
      match config.invariant with
      | None -> ()
      | Some _ ->
          List.iter
            (fun c ->
              List.iter
                (fun p ->
                  if orbit_alive c then begin
                    incr probes;
                    let permuted = Sym.permute_slots p tuple in
                    if inv_clean tuple <> inv_clean permuted then
                      kill_orbit c "invariant"
                        (Format.asprintf
                           "invariant verdict differs between a reachable \
                            combination and its slot image under generator \
                            %a"
                           Sym.pp_perm p)
                  end;
                  if alive c then begin
                    incr probes;
                    let mapped =
                      Array.map (c.spec.Sym.map_state (Sym.apply p)) tuple
                    in
                    let permuted = Sym.permute_slots p mapped in
                    if inv_clean tuple <> inv_clean permuted then
                      kill c "invariant"
                        (Format.asprintf
                           "invariant is not equivariant under generator %a"
                           Sym.pp_perm p)
                  end)
                c.spec.Sym.group.Sym.generators)
            candidates
    in
    (* per-node reachable states for the cross-product sample *)
    let max_states_per_node = 32 in
    let node_states : (Fingerprint.t, unit) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 64)
    in
    let node_pool : P.state list array = Array.make n [] in
    let note_node_state self st =
      match fp_of st with
      | None -> ()
      | Some fp ->
          let tbl = node_states.(self) in
          if
            (not (Hashtbl.mem tbl fp))
            && Hashtbl.length tbl < max_states_per_node
          then begin
            Hashtbl.add tbl fp ();
            node_pool.(self) <- st :: node_pool.(self)
          end
    in
    (* ----- bounded BFS (Sanitize's shape, without its audits) ----- *)
    let visited : (Fingerprint.t, unit) Hashtbl.t = Hashtbl.create 4096 in
    let queue : (global * int) Queue.t = Queue.create () in
    let enqueue g depth =
      match fingerprint g with
      | exception Invalid_argument _ -> ()
      | fp ->
          if not (Hashtbl.mem visited fp) then begin
            Hashtbl.replace visited fp ();
            Queue.add (g, depth) queue
          end
    in
    Array.iteri (fun self s -> note_node_state self s) init;
    enqueue
      { nodes = init; net = Net.Multiset.of_list config.initial_net }
      0;
    (try
       while not (Queue.is_empty queue) do
         if not (any_alive ()) then raise Stop;
         let g, depth = Queue.pop queue in
         audit_tuple_orbit g.nodes;
         let depth_ok =
           match config.max_depth with Some d -> depth < d | None -> true
         in
         if depth_ok then begin
           Net.Multiset.iter_distinct
             (fun (env : P.message Envelope.t) _count ->
               let self = env.Envelope.dst in
               let st = g.nodes.(self) in
               if !transitions >= config.max_transitions then begin
                 truncated := true;
                 raise Stop
               end;
               incr transitions;
               audit_delivery self st env;
               match P.handle_message ~self st env with
               | exception _ -> ()
               | st', out ->
                   note_node_state self st';
                   audit_recover self st';
                   let nodes = Array.copy g.nodes in
                   nodes.(self) <- st';
                   let net =
                     match Net.Multiset.remove env g.net with
                     | Some net -> Net.Multiset.add_list out net
                     | None -> assert false
                   in
                   enqueue { nodes; net } (depth + 1))
             g.net;
           List.iter
             (fun self ->
               let st = g.nodes.(self) in
               audit_enabled_once self st;
               match P.enabled_actions ~self st with
               | exception _ -> ()
               | actions ->
                   List.iter
                     (fun action ->
                       if !transitions >= config.max_transitions then begin
                         truncated := true;
                         raise Stop
                       end;
                       incr transitions;
                       audit_action self st action;
                       match P.handle_action ~self st action with
                       | exception _ -> ()
                       | st', out ->
                           note_node_state self st';
                           audit_recover self st';
                           let nodes = Array.copy g.nodes in
                           nodes.(self) <- st';
                           enqueue
                             {
                               nodes;
                               net = Net.Multiset.add_list out g.net;
                             }
                             (depth + 1))
                     actions)
             (Dsm.Node_id.all P.num_nodes)
         end
       done
     with Stop -> ());
    (* cross-product combination sample: mixed-radix enumeration over
       the per-node reachable pools, bounded by [max_combo_samples] —
       deterministic, no RNG *)
    (match config.invariant with
    | None -> ()
    | Some _ ->
        let pools = Array.map Array.of_list node_pool in
        if Array.for_all (fun a -> Array.length a > 0) pools then begin
          let idx = Array.make n 0 in
          let samples = ref 0 in
          let continue = ref true in
          while !continue && !samples < config.max_combo_samples do
            let tuple = Array.init n (fun i -> pools.(i).(idx.(i))) in
            audit_tuple_orbit tuple;
            incr samples;
            (* odometer increment *)
            let rec bump i =
              if i < 0 then continue := false
              else begin
                idx.(i) <- idx.(i) + 1;
                if idx.(i) >= Array.length pools.(i) then begin
                  idx.(i) <- 0;
                  bump (i - 1)
                end
              end
            in
            bump (n - 1)
          done
        end);
    (* ----- verdicts + findings ----- *)
    let findings = ref [] in
    let found kind subject detail =
      findings :=
        { Report.kind; protocol = P.name; subject; detail } :: !findings
    in
    let commutation, orbit =
      match config.claim with
      | Some spec -> (
          let c = List.hd candidates in
          match c.broken with
          | Some (subject, detail) ->
              (* claimed-but-broken poisons the claim entirely: refuse
                 both reduction layers *)
              found Report.Broken_symmetry subject detail;
              (Sym.id_spec ~degree:n, Sym.identity_group n)
          | None ->
              let orbit =
                match (config.invariant, c.orbit_broken) with
                | None, _ -> Sym.identity_group n
                | Some _, Some (subject, detail) ->
                    found Report.Unsound_orbit subject detail;
                    Sym.identity_group n
                | Some _, None -> spec.Sym.group
              in
              (spec, orbit))
      | None ->
          let commutation =
            match List.find_opt alive candidates with
            | Some c -> c.spec
            | None -> Sym.id_spec ~degree:n
          in
          let orbit =
            match
              (config.invariant, List.find_opt orbit_alive candidates)
            with
            | Some _, Some c -> c.spec.Sym.group
            | _ -> Sym.identity_group n
          in
          (commutation, orbit)
    in
    {
      findings =
        List.sort
          (fun (a : Report.finding) b ->
            compare
              (a.kind, a.subject, a.detail)
              (b.kind, b.subject, b.detail))
          !findings;
      verdict =
        {
          commutation;
          orbit;
          candidates = List.map (fun c -> c.spec.Sym.group) candidates;
        };
      stats =
        {
          global_states = Hashtbl.length visited;
          transitions = !transitions;
          probes = !probes;
          elapsed = Unix.gettimeofday () -. started;
        };
      completed = not !truncated;
    }
end
