(** Symmetry inference and the audits that license symmetry reduction.

    A role-permutation group is only safe to exploit if it actually
    commutes with the protocol, and a {e claimed} symmetry (a protocol
    author's annotation, or an explicit [--symmetry <group>] flag) is
    exactly the kind of assertion that drifts out of date.  This pass
    has three jobs:

    {ol
    {- {b Inference}: propose candidate groups for a [Dsm.Protocol.S]
       instance — the full symmetric group [S_n], the rotation group
       [C_n], identity-only as the fallback — by probing [initial],
       [enabled_actions], and handler behaviour across node ids.}
    {- {b Commutation audit}: re-execute every distinct reachable
       handler/action invocation (bounded BFS, the same machinery as
       {!Sanitize}) under every generator [p] of the group and check
       [permute (handle (s, e)) = handle (permute s, permute e)] on
       [(state', sends)] fingerprints, plus [initial], [on_recover]
       and [enabled_actions] equivariance.  A group that passes is safe
       for {e global-state} reduction in [Mc_global.Bdfs].}
    {- {b Orbit audit}: check that the safety invariant's verdict is
       invariant under {e slot} permutation of a combination tuple
       (states unchanged, only their assignment to nodes permuted) —
       over every reachable global tuple and a bounded deterministic
       sample of LMC-style cross-product combinations.  A group that
       passes is safe for {e combination orbit} deduplication in
       [Lmc.Checker], which never skips exploration, only duplicate
       invariant evaluations, so handler commutation is not required.}}

    Findings ([Broken_symmetry], [Unsound_orbit]) are emitted only for
    {e claimed} groups: an inferred candidate that fails its audit is
    silently demoted (that is the audit doing its job), but a claim
    that fails is a defect in the annotation and goes through the
    [Report]/allowlist pipeline.  A claimed-but-broken group poisons
    the claim entirely: the verdict falls back to identity for both
    reduction layers, so the checkers refuse to reduce. *)

module Make (P : Dsm.Protocol.S) : sig
  type config = {
    max_depth : int option;
    max_transitions : int;  (** handler-invocation budget for the BFS *)
    initial_net : P.message Dsm.Envelope.t list;
    claim : (P.state, P.message) Dsm.Symmetry.spec option;
        (** audit exactly this group (emitting findings on failure)
            instead of inferring candidates *)
    invariant : P.state Dsm.Invariant.t option;
        (** safety invariant to orbit-audit; [None] disables orbit
            reduction (verdict [orbit] stays identity) *)
    max_combo_samples : int;
        (** budget for sampled cross-product combinations in the orbit
            audit *)
  }

  val default_config : config

  type stats = {
    global_states : int;
    transitions : int;
    probes : int;  (** commutation + orbit re-executions *)
    elapsed : float;
  }

  (** What the checkers are licensed to exploit. *)
  type verdict = {
    commutation : (P.state, P.message) Dsm.Symmetry.spec;
        (** largest audited group (with its mappers) under which every
            probed invocation commuted — safe for global-state
            canonicalization in B-DFS *)
    orbit : Dsm.Symmetry.group;
        (** largest audited group under which the invariant is
            slot-symmetric — safe for LMC combination orbit dedup *)
    candidates : Dsm.Symmetry.group list;
        (** the groups inference proposed (strongest first), for logs *)
  }

  type result = {
    findings : Report.finding list;
    verdict : verdict;
    stats : stats;
    completed : bool;  (** false when [max_transitions] truncated *)
  }

  val run : ?config:config -> unit -> result
end
