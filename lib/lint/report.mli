(** Lint findings: the typed result record, the [lint.v1] JSONL
    stream, and the checked-in allowlist used by the CI gate.

    A finding is identified by [(protocol, kind, subject)]: [subject]
    is a stable, run-independent label (a message/action family, or
    ["state"] for whole-state audits), so the same defect reports the
    same identity on every run and the allowlist can name it.  The
    free-form [detail] carries the specifics of one occurrence. *)

type kind =
  | Nondeterministic_handler
      (** same [(state, input)] executed twice produced different
          [(state', sends)] fingerprints *)
  | Nondeterministic_actions
      (** [enabled_actions] returned different lists for one state *)
  | Noncanonical_state
      (** two structurally equal stored states have different digests
          (e.g. Marshal sharing divergence), breaking the fingerprint
          contract: equal states would be explored twice *)
  | Digest_collision
      (** two structurally distinct states share a digest: fingerprint
          dedup would silently merge them *)
  | Unmarshalable_state
      (** a state cannot be marshalled (contains functional values),
          so it cannot be fingerprinted at all *)
  | Dead_message
      (** a message family is produced and repeatedly delivered but no
          delivery ever changed state, sent anything, or asserted *)
  | Dead_action
      (** an action family is repeatedly enabled but no execution ever
          changed state or sent anything *)
  | Handler_exception
      (** a handler raised something other than [Local_assert] *)
  | Nondeterministic_recovery
      (** [on_recover] executed twice from one state produced different
          recovered-state fingerprints — crash exploration in the
          checkers would not be replayable *)
  | Store_digest_drift
      (** a fingerprint inserted into a disk-backed {!Store.Fp_set}
          did not read back bit-identical to its 64-bit folding — a
          corrupted persistence layer would silently skip unexplored
          states on resume *)
  | Broken_symmetry
      (** a claimed role-permutation failed the commutation audit:
          [permute (handle (s, e))] and [handle (permute s, permute e)]
          disagreed on [(state', sends)] fingerprints for some reachable
          invocation — exploiting the group in B-DFS would merge
          inequivalent global states *)
  | Unsound_orbit
      (** the invariant is not slot-symmetric under a claimed group:
          some reachable combination and a permutation of it disagreed
          on the invariant's verdict — orbit-deduplicating LMC
          combinations under the group could skip a violating one *)

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result

(** All kinds, in report order. *)
val all_kinds : kind list

type finding = {
  kind : kind;
  protocol : string;
  subject : string;
  detail : string;
}

val pp_finding : Format.formatter -> finding -> unit

(** {2 The lint.v1 stream}

    Records are JSONL objects
    [{"ts":..,"event":"lint","schema":"lint.v1","seq":N,"ev":..,...}]
    with ["ev"] one of [run_start] (protocol, budget), [finding] (kind,
    protocol, subject, detail) and [run_end] (protocol, findings,
    transitions, states, elapsed_s).  [seq] is strictly increasing per
    stream; [bin/jsonl_check] validates all of this. *)

(** The schema tag carried by every record (["lint.v1"]). *)
val schema : string

type emitter

(** Drops everything. *)
val null : emitter

val to_sink : Obs.Sink.t -> emitter

val emit_start :
  emitter ->
  protocol:string ->
  max_depth:int option ->
  max_transitions:int ->
  unit

val emit_finding : emitter -> finding -> unit

val emit_end :
  emitter ->
  protocol:string ->
  findings:int ->
  transitions:int ->
  states:int ->
  elapsed_s:float ->
  unit

(** {2 Allowlist}

    One JSONL object per line:
    [{"protocol":"...","kind":"...","subject":"..."}].  Blank lines
    and lines starting with [#] are skipped. *)

type allow_entry = { a_protocol : string; a_kind : kind; a_subject : string }

val load_allowlist : string -> (allow_entry list, string) result

type reconciliation = {
  unexpected : finding list;  (** findings no allowlist entry covers *)
  stale : allow_entry list;
      (** entries (for the protocols actually linted) that matched no
          finding: the defect was fixed, so the allowlist must shrink *)
}

(** [reconcile ~allow ~linted findings] checks the run against the
    allowlist.  [linted] is the set of protocol names that actually
    ran: entries for other protocols are left alone rather than
    reported stale. *)
val reconcile :
  allow:allow_entry list ->
  linted:string list ->
  finding list ->
  reconciliation

(** {2 Label families}

    ["Prepare(1,2)"] and ["Prepare(2,0)"] are the same handler, and
    the synthetic protocols render payloads as ["m12"]: the family is
    the prefix before the first ['('] or [' '], with trailing digits
    stripped.  Coverage lints aggregate by family so a constructor is
    dead only when {e no} payload of it was ever consumed. *)
val family : string -> string
