(* Schedule-replay DFS with sleep sets over shimmed primitives.
 *
 * OCaml's one-shot continuations cannot be forked, so the explorer
 * re-executes from scratch along the committed schedule prefix and
 * then extends it ("stateless" search, as in dscheck or a DPOR
 * checker's replay mode).  A scheduling point is one shimmed
 * primitive operation: the scheduler picks an enabled thread, runs
 * its pending operation atomically, and lets it continue until the
 * next perform.  Guards (mutex acquisition) contribute blocking
 * semantics: a thread whose guard is false is simply not enabled, so
 * locks never spin.
 *
 * The reduction is Godefroid's sleep sets.  Every operation declares
 * a footprint — the physical identity of the cell or mutex it
 * touches, and whether it writes — and two operations are
 * independent iff they touch different locations or are both reads.
 * After the branch for thread [t] is fully explored at a node, [t]
 * joins the node's sleep set: sibling branches need not re-run [t]
 * first unless an intervening dependent operation wakes it, because
 * any such interleaving only commutes independent steps of one
 * already explored.  Sleep sets preserve every Mazurkiewicz trace,
 * hence every reachable final state and deadlock, so the final check
 * still sees every distinguishable outcome. *)

open Effect
open Effect.Deep

exception Check_failure of string

let failf fmt = Printf.ksprintf (fun m -> raise (Check_failure m)) fmt

type _ Effect.t +=
  | Op : {
      guard : unit -> bool;
      op : unit -> 'a;
      loc : Obj.t;  (* physical identity of the touched cell/mutex *)
      wr : bool;
    }
      -> 'a Effect.t

let op ~loc ~wr f = perform (Op { guard = (fun () -> true); op = f; loc; wr })

let guarded ~loc ~guard f =
  perform (Op { guard; op = f; loc; wr = true })

module Shim : Par.Primitives.S = struct
  module Atomic = struct
    type 'a t = { mutable v : 'a }

    (* Creation is not a scheduling point: a fresh cell is unshared
       until its address escapes, which can only happen through a
       later (shimmed) operation. *)
    let make v = { v }
    let get c = op ~loc:(Obj.repr c) ~wr:false (fun () -> c.v)
    let set c x = op ~loc:(Obj.repr c) ~wr:true (fun () -> c.v <- x)

    let compare_and_set c old x =
      op ~loc:(Obj.repr c) ~wr:true (fun () ->
          if c.v == old then begin
            c.v <- x;
            true
          end
          else false)

    let fetch_and_add c n =
      op ~loc:(Obj.repr c) ~wr:true (fun () ->
          let v = c.v in
          c.v <- v + n;
          v)
  end

  module Mutex = struct
    type t = { mutable held : bool }

    let create () = { held = false }

    let lock m =
      guarded ~loc:(Obj.repr m)
        ~guard:(fun () -> not m.held)
        (fun () -> m.held <- true)

    let unlock m = op ~loc:(Obj.repr m) ~wr:true (fun () -> m.held <- false)

    let protect m f =
      lock m;
      Fun.protect ~finally:(fun () -> unlock m) f
  end
end

type failure = { schedule : int list; steps : int; message : string }

type outcome = {
  executions : int;
  truncated : int;
  max_steps_seen : int;
  complete : bool;
  failure : failure option;
}

type status =
  | Ready of (unit -> unit)  (* body not started; firing starts it *)
  | Waiting of {
      guard : unit -> bool;
      fire : unit -> unit;
      loc : Obj.t;
      wr : bool;
    }
  | Finished

(* One node of the committed schedule.  [sleep] and [chosen] are
   mutated by the backtracking driver; [enabled] is fixed because
   replay is deterministic.  Thread sets are bitmasks (thread counts
   here are single digits). *)
type frame = { enabled : int list; mutable sleep : int; mutable chosen : int }

(* Run [f] with shim operations executed immediately (no scheduling):
   used for [make]'s setup code and the client's final check, which
   run sequentially and so cannot race anything. *)
let quietly f =
  match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Op { op; _ } ->
              Some (fun (k : (a, _) continuation) -> continue k (op ()))
          | _ -> None);
    }

type exec_result =
  | Completed
  | Failed of string
  | Deadlock
  | Covered  (* every enabled thread asleep: subtree explored elsewhere *)
  | Hit_step_bound

let independent ~loc ~wr (s : status) =
  match s with
  | Waiting w -> (not (w.loc == loc)) || ((not w.wr) && not wr)
  | Ready _ | Finished -> false

(* One execution: replay the committed [frames] (oldest first), then
   extend greedily (first enabled thread not asleep), appending the
   new frames to [push_frame].  Returns the schedule, step count and
   result. *)
let run_one ~max_steps ~frames ~push_frame make =
  let bodies, check = quietly make in
  let n = List.length bodies in
  if n > 60 then invalid_arg "Interleave.explore: too many threads";
  let slots = Array.make n Finished in
  List.iteri
    (fun i body ->
      slots.(i) <-
        Ready
          (fun () ->
            match_with body ()
              {
                retc = (fun () -> slots.(i) <- Finished);
                exnc = raise;
                effc =
                  (fun (type a) (eff : a Effect.t) ->
                    match eff with
                    | Op { guard; op; loc; wr } ->
                        Some
                          (fun (k : (a, unit) continuation) ->
                            slots.(i) <-
                              Waiting
                                {
                                  guard;
                                  loc;
                                  wr;
                                  fire = (fun () -> continue k (op ()));
                                })
                    | _ -> None);
              }))
    bodies;
  let sched = ref [] (* thread ids, newest first *)
  and steps = ref 0 in
  let result = ref Completed in
  (try
     (* Start every body eagerly, up to its first operation.  The
        code before a thread's first shimmed op touches no shared
        state, so it commutes with everything; making thread start a
        scheduling point would only multiply the schedule space by
        the interleavings of [n] no-op tokens. *)
     Array.iter (function Ready run -> run () | _ -> ()) slots;
     (* Fire thread [tid]'s pending op and return the sleep set of
        the successor node: sleeping threads stay asleep only past an
        independent operation. *)
     let fire tid sleep =
       match slots.(tid) with
       | Waiting w ->
           let child = ref 0 in
           for u = 0 to n - 1 do
             if
               sleep land (1 lsl u) <> 0
               && independent ~loc:w.loc ~wr:w.wr slots.(u)
             then child := !child lor (1 lsl u)
           done;
           sched := tid :: !sched;
           incr steps;
           w.fire ();
           !child
       | Ready _ | Finished -> assert false
     in
     (* Replay the committed prefix.  Each frame's stored sleep set
        is the node's current one: it can only have grown by
        backtracking, which pops every deeper frame first. *)
     let sleep = ref 0 in
     List.iter (fun f -> sleep := fire f.chosen f.sleep) frames;
     let running = ref true in
     while !running do
       let enabled =
         let acc = ref [] in
         for i = n - 1 downto 0 do
           match slots.(i) with
           | Waiting { guard; _ } -> if guard () then acc := i :: !acc
           | Ready _ | Finished -> ()
         done;
         !acc
       in
       match enabled with
       | [] ->
           let all_done =
             Array.for_all (function Finished -> true | _ -> false) slots
           in
           if not all_done then result := Deadlock;
           running := false
       | _ when !steps >= max_steps ->
           result := Hit_step_bound;
           running := false
       | _ -> (
           match
             List.find_opt (fun t -> !sleep land (1 lsl t) = 0) enabled
           with
           | None ->
               result := Covered;
               running := false
           | Some tid ->
               push_frame { enabled; sleep = !sleep; chosen = tid };
               sleep := fire tid !sleep)
     done;
     match !result with Completed -> quietly check | _ -> ()
   with
  | Check_failure msg -> result := Failed msg
  | e -> result := Failed (Printexc.to_string e));
  (List.rev !sched, !steps, !result)

let explore ?(max_steps = 10_000) ?(max_executions = 5_000_000) make =
  let executions = ref 0
  and runs = ref 0
  and truncated = ref 0
  and max_seen = ref 0
  and failure = ref None
  and budget_hit = ref false in
  (* Committed schedule, newest frame first. *)
  let stack = ref [] in
  (* Put the fully-explored branch to sleep and move to the next
     sibling; pop frames whose siblings are exhausted. *)
  let rec backtrack () =
    match !stack with
    | [] -> false
    | f :: rest -> (
        f.sleep <- f.sleep lor (1 lsl f.chosen);
        match
          List.find_opt (fun t -> f.sleep land (1 lsl t) = 0) f.enabled
        with
        | Some t ->
            f.chosen <- t;
            true
        | None ->
            stack := rest;
            backtrack ())
  in
  let continue_ = ref true in
  while !continue_ do
    if !runs >= max_executions then begin
      budget_hit := true;
      continue_ := false
    end
    else begin
      let sched, steps, result =
        run_one ~max_steps
          ~frames:(List.rev !stack)
          ~push_frame:(fun f -> stack := f :: !stack)
          make
      in
      incr runs;
      if steps > !max_seen then max_seen := steps;
      (match result with
      | Completed -> incr executions
      | Covered -> ()
      | Hit_step_bound -> incr truncated
      | Failed message ->
          failure := Some { schedule = sched; steps; message }
      | Deadlock ->
          failure := Some { schedule = sched; steps; message = "deadlock" });
      if !failure <> None || not (backtrack ()) then continue_ := false
    end
  done;
  {
    executions = !executions;
    truncated = !truncated;
    max_steps_seen = !max_seen;
    complete = (!failure = None && !truncated = 0 && not !budget_hit);
    failure = !failure;
  }

let pp_failure ppf f =
  Format.fprintf ppf "%s after %d step(s); schedule: %s" f.message f.steps
    (String.concat " " (List.map string_of_int f.schedule))
