(** Protocol sanitizers: dynamic static-analysis of a [Protocol.S]
    module's contracts by bounded exploration.

    The model checkers {e assume} four properties of a protocol
    implementation; this engine {e checks} them, because a violation
    silently corrupts every checker verdict rather than failing
    loudly:

    - {b determinism} — a handler invoked twice from identical inputs
      must produce fingerprint-identical [(state', sends)]; hidden
      mutable state (a module-level counter, randomness, wall-clock
      reads) breaks exploration soundness and witness replay.
    - {b canonicality} — logically-equal states must be structurally
      identical and digest to the same fingerprint (the {!Dsm.Fingerprint}
      contract); Marshal sharing divergence is the classic violation.
      The dual audit also reports true digest collisions, and states
      that cannot be marshalled at all.
    - {b purity of [enabled_actions]} — same state, same action list.
    - {b recovery} — [on_recover] is what crash exploration runs at
      every [Crash] step, so it is probed like a handler: twice per
      distinct (node, state) for determinism, with the recovered state
      fed through the canonicality audit.  Recovered states are only
      audited, never explored.
    - {b coverage} — message/action families that the bounded
      exploration produced and repeatedly delivered but that never had
      any effect are reported as dead (usually a forgotten handler
      case or an unreachable constructor).
    - {b persistence} — every distinct state fingerprint is
      round-tripped through a scratch {!Store.Fp_set} file and must
      read back bit-identical to its 64-bit folding; drift means a
      resumed checker would silently skip unexplored states.

    Exploration is a sequential BFS over global states (one delivery
    per distinct in-flight message, one execution per enabled action,
    exactly the global checker's successor relation), bounded by depth
    and a handler-invocation budget. *)

module Make (P : Dsm.Protocol.S) : sig
  type config = {
    max_depth : int option;
    max_transitions : int;  (** handler-invocation budget *)
    initial_net : P.message Dsm.Envelope.t list;
    min_deliveries : int;
        (** coverage lint: a family is reported dead only after at
            least this many fruitless delivery attempts *)
    store_tamper : (int64 -> int64) option;
        (** test hook for the persistence audit: rewrite the 64-bit
            key between {!Store.Fp_set.key} folding and insertion,
            standing in for a corrupting store layer.  [None]
            (default) audits the real round-trip. *)
  }

  val default_config : config

  type stats = {
    global_states : int;
    transitions : int;  (** first-run handler invocations *)
    probes : int;  (** re-executions performed by the sanitizers *)
    elapsed : float;
  }

  type result = {
    findings : Report.finding list;
        (** deduplicated on [(kind, subject)], in report order *)
    stats : stats;
    completed : bool;  (** the bounded space was exhausted in budget *)
  }

  val run : ?config:config -> unit -> result
end
