type bug = No_bug | Ignore_bit

module type CONFIG = sig
  val data : int list
  val max_retransmits : int
  val bug : bug
end

type abp_sender = {
  pending : int list;
  bit : bool;
  awaiting : bool;
  retransmits : int;
}

type abp_receiver = { delivered : int list; expected : bool }

type abp_state = S of abp_sender | R of abp_receiver

type abp_message = Data of bool * int | Ack of bool

type abp_action = Send | Retransmit

module Make (C : CONFIG) = struct
  let name = "alternating-bit"
  let num_nodes = 2

  type state = abp_state
  type message = abp_message
  type action = abp_action

  let sender = 0
  let receiver = 1

  let initial n =
    if n = sender then
      S { pending = C.data; bit = false; awaiting = false; retransmits = 0 }
    else R { delivered = []; expected = false }

  let to_receiver m = [ Dsm.Envelope.make ~src:sender ~dst:receiver m ]
  let to_sender m = [ Dsm.Envelope.make ~src:receiver ~dst:sender m ]

  let handle_sender s = function
    | Ack b ->
        if s.awaiting && b = s.bit then
          ( S
              {
                pending = (match s.pending with [] -> [] | _ :: r -> r);
                bit = not s.bit;
                awaiting = false;
                retransmits = 0;
              },
            [] )
        else (S s, []) (* stale ack *)
    | Data _ -> raise (Dsm.Protocol.Local_assert "data frame at the sender")

  let handle_receiver r = function
    | Data (b, x) ->
        let accept =
          match C.bug with
          | No_bug -> b = r.expected
          | Ignore_bit -> true (* the bug: duplicates pass the filter *)
        in
        if accept then
          ( R { delivered = x :: r.delivered; expected = not r.expected },
            to_sender (Ack b) )
        else
          (* duplicate: re-acknowledge without delivering *)
          (R r, to_sender (Ack b))
    | Ack _ -> raise (Dsm.Protocol.Local_assert "ack at the receiver")

  let handle_message ~self:_ state env =
    match state with
    | S s -> handle_sender s env.Dsm.Envelope.payload
    | R r -> handle_receiver r env.Dsm.Envelope.payload

  let enabled_actions ~self state =
    if self <> sender then []
    else
      match state with
      | R _ -> []
      | S s ->
          let send =
            if (not s.awaiting) && s.pending <> [] then [ Send ] else []
          in
          let retransmit =
            if s.awaiting && s.retransmits < C.max_retransmits then
              [ Retransmit ]
            else []
          in
          send @ retransmit

  let handle_action ~self:_ state action =
    match (state, action) with
    | S s, Send -> (
        match s.pending with
        | [] -> raise (Dsm.Protocol.Local_assert "send without pending data")
        | x :: _ -> (S { s with awaiting = true }, to_receiver (Data (s.bit, x))))
    | S s, Retransmit -> (
        match s.pending with
        | [] -> raise (Dsm.Protocol.Local_assert "retransmit without frame")
        | x :: _ ->
            ( S { s with retransmits = s.retransmits + 1 },
              to_receiver (Data (s.bit, x)) ))
    | R _, _ -> raise (Dsm.Protocol.Local_assert "receiver has no actions")

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf = function
    | S s ->
        Format.fprintf ppf "S{pending=%d bit=%b awaiting=%b}"
          (List.length s.pending) s.bit s.awaiting
    | R r ->
        Format.fprintf ppf "R{delivered=[%s] expect=%b}"
          (String.concat ";" (List.rev_map string_of_int r.delivered))
          r.expected

  let pp_message ppf = function
    | Data (b, x) -> Format.fprintf ppf "Data(%b,%d)" b x
    | Ack b -> Format.fprintf ppf "Ack(%b)" b

  let pp_action ppf = function
    | Send -> Format.pp_print_string ppf "send"
    | Retransmit -> Format.pp_print_string ppf "retransmit"

  let rec is_prefix prefix full =
    match (prefix, full) with
    | [], _ -> true
    | p :: ps, f :: fs -> p = f && is_prefix ps fs
    | _ :: _, [] -> false

  let prefix_delivery =
    Dsm.Invariant.make ~name:"abp-prefix-delivery" (fun system ->
        match system.(receiver) with
        | R r ->
            if is_prefix (List.rev r.delivered) C.data then None
            else Some "receiver delivered a non-prefix of the input"
        | S _ -> Some "node 1 is not the receiver")
end
