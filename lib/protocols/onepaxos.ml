type bug = No_bug | Postfix_increment

module type CONFIG = sig
  val num_nodes : int
  val max_leader_claims : int
  val max_attempts : int
  val max_index : int
  val max_util_entries : int
  val max_util_attempts : int
  val bug : bug
end

type entry = Leader_change of int | Acceptor_change of int

type op_message =
  | Util of Paxos_core.message
  | Propose1 of { idx : int; rnd : int; v : int }
  | Learn1 of { idx : int; rnd : int; v : int }

type op_action = Init | Claim_leadership | Propose of { idx : int }

type op_state = {
  booted : bool;
  util : Paxos_core.state;
  util_applied : int;
  leader : int;
  acceptor : int;
  is_leader : bool;
  claims : int;
  attempts : (int * int) list;
  accepted : (int * (int * int)) list;
  chosen : (int * int) list;
}

let encode_entry = function
  | Leader_change n -> 2 * n
  | Acceptor_change n -> (2 * n) + 1

let decode_entry v =
  if v mod 2 = 0 then Leader_change (v / 2) else Acceptor_change ((v - 1) / 2)

module Make (C : CONFIG) = struct
  let name = "1paxos"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 3 then invalid_arg "Onepaxos: need at least 3 nodes"

  type state = op_state
  type message = op_message
  type action = op_action

  let initial _ =
    {
      booted = false;
      util = Paxos_core.empty;
      util_applied = 0;
      leader = 0;
      acceptor = 0;
      is_leader = false;
      claims = 0;
      attempts = [];
      accepted = [];
      chosen = [];
    }

  let rec assoc_update key f = function
    | [] -> [ (key, f None) ]
    | (k, v) :: rest when k = key -> (k, f (Some v)) :: rest
    | (k, v) :: rest when k > key -> (key, f None) :: (k, v) :: rest
    | kv :: rest -> kv :: assoc_update key f rest

  let attempts_for state idx =
    match List.assoc_opt idx state.attempts with Some a -> a | None -> 0

  (* The correct default: "the acceptor is set to the second [member]".
     The buggy initialisation used the postfix increment and got the
     first member instead — leader and acceptor collapse onto node 0. *)
  let correct_default_acceptor = 1

  let initial_acceptor =
    match C.bug with
    | No_bug -> correct_default_acceptor
    | Postfix_increment -> 0

  let env ~src ~dst payload = Dsm.Envelope.make ~src ~dst payload

  let wrap_util self out =
    List.map (fun (dst, msg) -> env ~src:self ~dst (Util msg)) out

  (* The utility log speaks through Paxos_core.chosen: apply newly
     decided entries in log order.  A node that becomes leader reads
     the active acceptor from the utility — this lookup is correct even
     in the buggy build; only the cached initial value is wrong. *)
  let apply_utility ~self state =
    let rec loop state =
      match Paxos_core.chosen state.util state.util_applied with
      | None -> state
      | Some v ->
          let state = { state with util_applied = state.util_applied + 1 } in
          let state =
            match decode_entry v with
            | Leader_change n ->
                let state =
                  { state with leader = n; is_leader = self = n }
                in
                if self = n then
                  (* Refresh the cached acceptor from the utility log;
                     fall back to the (correctly computed) default. *)
                  let last_acceptor =
                    let rec scan i acc =
                      if i >= state.util_applied then acc
                      else
                        match Paxos_core.chosen state.util i with
                        | Some v -> (
                            match decode_entry v with
                            | Acceptor_change a -> scan (i + 1) (Some a)
                            | Leader_change _ -> scan (i + 1) acc)
                        | None -> scan (i + 1) acc
                    in
                    scan 0 None
                  in
                  {
                    state with
                    acceptor =
                      Option.value ~default:correct_default_acceptor
                        last_acceptor;
                  }
                else state
            | Acceptor_change a -> { state with acceptor = a }
          in
          loop state
    in
    loop state

  let handle_util ~self state ~src msg =
    let util, out =
      Paxos_core.handle ~n:C.num_nodes ~self ~bug:Paxos_core.No_bug state.util
        ~src msg
    in
    let state = apply_utility ~self { state with util } in
    (state, wrap_util self out)

  (* Single-acceptor rule: the first accepted value for an index is
     locked; later proposals with a higher round re-learn the locked
     value.  This collapses new-leader recovery onto the acceptor
     itself, which is what makes one acceptor enough. *)
  let handle_propose1 ~self state ~idx ~rnd ~v =
    match List.assoc_opt idx state.accepted with
    | None ->
        let state =
          { state with accepted = assoc_update idx (fun _ -> (rnd, v)) state.accepted }
        in
        (state, List.init C.num_nodes (fun dst -> env ~src:self ~dst (Learn1 { idx; rnd; v })))
    | Some (r0, v0) ->
        if rnd > r0 then
          let state =
            {
              state with
              accepted = assoc_update idx (fun _ -> (rnd, v0)) state.accepted;
            }
          in
          ( state,
            List.init C.num_nodes (fun dst ->
                env ~src:self ~dst (Learn1 { idx; rnd; v = v0 })) )
        else (state, [])

  let handle_learn1 state ~idx ~v =
    match List.assoc_opt idx state.chosen with
    | Some _ -> (state, [])
    | None ->
        ({ state with chosen = assoc_update idx (fun _ -> v) state.chosen }, [])

  let handle_message ~self state e =
    if not state.booted then
      raise (Dsm.Protocol.Local_assert "message before initialization");
    match e.Dsm.Envelope.payload with
    | Util msg -> handle_util ~self state ~src:e.Dsm.Envelope.src msg
    | Propose1 { idx; rnd; v } -> handle_propose1 ~self state ~idx ~rnd ~v
    | Learn1 { idx; rnd = _; v } -> handle_learn1 state ~idx ~v

  let propose_candidate state =
    if not state.is_leader then None
    else
      let rec scan idx =
        if idx >= C.max_index then None
        else if
          List.assoc_opt idx state.chosen = None
          && attempts_for state idx < C.max_attempts
        then Some idx
        else scan (idx + 1)
      in
      scan 0

  let enabled_actions ~self:_ state =
    if not state.booted then [ Init ]
    else begin
      let claims =
        if
          (not state.is_leader)
          && state.claims < C.max_leader_claims
          && state.util_applied < C.max_util_entries
          && Paxos_core.next_attempt ~n:C.num_nodes state.util
               ~idx:state.util_applied
             <= C.max_util_attempts
        then [ Claim_leadership ]
        else []
      in
      let proposes =
        match propose_candidate state with
        | Some idx -> [ Propose { idx } ]
        | None -> []
      in
      claims @ proposes
    end

  let handle_action ~self state = function
    | Init ->
        ( {
            state with
            booted = true;
            leader = 0;
            acceptor = initial_acceptor;
            is_leader = self = 0;
          },
          [] )
    | Claim_leadership ->
        let state = { state with claims = state.claims + 1 } in
        (* Propose a LeaderChange entry at the next utility log slot
           this node knows to be free. *)
        let util, out =
          Paxos_core.propose ~n:C.num_nodes ~self state.util
            ~idx:state.util_applied
            ~v:(encode_entry (Leader_change self))
        in
        ({ state with util }, wrap_util self out)
    | Propose { idx } ->
        let k = attempts_for state idx + 1 in
        let state =
          { state with attempts = assoc_update idx (fun _ -> k) state.attempts }
        in
        (* Leadership epochs order rounds: a newer leader always beats
           a stale one at the acceptor. *)
        let rnd = (state.util_applied * (C.max_attempts + 1)) + k in
        ( state,
          [
            env ~src:self ~dst:state.acceptor
              (Propose1 { idx; rnd; v = self + 1 });
          ] )

  let pp_int_assoc ppf l =
    Format.fprintf ppf "[%s]"
      (String.concat ";"
         (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) l))

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    if not s.booted then Format.pp_print_string ppf "(not booted)"
    else
      Format.fprintf ppf
        "{leader=%d acceptor=%d is_leader=%b claims=%d chosen=%a util_applied=%d}"
        s.leader s.acceptor s.is_leader s.claims pp_int_assoc s.chosen
        s.util_applied

  let pp_message ppf = function
    | Util m -> Format.fprintf ppf "Util(%a)" Paxos_core.pp_message m
    | Propose1 { idx; rnd; v } ->
        Format.fprintf ppf "Propose1(i=%d,r=%d,v=%d)" idx rnd v
    | Learn1 { idx; rnd; v } ->
        Format.fprintf ppf "Learn1(i=%d,r=%d,v=%d)" idx rnd v

  let pp_action ppf = function
    | Init -> Format.pp_print_string ppf "init"
    | Claim_leadership -> Format.pp_print_string ppf "claim-leadership"
    | Propose { idx } -> Format.fprintf ppf "propose1(i=%d)" idx

  let safety =
    Dsm.Invariant.for_all_pairs ~name:"1paxos-safety" (fun _ a _ b ->
        let rec scan = function
          | [] -> None
          | (idx, va) :: rest -> (
              match List.assoc_opt idx b.chosen with
              | Some vb when vb <> va ->
                  Some
                    (Printf.sprintf
                       "index %d chosen as %d by one node, %d by another" idx
                       va vb)
              | _ -> scan rest)
        in
        scan a.chosen)

  let abstraction s = match s.chosen with [] -> None | kvs -> Some kvs

  let conflicts a b =
    List.exists
      (fun (idx, va) ->
        match List.assoc_opt idx b with Some vb -> vb <> va | None -> false)
      a
end
