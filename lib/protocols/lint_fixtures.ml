(* Deliberately defective protocols for exercising `lmc lint`.  Each
   plants exactly one sanitizer-class defect — the kind of bug that
   does not violate any invariant but silently corrupts checker
   verdicts — so the lint suite can assert one finding of the
   expected kind per fixture and nothing else. *)

module Envelope = Dsm.Envelope

(* ----- nondeterministic handler -----

   A module-level counter leaks into the Pong payload: re-executing
   the Ping handler from identical inputs yields different sends, the
   exact failure mode of hidden mutable state (sequence generators,
   randomness, wall-clock reads) in a handler. *)
module Nondet = struct
  let name = "fixture-nondet"
  let num_nodes = 2

  type state = int
  type message = Ping | Pong of int
  type action = Kick

  let initial _ = 0

  let counter = ref 0

  let handle_message ~self _st (env : message Envelope.t) =
    match env.payload with
    | Ping ->
        incr counter;
        (1, [ Envelope.make ~src:self ~dst:env.src (Pong !counter) ])
    | Pong _ -> (2, [])

  let enabled_actions ~self st =
    if self = 0 && st = 0 then [ Kick ] else []

  let handle_action ~self _st Kick =
    (1, [ Envelope.make ~src:self ~dst:1 Ping ])

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf = function
    | Ping -> Format.fprintf ppf "Ping"
    | Pong n -> Format.fprintf ppf "Pong(%d)" n
  let pp_action ppf Kick = Format.fprintf ppf "Kick"
end

(* ----- non-canonical state -----

   Two handler paths build logically equal states with different
   Marshal representations: [Shared] aliases one list into both
   fields (Marshal emits a back-reference), [Split] allocates the
   lists separately.  The states compare structurally equal but
   digest differently, so fingerprint dedup would explore "the same"
   state twice — the {!Dsm.Fingerprint} canonicality contract. *)
module Noncanon = struct
  let name = "fixture-noncanon"
  let num_nodes = 2

  type state = Start | Sent of int | Store of { xs : int list; ys : int list }
  type message = Shared | Split
  type action = Send_shared | Send_split

  let initial _ = Start

  (* The lists are computed from the envelope (not constants) so the
     compiler cannot lift them into the constant pool, where equal
     constants get shared and both branches would marshal alike. *)
  let handle_message ~self:_ _st (env : message Envelope.t) =
    match env.payload with
    | Shared ->
        let l = [ env.src + 1 ] in
        (Store { xs = l; ys = l }, [])
    | Split -> (Store { xs = [ env.src + 1 ]; ys = [ env.src + 1 ] }, [])

  let enabled_actions ~self st =
    if self = 0 && st = Start then [ Send_shared; Send_split ] else []

  let handle_action ~self _st a =
    match a with
    | Send_shared -> (Sent 1, [ Envelope.make ~src:self ~dst:1 Shared ])
    | Send_split -> (Sent 2, [ Envelope.make ~src:self ~dst:1 Split ])

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf = function
    | Start -> Format.fprintf ppf "start"
    | Sent n -> Format.fprintf ppf "sent%d" n
    | Store { xs; ys } ->
        Format.fprintf ppf "store(%d,%d)" (List.length xs) (List.length ys)

  let pp_message ppf = function
    | Shared -> Format.fprintf ppf "Shared"
    | Split -> Format.fprintf ppf "Split"

  let pp_action ppf = function
    | Send_shared -> Format.fprintf ppf "SendShared"
    | Send_split -> Format.fprintf ppf "SendSplit"
end

(* ----- dead message -----

   Node 0 keeps broadcasting Noise; node 1 has no meaningful handler
   case for it — every delivery returns the state unchanged and sends
   nothing.  The coverage lint flags the constructor as dead: in a
   real protocol this is a forgotten handler case or a message the
   sender was never supposed to emit. *)
module Dead_letter = struct
  let name = "fixture-dead"
  let num_nodes = 2

  type state = int
  type message = Noise
  type action = Tick

  let initial _ = 0

  let handle_message ~self:_ st (_ : message Envelope.t) = (st, [])

  let enabled_actions ~self st =
    if self = 0 && st < 3 then [ Tick ] else []

  let handle_action ~self st Tick =
    (st + 1, [ Envelope.make ~src:self ~dst:1 Noise ])

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf Noise = Format.fprintf ppf "Noise"
  let pp_action ppf Tick = Format.fprintf ppf "Tick"
end

(* ----- nondeterministic recovery -----

   The handlers are clean, but node 0's [on_recover] folds a
   module-level epoch counter into the recovered state: two recoveries
   from the same pre-crash state disagree, so a crash-exploring
   checker could neither deduplicate recovered states nor replay a
   crash witness.  This is the recovery analogue of {!Nondet} — a
   wall-clock read or restart counter leaking into recovery logic. *)
module Flaky_recovery = struct
  let name = "fixture-flaky-recovery"
  let num_nodes = 2

  type state = int
  type message = Ping | Pong
  type action = Kick

  let initial _ = 0

  let handle_message ~self st (env : message Envelope.t) =
    match env.payload with
    | Ping -> (st + 1, [ Envelope.make ~src:self ~dst:env.src Pong ])
    | Pong -> (st + 2, [])

  let enabled_actions ~self st =
    if self = 0 && st = 0 then [ Kick ] else []

  let handle_action ~self st Kick =
    (st + 1, [ Envelope.make ~src:self ~dst:1 Ping ])

  let epoch = ref 0

  let on_recover ~self st =
    if self = 0 then begin
      incr epoch;
      (st * 16) + !epoch
    end
    else st

  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf = function
    | Ping -> Format.fprintf ppf "Ping"
    | Pong -> Format.fprintf ppf "Pong"
  let pp_action ppf Kick = Format.fprintf ppf "Kick"
end

(* ----- broken symmetry claim -----

   A ping-pong flood whose author claims the full symmetric group S_3:
   no node id appears in any state or message, every node broadcasts
   the same greeting, every reply goes back to the envelope's source —
   it looks role-symmetric.  But the Ping handler secretly branches on
   [self]: node 0 counts each ping double.  Re-executing the same
   delivery under a role permutation then disagrees with permuting the
   result, which is exactly what the commutation audit probes; a
   checker that trusted the claim would fold distinct states (node 0
   ahead by one) into one orbit and silently skip reachable
   behaviour.  Everything else is deterministic, canonical and
   handled, so the sanitizer suite stays clean and the one finding is
   [broken_symmetry]. *)
module Sym_broken = struct
  let name = "fixture-sym-broken"
  let num_nodes = 3

  type state = int
  type message = Ping | Pong
  type action = Hello

  let initial _ = 0

  let others self =
    List.filter (fun d -> d <> self) (Dsm.Node_id.all num_nodes)

  let handle_message ~self st (env : message Envelope.t) =
    match env.payload with
    | Ping ->
        (* The planted defect: node 0 is special-cased. *)
        let bump = if self = 0 then 2 else 1 in
        (st + bump, [ Envelope.make ~src:self ~dst:env.src Pong ])
    | Pong -> (st + 16, [])

  let enabled_actions ~self:_ st = if st = 0 then [ Hello ] else []

  let handle_action ~self _st Hello =
    (1, List.map (fun d -> Envelope.make ~src:self ~dst:d Ping) (others self))

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf = function
    | Ping -> Format.fprintf ppf "Ping"
    | Pong -> Format.fprintf ppf "Pong"
  let pp_action ppf Hello = Format.fprintf ppf "Hello"
end

(* ----- genuinely symmetric flood -----

   The same ping-pong flood with the special case removed: states and
   messages mention no node ids, every node runs identical code, and
   destinations are equivariant (broadcast to everyone else, reply to
   the source).  The commutation audit passes the full symmetric
   group, so this fixture is the positive control: inference must
   propose S_3 and both checkers may reduce.  Distinct interleavings
   leave the nodes at permuted progress counts, so global-state
   canonicalization in B-DFS collapses close to [n!] of the space. *)
module Sym_flood = struct
  let name = "fixture-sym-flood"
  let num_nodes = 3

  type state = int
  type message = Ping | Pong
  type action = Hello

  let initial _ = 0

  let others self =
    List.filter (fun d -> d <> self) (Dsm.Node_id.all num_nodes)

  let handle_message ~self st (env : message Envelope.t) =
    match env.payload with
    | Ping -> (st + 1, [ Envelope.make ~src:self ~dst:env.src Pong ])
    | Pong -> (st + 16, [])

  let enabled_actions ~self:_ st = if st = 0 then [ Hello ] else []

  let handle_action ~self _st Hello =
    (1, List.map (fun d -> Envelope.make ~src:self ~dst:d Ping) (others self))

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s = Format.fprintf ppf "%d" s
  let pp_message ppf = function
    | Ping -> Format.fprintf ppf "Ping"
    | Pong -> Format.fprintf ppf "Pong"
  let pp_action ppf Hello = Format.fprintf ppf "Hello"
end
