type bug = No_bug | Regenerate_token

module type CONFIG = sig
  val num_nodes : int
  val contenders : int list
  val max_regenerations : int
  val bug : bug
end

type mutex_state = {
  has_token : bool;
  wants : bool;
  in_cs : bool;
  served : bool;
  regenerations : int;
}

type mutex_action = Want | Enter | Leave | Pass | Regenerate

module Make (C : CONFIG) = struct
  let name = "token-mutex"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Token_mutex: need at least 2 nodes";
    if List.exists (fun c -> c < 0 || c >= C.num_nodes) C.contenders then
      invalid_arg "Token_mutex: contender out of range"

  type state = mutex_state
  type message = unit
  type action = mutex_action

  let initial n =
    {
      has_token = n = 0;
      wants = false;
      in_cs = false;
      served = false;
      regenerations = 0;
    }

  let succ self = (self + 1) mod C.num_nodes

  let pass self = [ Dsm.Envelope.make ~src:self ~dst:(succ self) () ]

  let handle_message ~self:_ state _env =
    if state.has_token then
      raise (Dsm.Protocol.Local_assert "received a token while holding one");
    ({ state with has_token = true }, [])

  let enabled_actions ~self state =
    let want =
      if
        List.mem self C.contenders
        && (not state.wants)
        && (not state.served)
        && not state.in_cs
      then [ Want ]
      else []
    in
    let enter =
      if state.has_token && state.wants && not state.in_cs then [ Enter ]
      else []
    in
    let leave = if state.in_cs then [ Leave ] else [] in
    let pass_on =
      if state.has_token && (not state.wants) && not state.in_cs then
        [ Pass ]
      else []
    in
    let regenerate =
      match C.bug with
      | No_bug -> []
      | Regenerate_token ->
          if
            (not state.has_token)
            && state.wants
            && state.regenerations < C.max_regenerations
          then [ Regenerate ]
          else []
    in
    want @ enter @ leave @ pass_on @ regenerate

  let handle_action ~self state = function
    | Want -> ({ state with wants = true }, [])
    | Enter -> ({ state with in_cs = true }, [])
    | Leave ->
        ( {
            state with
            in_cs = false;
            wants = false;
            served = true;
            has_token = false;
          },
          pass self )
    | Pass -> ({ state with has_token = false }, pass self)
    | Regenerate ->
        (* the bug: "the token must be lost" — it is not *)
        ( { state with has_token = true; regenerations = state.regenerations + 1 },
          [] )

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "{%s%s%s%s}"
      (if s.has_token then "T" else "-")
      (if s.wants then "w" else "-")
      (if s.in_cs then "C" else "-")
      (if s.served then "s" else "-")

  let pp_message ppf () = Format.pp_print_string ppf "token"

  let pp_action ppf = function
    | Want -> Format.pp_print_string ppf "want"
    | Enter -> Format.pp_print_string ppf "enter"
    | Leave -> Format.pp_print_string ppf "leave"
    | Pass -> Format.pp_print_string ppf "pass"
    | Regenerate -> Format.pp_print_string ppf "regenerate-token"

  let mutual_exclusion =
    Dsm.Invariant.for_all_pairs ~name:"mutual-exclusion" (fun _ a _ b ->
        if a.in_cs && b.in_cs then
          Some "two nodes in the critical section"
        else None)

  let abstraction s = if s.in_cs then Some () else None

  let conflicts () () = true
end
