type bug =
  | No_bug
  | Ack_before_replication
  | Lose_acked_writes_on_recovery
      (* the primary serves Put from memory without writing through to
         disk; invisible until a crash-recovery restores from disk *)

module type CONFIG = sig
  val key : int
  val value : int
  val bug : bug
end

type pb_role = {
  store : (int * int) list;  (* in-memory working copy *)
  disk : (int * int) list;  (* write-through copy, the recovery source *)
  repl_pending : (int * int) option;
}

type pb_client = {
  put_sent : bool;
  put_acked : bool;
  failed_over : bool;
  get_sent : bool;
  response : int option option;
}

type pb_state = Replica of pb_role | Client of pb_client

type pb_message =
  | Put of int * int
  | Replicate of int * int
  | Repl_ack
  | Put_ack
  | Get of int
  | Get_reply of int option

type pb_action = Do_put | Fail_over | Do_get

module Make (C : CONFIG) = struct
  let name = "primary-backup-store"
  let num_nodes = 3

  type state = pb_state
  type message = pb_message
  type action = pb_action

  let primary = 0
  let backup = 1
  let client = 2

  let initial n =
    if n = client then
      Client
        {
          put_sent = false;
          put_acked = false;
          failed_over = false;
          get_sent = false;
          response = None;
        }
    else Replica { store = []; disk = []; repl_pending = None }

  let rec put_assoc k v = function
    | [] -> [ (k, v) ]
    | (k', _) :: rest when k' = k -> (k, v) :: rest
    | (k', v') :: rest when k' > k -> (k, v) :: (k', v') :: rest
    | kv :: rest -> kv :: put_assoc k v rest

  let env ~src ~dst m = Dsm.Envelope.make ~src ~dst m

  let handle_replica ~self r ~src msg =
    match msg with
    | Put (k, v) ->
        if self <> primary then
          raise (Dsm.Protocol.Local_assert "write at the backup");
        let disk =
          match C.bug with
          | Lose_acked_writes_on_recovery -> r.disk (* forgot write-through *)
          | No_bug | Ack_before_replication -> put_assoc k v r.disk
        in
        let r = { r with store = put_assoc k v r.store; disk } in
        let replicate = env ~src:self ~dst:backup (Replicate (k, v)) in
        (match C.bug with
        | No_bug | Lose_acked_writes_on_recovery ->
            (* remember the write; ack only on the backup's confirm *)
            (Replica { r with repl_pending = Some (k, v) }, [ replicate ])
        | Ack_before_replication ->
            ( Replica r,
              [ replicate; env ~src:self ~dst:src Put_ack ] ))
    | Replicate (k, v) ->
        if self <> backup then
          raise (Dsm.Protocol.Local_assert "replication at the primary");
        ( Replica
            { r with store = put_assoc k v r.store; disk = put_assoc k v r.disk },
          [ env ~src:self ~dst:primary Repl_ack ] )
    | Repl_ack -> (
        if self <> primary then
          raise (Dsm.Protocol.Local_assert "replication ack at the backup");
        match r.repl_pending with
        | Some _ ->
            ( Replica { r with repl_pending = None },
              [ env ~src:self ~dst:client Put_ack ] )
        | None -> (Replica r, []))
    | Get k ->
        let reply = List.assoc_opt k r.store in
        (Replica r, [ env ~src:self ~dst:src (Get_reply reply) ])
    | Put_ack | Get_reply _ ->
        raise (Dsm.Protocol.Local_assert "client traffic at a replica")

  let handle_client c msg =
    match msg with
    | Put_ack -> (Client { c with put_acked = true }, [])
    | Get_reply r -> (Client { c with response = Some r }, [])
    | Put _ | Replicate _ | Repl_ack | Get _ ->
        raise (Dsm.Protocol.Local_assert "replica traffic at the client")

  let handle_message ~self state e =
    match state with
    | Replica r -> handle_replica ~self r ~src:e.Dsm.Envelope.src e.Dsm.Envelope.payload
    | Client c -> handle_client c e.Dsm.Envelope.payload

  let enabled_actions ~self state =
    if self <> client then []
    else
      match state with
      | Replica _ -> []
      | Client c ->
          let put = if not c.put_sent then [ Do_put ] else [] in
          let failover =
            if c.put_acked && (not c.failed_over) && not c.get_sent then
              [ Fail_over ]
            else []
          in
          let get =
            if c.put_acked && not c.get_sent then [ Do_get ] else []
          in
          put @ failover @ get

  let handle_action ~self state action =
    match (state, action) with
    | Client c, Do_put ->
        ( Client { c with put_sent = true },
          [ env ~src:self ~dst:primary (Put (C.key, C.value)) ] )
    | Client c, Fail_over -> (Client { c with failed_over = true }, [])
    | Client c, Do_get ->
        let target = if c.failed_over then backup else primary in
        ( Client { c with get_sent = true },
          [ env ~src:self ~dst:target (Get C.key) ] )
    | Replica _, _ ->
        raise (Dsm.Protocol.Local_assert "replicas have no driver")

  (* A recovering replica reloads from disk; the in-memory store and
     the replication window are volatile.  Clients are the test driver
     and survive crashes untouched (their crash is a no-op and gets
     pruned by the checkers). *)
  let on_recover ~self:_ state =
    match state with
    | Client _ -> state
    | Replica r ->
        (* the message paths never alias store and disk, so recovery
           must not either: a shared list marshals with a
           back-reference and the recovered state would digest
           differently from its structurally equal message-reachable
           twin *)
        let reload () = List.map (fun (k, v) -> (k, v)) r.disk in
        Replica { store = reload (); disk = reload (); repl_pending = None }

  let pp_state ppf = function
    | Replica r ->
        Format.fprintf ppf "Replica{|store|=%d pending=%b}"
          (List.length r.store)
          (r.repl_pending <> None)
    | Client c ->
        Format.fprintf ppf "Client{put=%b acked=%b failover=%b get=%b resp=%s}"
          c.put_sent c.put_acked c.failed_over c.get_sent
          (match c.response with
          | None -> "-"
          | Some None -> "miss"
          | Some (Some v) -> string_of_int v)

  let pp_message ppf = function
    | Put (k, v) -> Format.fprintf ppf "Put(%d,%d)" k v
    | Replicate (k, v) -> Format.fprintf ppf "Replicate(%d,%d)" k v
    | Repl_ack -> Format.pp_print_string ppf "ReplAck"
    | Put_ack -> Format.pp_print_string ppf "PutAck"
    | Get k -> Format.fprintf ppf "Get(%d)" k
    | Get_reply None -> Format.pp_print_string ppf "GetReply(miss)"
    | Get_reply (Some v) -> Format.fprintf ppf "GetReply(%d)" v

  let pp_action ppf = function
    | Do_put -> Format.pp_print_string ppf "put"
    | Fail_over -> Format.pp_print_string ppf "fail-over"
    | Do_get -> Format.pp_print_string ppf "get"

  let read_your_writes =
    Dsm.Invariant.for_all_nodes ~name:"read-your-writes" (fun n s ->
        if n <> client then None
        else
          match s with
          | Replica _ -> Some "node 2 is not the client"
          | Client c -> (
              if not c.put_acked then None
              else
                match c.response with
                | Some None -> Some "acknowledged write missing from a read"
                | Some (Some v) when v <> C.value ->
                    Some "read returned a different value"
                | _ -> None))
end
