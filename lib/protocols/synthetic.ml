module type CONFIG = sig
  val seed : int
  val num_nodes : int
  val max_state : int
  val kinds : int
end

module Make (C : CONFIG) = struct
  let name = Printf.sprintf "synthetic-%d" C.seed
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Synthetic: need at least 2 nodes";
    if C.max_state < 1 then invalid_arg "Synthetic: max_state < 1";
    if C.kinds < 1 then invalid_arg "Synthetic: kinds < 1"

  type state = int
  type message = int
  type action = unit

  let initial _ = 0

  (* Deterministic per-instance randomness: every behavioural decision
     is a pure function of this hash. *)
  let h tag self state input = Hashtbl.hash (C.seed, tag, self, state, input)

  (* At most two messages per handler; destinations and kinds derived
     from the hash.  The payload encodes the sender's state so message
     contents are unique within any single run (a node's state strictly
     increases, so it never re-sends the same content) — this is the
     paper's stated operating assumption: its formal model makes the
     network a set of messages and its implementation limits duplicate
     contents to zero, accepting incompleteness beyond that. *)
  let sends self state input =
    let x = h 1 self state input in
    let count = x mod 3 in
    List.init count (fun i ->
        let y = h (2 + i) self state input in
        let dst = y mod C.num_nodes in
        let kind = y / 7 mod C.kinds in
        Dsm.Envelope.make ~src:self ~dst (kind + (C.kinds * (state + (100 * i)))))

  (* Strictly increasing next state keeps every execution finite. *)
  let next_state self state input =
    if state >= C.max_state then None
    else begin
      let x = h 0 self state input in
      if x mod 4 = 0 then None (* the handler ignores this input *)
      else Some (state + 1 + (x / 5 mod (C.max_state - state)))
    end

  let handle_message ~self state env =
    let input = env.Dsm.Envelope.payload + (17 * env.Dsm.Envelope.src) in
    match next_state self state input with
    | None -> (state, [])
    | Some state' -> (state', sends self state input)

  let enabled_actions ~self state =
    if self = 0 && state = 0 then [ () ] else []

  let handle_action ~self state () =
    let state' = min C.max_state (state + 1) in
    (state', sends self state (-1))

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state = Format.pp_print_int
  let pp_message ppf k = Format.fprintf ppf "m%d" k
  let pp_action ppf () = Format.pp_print_string ppf "start"

  let observer record =
    Dsm.Invariant.make ~name:"observer" (fun system ->
        record (Array.copy system);
        None)
end
