type bug = No_bug | Double_bookkeeping

module type CONFIG = sig
  val num_nodes : int
  val max_children : int
  val max_attempts : int
  val bug : bug
end

type join_status = Out | Joining | In

type rt_state = {
  status : join_status;
  parent : int option;
  children : int list;
  siblings : int list;
  attempts : int;
}

type rt_message =
  | Join of { joiner : int }
  | Welcome of { parent : int; siblings : int list }
  | New_sibling of { sibling : int }

module Make (C : CONFIG) = struct
  let name = "randtree"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Randtree: need at least 2 nodes";
    if C.max_children < 1 then invalid_arg "Randtree: max_children < 1"

  type state = rt_state
  type message = rt_message
  type action = unit

  let root = 0

  let initial n =
    if n = root then
      { status = In; parent = None; children = []; siblings = []; attempts = 0 }
    else
      { status = Out; parent = None; children = []; siblings = []; attempts = 0 }

  let rec insert_sorted x = function
    | [] -> [ x ]
    | y :: rest when x < y -> x :: y :: rest
    | y :: rest when x = y -> y :: rest
    | y :: rest -> y :: insert_sorted x rest

  let remove x l = List.filter (fun y -> y <> x) l

  let env ~src ~dst payload = Dsm.Envelope.make ~src ~dst payload

  (* Deterministic stand-in for RandTree's random child choice: the
     joiner identity selects the forwarding child, so re-executions
     replay identically (§4.1, footnote 3). *)
  let pick_child children joiner =
    List.nth children (joiner mod List.length children)

  let adopt ~self state joiner =
    let previous_children = state.children in
    let notify =
      List.map
        (fun child -> env ~src:self ~dst:child (New_sibling { sibling = joiner }))
        previous_children
    in
    let siblings =
      match C.bug with
      | No_bug -> remove joiner state.siblings
      | Double_bookkeeping -> state.siblings
      (* the correct code clears a stale sibling record when adopting *)
    in
    let state =
      { state with children = insert_sorted joiner previous_children; siblings }
    in
    let welcome =
      env ~src:self ~dst:joiner
        (Welcome { parent = self; siblings = previous_children })
    in
    (state, welcome :: notify)

  let handle_join ~self state joiner =
    if state.status <> In then
      raise (Dsm.Protocol.Local_assert "join request at non-member");
    if List.mem joiner state.children then
      (* Duplicate join (a retry): re-send the Welcome idempotently. *)
      ( state,
        [
          env ~src:self ~dst:joiner
            (Welcome { parent = self; siblings = remove joiner state.children });
        ] )
    else if List.length state.children < C.max_children then
      adopt ~self state joiner
    else begin
      let next = pick_child state.children joiner in
      let forward = [ env ~src:self ~dst:next (Join { joiner }) ] in
      match C.bug with
      | No_bug -> (state, forward)
      | Double_bookkeeping ->
          (* The bug: the full node also books the joiner as its own
             child and announces the "new sibling" to its children. *)
          let notify =
            List.map
              (fun child ->
                env ~src:self ~dst:child (New_sibling { sibling = joiner }))
              state.children
          in
          ( { state with children = insert_sorted joiner state.children },
            forward @ notify )
    end

  let handle_message ~self state e =
    match e.Dsm.Envelope.payload with
    | Join { joiner } -> handle_join ~self state joiner
    | Welcome { parent; siblings } ->
        if state.status = In then (state, [])
        else
          ( {
              state with
              status = In;
              parent = Some parent;
              siblings =
                List.fold_left (fun acc s -> insert_sorted s acc) [] siblings;
            },
            [] )
    | New_sibling { sibling } ->
        if sibling = self then (state, [])
        else ({ state with siblings = insert_sorted sibling state.siblings }, [])

  let enabled_actions ~self state =
    if self <> root && state.status <> In && state.attempts < C.max_attempts
    then [ () ]
    else []

  let handle_action ~self state () =
    ( { state with status = Joining; attempts = state.attempts + 1 },
      [ env ~src:self ~dst:root (Join { joiner = self }) ] )

  let pp_int_list ppf l =
    Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int l))

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "{%s parent=%s children=%a siblings=%a}"
      (match s.status with Out -> "out" | Joining -> "joining" | In -> "in")
      (match s.parent with None -> "-" | Some p -> string_of_int p)
      pp_int_list s.children pp_int_list s.siblings

  let pp_message ppf = function
    | Join { joiner } -> Format.fprintf ppf "Join(%d)" joiner
    | Welcome { parent; siblings } ->
        Format.fprintf ppf "Welcome(parent=%d,siblings=%a)" parent pp_int_list
          siblings
    | New_sibling { sibling } -> Format.fprintf ppf "NewSibling(%d)" sibling

  let pp_action ppf () = Format.pp_print_string ppf "join"

  let disjointness =
    Dsm.Invariant.for_all_nodes ~name:"randtree-disjointness" (fun _ s ->
        match List.filter (fun c -> List.mem c s.siblings) s.children with
        | [] -> None
        | overlap ->
            Some
              (Printf.sprintf "nodes %s are both children and siblings"
                 (String.concat "," (List.map string_of_int overlap))))
end
