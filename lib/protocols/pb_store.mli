(** Primary-backup replicated key-value store.

    Node 0 is the primary, node 1 the backup, node 2 the client.  The
    client writes through the primary, which replicates to the backup
    and acknowledges the client only after the backup's acknowledgment;
    a suspicious client may fail over and direct its reads at the
    backup.

    The safety invariant is read-your-writes, and it is node-local to
    the client: once a write has been acknowledged, no later read may
    miss it — wherever the read was served.

    Two bugs are injectable.  [Ack_before_replication] is the classic
    replication shortcut: the primary acknowledges the client
    {e before} the backup has confirmed, so a failed-over read can
    reach the backup ahead of the replication and return stale data.
    [Lose_acked_writes_on_recovery] is a persistence bug: the primary
    serves writes from memory without writing through to its disk
    image, so the protocol is correct under any message schedule and
    the defect is reachable {e only} through a crash-recovery event
    (the primary reloads from disk and the acknowledged write is
    gone) — the fixture for LMC-under-faults hunts. *)

type bug =
  | No_bug
  | Ack_before_replication
  | Lose_acked_writes_on_recovery

module type CONFIG = sig
  (** The key/value the client writes, then reads back. *)
  val key : int

  val value : int

  val bug : bug
end

type pb_role = {
  store : (int * int) list;  (** sorted association list (in memory) *)
  disk : (int * int) list;
      (** write-through image; {!Dsm.Protocol.S.on_recover} reloads the
          store from it and clears [repl_pending] *)
  repl_pending : (int * int) option;
      (** primary only: write awaiting the backup's confirmation *)
}

type pb_client = {
  put_sent : bool;
  put_acked : bool;
  failed_over : bool;
  get_sent : bool;
  response : int option option;
      (** [Some r]: a read returned; [r = None]: key missing *)
}

type pb_state = Replica of pb_role | Client of pb_client

type pb_message =
  | Put of int * int
  | Replicate of int * int
  | Repl_ack
  | Put_ack
  | Get of int
  | Get_reply of int option

type pb_action = Do_put | Fail_over | Do_get

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = pb_state
       and type message = pb_message
       and type action = pb_action

  (** Read-your-writes at the client (node-local, so the [Automatic]
      strategy prunes on it). *)
  val read_your_writes : pb_state Dsm.Invariant.t
end
