(** SWIM-style gossip membership (ping / ping-req / suspicion /
    incarnation refutation).

    Every node continuously probes its peers, one probe per
    [Probe_round] tick: a direct [Ping] first, a [Ping_req] through a
    deterministic relay when the ack is slow, a timeout after
    {!ping_timeout_rounds} rounds.  The correct protocol never
    declares a peer dead on a timeout alone — it {e suspects} it,
    notifies it, and gives it {!suspicion_rounds} rounds to refute
    with a bumped incarnation.  This is exactly the class of protocol
    the paper's fault plans exist for: the safety argument lives in
    the timeout/suspicion/refutation logic, not in the state-space
    mechanics.

    Two planted bugs:

    - [No_suspicion] — a direct-probe timeout declares the peer dead
      immediately, skipping the suspicion period.  Harmless on a calm
      network (acks beat the next probe round easily); a [reorder:]
      plan delaying acks past probe rounds (plus [dup:] noise) makes
      the timeout fire against a perfectly healthy peer.  Caught by
      {!no_unsuspected_death}, which audits every death verdict for
      its suspicion rounds.

    - [Ack_race] — the relay's forwarded-ack duty is half-durable:
      the seq survives a crash, the origin does not.  After recovery
      the next [Ping_req] stitches the stale seq onto the new origin,
      whose forwarded ack then carries a seq it never issued.  Needs a
      crash-with-recovery of the relay to surface.  Caught by
      {!no_phantom_ack} via issuer-encoding in the seq numbers. *)

type bug = No_bug | No_suspicion | Ack_race

module type CONFIG = sig
  val num_servers : int

  val bug : bug
end

(** Probe rounds before a missing ack becomes a timeout verdict. *)
val ping_timeout_rounds : int

(** Probe rounds before a relay is asked to ping indirectly. *)
val relay_after_rounds : int

(** Suspicion rounds a peer gets to refute before it is declared
    dead. *)
val suspicion_rounds : int

type peer_status =
  | Alive of int  (** last known incarnation *)
  | Suspect of int * int  (** incarnation, rounds suspected so far *)
  | Dead of int * int
      (** incarnation, rounds spent suspected before the verdict *)

type probe = {
  p_target : int;
  p_seq : int;
  p_rounds : int;
  p_relayed : bool;
}

type relay_duty = { r_origin : int; r_seq : int }

type swim_state = {
  incarnation : int;
  counter : int;
  peers : (int * peer_status) list;
  probe : probe option;
  relay : relay_duty option;
  stale_seq : int option;
  phantom : bool;
}

type swim_message =
  | Ping of { seq : int }
  | Ack of { seq : int }
  | Ping_req of { target : int; seq : int }
  | Relay_ping of { seq : int }
  | Relay_ack of { seq : int }
  | Fwd_ack of { seq : int }
  | Suspect_notice of { inc : int }
  | Refute of { inc : int }

type swim_action = Probe_round

module Make (_ : CONFIG) : sig
  include
    Dsm.Protocol.S
      with type state = swim_state
       and type message = swim_message
       and type action = swim_action

  (** Every death verdict must have served its full suspicion period
      (node-local, so the [Automatic] strategy prunes on it). *)
  val no_unsuspected_death : swim_state Dsm.Invariant.t

  (** No node ever receives a forwarded ack for a probe it never
      issued (node-local; issuer identity is encoded in the seq). *)
  val no_phantom_ack : swim_state Dsm.Invariant.t

  (** Conjunction of the two. *)
  val membership_safety : swim_state Dsm.Invariant.t
end
