(** Deliberately defective protocols for the lint suite.

    Each fixture plants exactly one sanitizer-class defect — a bug no
    invariant can see but that silently corrupts checker verdicts —
    so tests and the CI gate can assert that [lmc lint] reports
    exactly one finding of the expected kind per fixture:

    - {!Nondet} — a module-level counter leaks into a reply payload:
      [nondeterministic_handler].
    - {!Noncanon} — two handler paths build structurally equal states
      with different Marshal sharing: [noncanonical_state].
    - {!Dead_letter} — a broadcast message no recipient ever reacts
      to: [dead_message].
    - {!Flaky_recovery} — node 0's [on_recover] folds a module-level
      epoch counter into the recovered state:
      [nondeterministic_recovery].
    - {!Sym_broken} — looks role-symmetric (no ids in states or
      messages) and claims the full symmetric group, but the Ping
      handler secretly branches on [self]: [broken_symmetry] when the
      claim is audited.  Clean under the sanitizer suite — the defect
      is only visible to the commutation audit.
    - {!Sym_flood} — the positive control: the same flood with the
      special case removed, genuinely symmetric under [S_3].  No
      finding; inference proposes the full group and both checkers may
      reduce. *)

module Nondet : Dsm.Protocol.S
module Noncanon : Dsm.Protocol.S
module Dead_letter : Dsm.Protocol.S
module Flaky_recovery : Dsm.Protocol.S
module Sym_broken : Dsm.Protocol.S

(** [state] stays concrete so runners can state invariants over the
    progress counters. *)
module Sym_flood : Dsm.Protocol.S with type state = int
