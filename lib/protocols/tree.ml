type node_state = Waiting | Sent | Received

module type CONFIG = sig
  val children : int list array
  val origin : int
  val target : int
end

module Paper_config = struct
  let children = [| [ 1; 2 ]; [ 3; 4 ]; []; []; [] |]
  let origin = 0
  let target = 4
end

module Make (C : CONFIG) = struct
  let name = "tree"
  let num_nodes = Array.length C.children

  let () =
    if C.origin < 0 || C.origin >= num_nodes then
      invalid_arg "Tree: origin out of range";
    if C.target < 0 || C.target >= num_nodes then
      invalid_arg "Tree: target out of range"

  type state = node_state
  type message = unit
  type action = unit

  let initial _ = Waiting

  let forward self =
    List.map
      (fun child -> Dsm.Envelope.make ~src:self ~dst:child ())
      C.children.(self)

  let handle_message ~self state _env =
    let state' = if self = C.target then Received else state in
    (state', forward self)

  let enabled_actions ~self state =
    if self = C.origin && state = Waiting then [ () ] else []

  let handle_action ~self _state () = (Sent, forward self)

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf = function
    | Waiting -> Format.pp_print_char ppf '-'
    | Sent -> Format.pp_print_char ppf 's'
    | Received -> Format.pp_print_char ppf 'r'

  let pp_message ppf () = Format.pp_print_string ppf "token"
  let pp_action ppf () = Format.pp_print_string ppf "start"

  let received_implies_sent =
    Dsm.Invariant.make ~name:"received-implies-sent" (fun system ->
        if system.(C.target) = Received && system.(C.origin) <> Sent then
          Some "target received the token before the origin sent it"
        else None)
end
