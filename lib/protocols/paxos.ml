module type CONFIG = sig
  val num_nodes : int
  val proposers : int list
  val max_attempts : int
  val max_index : int
  val fresh_proposals : bool
  val bug : Paxos_core.bug
end

module Bench_config = struct
  let num_nodes = 3
  let proposers = [ 0 ]
  let max_attempts = 1
  let max_index = 1
  let fresh_proposals = true
  let bug = Paxos_core.No_bug
end

type paxos_state = { booted : bool; core : Paxos_core.state }

type paxos_action = Init | Propose of { idx : int }

module Make (C : CONFIG) = struct
  let name = "paxos"
  let num_nodes = C.num_nodes

  let () =
    if C.num_nodes < 2 then invalid_arg "Paxos: need at least 2 nodes";
    if List.exists (fun p -> p < 0 || p >= C.num_nodes) C.proposers then
      invalid_arg "Paxos: proposer out of range"

  type state = paxos_state
  type message = Paxos_core.message
  type action = paxos_action

  let initial _ = { booted = false; core = Paxos_core.empty }

  let envelopes self out =
    List.map (fun (dst, msg) -> Dsm.Envelope.make ~src:self ~dst msg) out

  let handle_message ~self state env =
    if not state.booted then
      raise (Dsm.Protocol.Local_assert "message before initialization");
    let core, out =
      Paxos_core.handle ~n:C.num_nodes ~self ~bug:C.bug state.core
        ~src:env.Dsm.Envelope.src env.Dsm.Envelope.payload
    in
    ({ state with core }, envelopes self out)

  (* The test driver of §4.2: "The index is selected from recent chosen
     proposals, where not all the nodes have learned the proposal yet.
     Otherwise, a new index is used."  The locally visible proxy for a
     not-fully-learned proposal is an index this node's acceptor has
     accepted but its learner has not chosen. *)
  let propose_candidate ~self state =
    if not (List.mem self C.proposers) then None
    else begin
      let rec hot idx =
        if idx >= C.max_index then None
        else if
          Paxos_core.has_accepted state.core idx <> None
          && Paxos_core.chosen state.core idx = None
          && Paxos_core.next_attempt ~n:C.num_nodes state.core ~idx
             <= C.max_attempts
        then Some idx
        else hot (idx + 1)
      in
      let rec fresh idx =
        if idx >= C.max_index then None
        else if Paxos_core.is_untouched state.core idx then Some idx
        else fresh (idx + 1)
      in
      match hot 0 with
      | Some idx -> Some idx
      | None -> if C.fresh_proposals then fresh 0 else None
    end

  let enabled_actions ~self state =
    if not state.booted then [ Init ]
    else
      match propose_candidate ~self state with
      | Some idx -> [ Propose { idx } ]
      | None -> []

  let handle_action ~self state = function
    | Init -> ({ state with booted = true }, [])
    | Propose { idx } ->
        if not state.booted then
          raise (Dsm.Protocol.Local_assert "propose before initialization");
        let core, out =
          Paxos_core.propose ~n:C.num_nodes ~self state.core ~idx
            ~v:(self + 1)
        in
        ({ state with core }, envelopes self out)

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    if not s.booted then Format.pp_print_string ppf "(not booted)"
    else Paxos_core.pp_state ppf s.core

  let pp_message = Paxos_core.pp_message

  let pp_action ppf = function
    | Init -> Format.pp_print_string ppf "init"
    | Propose { idx } -> Format.fprintf ppf "propose(i=%d)" idx

  let safety =
    Dsm.Invariant.for_all_pairs ~name:"paxos-safety" (fun _ a _ b ->
        Paxos_core.disagreement a.core b.core)

  let abstraction s =
    match Paxos_core.chosen_all s.core with [] -> None | kvs -> Some kvs

  let conflicts a b =
    List.exists
      (fun (idx, va) ->
        match List.assoc_opt idx b with
        | Some vb -> vb <> va
        | None -> false)
      a
end
