type ping_state = { pinged : bool; pongs : int list; served : bool }

type msg = Ping | Pong

module Make (C : sig
  val num_servers : int
end) =
struct
  let name = "ping"
  let num_nodes = C.num_servers + 1

  let () = if C.num_servers < 1 then invalid_arg "Ping: need a server"

  type state = ping_state
  type message = msg
  type action = unit

  let initial _ = { pinged = false; pongs = []; served = false }

  let rec insert_sorted x = function
    | [] -> [ x ]
    | y :: rest when x < y -> x :: y :: rest
    | y :: rest when x = y -> y :: rest
    | y :: rest -> y :: insert_sorted x rest

  let handle_message ~self state env =
    match env.Dsm.Envelope.payload with
    | Ping ->
        if self = 0 then raise (Dsm.Protocol.Local_assert "client pinged");
        if state.served then (state, [])
        else
          ( { state with served = true },
            [ Dsm.Envelope.make ~src:self ~dst:0 Pong ] )
    | Pong ->
        if self <> 0 then raise (Dsm.Protocol.Local_assert "server ponged");
        ({ state with pongs = insert_sorted env.Dsm.Envelope.src state.pongs }, [])

  let enabled_actions ~self state =
    if self = 0 && not state.pinged then [ () ] else []

  let handle_action ~self state () =
    let pings =
      List.map
        (fun server -> Dsm.Envelope.make ~src:self ~dst:server Ping)
        (List.init C.num_servers (fun i -> i + 1))
    in
    ({ state with pinged = true }, pings)

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "{pinged=%b; pongs=%d; served=%b}" s.pinged
      (List.length s.pongs) s.served

  let pp_message ppf = function
    | Ping -> Format.pp_print_string ppf "ping"
    | Pong -> Format.pp_print_string ppf "pong"

  let pp_action ppf () = Format.pp_print_string ppf "ping-all"

  let no_excess_pongs =
    Dsm.Invariant.make ~name:"no-excess-pongs" (fun system ->
        let client = system.(0) in
        if List.length client.pongs > 0 && not client.pinged then
          Some "client holds pongs without having pinged"
        else if List.length client.pongs > C.num_servers then
          Some "more pongs than servers"
        else None)
end
