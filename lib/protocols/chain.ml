type chain_state = { received : bool; forwarded : bool }

module Make (C : sig
  val length : int
end) =
struct
  let name = "chain"
  let num_nodes = C.length

  let () = if C.length < 2 then invalid_arg "Chain: need at least 2 nodes"

  type state = chain_state
  type message = unit
  type action = unit

  let initial _ = { received = false; forwarded = false }

  let send_next self =
    if self + 1 < num_nodes then
      [ Dsm.Envelope.make ~src:self ~dst:(self + 1) () ]
    else []

  let handle_message ~self state _env =
    if state.received then (state, [])
    else ({ received = true; forwarded = self + 1 < num_nodes }, send_next self)

  let enabled_actions ~self state =
    if self = 0 && not state.forwarded then [ () ] else []

  let handle_action ~self state () =
    ({ state with forwarded = true }, send_next self)

  let on_recover = Dsm.Protocol.default_on_recover

  let pp_state ppf s =
    Format.fprintf ppf "%c%c"
      (if s.received then 'r' else '-')
      (if s.forwarded then 'f' else '-')

  let pp_message ppf () = Format.pp_print_string ppf "token"
  let pp_action ppf () = Format.pp_print_string ppf "start"

  let prefix_closed =
    Dsm.Invariant.make ~name:"chain-prefix-closed" (fun system ->
        let bad = ref None in
        for i = 1 to Array.length system - 1 do
          if !bad = None && system.(i).received && not system.(i - 1).forwarded
          then
            bad :=
              Some
                (Printf.sprintf "N%d received but N%d never forwarded" i (i - 1))
        done;
        !bad)
end
